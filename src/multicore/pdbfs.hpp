#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::mc {

struct PdbfsOptions {
  /// Worker threads; 0 = hardware concurrency.  The paper runs 8.
  unsigned num_threads = 0;
};

struct PdbfsStats {
  std::int64_t rounds = 0;
  std::int64_t augmentations = 0;
  std::int64_t blocked_searches = 0;    ///< BFSs starved by others' claims
  std::int64_t sequential_cleanup = 0;  ///< tail augmentations done serially
  double total_ms = 0.0;
};

struct PdbfsResult {
  matching::Matching matching;
  PdbfsStats stats;
};

/// P-DBFS (Azad et al.): the multicore comparator the paper benchmarks
/// against — parallel vertex-disjoint BFSs.
///
/// Each round snapshots the unmatched columns and hands them to worker
/// threads.  A worker grows a BFS tree from its column, acquiring every
/// row it touches with an atomic compare-and-swap on a claim array
/// (multicore codes may use atomics, unlike the GPU kernels); rows owned
/// by another tree are skipped, which keeps concurrently-found augmenting
/// paths vertex-disjoint and lets them be applied immediately without
/// further synchronisation.  Searches starved by foreign claims retry in
/// the next round.  When a whole round augments nothing, the remaining
/// (few) columns are finished with sequential unrestricted BFS — claims
/// can block a path that actually exists, so a zero round does not prove
/// maximality.
PdbfsResult p_dbfs(const graph::BipartiteGraph& g,
                   const matching::Matching& init,
                   const PdbfsOptions& options = {});

}  // namespace bpm::mc
