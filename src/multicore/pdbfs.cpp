#include "multicore/pdbfs.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "matching/detail/augment_dfs.hpp"
#include "util/timer.hpp"

namespace bpm::mc {

namespace {

using graph::BipartiteGraph;
using graph::index_t;
using matching::kUnmatched;

/// Per-worker scratch reused across rounds.
struct Worker {
  std::vector<index_t> parent_row;  ///< column we reached each row from
  std::vector<index_t> frontier;
  std::vector<index_t> next;

  explicit Worker(index_t nrows)
      : parent_row(static_cast<std::size_t>(nrows), kUnmatched) {}
};

}  // namespace

PdbfsResult p_dbfs(const BipartiteGraph& g, const matching::Matching& init,
                   const PdbfsOptions& options) {
  if (!init.is_valid(g))
    throw std::invalid_argument("p_dbfs: invalid initial matching");

  Timer total;
  PdbfsResult result;
  result.matching = init;
  PdbfsStats& stats = result.stats;
  auto& row_match = result.matching.row_match;
  auto& col_match = result.matching.col_match;

  unsigned num_threads = options.num_threads;
  if (num_threads == 0)
    num_threads = std::max(1u, std::thread::hardware_concurrency());

  const auto nrows = static_cast<std::size_t>(g.num_rows());
  // claim[u]: id of the BFS tree (root column) that owns row u this round.
  std::vector<std::atomic<index_t>> claim(nrows);

  std::vector<Worker> workers;
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t)
    workers.emplace_back(g.num_rows());

  enum class SearchOutcome { kAugmented, kBlocked, kHopeless };

  // One disjoint-BFS from `root`.  Claimed rows (CAS winners) form the
  // private search tree; the augmenting path flips only private vertices,
  // so no further synchronisation is needed to apply it.  A search that
  // exhausts without ever hitting a foreign claim has effectively run
  // unrestricted, which proves no augmenting path from `root` exists —
  // and augmenting elsewhere can never create one (standard matching
  // lemma), so the column is retired for good.
  auto search = [&](Worker& w, index_t root) -> SearchOutcome {
    w.frontier.clear();
    w.next.clear();
    w.frontier.push_back(root);
    index_t end_row = kUnmatched;
    bool blocked = false;
    while (!w.frontier.empty() && end_row == kUnmatched) {
      for (index_t v : w.frontier) {
        for (index_t u : g.col_neighbors(v)) {
          const auto uz = static_cast<std::size_t>(u);
          index_t expected = -1;
          if (!claim[uz].compare_exchange_strong(expected, root,
                                                 std::memory_order_acq_rel)) {
            if (expected != root) blocked = true;  // foreign tree owns u
            continue;
          }
          w.parent_row[uz] = v;
          const index_t next_col = row_match[uz];
          if (next_col == kUnmatched) {
            end_row = u;
            break;
          }
          w.next.push_back(next_col);
        }
        if (end_row != kUnmatched) break;
      }
      w.frontier.swap(w.next);
      w.next.clear();
    }
    if (end_row == kUnmatched)
      return blocked ? SearchOutcome::kBlocked : SearchOutcome::kHopeless;
    index_t u = end_row;
    while (true) {
      const index_t v = w.parent_row[static_cast<std::size_t>(u)];
      const index_t prev_u = col_match[static_cast<std::size_t>(v)];
      row_match[static_cast<std::size_t>(u)] = v;
      col_match[static_cast<std::size_t>(v)] = u;
      if (prev_u == kUnmatched) break;
      u = prev_u;
    }
    return SearchOutcome::kAugmented;
  };

  while (true) {
    std::vector<index_t> unmatched;
    for (index_t v = 0; v < g.num_cols(); ++v)
      if (col_match[static_cast<std::size_t>(v)] == kUnmatched)
        unmatched.push_back(v);
    if (unmatched.empty()) break;

    for (auto& c : claim) c.store(-1, std::memory_order_relaxed);
    ++stats.rounds;

    std::atomic<std::size_t> cursor{0};
    std::atomic<std::int64_t> augmented{0};
    std::atomic<std::int64_t> blocked{0};
    auto run_worker = [&](unsigned t) {
      Worker& w = workers[t];
      while (true) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= unmatched.size()) break;
        switch (search(w, unmatched[i])) {
          case SearchOutcome::kAugmented:
            augmented.fetch_add(1, std::memory_order_relaxed);
            break;
          case SearchOutcome::kBlocked:
            blocked.fetch_add(1, std::memory_order_relaxed);
            break;
          case SearchOutcome::kHopeless:
            // Retire permanently; only this worker's search touched the
            // column, so the plain store is uncontested.
            col_match[static_cast<std::size_t>(unmatched[i])] =
                matching::kUnmatchable;
            break;
        }
      }
    };
    {
      std::vector<std::thread> threads;
      threads.reserve(num_threads - 1);
      for (unsigned t = 1; t < num_threads; ++t)
        threads.emplace_back(run_worker, t);
      run_worker(0);
      for (auto& th : threads) th.join();
    }
    stats.augmentations += augmented.load();
    stats.blocked_searches += blocked.load();

    if (augmented.load() == 0) {
      // Claims may block realisable paths, so a zero round does not prove
      // maximality; finish the (typically tiny) tail with sequential
      // disjoint-DFS phases until one of them comes up empty.
      matching::detail::DfsWorkspace ws(g);
      while (true) {
        const index_t cleaned =
            matching::detail::dfs_augment_phase(g, result.matching, ws);
        if (cleaned == 0) break;
        stats.augmentations += cleaned;
        stats.sequential_cleanup += cleaned;
      }
      break;
    }
  }

  // Normalise retired columns for the caller.
  for (auto& cm : col_match)
    if (cm == matching::kUnmatchable) cm = kUnmatched;
  stats.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace bpm::mc
