#include "serve/instance_store.hpp"

#include <stdexcept>
#include <utility>

namespace bpm::serve {

InstanceStore::InstanceStore(PipelineOptions options)
    : options_(std::move(options)) {}

InstanceStore::AddResult InstanceStore::add(std::string name,
                                            graph::BipartiteGraph graph) {
  const std::uint64_t fingerprint = graph::structural_fingerprint(graph);
  {
    const std::scoped_lock lock(mutex_);
    if (const auto it = by_fingerprint_.find(fingerprint);
        it != by_fingerprint_.end()) {
      // Already held: the name now resolves to this handle (re-pointing
      // it if a previous registration used the same name).
      by_name_.insert_or_assign(std::move(name), it->second);
      return {it->second, /*deduplicated=*/true};
    }
  }
  // Admission (init + reference cardinality) is the expensive part — done
  // outside the lock so concurrent registrations of different graphs
  // overlap.  A racing duplicate is resolved on re-check: first in wins.
  return add(admit_instance(std::move(name), std::move(graph), options_));
}

InstanceStore::AddResult InstanceStore::add(PipelineInstance instance) {
  if (instance.fingerprint == 0)
    instance.fingerprint = graph::structural_fingerprint(instance.graph);
  const std::scoped_lock lock(mutex_);
  if (const auto it = by_fingerprint_.find(instance.fingerprint);
      it != by_fingerprint_.end()) {
    by_name_.insert_or_assign(std::move(instance.name), it->second);
    return {it->second, /*deduplicated=*/true};
  }
  const std::size_t handle = instances_.size();
  by_fingerprint_.emplace(instance.fingerprint, handle);
  by_name_.insert_or_assign(instance.name, handle);
  instances_.push_back(
      std::make_unique<PipelineInstance>(std::move(instance)));
  return {handle, /*deduplicated=*/false};
}

const PipelineInstance& InstanceStore::get(std::size_t handle) const {
  const std::scoped_lock lock(mutex_);
  if (handle >= instances_.size())
    throw std::out_of_range("unknown instance handle " +
                            std::to_string(handle) + " (store holds " +
                            std::to_string(instances_.size()) + ")");
  return *instances_[handle];
}

std::optional<std::size_t> InstanceStore::find(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::size_t InstanceStore::size() const {
  const std::scoped_lock lock(mutex_);
  return instances_.size();
}

std::vector<std::string> InstanceStore::names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(instances_.size());
  // The admitting registration's name is the primary one; aliases from
  // deduplicated adds live only in by_name_.
  for (const auto& inst : instances_) out.push_back(inst->name);
  return out;
}

}  // namespace bpm::serve
