#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "serve/proto.hpp"
#include "serve/service.hpp"

namespace bpm::serve {

/// State shared by every protocol session of one serving process: the
/// service itself plus the process's trace recorder (`trace-start` /
/// `trace-dump` act on it from any session, serialized by the mutex).
/// Declared before (so destructed after) any transport or session that
/// points into it.
struct SessionContext {
  explicit SessionContext(MatchingService& s) : service(s) {}

  MatchingService& service;
  std::mutex trace_mutex;
  obs::Tracer tracer;
  std::string trace_path;  ///< where trace-dump writes; set by trace-start
};

/// One client's view of the protocol: decodes lines against the
/// `proto` schema, enforces the client's auth token and request quota,
/// and executes commands against the shared service.  `execute` NEVER
/// throws — every malformed line, unknown instance, out-of-range number,
/// or I/O failure becomes an `error ...` response line, so no input a
/// client can send terminates the serving process.
///
/// A Session is single-threaded (one command at a time); concurrency
/// comes from running many sessions — the stdin driver runs one, the
/// socket transport one per connection — against the thread-safe service.
class Session {
 public:
  struct Options {
    /// Clients must `auth <token>` before anything else; empty disables.
    std::string auth_token;
    /// Commands this session may execute (auth and comments are free);
    /// 0 = unlimited.  Exhausted quota answers `error code=quota-exceeded`.
    std::uint64_t quota = 0;
    proto::Limits limits;
  };

  /// What one executed line produced.
  struct Outcome {
    std::vector<std::string> lines;  ///< response lines, in order
    bool shutdown = false;  ///< client asked the whole process to stop
    bool close = false;     ///< end this session (oversized line)
    /// The line was a `stats` command — a transport appends its
    /// per-client accounting lines after the service's.
    bool stats = false;
  };

  explicit Session(SessionContext& context) : Session(context, Options()) {}
  Session(SessionContext& context, Options options)
      : context_(context), options_(std::move(options)) {}

  /// Executes one protocol line.  Never throws.
  [[nodiscard]] Outcome execute(std::string_view line);

  // Per-session accounting.  Atomics because a transport's `stats`
  // command reads every session's counters from whichever executor
  // thread serves it, concurrently with the owning thread updating them.
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quota_rejections() const {
    return quota_rejections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool authed() const {
    return authed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void dispatch(const proto::Command& command, Outcome& out);
  void error(Outcome& out, proto::ErrorCode code, std::string message);

  // One handler per typed request.
  void handle(const proto::AuthRequest&, Outcome&);
  void handle(const proto::LoadRequest&, Outcome&);
  void handle(const proto::GenRequest&, Outcome&);
  void handle(const proto::SubmitRequest&, Outcome&);
  void handle(const proto::PollRequest&, Outcome&);
  void handle(const proto::WaitRequest&, Outcome&);
  void handle(const proto::DrainRequest&, Outcome&);
  void handle(const proto::StatsRequest&, Outcome&);
  void handle(const proto::MetricsRequest&, Outcome&);
  void handle(const proto::PolicyRequest&, Outcome&);
  void handle(const proto::TraceStartRequest&, Outcome&);
  void handle(const proto::TraceDumpRequest&, Outcome&);
  void handle(const proto::SaveCacheRequest&, Outcome&);
  void handle(const proto::LoadCacheRequest&, Outcome&);
  void handle(const proto::ShutdownRequest&, Outcome&);

  SessionContext& context_;
  Options options_;
  std::atomic<bool> authed_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
};

}  // namespace bpm::serve
