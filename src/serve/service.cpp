#include "serve/service.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "policy/auto_solver.hpp"
#include "util/stats.hpp"

namespace bpm::serve {
namespace {

/// Recent-sample window behind each `SolverLatency::p90_ms` — deep enough
/// for a stable tail estimate, bounded so the table never grows with
/// uptime.
constexpr std::size_t kSolverSampleWindow = 512;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::uint64_t ms_to_us(double ms) {
  return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

}  // namespace

MatchingService::MatchingService(ServiceOptions options)
    : options_(std::move(options)),
      group_({.engines = options_.engines,
              .routing = options_.routing,
              .backend = options_.backend,
              .device_mode = options_.device_mode,
              .device_threads = options_.device_threads,
              .descriptors = options_.engine_descriptors}),
      store_([&] {
        PipelineOptions admit;
        admit.verify = options_.verify;
        admit.share_init = options_.share_init;
        admit.init_builder = options_.init_builder;
        return admit;
      }()) {
  obs::Registry& reg = obs::Registry::global();
  metrics_.submitted = &reg.counter("serve.submitted");
  metrics_.accepted = &reg.counter("serve.accepted");
  metrics_.rejected = &reg.counter("serve.rejected");
  metrics_.completed = &reg.counter("serve.completed");
  metrics_.failed = &reg.counter("serve.failed");
  metrics_.expired = &reg.counter("serve.expired");
  metrics_.cache_hits = &reg.counter("serve.cache_hits");
  metrics_.fanout_hits = &reg.counter("serve.fanout_hits");
  metrics_.dispatches = &reg.counter("serve.dispatches");
  metrics_.coalesced = &reg.counter("serve.coalesced");
  metrics_.queue_depth = &reg.gauge("serve.queue_depth");
  metrics_.latency_ms = &reg.histogram("serve.latency_ms");
  metrics_.queue_ms = &reg.histogram("serve.queue_ms");
  metrics_.service_ms = &reg.histogram("serve.service_ms");
  tracer_.store(options_.tracer, std::memory_order_release);

  unsigned workers = options_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

MatchingService::~MatchingService() { shutdown(); }

InstanceStore::AddResult MatchingService::add_instance(
    std::string name, graph::BipartiteGraph graph) {
  return store_.add(std::move(name), std::move(graph));
}

InstanceStore::AddResult MatchingService::add_instance(
    PipelineInstance instance) {
  return store_.add(std::move(instance));
}

Submission MatchingService::submit(Request request) {
  Submission out;
  // Instantiate outside the lock: spec validation (unknown name, unknown
  // or malformed option) is the expensive, throwing part.
  std::unique_ptr<Solver> solver;
  std::string canonical;
  std::string reject;
  try {
    solver = request.spec.instantiate();
    canonical = request.spec.canonical();
  } catch (const std::exception& e) {
    reject = e.what();
  }
  if (reject.empty() && request.instance >= store_.size())
    reject = "unknown instance handle " + std::to_string(request.instance);

  const std::unique_lock lock(mutex_);
  ++stats_.submitted;
  metrics_.submitted->add();
  if (reject.empty() && !accepting_) reject = "service is shutting down";
  if (reject.empty() && queue_.size() >= options_.queue_depth)
    reject = "admission queue full (depth " +
             std::to_string(options_.queue_depth) + ")";
  if (!reject.empty()) {
    ++stats_.rejected;
    metrics_.rejected->add();
    out.reason = std::move(reject);
    return out;
  }

  auto queued = std::make_unique<Queued>();
  queued->ticket = next_ticket_++;
  queued->instance = request.instance;
  queued->priority = request.priority;
  queued->deadline_ms = request.deadline_ms;
  queued->canonical = std::move(canonical);
  queued->solver = std::move(solver);
  queued->submitted = std::chrono::steady_clock::now();

  Pending& pending = pending_[queued->ticket];
  pending.future = pending.promise.get_future().share();

  out.accepted = true;
  out.ticket = queued->ticket;
  out.future = pending.future;
  ++stats_.accepted;
  metrics_.accepted->add();
  queue_.push_back(std::move(queued));
  metrics_.queue_depth->set(static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return out;
}

std::vector<std::unique_ptr<MatchingService::Queued>>
MatchingService::take_batch_locked() {
  // One scan for the seed, one for the companions, one compaction: the
  // queue can be deep (load benches size it to a whole burst) and this
  // runs under the service mutex, so no per-pick rescans or erases.
  const auto better = [](const std::unique_ptr<Queued>& a,
                         const std::unique_ptr<Queued>& b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->ticket < b->ticket;  // FIFO within a priority level
  };

  std::size_t seed = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i)
    if (better(queue_[i], queue_[seed])) seed = i;

  std::vector<std::size_t> picked;
  picked.push_back(seed);

  // Coalescing companions: same registered instance, no deadline (a
  // deadline'd request always dispatches alone — see Request), in
  // dispatch order up to the batch bound.
  if (options_.coalesce && queue_[seed]->deadline_ms == 0.0) {
    std::vector<std::size_t> companions;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (i == seed || queue_[i]->instance != queue_[seed]->instance ||
          queue_[i]->deadline_ms != 0.0)
        continue;
      companions.push_back(i);
    }
    std::sort(companions.begin(), companions.end(),
              [&](std::size_t a, std::size_t b) {
                return better(queue_[a], queue_[b]);
              });
    const std::size_t limit = options_.coalesce_limit == 0
                                  ? queue_.size() + 1
                                  : options_.coalesce_limit;
    for (const std::size_t i : companions) {
      if (picked.size() >= limit) break;
      picked.push_back(i);
    }
  }

  std::vector<std::unique_ptr<Queued>> batch;
  batch.reserve(picked.size());
  for (const std::size_t i : picked) batch.push_back(std::move(queue_[i]));
  std::erase_if(queue_,
                [](const std::unique_ptr<Queued>& q) { return q == nullptr; });
  return batch;
}

void MatchingService::serve_batch(
    std::vector<std::unique_ptr<Queued>>& batch) {
  const PipelineInstance& inst = store_.get(batch.front()->instance);
  obs::Tracer* const tracer = tracer_.load(std::memory_order_acquire);
  auto dispatch_sp = obs::span(tracer, "dispatch", "serve");
  if (dispatch_sp) {
    dispatch_sp.arg("instance", inst.name);
    dispatch_sp.arg("batch", static_cast<std::int64_t>(batch.size()));
  }
  std::vector<Response> responses(batch.size());
  std::vector<std::size_t> live;
  live.reserve(batch.size());
  std::uint64_t expired = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Response& r = responses[i];
    r.queue_ms = ms_since(batch[i]->submitted);
    r.instance_name = inst.name;
    if (batch[i]->deadline_ms > 0.0 && r.queue_ms > batch[i]->deadline_ms) {
      r.ok = false;
      r.error = "deadline expired: queued " + std::to_string(r.queue_ms) +
                " ms of a " + std::to_string(batch[i]->deadline_ms) +
                " ms budget";
      ++expired;
    } else {
      live.push_back(i);
    }
  }

  std::uint64_t shared_hits = 0;
  std::uint64_t fanout_hits = 0;
  if (!live.empty()) {
    // Dispatch-time policy resolution: an `auto` request becomes the
    // concrete spec the policy engine picks for *this* instance's
    // features, before the router's load estimate, the caps scan, and
    // the cache probe — so a resolved auto request shares cache entries,
    // in-batch dedup, and engine routing with explicit traffic on the
    // same concrete spec.  A resolution failure (e.g. a stale model
    // naming an unregistered spec) keeps the AutoSolver in place; its
    // own run() re-resolves and run_verified turns any throw into a
    // failed response.
    for (const std::size_t i : live) {
      auto* as = dynamic_cast<policy::AutoSolver*>(batch[i]->solver.get());
      if (as == nullptr) continue;
      try {
        policy::AutoSolver::Resolved r = as->resolve(inst.features);
        batch[i]->resolved_from = std::move(batch[i]->canonical);
        batch[i]->canonical = r.spec.canonical();
        batch[i]->solver = std::move(r.solver);
      } catch (const std::exception&) {
      }
    }
    // Lazy engine acquisition via run_admitted_jobs' stream provider: a
    // dispatch served entirely from the cache routes no work and opens
    // no stream.
    std::optional<EngineGroup::Lease> lease;
    std::optional<device::Device> stream;
    // Load estimate for the router: duplicate (instance, spec) requests
    // in the batch solve once, so charge by distinct specs, not batch
    // size — otherwise least-loaded would steer traffic away from an
    // engine serving a cheap duplicate-heavy batch.
    std::set<std::string_view> distinct;
    for (const std::size_t i : live) distinct.insert(batch[i]->canonical);
    const double estimated_work =
        static_cast<double>(inst.graph.num_edges() + inst.graph.num_rows()) *
        static_cast<double>(distinct.size());
    // The full dispatch shape for routing policies that look past the
    // fingerprint (kBackendFit): instance size + admission-time degree
    // skew, and whether any solver in the batch runs balanced kernels.
    DispatchProfile profile{
        .fingerprint = inst.fingerprint,
        .estimated_work = estimated_work,
        .edges = static_cast<std::int64_t>(inst.graph.num_edges()),
        .degree_skew = inst.degree_skew};
    bool sharded = false;
    for (const std::size_t i : live) {
      const SolverCaps caps = batch[i]->solver->caps();
      if (caps.balanced) profile.balanced_kernels = true;
      sharded = sharded || caps.sharded;
    }
    // A sharded dispatch spreads shard k over engine k of the live fleet,
    // so pin its coordinator stream (and the load charge) on the engine
    // that hosts shard 0's arena instead of letting the policy scatter it.
    if (sharded) profile.preferred_engine = 0;
    const std::function<device::Device&()> provider =
        [&]() -> device::Device& {
      if (!stream) {
        lease.emplace(group_.acquire(profile));
        stream.emplace(lease->engine());
        if (tracer != nullptr) stream->set_tracer(tracer);
        if (dispatch_sp)
          dispatch_sp.arg("engine", static_cast<std::int64_t>(lease->index()));
      }
      return *stream;
    };
    std::vector<AdmittedJob> jobs;
    jobs.reserve(live.size());
    for (const std::size_t i : live)
      jobs.push_back({&inst, batch[i]->solver.get(), batch[i]->canonical});
    PipelineOptions run;
    run.verify = options_.verify;
    run.solver_threads = options_.solver_threads;
    run.tracer = tracer;
    // Sharded jobs spread one massive instance across the whole live
    // fleet (shard k on engine k); everyone else ignores the fleet and
    // stays on the leased stream.
    if (sharded) run.engines = group_.live_engines();
    std::vector<AdmittedJobResult> results =
        run_admitted_jobs(jobs, provider, options_.cache.get(), run);
    // Retire the stream (folding its launches into the engine odometer)
    // and release the lease before any response is delivered: a client
    // that sees its future ready must also see the work in
    // engine_stats() and the load gone from the router's gauge.
    stream.reset();
    lease.reset();
    for (std::size_t k = 0; k < live.size(); ++k) {
      Response& r = responses[live[k]];
      r.stats = std::move(results[k].outcome.stats);
      r.ok = results[k].outcome.ok;
      r.error = std::move(results[k].outcome.error);
      r.cached = results[k].cached;
      r.service_ms = results[k].solve_ms;
      if (results[k].cached)
        ++(results[k].in_batch_dup ? fanout_hits : shared_hits);
      // Online refinement: every solved request — explicit or resolved
      // from `auto` — feeds its observed wall time back into the policy
      // engine's per-bucket estimate for the spec that earned it.  Cache
      // hits carry no new timing signal and are skipped.
      if (!results[k].cached && results[k].outcome.ok)
        policy::PolicyEngine::global().observe(
            inst.features, batch[live[k]]->canonical, results[k].solve_ms);
    }
  }

  {
    const std::unique_lock lock(mutex_);
    stats_.expired += expired;
    stats_.cache_hits += shared_hits;
    stats_.fanout_hits += fanout_hits;
    ++stats_.dispatches;
    if (batch.size() > 1)
      stats_.coalesced += static_cast<std::uint64_t>(batch.size() - 1);
  }
  metrics_.expired->add(expired);
  metrics_.cache_hits->add(shared_hits);
  metrics_.fanout_hits->add(fanout_hits);
  metrics_.dispatches->add();
  if (batch.size() > 1)
    metrics_.coalesced->add(static_cast<std::uint64_t>(batch.size() - 1));
  for (std::size_t i = 0; i < batch.size(); ++i)
    complete(*batch[i], std::move(responses[i]));
}

void MatchingService::complete(Queued& q, Response&& response) {
  response.ticket = q.ticket;
  response.instance = q.instance;
  response.solver = q.canonical;
  response.resolved_from = q.resolved_from;
  response.total_ms = ms_since(q.submitted);

  metrics_.completed->add();
  if (!response.ok) metrics_.failed->add();
  metrics_.latency_ms->observe(response.total_ms);
  metrics_.queue_ms->observe(response.queue_ms);
  if (response.service_ms > 0.0)
    metrics_.service_ms->observe(response.service_ms);

  // The ticket's admission→dispatch→complete lifecycle, reconstructed
  // from the measured waits now that they are known: a "request" span over
  // the whole submission→completion interval with its "queued" prefix and
  // "service" suffix as children (the gap between them is dispatch
  // screening + cache probing).  Recorded on the completing worker's row.
  if (obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
      tracer != nullptr && tracer->enabled()) {
    const std::uint64_t end = tracer->now_us();
    const std::uint64_t total = std::min(end, ms_to_us(response.total_ms));
    const std::uint64_t start = end - total;
    std::string args = obs::arg_json(
        "ticket", static_cast<std::int64_t>(response.ticket));
    args += ',';
    args += obs::arg_json("solver", std::string_view(response.solver));
    if (!response.resolved_from.empty()) {
      args += ',';
      args += obs::arg_json("resolved_from",
                            std::string_view(response.resolved_from));
    }
    args += ',';
    args += obs::arg_json("ok", std::string_view(response.ok ? "yes" : "no"));
    if (response.cached) {
      args += ',';
      args += obs::arg_json("cached", std::string_view("yes"));
    }
    tracer->complete("request", "serve", start, total, std::move(args));
    tracer->complete("queued", "serve", start,
                     std::min(total, ms_to_us(response.queue_ms)),
                     obs::arg_json("ticket",
                                   static_cast<std::int64_t>(response.ticket)));
    if (response.service_ms > 0.0) {
      const std::uint64_t service = std::min(total,
                                             ms_to_us(response.service_ms));
      tracer->complete("service", "serve", end - service, service,
                       obs::arg_json(
                           "ticket",
                           static_cast<std::int64_t>(response.ticket)));
    }
  }

  const std::unique_lock lock(mutex_);
  ++stats_.completed;
  if (!response.ok) ++stats_.failed;
  stats_.queue_ms_total += response.queue_ms;
  stats_.service_ms_total += response.service_ms;
  // Per-solver latency table: solved requests only (cache hits report a
  // zero service time that would poison the mean), keyed by the resolved
  // canonical spec so auto traffic is judged under its concrete picks.
  if (response.ok && !response.cached && response.service_ms > 0.0) {
    SolverObservation& o = solver_observed_[response.solver];
    ++o.count;
    o.total_ms += response.service_ms;
    if (o.recent.size() < kSolverSampleWindow) {
      o.recent.push_back(response.service_ms);
    } else {
      o.recent[o.next] = response.service_ms;
      o.next = (o.next + 1) % kSolverSampleWindow;
    }
  }
  pending_.at(q.ticket).promise.set_value(std::move(response));
  // Ledger GC: evict the oldest completed tickets beyond the retention
  // bound, so a month-long submit loop holds bounded memory.  Futures a
  // client already holds stay valid (shared state outlives the map entry).
  completed_order_.push_back(q.ticket);
  if (options_.completed_ticket_retention > 0) {
    while (completed_order_.size() > options_.completed_ticket_retention) {
      pending_.erase(completed_order_.front());
      completed_order_.pop_front();
      ++stats_.evicted_tickets;
    }
  }
}

void MatchingService::worker_loop() {
  while (true) {
    std::vector<std::unique_ptr<Queued>> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to serve
      batch = take_batch_locked();
      in_flight_ += batch.size();
      metrics_.queue_depth->set(static_cast<double>(queue_.size()));
    }

    serve_batch(batch);

    {
      const std::unique_lock lock(mutex_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

Response MatchingService::evicted_response(std::uint64_t ticket) const {
  Response r;
  r.ticket = ticket;
  r.ok = false;
  r.evicted = true;
  r.error = "ticket " + std::to_string(ticket) +
            " expired from the completed-ticket ledger (retention " +
            std::to_string(options_.completed_ticket_retention) + ")";
  return r;
}

std::optional<Response> MatchingService::poll(std::uint64_t ticket) const {
  std::shared_future<Response> future;
  {
    const std::unique_lock lock(mutex_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      if (ticket == 0 || ticket >= next_ticket_)
        throw std::invalid_argument("unknown ticket " +
                                    std::to_string(ticket));
      // Issued once (tickets are sequential) but gone from the ledger.
      return evicted_response(ticket);
    }
    future = it->second.future;
  }
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
    return std::nullopt;
  return future.get();
}

Response MatchingService::wait(std::uint64_t ticket) const {
  std::shared_future<Response> future;
  {
    const std::unique_lock lock(mutex_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      if (ticket == 0 || ticket >= next_ticket_)
        throw std::invalid_argument("unknown ticket " +
                                    std::to_string(ticket));
      return evicted_response(ticket);
    }
    future = it->second.future;
  }
  return future.get();
}

void MatchingService::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void MatchingService::shutdown() {
  {
    const std::unique_lock lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

std::vector<SolverLatency> MatchingService::solver_stats() const {
  const std::unique_lock lock(mutex_);
  std::vector<SolverLatency> out;
  out.reserve(solver_observed_.size());
  for (const auto& [spec, o] : solver_observed_) {  // map: sorted by spec
    SolverLatency row;
    row.spec = spec;
    row.count = o.count;
    row.mean_ms = o.count > 0 ? o.total_ms / static_cast<double>(o.count) : 0.0;
    row.p90_ms = percentile(o.recent, 90.0);
    out.push_back(std::move(row));
  }
  return out;
}

ServiceStats MatchingService::stats() const {
  const std::unique_lock lock(mutex_);
  ServiceStats out = stats_;
  out.queued = queue_.size();
  out.in_flight = in_flight_;
  out.tickets_retained = pending_.size();
  return out;
}

void MatchingService::publish_metrics(obs::Registry& registry) const {
  const ServiceStats s = stats();
  registry.gauge("serve.queue_depth").set(static_cast<double>(s.queued));
  registry.gauge("serve.in_flight").set(static_cast<double>(s.in_flight));
  registry.gauge("serve.tickets_retained")
      .set(static_cast<double>(s.tickets_retained));
  // Hit rate over everything served without solving (shared-cache hits +
  // in-batch fan-out), as a fraction of completions.
  const double completed = static_cast<double>(s.completed);
  registry.gauge("serve.cache_hit_rate")
      .set(completed > 0.0
               ? static_cast<double>(s.cache_hits + s.fanout_hits) / completed
               : 0.0);
  for (const EngineGroupEngineStats& e : group_.stats()) {
    const std::string prefix = "serve.engine." + std::to_string(e.index);
    registry.gauge(prefix + ".load").set(e.load);
    registry.gauge(prefix + ".dispatches")
        .set(static_cast<double>(e.dispatches));
    registry.set_info(prefix, e.descriptor.summary() +
                                  (e.retired ? " [retired]" : ""));
  }
}

}  // namespace bpm::serve
