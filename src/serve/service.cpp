#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace bpm::serve {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

MatchingService::MatchingService(ServiceOptions options)
    : options_(std::move(options)),
      engine_(std::make_shared<device::Engine>(options_.device_mode,
                                               options_.device_threads)),
      store_([&] {
        PipelineOptions admit;
        admit.verify = options_.verify;
        admit.share_init = options_.share_init;
        admit.init_builder = options_.init_builder;
        return admit;
      }()) {
  unsigned workers = options_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

MatchingService::~MatchingService() { shutdown(); }

InstanceStore::AddResult MatchingService::add_instance(
    std::string name, graph::BipartiteGraph graph) {
  return store_.add(std::move(name), std::move(graph));
}

InstanceStore::AddResult MatchingService::add_instance(
    PipelineInstance instance) {
  return store_.add(std::move(instance));
}

Submission MatchingService::submit(Request request) {
  Submission out;
  // Instantiate outside the lock: spec validation (unknown name, unknown
  // or malformed option) is the expensive, throwing part.
  std::unique_ptr<Solver> solver;
  std::string canonical;
  std::string reject;
  try {
    solver = request.spec.instantiate();
    canonical = request.spec.canonical();
  } catch (const std::exception& e) {
    reject = e.what();
  }
  if (reject.empty() && request.instance >= store_.size())
    reject = "unknown instance handle " + std::to_string(request.instance);

  const std::unique_lock lock(mutex_);
  ++stats_.submitted;
  if (reject.empty() && !accepting_) reject = "service is shutting down";
  if (reject.empty() && queue_.size() >= options_.queue_depth)
    reject = "admission queue full (depth " +
             std::to_string(options_.queue_depth) + ")";
  if (!reject.empty()) {
    ++stats_.rejected;
    out.reason = std::move(reject);
    return out;
  }

  auto queued = std::make_unique<Queued>();
  queued->ticket = next_ticket_++;
  queued->instance = request.instance;
  queued->priority = request.priority;
  queued->deadline_ms = request.deadline_ms;
  queued->canonical = std::move(canonical);
  queued->solver = std::move(solver);
  queued->submitted = std::chrono::steady_clock::now();

  Pending& pending = pending_[queued->ticket];
  pending.future = pending.promise.get_future().share();

  out.accepted = true;
  out.ticket = queued->ticket;
  out.future = pending.future;
  ++stats_.accepted;
  queue_.push(std::move(queued));
  work_cv_.notify_one();
  return out;
}

void MatchingService::complete(Queued& q, Response&& response) {
  response.ticket = q.ticket;
  response.instance = q.instance;
  response.solver = q.canonical;
  response.total_ms = ms_since(q.submitted);

  {
    const std::unique_lock lock(mutex_);
    ++stats_.completed;
    if (!response.ok) ++stats_.failed;
    if (response.cached) ++stats_.cache_hits;
    stats_.queue_ms_total += response.queue_ms;
    stats_.service_ms_total += response.service_ms;
    pending_.at(q.ticket).promise.set_value(std::move(response));
  }
}

void MatchingService::worker_loop() {
  while (true) {
    std::unique_ptr<Queued> q;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to serve
      // priority_queue::top is const; ownership still moves exactly once.
      q = std::move(const_cast<std::unique_ptr<Queued>&>(queue_.top()));
      queue_.pop();
      ++in_flight_;
    }

    Response response;
    response.queue_ms = ms_since(q->submitted);
    const PipelineInstance& inst = store_.get(q->instance);
    response.instance_name = inst.name;

    if (q->deadline_ms > 0.0 && response.queue_ms > q->deadline_ms) {
      response.ok = false;
      response.error = "deadline expired: queued " +
                       std::to_string(response.queue_ms) + " ms of a " +
                       std::to_string(q->deadline_ms) + " ms budget";
      {
        const std::unique_lock lock(mutex_);
        ++stats_.expired;
      }
      complete(*q, std::move(response));
    } else {
      std::optional<JobOutcome> hit;
      if (options_.cache)
        hit = options_.cache->get(inst.fingerprint, q->canonical);
      if (hit) {
        response.stats = hit->stats;
        response.ok = hit->ok;
        response.error = hit->error;
        response.cached = true;
        // Same convention as the pipeline's cache hits: the cost fields
        // are not re-charged — the work happened in the run that solved
        // it — so aggregating clients never double-count.
        response.stats.wall_ms = 0.0;
        response.stats.modeled_ms = 0.0;
        response.stats.device_launches = 0;
      } else {
        Timer timer;
        // One device stream per solved request: it retires its launch and
        // modeled-time totals into the engine odometer on completion, so
        // `engine_stats()` (and bpm_serve's `stats` command) track the
        // serving process's device work live, not only at shutdown.
        device::Device stream(engine_);
        const SolveContext ctx{.device = &stream,
                               .threads = options_.solver_threads};
        JobOutcome out =
            run_verified(*q->solver, ctx, inst.graph, inst.init,
                         options_.verify ? inst.maximum_cardinality : -1);
        response.service_ms = timer.elapsed_ms();
        // Verified results only (see the pipeline's shared-cache rule): a
        // --no-verify service never seeds the cache other consumers trust.
        if (options_.cache && out.ok && options_.verify)
          options_.cache->put(inst.fingerprint, q->canonical, out);
        response.stats = std::move(out.stats);
        response.ok = out.ok;
        response.error = std::move(out.error);
      }
      complete(*q, std::move(response));
    }

    {
      const std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

std::optional<Response> MatchingService::poll(std::uint64_t ticket) const {
  std::shared_future<Response> future;
  {
    const std::unique_lock lock(mutex_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end())
      throw std::invalid_argument("unknown ticket " + std::to_string(ticket));
    future = it->second.future;
  }
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
    return std::nullopt;
  return future.get();
}

Response MatchingService::wait(std::uint64_t ticket) const {
  std::shared_future<Response> future;
  {
    const std::unique_lock lock(mutex_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end())
      throw std::invalid_argument("unknown ticket " + std::to_string(ticket));
    future = it->second.future;
  }
  return future.get();
}

void MatchingService::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void MatchingService::shutdown() {
  {
    const std::unique_lock lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

ServiceStats MatchingService::stats() const {
  const std::unique_lock lock(mutex_);
  ServiceStats out = stats_;
  out.queued = queue_.size();
  out.in_flight = in_flight_;
  return out;
}

}  // namespace bpm::serve
