#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "device/device.hpp"

namespace bpm::serve {

/// How an `EngineGroup` picks the engine for the next dispatch.
enum class Routing {
  /// Cycle through the live engines in index order, load-blind.
  kRoundRobin,
  /// Lowest in-flight modeled work (`device::Engine::load`); ties go to
  /// the engine with the fewest lifetime dispatches, then the lowest
  /// index, so a cold pool fans out instead of piling onto engine 0.
  kLeastLoaded,
  /// Sticky (instance fingerprint → engine) map: dispatches of a graph
  /// keep landing on the engine that already ran it — the cache-warm
  /// placement — until the mapping is evicted (capacity or retirement).
  /// Unmapped fingerprints fall back to the least-loaded pick.
  kAffinity,
  /// Place by backend fit in a (possibly mixed) pool: tiny dispatches go
  /// to the engine with the fewest lanes (the cheapest one to occupy);
  /// skewed, huge, or balanced-kernel dispatches go to host engines with
  /// the most workers (where edge-balanced chunks are real parallelism);
  /// everything else falls back to the least-loaded pick.  Thresholds in
  /// `EngineGroupOptions::fit_*`; the dispatch shape comes from
  /// `DispatchProfile`.
  kBackendFit,
};

/// "round-robin" | "least-loaded" | "affinity" | "backend-fit"; throws
/// `std::invalid_argument` (listing the policies) on anything else.
[[nodiscard]] Routing parse_routing(std::string_view name);
[[nodiscard]] std::string_view routing_name(Routing routing);

struct EngineGroupOptions {
  unsigned engines = 1;  ///< pool size (rounded up to at least 1)
  Routing routing = Routing::kLeastLoaded;
  /// Backend of every engine in a uniform pool (ignored when
  /// `descriptors` is non-empty).
  device::Backend backend = device::default_backend();
  device::ExecMode device_mode = device::ExecMode::kConcurrent;
  unsigned device_threads = 0;  ///< per-engine pool workers (0 = hardware)
  /// Explicit per-engine descriptors — a *mixed* pool (sim next to host,
  /// differing worker counts).  Non-empty overrides `engines`/`backend`/
  /// `device_mode`/`device_threads`; one engine is built per entry.
  std::vector<device::EngineDescriptor> descriptors;
  /// Bound on sticky (fingerprint → engine) entries under `kAffinity`;
  /// beyond it the least-recently dispatched mapping is evicted.
  std::size_t affinity_capacity = 1024;
  /// `kBackendFit` thresholds: a dispatch below `fit_tiny_work` estimated
  /// work units is tiny; one at/above `fit_huge_work`, with
  /// `DispatchProfile::degree_skew >= fit_skew_threshold`, or running
  /// balanced kernels wants a host engine.
  double fit_tiny_work = 4096.0;
  double fit_huge_work = 1e7;
  double fit_skew_threshold = 4.5;
};

/// The shape of one dispatch, for routing policies that look past the
/// fingerprint (`kBackendFit`).  Built by the dispatcher from what it
/// already knows: the admitted instance's size and degree skew, and the
/// solver's capabilities.
struct DispatchProfile {
  std::uint64_t fingerprint = 0;
  double estimated_work = 0.0;  ///< load-gauge charge (clamped to >= 1)
  std::int64_t edges = 0;       ///< instance edge count
  double degree_skew = 0.0;     ///< PipelineInstance::degree_skew
  bool balanced_kernels = false;  ///< solver runs edge-balanced launches
  /// Shard-local placement hint: a sharded dispatch runs shard k on engine
  /// `k % fleet` of the fleet it is handed, so its coordinator stream (and
  /// the load charge) belongs on that same engine — routing honours a
  /// valid, live preferred engine before any policy pick.  -1 = no
  /// preference.
  int preferred_engine = -1;
};

/// One engine's dispatch counters, next to its device odometer.
struct EngineGroupEngineStats {
  unsigned index = 0;
  bool retired = false;
  std::uint64_t dispatches = 0;     ///< leases handed out, lifetime
  double work_dispatched = 0.0;     ///< cumulative estimated work routed
  double load = 0.0;                ///< snapshot: in-flight estimated work
  device::EngineStats device;       ///< the engine's lifetime aggregates
  device::EngineDescriptor descriptor;  ///< what the engine is (backend,
                                        ///< lanes/workers)
};

/// A pool of N `device::Engine`s behind one dispatch point: `acquire`
/// routes a unit of work (an instance fingerprint plus a modeled-work
/// estimate) to an engine under the configured `Routing` policy and
/// returns an RAII `Lease` that charges the engine's load gauge for its
/// lifetime.  This is the seam that turns "the service owns one engine"
/// into "the service schedules over a fleet" — a CUDA backend slots in as
/// another engine here without the service noticing.
///
/// Engines can be `retire`d (failure, maintenance): a retired engine gets
/// no new dispatches and loses its affinity mappings, but outstanding
/// leases stay valid — a lease holds the engine `shared_ptr`, so streams
/// on it keep running even if the whole group is destroyed first.
///
/// Thread safety: all members are safe to call concurrently.
class EngineGroup {
 public:
  explicit EngineGroup(EngineGroupOptions options = {});

  EngineGroup(const EngineGroup&) = delete;
  EngineGroup& operator=(const EngineGroup&) = delete;

  /// The engine a dispatch was routed to, with its load charge held until
  /// release/destruction.  Movable, not copyable; default-constructed is
  /// empty (`operator bool` false).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : engine_(std::move(other.engine_)),
          index_(other.index_),
          work_(other.work_) {
      other.engine_.reset();
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        engine_ = std::move(other.engine_);
        index_ = other.index_;
        work_ = other.work_;
        other.engine_.reset();
      }
      return *this;
    }
    ~Lease() { release(); }

    /// Removes the load charge; the lease is empty afterwards.
    void release() {
      if (engine_) engine_->remove_load(work_);
      engine_.reset();
    }

    [[nodiscard]] const std::shared_ptr<device::Engine>& engine() const {
      return engine_;
    }
    [[nodiscard]] unsigned index() const { return index_; }
    [[nodiscard]] double work() const { return work_; }
    [[nodiscard]] explicit operator bool() const { return engine_ != nullptr; }

   private:
    friend class EngineGroup;
    Lease(std::shared_ptr<device::Engine> engine, unsigned index, double work)
        : engine_(std::move(engine)), index_(index), work_(work) {}

    std::shared_ptr<device::Engine> engine_;
    unsigned index_ = 0;
    double work_ = 0.0;
  };

  /// Routes one dispatch: picks an engine for the profile under the
  /// routing policy, charges `estimated_work` (clamped to at least 1) to
  /// its load gauge, and returns the lease.  Never fails: with every
  /// engine retired, the pick falls back over the retired pool — a
  /// draining service must still make progress.
  [[nodiscard]] Lease acquire(const DispatchProfile& profile);

  /// Fingerprint-and-work shorthand for policies that need nothing more
  /// (everything but `kBackendFit`, which sees an all-default shape).
  [[nodiscard]] Lease acquire(std::uint64_t fingerprint,
                              double estimated_work);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(engines_.size());
  }
  /// The live (non-retired) engines in index order — the fleet a sharded
  /// solve spreads over (`SolveContext::engines`).  Falls back to the full
  /// pool when everything is retired, mirroring `acquire`'s never-fail
  /// rule.
  [[nodiscard]] std::vector<std::shared_ptr<device::Engine>> live_engines()
      const;
  [[nodiscard]] const std::shared_ptr<device::Engine>& engine(
      unsigned index) const {
    return engines_.at(index);
  }
  [[nodiscard]] Routing routing() const { return options_.routing; }

  /// Stops routing new dispatches to `index` and evicts its affinity
  /// mappings; outstanding leases are unaffected.  Idempotent.
  void retire(unsigned index);
  [[nodiscard]] bool retired(unsigned index) const;

  /// Per-engine dispatch counters + device odometers, in index order.
  [[nodiscard]] std::vector<EngineGroupEngineStats> stats() const;

 private:
  [[nodiscard]] unsigned pick_locked(const DispatchProfile& profile);
  [[nodiscard]] unsigned least_loaded_locked() const;
  [[nodiscard]] unsigned backend_fit_locked(
      const DispatchProfile& profile) const;

  EngineGroupOptions options_;
  std::vector<std::shared_ptr<device::Engine>> engines_;

  mutable std::mutex mutex_;
  std::vector<bool> retired_;
  std::vector<std::uint64_t> dispatches_;
  std::vector<double> work_dispatched_;
  unsigned round_robin_next_ = 0;
  /// Affinity LRU: most recently dispatched at the front.
  std::list<std::pair<std::uint64_t, unsigned>> affinity_lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, unsigned>>::iterator>
      affinity_;
};

}  // namespace bpm::serve
