#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/solver.hpp"
#include "device/device.hpp"
#include "serve/instance_store.hpp"
#include "serve/result_cache.hpp"

namespace bpm::serve {

/// One asynchronous matching request: which admitted graph, which solver
/// configuration, and how urgently.
struct Request {
  std::size_t instance = 0;  ///< handle from MatchingService::instances()
  SolverSpec spec;
  /// Higher priorities are served first; ties are FIFO by admission order.
  int priority = 0;
  /// Milliseconds from submission after which the request must not start
  /// solving anymore — it completes immediately with `ok == false` and a
  /// "deadline expired" error instead.  0 disables the deadline.
  double deadline_ms = 0.0;
};

/// The completed request, delivered through the future and `poll`/`wait`.
struct Response {
  std::uint64_t ticket = 0;
  std::size_t instance = 0;
  std::string instance_name;
  std::string solver;  ///< canonical spec
  SolveStats stats;
  bool ok = false;
  bool cached = false;  ///< served from the result cache without solving
  std::string error;
  double queue_ms = 0.0;    ///< admission queue wait
  double service_ms = 0.0;  ///< solve + verify (0 for cache hits)
  double total_ms = 0.0;    ///< submission to completion
};

/// What `submit` hands back: an accepted request's ticket + future, or the
/// reason admission rejected it (queue full, unknown instance, malformed
/// spec, shutting down).  Rejection is backpressure, not an exception —
/// load generators and clients are expected to see it under overload.
struct Submission {
  bool accepted = false;
  std::uint64_t ticket = 0;
  std::string reason;  ///< why not, when !accepted
  std::shared_future<Response> future;
};

struct ServiceOptions {
  /// Worker threads = requests solving concurrently, each on its own
  /// device stream of the service's engine (0 = hardware concurrency).
  unsigned workers = 1;
  unsigned device_threads = 0;  ///< engine pool workers (0 = hardware)
  unsigned solver_threads = 0;  ///< multicore solver workers (0 = hardware)
  device::ExecMode device_mode = device::ExecMode::kConcurrent;
  /// Admission queue depth; a submit beyond it is rejected with a reason
  /// (bounded memory and latency under overload).
  std::size_t queue_depth = 256;
  /// Verify every result (reference cardinality is computed once per
  /// admitted instance); exactly `MatchingPipeline`'s verification.
  bool verify = true;
  bool share_init = true;
  std::function<matching::Matching(const graph::BipartiteGraph&)>
      init_builder;
  /// Result cache shared by all requests (and with any pipelines holding
  /// the same pointer); null serves every request by solving.
  std::shared_ptr<ResultCache> cache;
};

/// Lifetime counters of a service.  Completed = hits + solved + expired +
/// failed-verification; rejected never entered the queue.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;   ///< completed with ok == false (any cause)
  std::uint64_t expired = 0;  ///< deadline passed while queued
  std::uint64_t cache_hits = 0;
  std::size_t queued = 0;     ///< snapshot: waiting for a worker
  std::size_t in_flight = 0;  ///< snapshot: being solved right now
  double queue_ms_total = 0.0;
  double service_ms_total = 0.0;
};

/// A long-running matching service: owns one `device::Engine` for its
/// whole lifetime, a fingerprint-deduped `InstanceStore`, and (optionally)
/// a persistent `ResultCache`; accepts requests from any number of client
/// threads and schedules them through a bounded, priority-ordered
/// admission queue onto `workers` threads, each solving on its own device
/// stream of the shared engine (one stream per solved request, retired
/// into the engine's lifetime stats on completion).
///
/// ```
/// serve::MatchingService svc({.workers = 4, .cache = cache});
/// auto handle = svc.add_instance("web", std::move(graph)).handle;
/// auto sub = svc.submit({.instance = handle,
///                        .spec = SolverSpec::parse("g-pr-shr:k=1.5")});
/// if (sub.accepted) Response r = sub.future.get();   // or poll(sub.ticket)
/// ```
///
/// Results are bit-identical to a sequential `MatchingPipeline` run of the
/// same (instance, spec) jobs: admission, solving, and verification all go
/// through the same `admit_instance` / `run_verified` seams.
class MatchingService {
 public:
  explicit MatchingService(ServiceOptions options = {});
  /// Stops admission, completes everything still queued, joins workers.
  ~MatchingService();

  MatchingService(const MatchingService&) = delete;
  MatchingService& operator=(const MatchingService&) = delete;

  /// Registers a graph (deduped by structural fingerprint) and returns its
  /// handle for `Request::instance`.
  InstanceStore::AddResult add_instance(std::string name,
                                        graph::BipartiteGraph graph);
  /// Registers an already-admitted instance (init/ground truth reused).
  InstanceStore::AddResult add_instance(PipelineInstance instance);
  [[nodiscard]] const InstanceStore& instances() const { return store_; }

  /// Admits a request or rejects it with a reason (never blocks on a full
  /// queue — backpressure is the caller's signal to slow down).
  Submission submit(Request request);

  /// Non-blocking completion check: the response once the request is done,
  /// `std::nullopt` while it is queued or solving.  Throws
  /// `std::invalid_argument` for a ticket this service never issued.
  [[nodiscard]] std::optional<Response> poll(std::uint64_t ticket) const;

  /// Blocks until the ticket completes.
  [[nodiscard]] Response wait(std::uint64_t ticket) const;

  /// Blocks until the queue is empty and no request is in flight.
  void drain();

  /// Stops accepting, drains, joins the workers.  Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const std::shared_ptr<ResultCache>& cache() const {
    return options_.cache;
  }
  [[nodiscard]] const std::shared_ptr<device::Engine>& engine() const {
    return engine_;
  }
  /// The engine's lifetime aggregates (streams served, launches retired) —
  /// the serving process's device-side odometer.
  [[nodiscard]] device::EngineStats engine_stats() const {
    return engine_->stats();
  }

 private:
  struct Queued {
    std::uint64_t ticket = 0;
    std::size_t instance = 0;
    int priority = 0;
    double deadline_ms = 0.0;
    std::string canonical;  ///< cache key + reported solver label
    std::unique_ptr<Solver> solver;
    std::chrono::steady_clock::time_point submitted;
  };
  struct QueueOrder {
    bool operator()(const std::unique_ptr<Queued>& a,
                    const std::unique_ptr<Queued>& b) const {
      if (a->priority != b->priority) return a->priority < b->priority;
      return a->ticket > b->ticket;  // FIFO within a priority level
    }
  };
  struct Pending {
    std::promise<Response> promise;
    std::shared_future<Response> future;
  };

  void worker_loop();
  void complete(Queued& q, Response&& response);

  ServiceOptions options_;
  std::shared_ptr<device::Engine> engine_;
  InstanceStore store_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty / shutdown
  std::condition_variable idle_cv_;  ///< drain: queue empty and none in flight
  std::priority_queue<std::unique_ptr<Queued>,
                      std::vector<std::unique_ptr<Queued>>, QueueOrder>
      queue_;
  std::map<std::uint64_t, Pending> pending_;  ///< ticket -> future state
  ServiceStats stats_;
  std::uint64_t next_ticket_ = 1;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  std::vector<std::thread> workers_;  ///< last member: joins before teardown
};

}  // namespace bpm::serve
