#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/solver.hpp"
#include "device/device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine_group.hpp"
#include "serve/instance_store.hpp"
#include "serve/result_cache.hpp"

namespace bpm::serve {

/// One asynchronous matching request: which admitted graph, which solver
/// configuration, and how urgently.
struct Request {
  std::size_t instance = 0;  ///< handle from MatchingService::instances()
  SolverSpec spec;
  /// Higher priorities are served first; ties are FIFO by admission order.
  int priority = 0;
  /// Milliseconds from submission after which the request must not start
  /// solving anymore — it completes immediately with `ok == false` and a
  /// "deadline expired" error instead.  0 disables the deadline.  A
  /// deadline'd request is always dispatched alone, never coalesced: the
  /// deadline is a per-request latency contract, and tying it to batch
  /// peers would blur whose budget expired.
  double deadline_ms = 0.0;
};

/// The completed request, delivered through the future and `poll`/`wait`.
struct Response {
  std::uint64_t ticket = 0;
  std::size_t instance = 0;
  std::string instance_name;
  std::string solver;  ///< canonical spec
  SolveStats stats;
  bool ok = false;
  bool cached = false;  ///< served without solving: a result-cache hit or a
                        ///< duplicate coalesced into the same dispatch batch
  /// The ticket completed long ago and was evicted from the bounded
  /// completed-ticket ledger (`ServiceOptions::completed_ticket_retention`)
  /// — the result itself is gone; `ok` is false and `error` says so.
  bool evicted = false;
  std::string error;
  /// Provenance when dispatch-time policy resolution rewrote the request:
  /// the spec the client actually asked for (e.g. "auto:explore=0.1")
  /// while `solver` reports the concrete spec the policy picked.  Empty
  /// for explicit requests.
  std::string resolved_from;
  double queue_ms = 0.0;    ///< admission queue wait
  double service_ms = 0.0;  ///< own solve + verify (0 for cache hits)
  double total_ms = 0.0;    ///< submission to completion
};

/// What `submit` hands back: an accepted request's ticket + future, or the
/// reason admission rejected it (queue full, unknown instance, malformed
/// spec, shutting down).  Rejection is backpressure, not an exception —
/// load generators and clients are expected to see it under overload.
struct Submission {
  bool accepted = false;
  std::uint64_t ticket = 0;
  std::string reason;  ///< why not, when !accepted
  std::shared_future<Response> future;
};

struct ServiceOptions {
  /// Worker threads = dispatches solving concurrently, each batch on its
  /// own device stream of a routed engine (0 = hardware concurrency).
  unsigned workers = 1;
  unsigned device_threads = 0;  ///< per-engine pool workers (0 = hardware)
  unsigned solver_threads = 0;  ///< multicore solver workers (0 = hardware)
  device::ExecMode device_mode = device::ExecMode::kConcurrent;
  /// Backend of every engine in a uniform pool; `sim` keeps the modeled
  /// C2050, `host` serves on real multicore executors.
  device::Backend backend = device::default_backend();
  /// Explicit per-engine descriptors — a *mixed* pool (see
  /// `EngineGroupOptions::descriptors`).  Non-empty overrides `engines`,
  /// `backend`, `device_mode`, and `device_threads`.
  std::vector<device::EngineDescriptor> engine_descriptors;
  /// Admission queue depth; a submit beyond it is rejected with a reason
  /// (bounded memory and latency under overload).
  std::size_t queue_depth = 256;
  /// Verify every result (reference cardinality is computed once per
  /// admitted instance); exactly `MatchingPipeline`'s verification.
  bool verify = true;
  bool share_init = true;
  std::function<matching::Matching(const graph::BipartiteGraph&)>
      init_builder;
  /// Result cache shared by all requests (and with any pipelines holding
  /// the same pointer); null serves every request by solving.
  std::shared_ptr<ResultCache> cache;
  /// Device engines behind the service; every dispatch is routed across
  /// them by `routing` through a `serve::EngineGroup`.  1 keeps the
  /// single-engine behaviour.
  unsigned engines = 1;
  Routing routing = Routing::kLeastLoaded;
  /// Coalesce compatible queued requests — same registered instance, no
  /// deadline — into one pipeline batch per dispatch: one routed engine
  /// stream and one pass of cache probes for the whole batch, duplicate
  /// (instance, spec) requests solved once and fanned back out.
  bool coalesce = true;
  /// Most requests one dispatch may coalesce (0 = unbounded).
  std::size_t coalesce_limit = 16;
  /// Completed tickets kept for `poll`/`wait`; beyond it the oldest
  /// completed tickets are evicted (a month-long process must not grow
  /// its ledger forever) and polling them yields a distinct `evicted`
  /// response.  0 = keep everything.
  std::size_t completed_ticket_retention = 65536;
  /// Optional trace sink (swappable later via `set_tracer`): every served
  /// ticket records its admission→dispatch→complete lifecycle — a
  /// `"request"` span over submission→completion with nested `"queued"`
  /// and `"service"` intervals, back-computed at completion from the
  /// measured waits — plus one `"dispatch"` span per worker batch (batch
  /// size, routed engine).  Must outlive the service or be cleared with
  /// `set_tracer(nullptr)` first.
  obs::Tracer* tracer = nullptr;
};

/// Lifetime counters of a service.  Completed = hits + solved + expired +
/// failed-verification; rejected never entered the queue.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;   ///< completed with ok == false (any cause)
  std::uint64_t expired = 0;  ///< deadline passed while queued
  std::uint64_t cache_hits = 0;  ///< served from the shared `ResultCache`
  /// Served as an in-batch duplicate of a coalesced dispatch (solved once
  /// in the same batch, fanned back out) — distinct from `cache_hits` so
  /// the cache hit-rate stays meaningful on cache-less services.
  std::uint64_t fanout_hits = 0;
  std::uint64_t dispatches = 0;  ///< worker dispatches (batches served)
  /// Requests that rode a dispatch batch they shared with at least one
  /// other request (batch size − 1 per multi-request dispatch).
  std::uint64_t coalesced = 0;
  std::uint64_t evicted_tickets = 0;  ///< completed tickets GC'd
  std::size_t queued = 0;     ///< snapshot: waiting for a worker
  std::size_t in_flight = 0;  ///< snapshot: being served right now
  std::size_t tickets_retained = 0;  ///< snapshot: ledger size (all states)
  double queue_ms_total = 0.0;
  double service_ms_total = 0.0;
};

/// Observed wall-time distribution of one resolved solver spec across the
/// service's lifetime — the per-solver latency table behind `bpm_serve
/// stats`.  Mean is over every solved (non-cached) request; p90 is over a
/// bounded window of the most recent samples so a month-long process keeps
/// a current tail, not an all-time one.
struct SolverLatency {
  std::string spec;  ///< canonical resolved spec (post-policy)
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p90_ms = 0.0;
};

/// A long-running matching service: owns a pool of `device::Engine`s (a
/// `serve::EngineGroup`) for its whole lifetime, a fingerprint-deduped
/// `InstanceStore`, and (optionally) a persistent `ResultCache`; accepts
/// requests from any number of client threads and schedules them through
/// a bounded, priority-ordered admission queue onto `workers` threads.
///
/// Each worker dispatch takes the best queued request and — with
/// `coalesce` on — every compatible queued request of the same instance,
/// and serves them as one batch through the pipeline's
/// `run_admitted_jobs` seam on a single stream of an engine picked by the
/// group's routing policy (round-robin, least-loaded, instance-affinity).
/// Duplicate (instance, spec) requests in a batch are solved once and
/// fanned back out; per-request responses, deadline, and verification
/// semantics are exactly those of the uncoalesced service.  Priorities
/// order the dispatch *seeds*; a coalesced companion rides its batch
/// regardless of its own priority, so a low-priority request sharing an
/// instance with high-priority traffic can complete earlier than it
/// would uncoalesced.
///
/// ```
/// serve::MatchingService svc({.workers = 4, .cache = cache,
///                             .engines = 2,
///                             .routing = serve::Routing::kAffinity});
/// auto handle = svc.add_instance("web", std::move(graph)).handle;
/// auto sub = svc.submit({.instance = handle,
///                        .spec = SolverSpec::parse("g-pr-shr:k=1.5")});
/// if (sub.accepted) Response r = sub.future.get();   // or poll(sub.ticket)
/// ```
///
/// Results are bit-identical to a sequential `MatchingPipeline` run of the
/// same (instance, spec) jobs: admission, solving, and verification all go
/// through the same `admit_instance` / `run_admitted_jobs` /
/// `run_verified` seams regardless of coalescing or engine count.
class MatchingService {
 public:
  explicit MatchingService(ServiceOptions options = {});
  /// Stops admission, completes everything still queued, joins workers.
  ~MatchingService();

  MatchingService(const MatchingService&) = delete;
  MatchingService& operator=(const MatchingService&) = delete;

  /// Registers a graph (deduped by structural fingerprint) and returns its
  /// handle for `Request::instance`.
  InstanceStore::AddResult add_instance(std::string name,
                                        graph::BipartiteGraph graph);
  /// Registers an already-admitted instance (init/ground truth reused).
  InstanceStore::AddResult add_instance(PipelineInstance instance);
  [[nodiscard]] const InstanceStore& instances() const { return store_; }

  /// Admits a request or rejects it with a reason (never blocks on a full
  /// queue — backpressure is the caller's signal to slow down).
  Submission submit(Request request);

  /// Non-blocking completion check: the response once the request is done,
  /// `std::nullopt` while it is queued or solving, a distinct `evicted`
  /// response for a ticket GC'd from the completed-ticket ledger.  Throws
  /// `std::invalid_argument` for a ticket this service never issued.
  [[nodiscard]] std::optional<Response> poll(std::uint64_t ticket) const;

  /// Blocks until the ticket completes.  An evicted ticket returns its
  /// `evicted` response immediately; a never-issued ticket throws
  /// `std::invalid_argument` instead of deadlocking forever.
  [[nodiscard]] Response wait(std::uint64_t ticket) const;

  /// Blocks until the queue is empty and no request is in flight.
  void drain();

  /// Stops accepting, drains, joins the workers.  Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

  /// Per-solver latency table: one row per resolved canonical spec that
  /// has completed at least one solved (non-cached) request, sorted by
  /// spec.  `auto` traffic appears under the concrete specs the policy
  /// resolved it to — this table is what the resolutions are judged by.
  [[nodiscard]] std::vector<SolverLatency> solver_stats() const;

  /// Swaps the trace sink (null detaches).  Takes effect on the next
  /// dispatch; the tracer must outlive every in-flight request recorded
  /// into it.
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  [[nodiscard]] obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }

  /// Publishes the service's live state into `registry` as gauges and
  /// info entries — queue depth, in-flight count, cache hit rate, and one
  /// `serve.engine.<i>.*` family per pool engine (load, dispatches, and
  /// the `EngineDescriptor` summary) — next to the lifetime counters and
  /// latency histograms the service streams in as it runs.  Call it right
  /// before snapshotting the registry (`bpm_serve metrics` does).
  void publish_metrics(obs::Registry& registry) const;

  [[nodiscard]] const std::shared_ptr<ResultCache>& cache() const {
    return options_.cache;
  }
  /// The engine pool dispatches are routed over.
  [[nodiscard]] const EngineGroup& engine_group() const { return group_; }
  /// The group's first engine — the whole pool when `engines == 1`.
  [[nodiscard]] const std::shared_ptr<device::Engine>& engine() const {
    return group_.engine(0);
  }
  /// Engine 0's lifetime aggregates (streams served, launches retired) —
  /// the single-engine serving process's device-side odometer; per-engine
  /// numbers for a pool come from `engine_group().stats()`.
  [[nodiscard]] device::EngineStats engine_stats() const {
    return group_.engine(0)->stats();
  }

 private:
  struct Queued {
    std::uint64_t ticket = 0;
    std::size_t instance = 0;
    int priority = 0;
    double deadline_ms = 0.0;
    std::string canonical;  ///< cache key + reported solver label
    /// The submitted spec when dispatch-time policy resolution replaced
    /// `canonical`/`solver` with a concrete pick (empty otherwise).
    std::string resolved_from;
    std::unique_ptr<Solver> solver;
    std::chrono::steady_clock::time_point submitted;
  };
  struct Pending {
    std::promise<Response> promise;
    std::shared_future<Response> future;
  };

  /// Live registry instruments, resolved once at construction from
  /// `obs::Registry::global()` — the hot submit/dispatch/complete paths
  /// touch striped counters and histograms, never the registry map.
  struct LiveMetrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* fanout_hits = nullptr;
    obs::Counter* dispatches = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* latency_ms = nullptr;   ///< submission → completion
    obs::Histogram* queue_ms = nullptr;     ///< admission queue wait
    obs::Histogram* service_ms = nullptr;   ///< own solve + verify
  };

  void worker_loop();
  /// Removes the best queued request (highest priority, FIFO within it)
  /// plus — with coalescing on — every compatible same-instance request,
  /// best-first, up to `coalesce_limit`.  Caller holds `mutex_`.
  [[nodiscard]] std::vector<std::unique_ptr<Queued>> take_batch_locked();
  /// Serves one dispatch batch: per-request deadline screening, lazy
  /// engine acquisition, `run_admitted_jobs`, response fan-out.
  void serve_batch(std::vector<std::unique_ptr<Queued>>& batch);
  void complete(Queued& q, Response&& response);
  [[nodiscard]] Response evicted_response(std::uint64_t ticket) const;

  ServiceOptions options_;
  EngineGroup group_;
  InstanceStore store_;
  LiveMetrics metrics_;
  std::atomic<obs::Tracer*> tracer_{nullptr};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty / shutdown
  std::condition_variable idle_cv_;  ///< drain: queue empty and none in flight
  /// Admission queue; scanned for the best request (and its coalescing
  /// companions) per dispatch — linear in the bounded queue depth.
  std::vector<std::unique_ptr<Queued>> queue_;
  std::map<std::uint64_t, Pending> pending_;  ///< ticket -> future state
  /// Completed tickets, oldest first — the GC order of the ledger.
  std::deque<std::uint64_t> completed_order_;
  /// Per-resolved-spec wall-time accumulators behind `solver_stats()`:
  /// lifetime count/total plus a bounded ring of recent samples for the
  /// p90.  Guarded by `mutex_` (updated in `complete`).
  struct SolverObservation {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    std::vector<double> recent;  ///< ring buffer, kSolverSampleWindow deep
    std::size_t next = 0;        ///< ring cursor
  };
  std::map<std::string, SolverObservation> solver_observed_;
  ServiceStats stats_;
  std::uint64_t next_ticket_ = 1;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  std::vector<std::thread> workers_;  ///< last member: joins before teardown
};

}  // namespace bpm::serve
