#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/bipartite_graph.hpp"

namespace bpm::serve {

/// Registry of the graphs a serving process holds: admits each graph once
/// (shared init + reference cardinality + fingerprint, built through the
/// same `admit_instance` seam as `MatchingPipeline`), dedups registrations
/// by structural fingerprint, and hands out stable integer handles that
/// requests refer to.
///
/// Dedup means a client re-registering a graph the service already holds —
/// under any name — gets the original handle back and costs nothing beyond
/// the fingerprint; the first registration's name wins, later names become
/// aliases that `find` resolves.
///
/// Thread safety: all members are safe to call concurrently.  Handles and
/// the `PipelineInstance` references they resolve to stay valid for the
/// store's lifetime (instances are never removed).
class InstanceStore {
 public:
  /// `options` controls admission exactly like a pipeline's options do
  /// (share_init / init_builder / verify); scheduling fields are ignored.
  explicit InstanceStore(PipelineOptions options = {});

  /// Admits (or dedups) a graph; returns its handle and whether this call
  /// actually admitted it.  Re-using a name re-points it at the newly
  /// registered graph.
  struct AddResult {
    std::size_t handle = 0;
    bool deduplicated = false;  ///< an identical graph was already held
  };
  AddResult add(std::string name, graph::BipartiteGraph graph);

  /// Admits an already-built instance (e.g. a harness's precomputed suite)
  /// without redoing the init / ground-truth work; the caller guarantees
  /// its fields are consistent with this store's admission options.  A
  /// zero fingerprint is computed; dedup applies as usual.
  AddResult add(PipelineInstance instance);

  /// The admitted instance behind a handle; throws `std::out_of_range`
  /// for an unknown one.
  [[nodiscard]] const PipelineInstance& get(std::size_t handle) const;

  /// Resolves a registered name (including dedup aliases) to its handle.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const;

  /// Primary names in handle order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  PipelineOptions options_;
  mutable std::mutex mutex_;
  /// Stable addresses: handles index this vector; entries are pointers so
  /// growth never moves an instance a worker thread is reading.
  std::vector<std::unique_ptr<PipelineInstance>> instances_;
  std::map<std::uint64_t, std::size_t> by_fingerprint_;
  std::map<std::string, std::size_t, std::less<>> by_name_;
};

}  // namespace bpm::serve
