#include "serve/session.hpp"

#include <sstream>
#include <utility>
#include <variant>

#include "graph/generators.hpp"
#include "graph/instances.hpp"
#include "graph/matrix_market.hpp"
#include "obs/metrics.hpp"
#include "policy/auto_solver.hpp"

namespace bpm::serve {

namespace {

using proto::ErrorCode;

graph::BipartiteGraph generate(const proto::GenSpec& spec) {
  return std::visit(
      [](const auto& g) -> graph::BipartiteGraph {
        using T = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<T, proto::GenUniform>) {
          return graph::gen::random_uniform(g.rows, g.cols, g.edges, g.seed);
        } else if constexpr (std::is_same_v<T, proto::GenPlanted>) {
          return graph::gen::planted_perfect(g.n, g.extra_degree, g.seed);
        } else if constexpr (std::is_same_v<T, proto::GenChungLu>) {
          return graph::gen::chung_lu(g.rows, g.cols, g.avg_degree, g.gamma,
                                      g.seed);
        } else if constexpr (std::is_same_v<T, proto::GenInstance>) {
          for (const auto& inst : graph::paper_instances())
            if (inst.name == g.paper_name) return inst.build(g.scale, g.seed);
          throw std::invalid_argument("unknown paper instance '" +
                                      g.paper_name + "'");
        } else {
          static_assert(std::is_same_v<T, proto::GenHuge>);
          return graph::gen::huge_bipartite(g.rows, g.cols, g.avg_degree,
                                            g.hub_fraction, g.hub_every,
                                            g.seed);
        }
      },
      spec);
}

}  // namespace

void Session::error(Outcome& out, ErrorCode code, std::string message) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  out.lines.push_back(
      proto::error_line(proto::ProtoError{code, std::move(message)}));
}

Session::Outcome Session::execute(std::string_view line) {
  Outcome out;
  try {
    proto::Parsed parsed = proto::parse_command(line, options_.limits);
    if (parsed.ignorable()) return out;
    if (parsed.error) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      out.lines.push_back(proto::error_line(*parsed.error));
      // An oversized line means the stream's framing is suspect (the rest
      // may be the tail of the same blob) — end the session.
      out.close = parsed.error->code == ErrorCode::kLineTooLong;
      return out;
    }

    // Auth gates everything but `auth` itself.
    const bool is_auth =
        std::holds_alternative<proto::AuthRequest>(*parsed.command);
    if (!options_.auth_token.empty() && !authed() && !is_auth) {
      error(out, ErrorCode::kUnauthorized,
            "authenticate first: auth <token>");
      return out;
    }
    // Quota covers every authenticated command except `auth`.
    if (!is_auth && options_.quota > 0 && requests() >= options_.quota) {
      quota_rejections_.fetch_add(1, std::memory_order_relaxed);
      error(out, ErrorCode::kQuotaExceeded,
            "request quota of " + std::to_string(options_.quota) +
                " commands exhausted");
      return out;
    }
    if (!is_auth) requests_.fetch_add(1, std::memory_order_relaxed);

    dispatch(*parsed.command, out);
  } catch (const std::exception& e) {
    // A handler leaked an exception the typed paths did not classify —
    // still a protocol error, never a crash.
    error(out, ErrorCode::kInternal, e.what());
  } catch (...) {
    error(out, ErrorCode::kInternal, "unknown failure");
  }
  return out;
}

void Session::dispatch(const proto::Command& command, Outcome& out) {
  std::visit([&](const auto& request) { handle(request, out); }, command);
}

void Session::handle(const proto::AuthRequest& r, Outcome& out) {
  if (options_.auth_token.empty() || r.token == options_.auth_token) {
    authed_.store(true, std::memory_order_relaxed);
    out.lines.emplace_back("ok auth");
    return;
  }
  error(out, ErrorCode::kUnauthorized, "bad auth token");
}

void Session::handle(const proto::LoadRequest& r, Outcome& out) {
  graph::BipartiteGraph g;
  try {
    g = graph::read_matrix_market_file(r.path);
  } catch (const std::exception& e) {
    error(out, ErrorCode::kIo, e.what());
    return;
  }
  const auto added = context_.service.add_instance(r.name, std::move(g));
  const auto& inst = context_.service.instances().get(added.handle);
  std::ostringstream os;
  os << "instance " << r.name << " handle=" << added.handle
     << (added.deduplicated ? " (deduplicated)" : "") << " "
     << inst.graph.describe() << " max=" << inst.maximum_cardinality;
  out.lines.push_back(os.str());
}

void Session::handle(const proto::GenRequest& r, Outcome& out) {
  graph::BipartiteGraph g;
  try {
    g = generate(r.spec);
  } catch (const std::exception& e) {
    // Schema bounds screen most of this; the generators' own `require`
    // messages cover the cross-field cases (e.g. more edges than pairs).
    error(out, ErrorCode::kBadArgument, e.what());
    return;
  }
  const auto added = context_.service.add_instance(r.name, std::move(g));
  const auto& inst = context_.service.instances().get(added.handle);
  std::ostringstream os;
  os << "instance " << r.name << " handle=" << added.handle
     << (added.deduplicated ? " (deduplicated)" : "") << " "
     << inst.graph.describe() << " max=" << inst.maximum_cardinality;
  out.lines.push_back(os.str());
}

void Session::handle(const proto::SubmitRequest& r, Outcome& out) {
  const auto handle = context_.service.instances().find(r.instance);
  if (!handle) {
    error(out, ErrorCode::kUnknownInstance,
          "unknown instance '" + r.instance + "'");
    return;
  }
  Request req;
  req.instance = *handle;
  try {
    req.spec = SolverSpec::parse(r.spec);
  } catch (const std::exception& e) {
    error(out, ErrorCode::kBadArgument, e.what());
    return;
  }
  req.priority = r.priority;
  req.deadline_ms = r.deadline_ms;
  const Submission sub = context_.service.submit(std::move(req));
  if (sub.accepted)
    out.lines.push_back("ticket " + std::to_string(sub.ticket));
  else
    out.lines.push_back("rejected reason=" + proto::quoted(sub.reason));
}

void Session::handle(const proto::PollRequest& r, Outcome& out) {
  try {
    if (const auto response = context_.service.poll(r.ticket))
      out.lines.push_back(proto::response_line(*response));
    else
      out.lines.push_back("pending ticket=" + std::to_string(r.ticket));
  } catch (const std::invalid_argument& e) {
    error(out, ErrorCode::kUnknownTicket, e.what());
  }
}

void Session::handle(const proto::WaitRequest& r, Outcome& out) {
  try {
    out.lines.push_back(proto::response_line(context_.service.wait(r.ticket)));
  } catch (const std::invalid_argument& e) {
    error(out, ErrorCode::kUnknownTicket, e.what());
  }
}

void Session::handle(const proto::DrainRequest&, Outcome& out) {
  context_.service.drain();
  out.lines.emplace_back("drained");
}

void Session::handle(const proto::StatsRequest&, Outcome& out) {
  const ServiceStats s = context_.service.stats();
  std::ostringstream os;
  os << "stats submitted=" << s.submitted << " accepted=" << s.accepted
     << " rejected=" << s.rejected << " completed=" << s.completed
     << " failed=" << s.failed << " expired=" << s.expired
     << " cache_hits=" << s.cache_hits << " fanout_hits=" << s.fanout_hits
     << " dispatches=" << s.dispatches << " coalesced=" << s.coalesced
     << " queued=" << s.queued << " in_flight=" << s.in_flight
     << " tickets_retained=" << s.tickets_retained
     << " evicted_tickets=" << s.evicted_tickets
     << " instances=" << context_.service.instances().size();
  out.lines.push_back(os.str());
  if (context_.service.cache()) {
    const CacheStats c = context_.service.cache()->stats();
    std::ostringstream cs;
    cs << "cache entries=" << c.entries << " bytes=" << c.bytes
       << " hits=" << c.hits << " misses=" << c.misses
       << " insertions=" << c.insertions << " evictions=" << c.evictions;
    out.lines.push_back(cs.str());
  }
  // Per-solver latency table: one line per resolved spec that has solved
  // at least one request — `auto` traffic shows up under its concrete
  // picks, so this table is how an operator judges the policy's choices.
  for (const SolverLatency& l : context_.service.solver_stats()) {
    std::ostringstream ls;
    ls << "solver " << l.spec << " count=" << l.count
       << " mean_ms=" << l.mean_ms << " p90_ms=" << l.p90_ms;
    out.lines.push_back(ls.str());
  }
  // Per-engine line: what the engine IS (the full EngineDescriptor
  // summary) right next to what it is DOING (load and lifetime odometers).
  for (const EngineGroupEngineStats& e :
       context_.service.engine_group().stats()) {
    std::ostringstream es;
    es << "engine " << e.index << " descriptor=" << e.descriptor.summary()
       << (e.retired ? " retired" : "") << " load=" << e.load
       << " dispatches=" << e.dispatches
       << " streams_opened=" << e.device.streams_opened
       << " streams_retired=" << e.device.streams_retired
       << " launches=" << e.device.launches
       << " modeled_ms=" << e.device.modeled_ms
       << " native_ms=" << e.device.native_ms;
    out.lines.push_back(es.str());
  }
  out.stats = true;  // a transport appends its per-client lines here
}

void Session::handle(const proto::MetricsRequest&, Outcome& out) {
  // Live registry snapshot: the service's streamed counters/histograms
  // plus the point-in-time gauges published right now.
  context_.service.publish_metrics(obs::Registry::global());
  if (context_.service.cache()) {
    const CacheStats c = context_.service.cache()->stats();
    obs::Registry::global()
        .gauge("serve.cache_bytes")
        .set(static_cast<double>(c.bytes));
    obs::Registry::global()
        .gauge("serve.cache_entries")
        .set(static_cast<double>(c.entries));
  }
  out.lines.push_back(obs::Registry::global().snapshot_json());
}

void Session::handle(const proto::PolicyRequest&, Outcome& out) {
  // Live view of how `auto` is deciding: the calibrated model's coverage
  // plus every online (bucket, spec) estimate refined so far.
  policy::PolicyEngine& engine = policy::PolicyEngine::global();
  const std::vector<policy::PolicyEngine::OnlineEstimate> online =
      engine.online_snapshot();
  std::ostringstream hs;
  hs << "policy model_buckets=" << engine.model_snapshot().bucket_count()
     << " online_cells=" << online.size();
  out.lines.push_back(hs.str());
  for (const auto& est : online) {
    std::ostringstream os;
    os << "policy-online bucket=" << est.bucket << " spec=" << est.spec
       << " us_per_edge=" << est.us_per_edge << " samples=" << est.samples;
    out.lines.push_back(os.str());
  }
}

void Session::handle(const proto::TraceStartRequest& r, Outcome& out) {
  const std::lock_guard lock(context_.trace_mutex);
  context_.trace_path = r.path;
  context_.tracer.enable();
  context_.service.set_tracer(&context_.tracer);
  out.lines.push_back("tracing started (dump target " + r.path + ")");
}

void Session::handle(const proto::TraceDumpRequest&, Outcome& out) {
  const std::lock_guard lock(context_.trace_mutex);
  if (context_.trace_path.empty()) {
    error(out, ErrorCode::kState, "trace-dump before trace-start");
    return;
  }
  if (!context_.tracer.write_file(context_.trace_path)) {
    error(out, ErrorCode::kIo,
          "cannot write trace to '" + context_.trace_path + "'");
    return;
  }
  out.lines.push_back(
      "trace written to " + context_.trace_path + " (" +
      std::to_string(context_.tracer.events().size()) + " events, " +
      std::to_string(context_.tracer.dropped()) + " dropped)");
}

void Session::handle(const proto::SaveCacheRequest& r, Outcome& out) {
  if (!context_.service.cache()) {
    error(out, ErrorCode::kState, "service runs without a cache");
    return;
  }
  if (!context_.service.cache()->save_file(r.path)) {
    error(out, ErrorCode::kIo, "cannot write '" + r.path + "'");
    return;
  }
  out.lines.push_back("cache saved to " + r.path);
}

void Session::handle(const proto::LoadCacheRequest& r, Outcome& out) {
  if (!context_.service.cache()) {
    error(out, ErrorCode::kState, "service runs without a cache");
    return;
  }
  std::size_t n = 0;
  try {
    n = context_.service.cache()->load_file(r.path);
  } catch (const std::exception& e) {
    error(out, ErrorCode::kIo, e.what());
    return;
  }
  out.lines.push_back("cache loaded " + std::to_string(n) +
                      " entries from " + r.path);
}

void Session::handle(const proto::ShutdownRequest&, Outcome& out) {
  context_.service.shutdown();
  out.lines.emplace_back("ok shutdown");
  out.shutdown = true;
}

}  // namespace bpm::serve
