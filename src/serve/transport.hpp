#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/session.hpp"

namespace bpm::serve {

struct TransportOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back from `port()`.
  std::uint16_t port = 0;
  /// Connections beyond this are refused with `error code=unavailable`.
  std::size_t max_clients = 64;
  /// Command executor threads.  Blocking commands (`wait`, `drain`) hold
  /// an executor while they block, so size this at least as large as the
  /// number of clients expected to block concurrently; others' commands
  /// queue behind them but always make progress.  0 = 4.
  unsigned executors = 0;
  /// Auth token, per-client quota, and line budget for every connection.
  Session::Options session;
};

/// Lifetime counters of a transport (mirrors `ServiceStats` style).
struct TransportStats {
  std::uint64_t accepted = 0;  ///< connections admitted
  std::uint64_t refused = 0;   ///< connections over max_clients
  std::uint64_t closed = 0;    ///< connections torn down
  std::uint64_t lines = 0;     ///< protocol lines executed
  std::uint64_t errors = 0;    ///< `error ...` responses sent
  std::size_t open = 0;        ///< snapshot: currently connected
};

/// One connection's accounting, served under `stats` as a `client ...`
/// line and queryable in-process for benches/tests.
struct TransportClientStats {
  std::uint64_t id = 0;
  bool open = false;
  bool authed = false;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t quota_rejections = 0;
  std::uint64_t quota = 0;  ///< configured limit (0 = unlimited)
};

/// A poll(2)-based line-protocol socket server multiplexing N concurrent
/// clients onto one `MatchingService`.
///
/// One poll thread owns all I/O: it accepts connections, splits reads
/// into protocol lines (enforcing the per-connection line budget), and
/// flushes response bytes.  Commands execute on a small executor pool —
/// at most one in flight per connection, so each client sees strict FIFO
/// request/response order, while different clients' commands (including
/// blocking `wait`s) proceed concurrently.  Every response is produced by
/// a per-connection `Session`, so quotas, auth, and the never-crash
/// malformed-input guarantees are identical to the stdin driver.
///
/// A client's `shutdown` command drains the service, answers
/// `ok shutdown`, and unblocks `wait_shutdown()`; the owner then calls
/// `stop()`, which stops accepting, flushes pending responses (bounded
/// grace), closes every connection, and joins all threads.
///
/// ```
/// serve::SessionContext ctx(service);
/// serve::SocketTransport transport(ctx, {.port = 0, .max_clients = 16});
/// std::cout << "listening on " << transport.port() << "\n";
/// transport.wait_shutdown();   // until a client sends `shutdown`
/// transport.stop();
/// ```
class SocketTransport {
 public:
  /// Binds and starts serving immediately; throws `std::runtime_error`
  /// if the socket cannot be bound.
  explicit SocketTransport(SessionContext& context)
      : SocketTransport(context, TransportOptions()) {}
  SocketTransport(SessionContext& context, TransportOptions options);
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a client issues `shutdown` or `stop()` is called.
  void wait_shutdown();
  [[nodiscard]] bool shutdown_requested() const;

  /// Stops accepting, flushes pending responses (bounded grace), closes
  /// every connection, joins the poll and executor threads.  Idempotent.
  void stop();

  [[nodiscard]] TransportStats stats() const;
  [[nodiscard]] std::vector<TransportClientStats> client_stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::unique_ptr<Session> session;

    std::mutex m;  ///< guards everything below (lock AFTER conns_mutex_)
    std::string inbuf;
    std::deque<std::string> pending;  ///< parsed lines awaiting execution
    std::string outbuf;
    bool executing = false;  ///< an executor owns this conn right now
    bool eof = false;        ///< peer closed / read error; stop reading
    bool close_after_flush = false;
  };

  void poll_loop();
  void executor_loop();
  void handle_accept();
  void handle_read(const std::shared_ptr<Conn>& conn);
  void handle_write(const std::shared_ptr<Conn>& conn);
  /// Queues the conn for execution if it has work and no executor.
  void maybe_schedule(const std::shared_ptr<Conn>& conn);
  /// `client ...` lines + the final `transport ...` summary appended to
  /// every `stats` response served over this transport.
  [[nodiscard]] std::vector<std::string> stats_lines() const;
  void wake();

  SessionContext& context_;
  TransportOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;

  mutable std::mutex conns_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  TransportStats stats_;
  /// Accounting of already-closed connections folded into client_stats.
  std::vector<TransportClientStats> closed_clients_;

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Conn>> work_;
  bool stop_executors_ = false;

  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  bool stopped_ = false;

  std::thread poll_thread_;
  std::vector<std::thread> executors_;
};

/// Minimal blocking line-protocol client for benches and tests: connects
/// (with retry until `connect_timeout_ms`, so a just-forked server is not
/// a race), sends single lines, and reads newline-terminated responses
/// with a timeout.  Throws `std::runtime_error` on connect/send failure;
/// `recv_line` returns nullopt on EOF or timeout.
class LineClient {
 public:
  LineClient(const std::string& host, std::uint16_t port,
             int connect_timeout_ms = 5000);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void send_line(std::string_view line);
  /// Sends raw bytes without the newline (oversized-line tests).
  void send_raw(std::string_view bytes);
  [[nodiscard]] std::optional<std::string> recv_line(int timeout_ms = 30000);
  /// Reads lines until one starts with `prefix` (e.g. "transport " to
  /// consume a whole multi-line `stats` response); returns that line.
  [[nodiscard]] std::optional<std::string> recv_until(
      std::string_view prefix, int timeout_ms = 30000);
  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace bpm::serve
