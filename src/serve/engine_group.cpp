#include "serve/engine_group.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bpm::serve {

Routing parse_routing(std::string_view name) {
  if (name == "round-robin") return Routing::kRoundRobin;
  if (name == "least-loaded") return Routing::kLeastLoaded;
  if (name == "affinity") return Routing::kAffinity;
  if (name == "backend-fit") return Routing::kBackendFit;
  throw std::invalid_argument(
      "unknown routing policy '" + std::string(name) +
      "' (round-robin | least-loaded | affinity | backend-fit)");
}

std::string_view routing_name(Routing routing) {
  switch (routing) {
    case Routing::kRoundRobin:
      return "round-robin";
    case Routing::kLeastLoaded:
      return "least-loaded";
    case Routing::kAffinity:
      return "affinity";
    case Routing::kBackendFit:
      return "backend-fit";
  }
  return "?";
}

namespace {

std::shared_ptr<device::Engine> make_engine(device::EngineDescriptor d) {
  if (d.backend == device::Backend::kHost)
    return std::make_shared<device::HostParallelEngine>(d);
  return std::make_shared<device::Engine>(d);
}

}  // namespace

EngineGroup::EngineGroup(EngineGroupOptions options)
    : options_(std::move(options)) {
  if (!options_.descriptors.empty()) {
    engines_.reserve(options_.descriptors.size());
    for (const device::EngineDescriptor& d : options_.descriptors)
      engines_.push_back(make_engine(d));
  } else {
    const unsigned n = std::max(options_.engines, 1u);
    engines_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      engines_.push_back(
          make_engine({.backend = options_.backend,
                       .mode = options_.device_mode,
                       .threads = options_.device_threads}));
  }
  const auto n = engines_.size();
  retired_.assign(n, false);
  dispatches_.assign(n, 0);
  work_dispatched_.assign(n, 0.0);
}

unsigned EngineGroup::least_loaded_locked() const {
  // Minimise (load, lifetime dispatches, index); consider retired engines
  // only when nothing else is left.
  unsigned best = 0;
  bool found = false;
  double best_load = 0.0;
  for (int pass = 0; pass < 2 && !found; ++pass) {
    for (unsigned i = 0; i < engines_.size(); ++i) {
      if (pass == 0 && retired_[i]) continue;
      const double load = engines_[i]->load();
      if (!found || load < best_load ||
          (load == best_load && dispatches_[i] < dispatches_[best])) {
        best = i;
        best_load = load;
        found = true;
      }
    }
  }
  return best;
}

unsigned EngineGroup::backend_fit_locked(
    const DispatchProfile& profile) const {
  const bool heavy = profile.balanced_kernels ||
                     profile.degree_skew >= options_.fit_skew_threshold ||
                     profile.estimated_work >= options_.fit_huge_work;
  const bool tiny =
      !heavy && profile.estimated_work < options_.fit_tiny_work;
  // "i is a strictly better fit than j": shape preference first, then the
  // least-loaded tie-break so equal-fit engines still share the queue.
  const auto better = [&](unsigned i, unsigned j) {
    const device::EngineDescriptor& di = engines_[i]->descriptor();
    const device::EngineDescriptor& dj = engines_[j]->descriptor();
    if (tiny) {
      if (di.lanes != dj.lanes) return di.lanes < dj.lanes;
    } else if (heavy) {
      const bool host_i = di.backend == device::Backend::kHost;
      const bool host_j = dj.backend == device::Backend::kHost;
      if (host_i != host_j) return host_i;
      // Among equal backends the widest engine wins — more workers on a
      // host engine, more straggler-model lanes on a sim one.
      if (di.lanes != dj.lanes) return di.lanes > dj.lanes;
    }
    const double load_i = engines_[i]->load();
    const double load_j = engines_[j]->load();
    if (load_i != load_j) return load_i < load_j;
    if (dispatches_[i] != dispatches_[j])
      return dispatches_[i] < dispatches_[j];
    return i < j;
  };
  unsigned best = 0;
  bool found = false;
  for (int pass = 0; pass < 2 && !found; ++pass)
    for (unsigned i = 0; i < engines_.size(); ++i) {
      if (pass == 0 && retired_[i]) continue;
      if (!found || better(i, best)) best = i;
      found = true;
    }
  return best;
}

unsigned EngineGroup::pick_locked(const DispatchProfile& profile) {
  // Shard-local placement first: a sharded dispatch's coordinator belongs
  // with the engine that hosts shard 0's arena, whatever the policy says.
  if (profile.preferred_engine >= 0 &&
      static_cast<std::size_t>(profile.preferred_engine) < engines_.size() &&
      !retired_[static_cast<std::size_t>(profile.preferred_engine)])
    return static_cast<unsigned>(profile.preferred_engine);
  const std::uint64_t fingerprint = profile.fingerprint;
  switch (options_.routing) {
    case Routing::kRoundRobin: {
      // Next live engine at or after the cursor; with everything retired
      // the cursor position itself serves as the fallback.
      const auto n = static_cast<unsigned>(engines_.size());
      for (unsigned step = 0; step < n; ++step) {
        const unsigned i = (round_robin_next_ + step) % n;
        if (!retired_[i]) {
          round_robin_next_ = (i + 1) % n;
          return i;
        }
      }
      return round_robin_next_;
    }
    case Routing::kLeastLoaded:
      return least_loaded_locked();
    case Routing::kAffinity: {
      const auto it = affinity_.find(fingerprint);
      if (it != affinity_.end()) {
        // Sticky hit — necessarily a live engine: retire() erases every
        // mapping to the retired engine under this same mutex.  Refresh
        // recency and keep the warm placement.
        affinity_lru_.splice(affinity_lru_.begin(), affinity_lru_,
                             it->second);
        return it->second->second;
      }
      const unsigned idx = least_loaded_locked();
      affinity_lru_.emplace_front(fingerprint, idx);
      affinity_.emplace(fingerprint, affinity_lru_.begin());
      while (affinity_lru_.size() > options_.affinity_capacity) {
        affinity_.erase(affinity_lru_.back().first);
        affinity_lru_.pop_back();
      }
      return idx;
    }
    case Routing::kBackendFit:
      return backend_fit_locked(profile);
  }
  return 0;
}

EngineGroup::Lease EngineGroup::acquire(const DispatchProfile& profile) {
  const double work = std::max(profile.estimated_work, 1.0);
  const std::scoped_lock lock(mutex_);
  const unsigned idx = pick_locked(profile);
  ++dispatches_[idx];
  work_dispatched_[idx] += work;
  // Charge the gauge while still holding the group mutex so a concurrent
  // acquire sees this dispatch's load (lock order is always group →
  // engine; nothing takes them the other way around).
  engines_[idx]->add_load(work);
  return Lease(engines_[idx], idx, work);
}

EngineGroup::Lease EngineGroup::acquire(std::uint64_t fingerprint,
                                        double estimated_work) {
  return acquire(DispatchProfile{.fingerprint = fingerprint,
                                 .estimated_work = estimated_work});
}

std::vector<std::shared_ptr<device::Engine>> EngineGroup::live_engines()
    const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::shared_ptr<device::Engine>> out;
  out.reserve(engines_.size());
  for (std::size_t i = 0; i < engines_.size(); ++i)
    if (!retired_[i]) out.push_back(engines_[i]);
  if (out.empty()) out = engines_;
  return out;
}

void EngineGroup::retire(unsigned index) {
  const std::scoped_lock lock(mutex_);
  if (index >= engines_.size() || retired_[index]) return;
  retired_[index] = true;
  for (auto it = affinity_lru_.begin(); it != affinity_lru_.end();) {
    if (it->second == index) {
      affinity_.erase(it->first);
      it = affinity_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

bool EngineGroup::retired(unsigned index) const {
  const std::scoped_lock lock(mutex_);
  return index < retired_.size() && retired_[index];
}

std::vector<EngineGroupEngineStats> EngineGroup::stats() const {
  const std::scoped_lock lock(mutex_);
  std::vector<EngineGroupEngineStats> out(engines_.size());
  for (unsigned i = 0; i < engines_.size(); ++i) {
    out[i].index = i;
    out[i].retired = retired_[i];
    out[i].dispatches = dispatches_[i];
    out[i].work_dispatched = work_dispatched_[i];
    out[i].load = engines_[i]->load();
    out[i].device = engines_[i]->stats();
    out[i].descriptor = engines_[i]->descriptor();
  }
  return out;
}

}  // namespace bpm::serve
