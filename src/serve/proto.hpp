#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bpm::serve {
struct Response;  // serve/service.hpp
}

namespace bpm::serve::proto {

/// The serving protocol's request schema: every line a client can send is
/// decoded field-by-field into one of the typed request structs below, or
/// rejected with a `ProtoError` naming what was wrong.  Nothing in this
/// layer ever throws on malformed input — the decode helpers are
/// `std::from_chars` based, range-checked, and full-token-matched, so a
/// hostile `submit foo g-pr prio=abc` (or an out-of-range ticket id, or a
/// 2 GB `gen` dimension) becomes an `error ...` response line instead of
/// an uncaught `std::invalid_argument` out of `std::stoi`.

/// Why a line failed to decode (or a decoded request was refused).
/// Serialized into the protocol as kebab-case codes by
/// `error_code_name`.
enum class ErrorCode {
  kBadCommand,       ///< unknown command word
  kMissingArgument,  ///< too few tokens for the command's schema
  kExtraArgument,    ///< trailing tokens the schema does not define
  kBadArgument,      ///< a field failed to decode (non-numeric, bad kind)
  kOutOfRange,       ///< decoded fine but outside the field's bounds
  kLineTooLong,      ///< exceeded Limits::max_line_bytes
  kUnauthorized,     ///< auth token required and not presented / wrong
  kQuotaExceeded,    ///< per-client request quota exhausted
  kUnknownInstance,  ///< submit names an instance the store never saw
  kUnknownTicket,    ///< poll/wait names a ticket never issued
  kState,            ///< command invalid in this state (trace-dump first)
  kIo,               ///< file system / OS failure serving the command
  kUnavailable,      ///< server refusing work (full, shutting down)
  kInternal,         ///< anything unexpected; the message says what
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code);

/// A refused line: machine-readable code plus a human-usable message that
/// names the offending field and value.
struct ProtoError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Decode bounds the schema enforces at the protocol boundary, before any
/// generator or allocator sees the values.  The caps are generous enough
/// for the massive suite but reject absurd requests (a 10^18 degree, a
/// negative dimension) with a usable message instead of an overflow, a
/// bad_alloc, or undefined float→int casts deep in the generators.
struct Limits {
  std::size_t max_line_bytes = 64 * 1024;
  std::size_t max_tokens = 64;
  /// Largest rows/cols a `gen` request may ask for.
  graph::index_t max_dimension = graph::index_t{1} << 28;
  /// Largest edge count a single `gen` request may imply.
  graph::offset_t max_edges = graph::offset_t{1} << 33;
  /// Largest per-vertex average/extra degree a `gen` request may ask for.
  double max_degree = 1e6;
};

// --- Typed requests ---------------------------------------------------------

struct AuthRequest {
  std::string token;
};

struct LoadRequest {
  std::string name;
  std::string path;
};

// One struct per generator kind, fields already range-checked.
struct GenUniform {
  graph::index_t rows = 0, cols = 0;
  graph::offset_t edges = 0;
  std::uint64_t seed = 0;
};
struct GenPlanted {
  graph::index_t n = 0;
  double extra_degree = 0.0;
  std::uint64_t seed = 0;
};
struct GenChungLu {
  graph::index_t rows = 0, cols = 0;
  double avg_degree = 0.0, gamma = 0.0;
  std::uint64_t seed = 0;
};
struct GenInstance {
  std::string paper_name;
  double scale = 0.0;
  std::uint64_t seed = 0;
};
struct GenHuge {
  graph::index_t rows = 0, cols = 0;
  double avg_degree = 0.0, hub_fraction = 0.0;
  graph::index_t hub_every = 0;
  std::uint64_t seed = 0;
};
using GenSpec =
    std::variant<GenUniform, GenPlanted, GenChungLu, GenInstance, GenHuge>;

struct GenRequest {
  std::string name;
  GenSpec spec;
};

struct SubmitRequest {
  std::string instance;
  std::string spec;  ///< SolverSpec grammar; validated by the registry
  int priority = 0;
  double deadline_ms = 0.0;
};

struct PollRequest {
  std::uint64_t ticket = 0;
};
struct WaitRequest {
  std::uint64_t ticket = 0;
};
struct DrainRequest {};
struct StatsRequest {};
struct MetricsRequest {};
/// Dumps the live policy engine state: cost-model bucket count plus one
/// line per online (bucket, spec) estimate — how `auto` is currently
/// deciding.
struct PolicyRequest {};
struct TraceStartRequest {
  std::string path;
};
struct TraceDumpRequest {};
struct SaveCacheRequest {
  std::string path;
};
struct LoadCacheRequest {
  std::string path;
};
struct ShutdownRequest {};

using Command =
    std::variant<AuthRequest, LoadRequest, GenRequest, SubmitRequest,
                 PollRequest, WaitRequest, DrainRequest, StatsRequest,
                 MetricsRequest, PolicyRequest, TraceStartRequest,
                 TraceDumpRequest, SaveCacheRequest, LoadCacheRequest,
                 ShutdownRequest>;

/// What one protocol line parsed into: exactly one of `command` / `error`
/// is set, or neither for a blank / comment line (`ignorable`).
struct Parsed {
  std::optional<Command> command;
  std::optional<ProtoError> error;
  [[nodiscard]] bool ignorable() const { return !command && !error; }
};

/// Decodes one protocol line against the schema.  Never throws; a line of
/// any content — truncated, non-numeric, overflowing, oversized — comes
/// back as a `ProtoError` with a message naming the field.
[[nodiscard]] Parsed parse_command(std::string_view line,
                                   const Limits& limits = {});

// --- Checked numeric decode --------------------------------------------------
// Full-token `std::from_chars` wrappers: empty tokens, trailing junk
// ("12x"), overflow, and non-finite doubles all yield nullopt instead of
// throwing.  These are the only way numbers enter the serving protocol.

[[nodiscard]] std::optional<std::int64_t> decode_i64(std::string_view token);
[[nodiscard]] std::optional<std::uint64_t> decode_u64(std::string_view token);
[[nodiscard]] std::optional<double> decode_f64(std::string_view token);

/// Field-by-field decoder over a tokenized line.  Accessors consume the
/// next token, validate it against the field's type and bounds, and latch
/// the FIRST failure — subsequent accessors return defaults so a command
/// parser can decode its whole schema unconditionally and check `ok()`
/// once at the end (the reflection-style Parser idiom, minus the
/// reflection).
class Decoder {
 public:
  Decoder(const std::vector<std::string>& tokens, std::size_t begin)
      : tokens_(tokens), pos_(begin) {}

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  [[nodiscard]] ProtoError take_error() {
    return error_ ? std::move(*error_)
                  : ProtoError{ErrorCode::kInternal, "no error"};
  }
  [[nodiscard]] std::size_t remaining() const {
    return pos_ < tokens_.size() ? tokens_.size() - pos_ : 0;
  }

  [[nodiscard]] std::string str(const char* field);
  [[nodiscard]] std::int64_t i64(const char* field, std::int64_t min,
                                 std::int64_t max);
  [[nodiscard]] std::uint64_t u64(const char* field);
  [[nodiscard]] double f64(const char* field, double min, double max);
  [[nodiscard]] graph::index_t index(const char* field, graph::index_t min,
                                     graph::index_t max);

  /// Decodes an already-extracted token (a `key=value` payload) as the
  /// given field instead of consuming from the token stream.
  [[nodiscard]] std::int64_t i64_token(std::string_view token,
                                       const char* field, std::int64_t min,
                                       std::int64_t max);
  [[nodiscard]] double f64_token(std::string_view token, const char* field,
                                 double min, double max);

  /// Errors with `kExtraArgument` unless every token was consumed.
  void finish(const char* usage);
  /// Records an error directly (kind dispatch, cross-field checks).
  void fail(ErrorCode code, std::string message);

 private:
  const std::vector<std::string>& tokens_;
  std::size_t pos_ = 0;
  std::optional<ProtoError> error_;
};

// --- Serialization -----------------------------------------------------------

/// `value` with `\` `"` and newlines escaped, wrapped in double quotes.
[[nodiscard]] std::string quoted(std::string_view value);

/// `error code=<kebab-name> msg="<message>"` — the one shape every
/// refused line answers with, in both stdin and socket transports.
[[nodiscard]] std::string error_line(const ProtoError& error);

/// The `result ticket=... instance=... solver=... ok=...` response line
/// (exactly the historical bpm_serve format, so scripts keep parsing).
[[nodiscard]] std::string response_line(const Response& response);

}  // namespace bpm::serve::proto
