#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"

namespace bpm::serve {

struct CacheOptions {
  /// Upper bound on the total estimated bytes of cached entries.  The
  /// budget is split evenly over the shards; inserting always succeeds —
  /// least-recently-used entries of the target shard are evicted until the
  /// shard fits again (a single oversized entry is kept alone).
  std::size_t byte_budget = std::size_t{64} << 20;
  /// Number of independently locked shards (rounded up to at least 1).
  /// Concurrent hits on different shards never contend on one mutex.
  unsigned shards = 8;
};

/// Aggregate counters over all shards.  `hits`/`misses` count `get` calls,
/// `insertions`/`evictions` count entries entering and leaving;
/// `entries`/`bytes` are the current footprint.
struct CacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Process-lifetime result cache for matching runs: a sharded, byte-budgeted
/// LRU keyed by (instance fingerprint, canonical solver spec) storing the
/// verified `JobOutcome` of the run.  Producers (`MatchingPipeline`,
/// `serve::MatchingService`) only publish results that passed
/// verification, so every entry — and every snapshot — is trustworthy to
/// any consumer regardless of its own verify setting.  This is `MatchingPipeline`'s result
/// cache factored out of the batch: one `ResultCache` can be shared across
/// any number of pipelines, batches, and `serve::MatchingService` requests
/// for the lifetime of a serving process, and snapshotted to disk so a
/// restarted service warms from where the previous one left off.
///
/// Thread safety: all members are safe to call concurrently; each shard has
/// its own mutex, chosen by the key hash.
///
/// ```
/// auto cache = std::make_shared<serve::ResultCache>(
///     serve::CacheOptions{.byte_budget = 32 << 20});
/// bpm::MatchingPipeline pipe({.shared_cache = cache});  // batches now share
/// cache->save_file("bpm.cache");                        // ...and persist
/// ```
class ResultCache {
 public:
  explicit ResultCache(CacheOptions options = {});

  /// Looks up (fingerprint, solver) and refreshes its recency.  Counts a
  /// hit or a miss.
  [[nodiscard]] std::optional<JobOutcome> get(std::uint64_t fingerprint,
                                              std::string_view solver);

  /// Inserts or overwrites the entry, making it most-recently used, then
  /// evicts LRU entries of the shard until it fits its byte budget again.
  void put(std::uint64_t fingerprint, std::string_view solver,
           const JobOutcome& outcome);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t byte_budget() const { return options_.byte_budget; }
  [[nodiscard]] unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Drops every entry (counters for hits/misses/... are kept).
  void clear();

  /// Writes every entry as a versioned, self-delimiting snapshot.  Entries
  /// are emitted shard by shard, least-recently-used first, so loading a
  /// snapshot into an empty cache with the same options reproduces both
  /// the contents and the eviction order — save → load → save is
  /// byte-identical.
  void save(std::ostream& os) const;
  /// `save` to a file; returns false (and leaves no partial file behind
  /// the caller cares about) if the file cannot be written.
  bool save_file(const std::string& path) const;

  /// Merges a snapshot into this cache via `put` (budget enforced as
  /// usual).  Returns the number of entries read.  Throws
  /// `std::runtime_error` on a malformed or version-mismatched snapshot.
  std::size_t load(std::istream& is);
  /// `load` from a file; returns 0 if the file does not exist or cannot be
  /// read (a cold start is not an error for a warming service).
  std::size_t load_file(const std::string& path);

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string solver;
    JobOutcome outcome;
    std::size_t bytes = 0;
  };

  /// Transparent hashing so the hot-path `get`/`put` look up by
  /// string_view without materialising a std::string under the shard lock.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using SolverIndex =
      std::unordered_map<std::string, std::list<Entry>::iterator, StringHash,
                         std::equal_to<>>;

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, SolverIndex>
        index;  ///< fingerprint -> solver -> LRU position
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t fingerprint,
                                 std::string_view solver);
  [[nodiscard]] static std::size_t entry_bytes(std::string_view solver,
                                               const JobOutcome& outcome);
  void put_locked(Shard& shard, std::uint64_t fingerprint,
                  std::string_view solver, const JobOutcome& outcome);

  CacheOptions options_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bpm::serve
