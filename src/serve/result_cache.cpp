#include "serve/result_cache.hpp"

#include <fstream>
#include <functional>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bpm::serve {
namespace {

constexpr std::string_view kMagic = "bpm-result-cache";
constexpr int kVersion = 1;

/// Fixed per-entry overhead charged on top of the variable-length strings:
/// the Entry node, the index buckets, and the list bookkeeping.  An
/// estimate — the budget bounds footprint, it does not meter the allocator.
constexpr std::size_t kEntryOverhead = 128;

std::uint64_t key_hash(std::uint64_t fingerprint, std::string_view solver) {
  // Splitmix-style finalizer over the fingerprint, mixed with the solver
  // string hash, so consecutive fingerprints spread over the shards.
  std::uint64_t h = fingerprint + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= std::hash<std::string_view>{}(solver);
  return h ^ (h >> 31);
}

}  // namespace

ResultCache::ResultCache(CacheOptions options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (unsigned s = 0; s < options_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  shard_budget_ = options_.byte_budget / shards_.size();
  if (shard_budget_ == 0) shard_budget_ = 1;
}

ResultCache::Shard& ResultCache::shard_for(std::uint64_t fingerprint,
                                           std::string_view solver) {
  return *shards_[key_hash(fingerprint, solver) % shards_.size()];
}

std::size_t ResultCache::entry_bytes(std::string_view solver,
                                     const JobOutcome& outcome) {
  return kEntryOverhead + solver.size() + outcome.stats.detail.size() +
         outcome.error.size();
}

std::optional<JobOutcome> ResultCache::get(std::uint64_t fingerprint,
                                           std::string_view solver) {
  Shard& shard = shard_for(fingerprint, solver);
  const std::scoped_lock lock(shard.mutex);
  const auto by_fp = shard.index.find(fingerprint);
  if (by_fp != shard.index.end()) {
    const auto it = by_fp->second.find(solver);
    if (it != by_fp->second.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->outcome;
    }
  }
  ++shard.misses;
  return std::nullopt;
}

void ResultCache::put_locked(Shard& shard, std::uint64_t fingerprint,
                             std::string_view solver,
                             const JobOutcome& outcome) {
  const std::size_t bytes = entry_bytes(solver, outcome);
  auto& by_solver = shard.index[fingerprint];
  if (const auto it = by_solver.find(solver); it != by_solver.end()) {
    // Overwrite in place and refresh recency.
    shard.bytes -= it->second->bytes;
    it->second->outcome = outcome;
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(
        Entry{fingerprint, std::string(solver), outcome, bytes});
    by_solver.emplace(std::string(solver), shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
  }
  // Evict least-recently-used entries until the shard fits its slice of
  // the budget; the entry just touched is at the front and always kept,
  // so a single oversized result still caches (alone).
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    auto vfp = shard.index.find(victim.fingerprint);
    vfp->second.erase(victim.solver);
    if (vfp->second.empty()) shard.index.erase(vfp);
    shard.bytes -= victim.bytes;
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::put(std::uint64_t fingerprint, std::string_view solver,
                      const JobOutcome& outcome) {
  Shard& shard = shard_for(fingerprint, solver);
  const std::scoped_lock lock(shard.mutex);
  put_locked(shard, fingerprint, solver, outcome);
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
  }
  return out;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

void ResultCache::save(std::ostream& os) const {
  // One pass: count and serialize each shard under its lock, emit the
  // header afterwards — so the entry count always matches the records
  // even while other threads keep inserting/evicting concurrently (the
  // snapshot is some consistent-per-shard interleaving).
  std::size_t entries = 0;
  std::ostringstream records;
  records << std::setprecision(17);  // doubles round-trip exactly
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    entries += shard->lru.size();
    // LRU-first, so replaying the records through `put` reproduces the
    // shard's recency order (the last record re-put becomes the MRU).
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      const JobOutcome& o = it->outcome;
      records << it->fingerprint << ' ' << (o.ok ? 1 : 0) << ' '
              << o.stats.cardinality << ' ' << o.stats.wall_ms << ' '
              << o.stats.modeled_ms << ' ' << o.stats.device_launches << ' '
              << o.stats.iterations << ' ' << it->solver.size() << ' '
              << o.stats.detail.size() << ' ' << o.error.size() << '\n'
              << it->solver << o.stats.detail << o.error << '\n';
    }
  }
  os << kMagic << ' ' << kVersion << ' ' << entries << '\n' << records.str();
}

bool ResultCache::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  save(os);
  return static_cast<bool>(os);
}

std::size_t ResultCache::load(std::istream& is) {
  std::string magic;
  int version = -1;
  std::size_t entries = 0;
  if (!(is >> magic >> version >> entries) || magic != kMagic)
    throw std::runtime_error("not a bpm result-cache snapshot");
  if (version != kVersion)
    throw std::runtime_error("unsupported result-cache snapshot version " +
                             std::to_string(version));
  for (std::size_t n = 0; n < entries; ++n) {
    std::uint64_t fingerprint = 0;
    int ok = 0;
    std::size_t solver_len = 0, detail_len = 0, error_len = 0;
    JobOutcome o;
    if (!(is >> fingerprint >> ok >> o.stats.cardinality >> o.stats.wall_ms >>
          o.stats.modeled_ms >> o.stats.device_launches >>
          o.stats.iterations >> solver_len >> detail_len >> error_len))
      throw std::runtime_error("truncated result-cache snapshot (entry " +
                               std::to_string(n) + ")");
    o.ok = ok != 0;
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    std::string payload(solver_len + detail_len + error_len, '\0');
    if (!is.read(payload.data(),
                 static_cast<std::streamsize>(payload.size())) ||
        is.get() != '\n')
      throw std::runtime_error("truncated result-cache snapshot (entry " +
                               std::to_string(n) + ")");
    const std::string solver = payload.substr(0, solver_len);
    o.stats.detail = payload.substr(solver_len, detail_len);
    o.error = payload.substr(solver_len + detail_len, error_len);
    put(fingerprint, solver, o);
  }
  return entries;
}

std::size_t ResultCache::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  return load(is);
}

}  // namespace bpm::serve
