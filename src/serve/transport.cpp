#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace bpm::serve {

namespace {

constexpr int kPollIntervalMs = 100;
/// How long `stop()` keeps flushing pending responses before closing.
constexpr auto kStopGrace = std::chrono::milliseconds(500);
/// Past this, connections are torn down even with an executor blocked on
/// them (the executor finishes against the still-alive Conn object).
constexpr auto kStopForce = std::chrono::milliseconds(3000);

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("transport: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

SocketTransport::SocketTransport(SessionContext& context,
                                 TransportOptions options)
    : context_(context), options_(std::move(options)) {
  if (options_.executors == 0) options_.executors = 4;

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) throw_errno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  const auto cleanup = [&] {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
  };
  if (listen_fd_ < 0) {
    cleanup();
    throw_errno("socket");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    cleanup();
    throw std::runtime_error("transport: bad bind address '" +
                             options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    cleanup();
    throw_errno("bind/listen on " + options_.host + ":" +
                std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  poll_thread_ = std::thread([this] { poll_loop(); });
  executors_.reserve(options_.executors);
  for (unsigned e = 0; e < options_.executors; ++e)
    executors_.emplace_back([this] { executor_loop(); });
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::wake() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void SocketTransport::wait_shutdown() {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait(lock, [&] { return shutdown_requested_ || stopping_; });
}

bool SocketTransport::shutdown_requested() const {
  const std::lock_guard lock(state_mutex_);
  return shutdown_requested_;
}

void SocketTransport::stop() {
  {
    std::unique_lock lock(state_mutex_);
    if (stopping_) {
      // A concurrent or repeated stop: wait for the first one to finish.
      state_cv_.wait(lock, [&] { return stopped_; });
      return;
    }
    stopping_ = true;
    state_cv_.notify_all();
  }
  wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  {
    const std::lock_guard lock(work_mutex_);
    stop_executors_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : executors_)
    if (t.joinable()) t.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  {
    const std::lock_guard lock(state_mutex_);
    stopped_ = true;
    state_cv_.notify_all();
  }
}

TransportStats SocketTransport::stats() const {
  const std::lock_guard lock(conns_mutex_);
  TransportStats s = stats_;
  s.open = conns_.size();
  for (const auto& [id, c] : conns_) s.errors += c->session->errors();
  for (const TransportClientStats& c : closed_clients_) s.errors += c.errors;
  return s;
}

std::vector<TransportClientStats> SocketTransport::client_stats() const {
  const std::lock_guard lock(conns_mutex_);
  std::vector<TransportClientStats> out = closed_clients_;
  for (const auto& [id, c] : conns_)
    out.push_back({.id = c->id,
                   .open = true,
                   .authed = c->session->authed(),
                   .requests = c->session->requests(),
                   .errors = c->session->errors(),
                   .quota_rejections = c->session->quota_rejections(),
                   .quota = options_.session.quota});
  return out;
}

std::vector<std::string> SocketTransport::stats_lines() const {
  std::vector<std::string> out;
  const std::vector<TransportClientStats> clients = client_stats();
  for (const TransportClientStats& c : clients) {
    std::ostringstream os;
    os << "client id=" << c.id << " open=" << (c.open ? 1 : 0)
       << " authed=" << (c.authed ? 1 : 0) << " requests=" << c.requests
       << " quota=" << c.quota << " errors=" << c.errors
       << " quota_rejected=" << c.quota_rejections;
    out.push_back(os.str());
  }
  const TransportStats s = stats();
  std::ostringstream os;
  // Deliberately the LAST line of a transport `stats` response: clients
  // reading a multi-line stats reply consume until this prefix.
  os << "transport open=" << s.open << " accepted=" << s.accepted
     << " refused=" << s.refused << " closed=" << s.closed
     << " lines=" << s.lines << " errors=" << s.errors;
  out.push_back(os.str());
  return out;
}

void SocketTransport::handle_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again next poll
    set_nonblocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::lock_guard lock(conns_mutex_);
    if (conns_.size() >= options_.max_clients) {
      const std::string refusal =
          proto::error_line({proto::ErrorCode::kUnavailable,
                             "server full (" +
                                 std::to_string(options_.max_clients) +
                                 " clients)"}) +
          "\n";
      [[maybe_unused]] const ssize_t n =
          ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      ::close(fd);
      ++stats_.refused;
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->session = std::make_unique<Session>(context_, options_.session);
    conns_.emplace(conn->id, std::move(conn));
    ++stats_.accepted;
    obs::Registry::global().counter("serve.transport.accepted").inc();
    obs::Registry::global()
        .gauge("serve.transport.open_connections")
        .set(static_cast<double>(conns_.size()));
  }
}

void SocketTransport::handle_read(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  std::string received;
  bool eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      received.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      eof = true;
    }
    break;
  }

  bool overflowed = false;
  {
    const std::lock_guard lock(conn->m);
    conn->inbuf += received;
    if (eof) conn->eof = true;
    std::size_t start = 0;
    for (std::size_t nl; (nl = conn->inbuf.find('\n', start)) !=
                         std::string::npos;
         start = nl + 1) {
      std::string line = conn->inbuf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      conn->pending.push_back(std::move(line));
    }
    conn->inbuf.erase(0, start);
    if (conn->inbuf.size() > options_.session.limits.max_line_bytes) {
      // An unterminated line past the budget: the stream's framing is
      // gone — answer once, drop the blob, end the connection.
      conn->outbuf +=
          proto::error_line(
              {proto::ErrorCode::kLineTooLong,
               "unterminated line past the " +
                   std::to_string(options_.session.limits.max_line_bytes) +
                   "-byte budget"}) +
          "\n";
      conn->inbuf.clear();
      conn->close_after_flush = true;
      overflowed = true;
    }
  }
  if (overflowed) {
    // Counted outside conn->m: the lock order is conns_mutex_ -> conn->m,
    // never the reverse.
    obs::Registry::global().counter("serve.transport.errors").inc();
    const std::lock_guard lock(conns_mutex_);
    ++stats_.errors;
  }
  maybe_schedule(conn);
}

void SocketTransport::handle_write(const std::shared_ptr<Conn>& conn) {
  const std::lock_guard lock(conn->m);
  while (!conn->outbuf.empty()) {
    const ssize_t n = ::send(conn->fd, conn->outbuf.data(),
                             conn->outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) conn->eof = true;
    break;
  }
}

void SocketTransport::maybe_schedule(const std::shared_ptr<Conn>& conn) {
  bool schedule = false;
  {
    const std::lock_guard lock(conn->m);
    if (!conn->executing && !conn->pending.empty() &&
        !conn->close_after_flush) {
      conn->executing = true;
      schedule = true;
    }
  }
  if (schedule) {
    const std::lock_guard lock(work_mutex_);
    work_.push_back(conn);
    work_cv_.notify_one();
  }
}

void SocketTransport::poll_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  auto stop_seen = std::chrono::steady_clock::time_point::max();

  for (;;) {
    bool stopping;
    {
      const std::lock_guard lock(state_mutex_);
      stopping = stopping_;
    }
    const auto now = std::chrono::steady_clock::now();
    if (stopping && stop_seen == std::chrono::steady_clock::time_point::max())
      stop_seen = now;

    fds.clear();
    polled.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    bool listening = false;
    {
      const std::lock_guard lock(conns_mutex_);
      if (!stopping && conns_.size() <= options_.max_clients) {
        // Keep polling the listener at the cap too, so over-limit
        // connections are refused promptly instead of queueing.
        fds.push_back({listen_fd_, POLLIN, 0});
        listening = true;
      }
      for (const auto& [id, c] : conns_) {
        short events = 0;
        {
          const std::lock_guard cl(c->m);
          if (!c->eof && !c->close_after_flush && !stopping) events |= POLLIN;
          if (!c->outbuf.empty()) events |= POLLOUT;
        }
        fds.push_back({c->fd, events, 0});
        polled.push_back(c);
      }
    }

    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollIntervalMs);

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
    }
    std::size_t base = 1;
    if (listening) {
      if (fds[1].revents & POLLIN) handle_accept();
      base = 2;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) handle_read(polled[i]);
      if (revents & POLLOUT) handle_write(polled[i]);
    }

    // Teardown sweep.  A connection leaves once no executor owns it and
    // it has nothing left to say; a stop() flushes within the grace
    // window, then force-closes (the Conn object itself stays alive for
    // any executor still blocked on it).
    {
      const std::lock_guard lock(conns_mutex_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::shared_ptr<Conn>& c = it->second;
        bool remove;
        bool force = stopping && now - stop_seen > kStopForce;
        {
          const std::lock_guard cl(c->m);
          const bool idle = !c->executing && c->pending.empty();
          const bool flushed = c->outbuf.empty();
          remove = force ||
                   (idle && ((c->eof) || (c->close_after_flush && flushed) ||
                             (stopping &&
                              (flushed || now - stop_seen > kStopGrace))));
        }
        if (!remove) {
          ++it;
          continue;
        }
        closed_clients_.push_back(
            {.id = c->id,
             .open = false,
             .authed = c->session->authed(),
             .requests = c->session->requests(),
             .errors = c->session->errors(),
             .quota_rejections = c->session->quota_rejections(),
             .quota = options_.session.quota});
        ::shutdown(c->fd, SHUT_RDWR);
        ::close(c->fd);
        c->fd = -1;
        ++stats_.closed;
        it = conns_.erase(it);
      }
      obs::Registry::global()
          .gauge("serve.transport.open_connections")
          .set(static_cast<double>(conns_.size()));
      if (stopping && conns_.empty()) return;
    }
  }
}

void SocketTransport::executor_loop() {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_executors_ || !work_.empty(); });
      if (work_.empty()) return;
      conn = std::move(work_.front());
      work_.pop_front();
    }

    std::string line;
    bool have = false;
    {
      const std::lock_guard lock(conn->m);
      if (!conn->pending.empty()) {
        line = std::move(conn->pending.front());
        conn->pending.pop_front();
        have = true;
      }
    }

    Session::Outcome outcome;
    if (have) outcome = conn->session->execute(line);
    // Collected BEFORE taking conn->m: stats_lines locks conns_mutex_
    // then each conn's mutex, and that order must hold everywhere.
    std::vector<std::string> extra;
    if (outcome.stats) extra = stats_lines();

    std::uint64_t new_errors = 0;
    for (const std::string& l : outcome.lines)
      if (l.starts_with("error ")) ++new_errors;

    bool more = false;
    {
      const std::lock_guard lock(conn->m);
      for (const std::string& l : outcome.lines) {
        conn->outbuf += l;
        conn->outbuf += '\n';
      }
      for (const std::string& l : extra) {
        conn->outbuf += l;
        conn->outbuf += '\n';
      }
      if (outcome.close) conn->close_after_flush = true;
      if (!conn->pending.empty() && !conn->close_after_flush)
        more = true;
      else
        conn->executing = false;
    }
    if (have) {
      const std::lock_guard lock(conns_mutex_);
      ++stats_.lines;
    }
    if (have) obs::Registry::global().counter("serve.transport.lines").inc();
    if (new_errors > 0)
      obs::Registry::global()
          .counter("serve.transport.errors")
          .add(new_errors);
    if (outcome.shutdown) {
      const std::lock_guard lock(state_mutex_);
      shutdown_requested_ = true;
      state_cv_.notify_all();
    }
    if (more) {
      const std::lock_guard lock(work_mutex_);
      work_.push_back(conn);
      work_cv_.notify_one();
    }
    wake();
  }
}

// --- LineClient --------------------------------------------------------------

LineClient::LineClient(const std::string& host, std::uint16_t port,
                       int connect_timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("line client: bad address '" + host + "'");
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return;
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("line client: cannot connect to " + host +
                               ":" + std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

LineClient::~LineClient() { close(); }

void LineClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void LineClient::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("line client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void LineClient::send_line(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  send_raw(framed);
}

std::optional<std::string> LineClient::recv_line(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return std::nullopt;
    pollfd p{fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, static_cast<int>(left));
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return std::nullopt;  // timeout
    }
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;  // EOF or error
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> LineClient::recv_until(std::string_view prefix,
                                                  int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return std::nullopt;
    std::optional<std::string> line = recv_line(static_cast<int>(left));
    if (!line) return std::nullopt;
    if (line->starts_with(prefix)) return line;
  }
}

}  // namespace bpm::serve
