#include "serve/proto.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "serve/service.hpp"

namespace bpm::serve::proto {

namespace {

/// Implied edge-count sanity check: kinds whose size is (degree ×
/// dimension) must fit the limits before any generator allocates.
void check_implied_edges(Decoder& d, double edges, const Limits& limits) {
  if (!d.ok()) return;
  if (!(edges <= static_cast<double>(limits.max_edges)))
    d.fail(ErrorCode::kOutOfRange,
           "request implies ~" + std::to_string(edges) + " edges, cap is " +
               std::to_string(limits.max_edges));
}

GenSpec decode_gen_spec(Decoder& d, const std::string& kind,
                        const Limits& limits) {
  const graph::index_t dim_max = limits.max_dimension;
  if (kind == "uniform") {
    GenUniform g;
    g.rows = d.index("rows", 1, dim_max);
    g.cols = d.index("cols", 1, dim_max);
    g.edges = d.i64("edges", 0, limits.max_edges);
    g.seed = d.u64("seed");
    d.finish("gen <name> uniform <rows> <cols> <edges> <seed>");
    return g;
  }
  if (kind == "planted") {
    GenPlanted g;
    g.n = d.index("n", 1, dim_max);
    g.extra_degree = d.f64("extra_degree", 0.0, limits.max_degree);
    g.seed = d.u64("seed");
    d.finish("gen <name> planted <n> <extra_degree> <seed>");
    check_implied_edges(
        d, static_cast<double>(g.n) * (1.0 + g.extra_degree), limits);
    return g;
  }
  if (kind == "chung-lu") {
    GenChungLu g;
    g.rows = d.index("rows", 1, dim_max);
    g.cols = d.index("cols", 1, dim_max);
    g.avg_degree = d.f64("avg_degree", 0.0, limits.max_degree);
    // The generator needs gamma > 2 for a finite mean; enforce it here so
    // the client reads a bound, not a deep generator message.
    g.gamma = d.f64("gamma", 2.0 + 1e-9, 64.0);
    g.seed = d.u64("seed");
    d.finish("gen <name> chung-lu <rows> <cols> <avg_degree> <gamma> <seed>");
    check_implied_edges(d, static_cast<double>(g.rows) * g.avg_degree,
                        limits);
    return g;
  }
  if (kind == "instance") {
    GenInstance g;
    g.paper_name = d.str("paper-name");
    g.scale = d.f64("scale", 1e-9, 1e4);
    g.seed = d.u64("seed");
    d.finish("gen <name> instance <paper-name> <scale> <seed>");
    return g;
  }
  if (kind == "huge") {
    GenHuge g;
    g.rows = d.index("rows", 1, dim_max);
    g.cols = d.index("cols", 1, dim_max);
    g.avg_degree = d.f64("avg_degree", 0.0, limits.max_degree);
    g.hub_fraction = d.f64("hub_fraction", 0.0, 1.0);
    g.hub_every = d.index("hub_every", 0, dim_max);
    g.seed = d.u64("seed");
    d.finish(
        "gen <name> huge <rows> <cols> <avg_degree> <hub_fraction> "
        "<hub_every> <seed>");
    check_implied_edges(
        d,
        static_cast<double>(g.cols) * g.avg_degree +
            (g.hub_every > 0 ? (static_cast<double>(g.cols) /
                                static_cast<double>(g.hub_every)) *
                                   g.hub_fraction *
                                   static_cast<double>(g.rows)
                             : 0.0),
        limits);
    return g;
  }
  d.fail(ErrorCode::kBadArgument,
         "unknown generator kind '" + kind +
             "' (uniform | planted | chung-lu | instance | huge)");
  return GenUniform{};
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadCommand: return "bad-command";
    case ErrorCode::kMissingArgument: return "missing-argument";
    case ErrorCode::kExtraArgument: return "extra-argument";
    case ErrorCode::kBadArgument: return "bad-argument";
    case ErrorCode::kOutOfRange: return "out-of-range";
    case ErrorCode::kLineTooLong: return "line-too-long";
    case ErrorCode::kUnauthorized: return "unauthorized";
    case ErrorCode::kQuotaExceeded: return "quota-exceeded";
    case ErrorCode::kUnknownInstance: return "unknown-instance";
    case ErrorCode::kUnknownTicket: return "unknown-ticket";
    case ErrorCode::kState: return "bad-state";
    case ErrorCode::kIo: return "io-error";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

// --- Checked numeric decode --------------------------------------------------

std::optional<std::int64_t> decode_i64(std::string_view token) {
  std::int64_t value = 0;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> decode_u64(std::string_view token) {
  std::uint64_t value = 0;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  return value;
}

std::optional<double> decode_f64(std::string_view token) {
  double value = 0.0;
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end || token.empty()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // reject nan/inf
  return value;
}

// --- Decoder -----------------------------------------------------------------

void Decoder::fail(ErrorCode code, std::string message) {
  if (!error_) error_ = ProtoError{code, std::move(message)};
}

std::string Decoder::str(const char* field) {
  if (!ok()) return {};
  if (pos_ >= tokens_.size()) {
    fail(ErrorCode::kMissingArgument,
         std::string("missing <") + field + ">");
    return {};
  }
  return tokens_[pos_++];
}

std::int64_t Decoder::i64(const char* field, std::int64_t min,
                          std::int64_t max) {
  const std::string token = str(field);
  if (!ok()) return 0;
  return i64_token(token, field, min, max);
}

std::int64_t Decoder::i64_token(std::string_view token, const char* field,
                                std::int64_t min, std::int64_t max) {
  if (!ok()) return 0;
  const auto v = decode_i64(token);
  if (!v) {
    fail(ErrorCode::kBadArgument, std::string("<") + field +
                                      "> expects an integer, got '" +
                                      std::string(token) + "'");
    return 0;
  }
  if (*v < min || *v > max) {
    fail(ErrorCode::kOutOfRange, std::string("<") + field + "> = " +
                                     std::string(token) + " outside [" +
                                     std::to_string(min) + ", " +
                                     std::to_string(max) + "]");
    return 0;
  }
  return *v;
}

std::uint64_t Decoder::u64(const char* field) {
  const std::string token = str(field);
  if (!ok()) return 0;
  const auto v = decode_u64(token);
  if (!v) {
    fail(ErrorCode::kBadArgument,
         std::string("<") + field + "> expects an unsigned integer, got '" +
             token + "'");
    return 0;
  }
  return *v;
}

double Decoder::f64(const char* field, double min, double max) {
  const std::string token = str(field);
  if (!ok()) return 0.0;
  return f64_token(token, field, min, max);
}

double Decoder::f64_token(std::string_view token, const char* field,
                          double min, double max) {
  if (!ok()) return 0.0;
  const auto v = decode_f64(token);
  if (!v) {
    fail(ErrorCode::kBadArgument, std::string("<") + field +
                                      "> expects a finite number, got '" +
                                      std::string(token) + "'");
    return 0.0;
  }
  if (*v < min || *v > max) {
    fail(ErrorCode::kOutOfRange, std::string("<") + field + "> = " +
                                     std::string(token) + " outside [" +
                                     std::to_string(min) + ", " +
                                     std::to_string(max) + "]");
    return 0.0;
  }
  return *v;
}

graph::index_t Decoder::index(const char* field, graph::index_t min,
                              graph::index_t max) {
  return static_cast<graph::index_t>(i64(field, min, max));
}

void Decoder::finish(const char* usage) {
  if (!ok()) {
    // Append the usage string so every decode failure teaches the schema.
    error_->message += " — usage: ";
    error_->message += usage;
    return;
  }
  if (remaining() > 0)
    fail(ErrorCode::kExtraArgument,
         "unexpected trailing argument '" + tokens_[pos_] + "' — usage: " +
             usage);
}

// --- parse_command -----------------------------------------------------------

Parsed parse_command(std::string_view line, const Limits& limits) {
  Parsed out;
  if (line.size() > limits.max_line_bytes) {
    out.error = ProtoError{
        ErrorCode::kLineTooLong,
        "line of " + std::to_string(line.size()) + " bytes exceeds the " +
            std::to_string(limits.max_line_bytes) + "-byte budget"};
    return out;
  }

  std::istringstream is{std::string(line)};
  std::vector<std::string> tok;
  for (std::string t; is >> t;) {
    tok.push_back(std::move(t));
    if (tok.size() > limits.max_tokens) {
      out.error = ProtoError{ErrorCode::kLineTooLong,
                             "more than " +
                                 std::to_string(limits.max_tokens) +
                                 " tokens on one line"};
      return out;
    }
  }
  if (tok.empty() || tok.front().starts_with('#')) return out;  // ignorable

  const std::string& cmd = tok.front();
  Decoder d(tok, 1);

  const auto done = [&](Command command, const char* usage) {
    d.finish(usage);
    if (d.ok())
      out.command = std::move(command);
    else
      out.error = d.take_error();
  };

  if (cmd == "auth") {
    AuthRequest r;
    r.token = d.str("token");
    done(std::move(r), "auth <token>");
  } else if (cmd == "load") {
    LoadRequest r;
    r.name = d.str("name");
    r.path = d.str("file.mtx");
    done(std::move(r), "load <name> <file.mtx>");
  } else if (cmd == "gen") {
    GenRequest r;
    r.name = d.str("name");
    const std::string kind = d.str("kind");
    if (d.ok()) r.spec = decode_gen_spec(d, kind, limits);
    if (d.ok())
      out.command = std::move(r);
    else
      out.error = d.take_error();
  } else if (cmd == "submit") {
    SubmitRequest r;
    r.instance = d.str("instance");
    r.spec = d.str("spec");
    while (d.ok() && d.remaining() > 0) {
      const std::string arg = d.str("argument");
      if (arg.starts_with("prio=")) {
        r.priority = static_cast<int>(d.i64_token(
            arg.substr(5), "prio", -1'000'000'000, 1'000'000'000));
      } else if (arg.starts_with("deadline=")) {
        r.deadline_ms = d.f64_token(arg.substr(9), "deadline", 0.0, 1e9);
      } else {
        d.fail(ErrorCode::kBadArgument,
               "unknown submit argument '" + arg + "'");
      }
    }
    done(std::move(r),
         "submit <instance> <spec> [prio=<n>] [deadline=<ms>]");
  } else if (cmd == "poll" || cmd == "wait") {
    const std::uint64_t ticket = d.u64("ticket");
    if (cmd == "poll")
      done(PollRequest{ticket}, "poll <ticket>");
    else
      done(WaitRequest{ticket}, "wait <ticket>");
  } else if (cmd == "drain") {
    done(DrainRequest{}, "drain");
  } else if (cmd == "stats") {
    done(StatsRequest{}, "stats");
  } else if (cmd == "metrics") {
    done(MetricsRequest{}, "metrics");
  } else if (cmd == "policy") {
    done(PolicyRequest{}, "policy");
  } else if (cmd == "trace-start") {
    TraceStartRequest r;
    r.path = d.str("path");
    done(std::move(r), "trace-start <path>");
  } else if (cmd == "trace-dump") {
    done(TraceDumpRequest{}, "trace-dump");
  } else if (cmd == "save-cache") {
    SaveCacheRequest r;
    r.path = d.str("path");
    done(std::move(r), "save-cache <path>");
  } else if (cmd == "load-cache") {
    LoadCacheRequest r;
    r.path = d.str("path");
    done(std::move(r), "load-cache <path>");
  } else if (cmd == "shutdown") {
    done(ShutdownRequest{}, "shutdown");
  } else {
    out.error = ProtoError{
        ErrorCode::kBadCommand,
        "unknown command '" + cmd +
            "' (auth | load | gen | submit | poll | wait | drain | stats | "
            "metrics | policy | trace-start | trace-dump | save-cache | "
            "load-cache | shutdown)"};
  }
  return out;
}

// --- Serialization -----------------------------------------------------------

std::string quoted(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n' || c == '\r') {
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string error_line(const ProtoError& error) {
  return "error code=" + std::string(error_code_name(error.code)) +
         " msg=" + quoted(error.message);
}

std::string response_line(const Response& r) {
  std::ostringstream os;
  os << "result ticket=" << r.ticket << " instance=" << r.instance_name
     << " solver=" << r.solver << " ok=" << (r.ok ? 1 : 0)
     << " cached=" << (r.cached ? 1 : 0)
     << " cardinality=" << r.stats.cardinality << " queue_ms=" << r.queue_ms
     << " service_ms=" << r.service_ms << " total_ms=" << r.total_ms;
  // Appended only when policy resolution rewrote the request, so
  // explicit-traffic output stays byte-identical to the historical format.
  if (!r.resolved_from.empty()) os << " resolved_from=" << r.resolved_from;
  if (!r.error.empty()) os << " error=" << quoted(r.error);
  return os.str();
}

}  // namespace bpm::serve::proto
