#include "core/g_hk.hpp"

#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

#include "device/mem.hpp"
#include "util/timer.hpp"

namespace bpm::gpu {

namespace {

using graph::BipartiteGraph;
using graph::index_t;
using matching::kUnmatched;

constexpr index_t kLvlInf = std::numeric_limits<index_t>::max();

struct HkDeviceState {
  device::relaxed_vector<index_t> mu_row;
  device::relaxed_vector<index_t> mu_col;
  device::relaxed_vector<index_t> lvl_row;
  device::relaxed_vector<index_t> lvl_col;
  device::relaxed_vector<index_t> claim;  ///< owning root column per row

  HkDeviceState(index_t nrows, index_t ncols)
      : mu_row(static_cast<std::size_t>(nrows)),
        mu_col(static_cast<std::size_t>(ncols)),
        lvl_row(static_cast<std::size_t>(nrows)),
        lvl_col(static_cast<std::size_t>(ncols)),
        claim(static_cast<std::size_t>(nrows)) {}
};

/// Level-synchronous BFS from unmatched columns (one launch per level).
/// Returns false when no unmatched row is reachable (matching maximum).
bool bfs_levels(device::Device& dev, const BipartiteGraph& g,
                HkDeviceState& st, GhkStats& stats) {
  dev.launch(g.num_cols(), [&](std::int64_t i) {
    const auto vz = static_cast<std::size_t>(i);
    st.lvl_col.store(vz, st.mu_col.load(vz) == kUnmatched ? 0 : kLvlInf);
  });
  dev.launch(g.num_rows(), [&](std::int64_t i) {
    st.lvl_row.store(static_cast<std::size_t>(i), kLvlInf);
  });

  device::device_flag col_added, free_found;
  index_t level = 0;
  while (true) {
    col_added.reset();
    free_found.reset();
    dev.launch_accounted(g.num_cols(), [&](std::int64_t i) -> std::int64_t {
      const auto v = static_cast<index_t>(i);
      if (st.lvl_col.load(static_cast<std::size_t>(v)) != level) return 0;
      for (index_t u : g.col_neighbors(v)) {
        const auto uz = static_cast<std::size_t>(u);
        if (st.mu_row.load(uz) == kUnmatched) {
          free_found.raise();
          continue;
        }
        if (st.lvl_row.load(uz) != kLvlInf) continue;
        st.lvl_row.store(uz, level + 1);
        const index_t w = st.mu_row.load(uz);
        const auto wz = static_cast<std::size_t>(w);
        if (st.lvl_col.load(wz) == kLvlInf) {
          st.lvl_col.store(wz, level + 2);
          col_added.raise();
        }
      }
      // ~2 uncoalesced gathers per adjacency entry (µ(u), lvl probe).
      return 2 * g.col_degree(v);
    });
    ++stats.bfs_level_kernels;
    if (free_found.is_raised()) return true;   // shortest level reached
    if (!col_added.is_raised()) return false;  // frontier drained
    level += 2;
  }
}

/// Claim-DFS augmentation pass.  Each root (unmatched column) walks either
/// the level DAG (`restrict_levels`) or the whole graph, claiming rows via
/// racy stores; complete paths are stored per-root as
/// [v0, u0, v1, u1, ...] and applied only after validation confirms the
/// root still owns every row on its path.  Returns applied count.
std::int64_t augment_pass(device::Device& dev, const BipartiteGraph& g,
                          HkDeviceState& st, bool restrict_levels) {
  std::vector<index_t> roots;
  for (index_t v = 0; v < g.num_cols(); ++v)
    if (st.mu_col.load(static_cast<std::size_t>(v)) == kUnmatched)
      roots.push_back(v);
  if (roots.empty()) return 0;

  dev.launch(g.num_rows(), [&](std::int64_t i) {
    st.claim.store(static_cast<std::size_t>(i), -1);
  });

  // One private path buffer per root; each slot is written only by the
  // logical thread owning it (CUDA-style thread-private output region).
  std::vector<std::vector<index_t>> paths(roots.size());

  dev.launch_accounted(static_cast<std::int64_t>(roots.size()),
                       [&](std::int64_t i) -> std::int64_t {
    const index_t root = roots[static_cast<std::size_t>(i)];
    auto& path = paths[static_cast<std::size_t>(i)];
    std::int64_t scanned = 0;

    // Thread-local iterative DFS with adjacency cursors.
    std::vector<index_t> col_stack{root};
    std::vector<index_t> row_stack;
    std::vector<std::size_t> cursor{0};
    const auto& col_ptr = g.col_ptr();
    const auto& col_adj = g.col_adj();
    bool complete = false;

    while (!col_stack.empty() && !complete) {
      const index_t v = col_stack.back();
      const auto vz = static_cast<std::size_t>(v);
      const auto deg =
          static_cast<std::size_t>(col_ptr[vz + 1] - col_ptr[vz]);
      bool descended = false;
      while (cursor.back() < deg) {
        const index_t u = col_adj[static_cast<std::size_t>(col_ptr[vz]) +
                                  cursor.back()];
        ++cursor.back();
        scanned += 3;  // lvl_row, claim, µ(u) gathers per edge probed
        const auto uz = static_cast<std::size_t>(u);
        if (restrict_levels &&
            st.lvl_row.load(uz) !=
                st.lvl_col.load(vz) + 1 &&
            st.mu_row.load(uz) != kUnmatched)
          continue;  // off the shortest-path DAG
        if (st.claim.load(uz) != -1) continue;  // taken by another root
        st.claim.store(uz, root);               // racy claim, validated later
        const index_t w = st.mu_row.load(uz);
        if (w == kUnmatched) {
          row_stack.push_back(u);
          complete = true;
          descended = true;
          break;
        }
        row_stack.push_back(u);
        col_stack.push_back(w);
        cursor.push_back(0);
        descended = true;
        break;
      }
      if (!descended) {
        col_stack.pop_back();
        cursor.pop_back();
        if (!row_stack.empty()) row_stack.pop_back();
      }
    }
    if (!complete) return scanned;
    path.reserve(2 * col_stack.size());
    for (std::size_t j = 0; j < col_stack.size(); ++j) {
      path.push_back(col_stack[j]);
      path.push_back(row_stack[j]);
    }
    return scanned;
  });

  // Validate ownership and apply — per-root, vertex-disjoint by claims.
  std::vector<char> applied(roots.size(), 0);
  dev.launch_accounted(static_cast<std::int64_t>(roots.size()),
                       [&](std::int64_t i) -> std::int64_t {
    const auto iz = static_cast<std::size_t>(i);
    const index_t root = roots[iz];
    const auto& path = paths[iz];
    const auto work = static_cast<std::int64_t>(path.size());
    if (path.empty()) return work;
    for (std::size_t j = 1; j < path.size(); j += 2)
      if (st.claim.load(static_cast<std::size_t>(path[j])) != root)
        return work;
    for (std::size_t j = 0; j + 1 < path.size(); j += 2) {
      const index_t v = path[j];
      const index_t u = path[j + 1];
      st.mu_row.store(static_cast<std::size_t>(u), v);
      st.mu_col.store(static_cast<std::size_t>(v), u);
    }
    applied[iz] = 1;
    return work;
  });

  std::int64_t count = 0;
  for (char a : applied) count += a;
  return count;
}

/// Host fallback forcing progress when claim collisions starve a phase:
/// one plain BFS augmentation on the (consistent) matching.
bool host_augment_once(const BipartiteGraph& g, HkDeviceState& st) {
  std::vector<index_t> parent_row(static_cast<std::size_t>(g.num_rows()),
                                  kUnmatched);
  std::vector<char> col_seen(static_cast<std::size_t>(g.num_cols()), 0);
  std::deque<index_t> queue;
  for (index_t v = 0; v < g.num_cols(); ++v) {
    if (st.mu_col.load(static_cast<std::size_t>(v)) == kUnmatched) {
      col_seen[static_cast<std::size_t>(v)] = 1;
      queue.push_back(v);
    }
  }
  index_t end_row = kUnmatched;
  while (!queue.empty() && end_row == kUnmatched) {
    const index_t v = queue.front();
    queue.pop_front();
    for (index_t u : g.col_neighbors(v)) {
      const auto uz = static_cast<std::size_t>(u);
      if (parent_row[uz] != kUnmatched) continue;
      parent_row[uz] = v;
      const index_t w = st.mu_row.load(uz);
      if (w == kUnmatched) {
        end_row = u;
        break;
      }
      if (!col_seen[static_cast<std::size_t>(w)]) {
        col_seen[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }
  if (end_row == kUnmatched) return false;
  index_t u = end_row;
  while (true) {
    const index_t v = parent_row[static_cast<std::size_t>(u)];
    const index_t prev_u = st.mu_col.load(static_cast<std::size_t>(v));
    st.mu_row.store(static_cast<std::size_t>(u), v);
    st.mu_col.store(static_cast<std::size_t>(v), u);
    if (prev_u == kUnmatched) break;
    u = prev_u;
  }
  return true;
}

}  // namespace

GhkResult g_hk(device::Device& dev, const BipartiteGraph& g,
               const matching::Matching& init, const GhkOptions& options) {
  if (!init.is_valid(g))
    throw std::invalid_argument("g_hk: invalid initial matching");

  Timer total;
  GhkResult result;
  GhkStats& stats = result.stats;
  const double modeled_before = dev.modeled_ms();

  HkDeviceState st(g.num_rows(), g.num_cols());
  st.mu_row.assign_from(init.row_match);
  st.mu_col.assign_from(init.col_match);

  const std::int64_t max_phases = 4 * static_cast<std::int64_t>(g.num_cols()) + 64;
  while (bfs_levels(dev, g, st, stats)) {
    ++stats.phases;
    const std::int64_t augmented =
        augment_pass(dev, g, st, /*restrict_levels=*/true);
    stats.augmentations += augmented;
    if (augmented == 0) {
      // All found paths were invalidated by claim collisions; force one
      // augmentation so phases always progress (BFS said one exists).
      if (!host_augment_once(g, st))
        throw std::logic_error("g_hk: BFS found a path but none applied");
      ++stats.sequential_fallbacks;
      ++stats.augmentations;
    }
    if (options.duff_wiberg)
      stats.dw_augmentations +=
          augment_pass(dev, g, st, /*restrict_levels=*/false);
    if (stats.phases > max_phases)
      throw std::runtime_error("g_hk: phase bound exceeded");
  }

  result.matching.row_match = st.mu_row.to_host();
  result.matching.col_match = st.mu_col.to_host();
  stats.modeled_ms = dev.modeled_ms() - modeled_before;
  stats.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace bpm::gpu
