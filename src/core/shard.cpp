#include "core/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/g_pr_internal.hpp"
#include "device/mem.hpp"
#include "util/timer.hpp"

namespace bpm::gpu {

int ShardPlan::owner(index_t v) const {
  // Last boundary <= v whose shard is non-empty past it: with duplicate
  // boundaries (empty shards) the upper_bound lands after every empty
  // range, so the returned shard really contains v.
  const auto it = std::upper_bound(col_begin.begin(), col_begin.end(), v);
  return static_cast<int>(it - col_begin.begin()) - 1;
}

std::size_t ShardPlan::shard_bytes(int k) const {
  const auto c = static_cast<std::size_t>(cols(k));
  const auto e = static_cast<std::size_t>(edges(k));
  return e * sizeof(index_t)                   // adjacency slice
         + (c + 1) * sizeof(graph::offset_t)   // col_ptr slice
         + c * 3 * sizeof(index_t);            // µ(v), ψ(v), iA slices
}

ShardPlan shard_columns(const BipartiteGraph& g, int shards) {
  if (shards < 1)
    throw std::invalid_argument("shard_columns: shards must be >= 1");
  const auto k = std::min<std::int64_t>(
      shards, std::max<index_t>(g.num_cols(), 1));
  const std::vector<graph::offset_t>& col_ptr = g.col_ptr();
  // The column CSR's pointer array IS the exclusive degree prefix sum the
  // edge-balanced cut needs — no scan to build, just binary searches.
  const std::vector<std::int64_t> bounds = device::balanced_partition(
      std::span<const std::int64_t>(col_ptr.data(), col_ptr.size()), k);
  ShardPlan plan;
  plan.col_begin.reserve(bounds.size());
  plan.edge_begin.reserve(bounds.size());
  for (const std::int64_t b : bounds) {
    plan.col_begin.push_back(static_cast<index_t>(b));
    plan.edge_begin.push_back(col_ptr[static_cast<std::size_t>(b)]);
  }
  return plan;
}

int resolve_shard_count(
    const BipartiteGraph& g, int requested,
    std::span<const std::shared_ptr<device::Engine>> engines) {
  const int max_k = std::max<index_t>(g.num_cols(), 1);
  if (requested >= 1) return std::min(requested, max_k);
  int k = std::max<int>(1, static_cast<int>(engines.size()));
  // Tightest positive engine budget bounds what one shard may hold
  // resident; double K until the worst shard fits.
  std::size_t budget = 0;
  for (const auto& e : engines) {
    if (e == nullptr) continue;
    const std::size_t b = e->descriptor().memory_budget;
    if (b > 0) budget = budget == 0 ? b : std::min(budget, b);
  }
  if (budget > 0) {
    while (k < max_k) {
      const ShardPlan plan = shard_columns(g, k);
      std::size_t worst = 0;
      for (int s = 0; s < plan.shards(); ++s)
        worst = std::max(worst, plan.shard_bytes(s));
      if (worst <= budget) break;
      k = static_cast<int>(std::min<std::int64_t>(2 * std::int64_t{1} * k,
                                                  max_k));
    }
  }
  return std::min(k, max_k);
}

namespace {

using matching::kUnmatched;

using detail::BalancedFrontier;
using detail::is_active_column;
using detail::RelabelScheduler;

/// Round-biased claim keys: `(kRoundKeyBias − round) << 32 | column`, so
/// any current-round key sorts strictly below every earlier round's and
/// the claim array never needs a reset pass.  Bounds the round count at
/// 2^31 − 2 — the loop bound trips orders of magnitude earlier.
constexpr std::int64_t kRoundKeyBias = (std::int64_t{1} << 31) - 1;
constexpr std::int64_t kClaimEmpty = std::numeric_limits<std::int64_t>::max();

/// One shard's driver state: its column range, its own `Device` stream on
/// its engine, its frontier buffers, and its cross-shard mailboxes.
struct Shard {
  int id;
  index_t col_lo, col_hi;
  device::Device dev;

  BalancedFrontier f, next;
  std::vector<index_t> displaced;   ///< slot-parallel double-push captures
  std::vector<index_t> pushed_row;  ///< slot-parallel rows pushed this round
  std::vector<index_t> survivors;   ///< compaction scratch
  std::vector<std::vector<index_t>> outbox;  ///< per-owner foreign survivors
  std::vector<index_t> inbox;  ///< displaced columns routed to this shard
  std::int64_t len = 0;

  GprStats stats;  ///< shard-local counters, folded into the run's at the end

  double round_busy_ms = 0.0;   ///< driver-thread wall this round
  double total_busy_ms = 0.0;   ///< driver-thread wall over the whole run
  double prev_modeled_ms = 0.0; ///< stream model snapshot (sim critical path)

  Shard(int k, index_t lo, index_t hi, std::shared_ptr<device::Engine> engine,
        int num_shards)
      : id(k), col_lo(lo), col_hi(hi), dev(std::move(engine)),
        outbox(static_cast<std::size_t>(num_shards)) {}
};

/// The sharded round loop.  Each round runs four phases, with all shards
/// synchronised between them (std::barrier in parallel driver mode, plain
/// program order in sequential mode) and the coordinator doing the
/// cross-shard work in the barrier completions:
///
///   A  compact+stamp: per shard, resolve the previous round's slots
///      (roll back conflict losers, pick up displaced columns), route
///      foreign survivors to their owner's outbox, rebuild the dense
///      frontier SoA and stamp iA.
///      — coordinator: drain outboxes into inboxes; terminate when every
///        frontier is empty and no transfer is in flight.
///   P  push+claim: the edge-balanced push with intra-item min-combine
///      (the same detail::balanced_push the unsharded driver runs), then
///      store_min a round-biased claim key for every row pushed.
///   C  apply: per push (v, u), the claim's minimum column wins and
///      re-asserts µ(u); losers count as conflicts and stay active — the
///      next round's A rolls them back, exactly like an intra-launch
///      conflict in the paper's scheme.
///      — coordinator: per-round critical-path accounting, round++ and the
///        loop bound, then the synchronous whole-graph global relabel
///        (shard-local relabels are unsound; see the header).
class ShardedRun {
 public:
  /// Trace timeline row of the coordinator (outbox drains, relabel
  /// barriers).  Shards use their own ids (0..K−1), so any row below
  /// `Tracer::kThreadTidBase` that cannot be a shard id works.
  static constexpr std::uint32_t kCoordinatorTid = 96;

  ShardedRun(std::span<const std::shared_ptr<device::Engine>> engines,
             const BipartiteGraph& g, const matching::Matching& init,
             const GprOptions& options, int num_shards, obs::Tracer* tracer)
      : g_(g),
        col_ptr_(g.col_ptr()),
        col_adj_(g.col_adj().data()),
        psi_inf_(g.psi_infinity()),
        opts_(options),
        plan_(shard_columns(g, num_shards)),
        st_(device::uninitialized, g.num_rows(), g.num_cols()),
        i_a_(device::uninitialized, static_cast<std::size_t>(g.num_cols())),
        claim_(device::uninitialized, static_cast<std::size_t>(g.num_rows())),
        dev0_(engines[0]),
        tracer_(tracer) {
    // Shard-local relabels over-estimate alternating distances (the
    // AsyncGlobalRelabel hazard); every relabel is a synchronous
    // whole-graph G-GR on the coordinator stream.
    opts_.concurrent_global_relabel = false;
    max_rounds_ =
        std::min(detail::loop_bound(g, opts_), kRoundKeyBias - 2);

    const int k = plan_.shards();
    shards_.reserve(static_cast<std::size_t>(k));
    arenas_.reserve(engines.size());
    for (const auto& e : engines) arenas_.emplace_back(e);
    for (int s = 0; s < k; ++s) {
      const auto& engine = engines[static_cast<std::size_t>(s) %
                                   engines.size()];
      shards_.emplace_back(s, plan_.col_begin[static_cast<std::size_t>(s)],
                           plan_.col_begin[static_cast<std::size_t>(s) + 1],
                           engine, k);
    }
    if (tracer_ != nullptr) {
      dev0_.set_tracer(tracer_);
      dev0_.set_trace_tid(kCoordinatorTid);
      tracer_->name_tid(kCoordinatorTid, "coordinator");
      for (Shard& s : shards_) {
        s.dev.set_tracer(tracer_);
        s.dev.set_trace_tid(static_cast<std::uint32_t>(s.id));
        tracer_->name_tid(
            static_cast<std::uint32_t>(s.id),
            "shard " + std::to_string(s.id) + " (" +
                s.dev.engine()->descriptor().summary() + ")");
      }
    }
    init_state(init);
  }

  GprResult run() {
    Timer total;
    initial_relabel();
    if (resolve_parallel()) run_parallel();
    else run_sequential();
    if (failed_.load())
      throw std::runtime_error(error_);
    return finalize(total);
  }

 private:
  const device::EngineArena& arena_of(int shard) {
    return arenas_[static_cast<std::size_t>(shard) % arenas_.size()];
  }

  /// NUMA-aware state construction: each shard's engine arena first-touch
  /// constructs that shard's column slice (µ(v), ψ(v), iA); the shared
  /// row-side arrays and the claim array are interleaved across the
  /// arenas in K even blocks.  Then the initial matching is written and
  /// the initial frontiers (the unmatched columns of each slice) built.
  void init_state(const matching::Matching& init) {
    const auto rows = static_cast<std::size_t>(g_.num_rows());
    const int k = plan_.shards();
    for (Shard& s : shards_) {
      const auto lo = static_cast<std::size_t>(s.col_lo);
      const auto hi = static_cast<std::size_t>(s.col_hi);
      const device::EngineArena& a = arena_of(s.id);
      a.first_touch(st_.mu_col, lo, hi, kUnmatched);
      a.first_touch(st_.psi_col, lo, hi, index_t{1});
      a.first_touch(i_a_, lo, hi, index_t{-1});
      const std::size_t rb = rows * static_cast<std::size_t>(s.id) /
                             static_cast<std::size_t>(k);
      const std::size_t re = rows * (static_cast<std::size_t>(s.id) + 1) /
                             static_cast<std::size_t>(k);
      a.first_touch(st_.mu_row, rb, re, kUnmatched);
      a.first_touch(st_.psi_row, rb, re, index_t{0});
      a.first_touch(claim_, rb, re, kClaimEmpty);
    }
    for (std::size_t u = 0; u < rows; ++u)
      if (init.row_match[u] != kUnmatched)
        st_.mu_row.store(u, init.row_match[u]);
    for (std::size_t v = 0; v < init.col_match.size(); ++v)
      if (init.col_match[v] != kUnmatched)
        st_.mu_col.store(v, init.col_match[v]);
    for (Shard& s : shards_) {
      for (index_t v = s.col_lo; v < s.col_hi; ++v)
        if (st_.mu_col.load(static_cast<std::size_t>(v)) == kUnmatched)
          s.f.cols.push_back(v);
      s.len = s.f.size();
      s.displaced.assign(static_cast<std::size_t>(s.len), kUnmatched);
    }
  }

  void initial_relabel() {
    Timer t;
    const double m0 = dev0_.modeled_ms();
    (void)scheduler_.on_loop(dev0_, g_, st_, 0, stats_, gr_timer_);
    critical_ms_ += dev0_.backend() == device::Backend::kSim
                        ? dev0_.modeled_ms() - m0
                        : t.elapsed_ms();
  }

  [[nodiscard]] bool resolve_parallel() const {
    switch (opts_.shard_drivers) {
      case ShardDrivers::kSequential: return false;
      case ShardDrivers::kParallel: return true;
      case ShardDrivers::kAuto: break;
    }
    // One engine with one worker gains nothing from K driver threads: the
    // instruction stream is the sequential one plus barrier overhead.
    if (arenas_.size() > 1) return true;
    const auto& engine = shards_.front().dev.engine();
    return engine->num_workers() > 1;
  }

  // --- per-shard phases (run on the shard's driver) ----------------------

  /// Phase A: resolve the previous round's slots, route survivors, build
  /// the frontier SoA, stamp iA.  Serial per shard — the parallelism is
  /// across shards; the equivalent device cost is charged to the model.
  void phase_compact(Shard& s) {
    auto sp = obs::span(tracer_, "compact", "shard",
                        static_cast<std::uint32_t>(s.id));
    if (sp) {
      sp.arg("round", round_);
      sp.arg("slots", s.len);
    }
    Timer t;
    const auto round_stamp = static_cast<index_t>(round_);
    const std::int64_t slots = s.len;
    s.survivors.clear();
    const auto route = [&](index_t v) {
      if (v == kUnmatched) return;
      if (v >= s.col_lo && v < s.col_hi) {
        s.survivors.push_back(v);
        return;
      }
      s.outbox[static_cast<std::size_t>(plan_.owner(v))].push_back(v);
      ++s.stats.shard_transfers;
    };
    for (std::int64_t i = 0; i < slots; ++i) {
      // The unsharded resolve rule: a still-active pusher rolls back,
      // otherwise the slot yields its displaced column (or dies).
      const index_t v_prev = s.f.cols[static_cast<std::size_t>(i)];
      if (v_prev != -1 && is_active_column(st_, v_prev)) route(v_prev);
      else route(s.displaced[static_cast<std::size_t>(i)]);
    }
    // Inbox entries are displaced columns another shard routed here; a
    // displaced column is active by construction and owned by this shard
    // by routing, so they join the frontier directly.
    for (const index_t v : s.inbox) s.survivors.push_back(v);
    const auto in = static_cast<std::int64_t>(s.inbox.size());
    s.inbox.clear();

    const auto total = static_cast<std::int64_t>(s.survivors.size());
    s.next.resize_for(total);
    for (std::int64_t i = 0; i < total; ++i) {
      const auto iz = static_cast<std::size_t>(i);
      const index_t v = s.survivors[iz];
      const auto vz = static_cast<std::size_t>(v);
      s.next.cols[iz] = v;
      s.next.psi[iz] = st_.psi_col.load(vz);
      s.next.adj_begin[iz] = col_ptr_[vz];
      s.next.degree[iz] =
          static_cast<std::int64_t>(col_ptr_[vz + 1] - col_ptr_[vz]);
      i_a_.store(vz, round_stamp);
    }
    s.f.swap(s.next);
    s.displaced.assign(static_cast<std::size_t>(total), kUnmatched);
    s.pushed_row.assign(static_cast<std::size_t>(total), kUnmatched);
    s.len = total;
    ++s.stats.frontier_builds;
    // Two resolve gathers per slot, the inbox scan, and the survivors'
    // scattered iA stamps plus gathered ψ/CSR metadata.
    s.dev.charge_work(2 * slots + in + 3 * total);
    s.round_busy_ms = t.elapsed_ms();
  }

  /// Phase P: the edge-balanced push with intra-item min-combine, then a
  /// claim for every row pushed.  Claims only involve this shard's own
  /// push results, so no barrier is needed between push and claim.
  void phase_push_claim(Shard& s) {
    auto sp = obs::span(tracer_, "push", "shard",
                        static_cast<std::uint32_t>(s.id));
    if (sp) {
      sp.arg("round", round_);
      sp.arg("active", s.len);
    }
    Timer t;
    if (s.len > 0) {
      detail::balanced_push(s.dev, col_adj_, st_, s.f, i_a_,
                            static_cast<index_t>(round_), psi_inf_,
                            opts_.split_grain, s.displaced, &s.pushed_row,
                            s.stats);
      const std::int64_t hi = (kRoundKeyBias - round_) << 32;
      std::int64_t claims = 0;
      for (std::int64_t i = 0; i < s.len; ++i) {
        const index_t u = s.pushed_row[static_cast<std::size_t>(i)];
        if (u == kUnmatched) continue;
        const index_t v = s.f.cols[static_cast<std::size_t>(i)];
        claim_.store_min(
            static_cast<std::size_t>(u),
            hi | static_cast<std::int64_t>(static_cast<std::uint32_t>(v)));
        ++claims;
      }
      s.dev.charge_work(claims);
    }
    s.round_busy_ms += t.elapsed_ms();
  }

  /// Phase C: min-combine resolution.  For every push (v, u) this round,
  /// the smallest claiming column wins and re-asserts µ(u) (it may have
  /// been overwritten by a losing shard after the winner's store); losers
  /// stay active in their slots and are rolled back by the next round's
  /// compaction — the cross-shard analogue of an iA conflict.
  void phase_apply(Shard& s) {
    auto sp = obs::span(tracer_, "apply", "shard",
                        static_cast<std::uint32_t>(s.id));
    if (sp) sp.arg("round", round_);
    Timer t;
    const std::int64_t round_hi = kRoundKeyBias - round_;
    std::int64_t work = 0;
    for (std::int64_t i = 0; i < s.len; ++i) {
      const index_t u = s.pushed_row[static_cast<std::size_t>(i)];
      if (u == kUnmatched) continue;
      const index_t v = s.f.cols[static_cast<std::size_t>(i)];
      const std::int64_t c = claim_.load(static_cast<std::size_t>(u));
      ++work;  // claim gather
      const auto winner = static_cast<index_t>(
          static_cast<std::uint32_t>(c & 0xffffffff));
      if ((c >> 32) != round_hi || winner != v) {
        ++s.stats.shard_conflicts;
        continue;
      }
      if (st_.mu_row.load(static_cast<std::size_t>(u)) != v) {
        st_.mu_row.store(static_cast<std::size_t>(u), v);  // re-assert
        ++work;
      }
    }
    s.dev.charge_work(work);
    s.round_busy_ms += t.elapsed_ms();
  }

  // --- coordinator steps (barrier completions; all drivers blocked) ------

  void after_compact() {
    if (failed_.load()) {
      done_ = true;
      return;
    }
    auto sp = obs::span(tracer_, "outbox-exchange", "shard", kCoordinatorTid);
    if (sp) sp.arg("round", round_);
    std::int64_t routed = 0;
    bool any = false;
    std::int64_t total_len = 0;
    for (Shard& s : shards_) {
      for (std::size_t dst = 0; dst < s.outbox.size(); ++dst) {
        std::vector<index_t>& ob = s.outbox[dst];
        if (ob.empty()) continue;
        routed += static_cast<std::int64_t>(ob.size());
        shards_[dst].inbox.insert(shards_[dst].inbox.end(), ob.begin(),
                                  ob.end());
        ob.clear();
      }
    }
    for (const Shard& s : shards_) {
      total_len += s.len;
      if (s.len > 0 || !s.inbox.empty()) any = true;
    }
    stats_.active_peak =
        std::max<index_t>(stats_.active_peak,
                          static_cast<index_t>(total_len));
    if (sp) {
      sp.arg("transfers", routed);
      sp.arg("active", total_len);
    }
    done_ = !any;
  }

  void after_apply() {
    if (failed_.load()) {
      done_ = true;
      return;
    }
    // Per-round critical path: the slowest shard stream (its modeled delta
    // on sim engines, its measured driver wall on host engines — the
    // shards time-share this box's cores, so per-shard busy time, not
    // elapsed wall, is what a one-engine-per-shard fleet would pay) plus
    // the coordinator's synchronous relabel below.
    double round_max = 0.0;
    for (Shard& s : shards_) {
      const double cost = s.dev.backend() == device::Backend::kSim
                              ? s.dev.modeled_ms() - s.prev_modeled_ms
                              : s.round_busy_ms;
      s.prev_modeled_ms = s.dev.modeled_ms();
      s.total_busy_ms += s.round_busy_ms;
      s.round_busy_ms = 0.0;
      round_max = std::max(round_max, cost);
    }
    critical_ms_ += round_max;

    ++round_;
    ++stats_.shard_rounds;
    if (round_ > max_rounds_) {
      fail(
          "g_pr: loop bound exceeded — termination regression (see "
          "DESIGN.md D8)");
      return;
    }
    // Every driver is blocked at the barrier while this runs, so the span
    // IS the fleet-wide relabel barrier the trace should make visible.
    auto sp =
        obs::span(tracer_, "global-relabel-barrier", "shard", kCoordinatorTid);
    if (sp) sp.arg("round", round_);
    Timer t;
    const double m0 = dev0_.modeled_ms();
    try {
      (void)scheduler_.on_loop(dev0_, g_, st_, round_, stats_, gr_timer_);
    } catch (const std::exception& e) {
      fail(std::string("g_pr_sharded: relabel failed: ") + e.what());
      return;
    }
    critical_ms_ += dev0_.backend() == device::Backend::kSim
                        ? dev0_.modeled_ms() - m0
                        : t.elapsed_ms();
  }

  void fail(std::string message) {
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_.empty()) error_ = std::move(message);
    }
    failed_.store(true);
    done_ = true;
  }

  // --- drivers -----------------------------------------------------------

  void run_sequential() {
    while (true) {
      for (Shard& s : shards_) phase_compact(s);
      after_compact();
      if (done_) break;
      for (Shard& s : shards_) phase_push_claim(s);
      for (Shard& s : shards_) phase_apply(s);
      after_apply();
      if (done_) break;
    }
  }

  void run_parallel() {
    const int k = plan_.shards();
    int stage = 0;
    // The completion function must not exit via exception (std::barrier's
    // contract) — coordinator failures set the flag instead, and every
    // driver observes `done_` right after the barrier (the completion
    // happens-before each arrive_and_wait return).
    const auto completion = [this, &stage]() noexcept {
      if (stage == 0) after_compact();
      else if (stage == 2) after_apply();
      stage = (stage + 1) % 3;
    };
    std::barrier sync(k, completion);
    const auto driver = [&](int id) {
      Shard& s = shards_[static_cast<std::size_t>(id)];
      while (true) {
        guarded([&] { phase_compact(s); });
        sync.arrive_and_wait();
        if (done_) break;
        guarded([&] { phase_push_claim(s); });
        sync.arrive_and_wait();
        guarded([&] { phase_apply(s); });
        sync.arrive_and_wait();
        if (done_) break;
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(k) - 1);
    for (int id = 1; id < k; ++id) threads.emplace_back(driver, id);
    driver(0);
    for (std::thread& t : threads) t.join();
  }

  /// A phase that throws (allocation failure, a regression) must still
  /// reach its barrier or every other driver deadlocks.
  template <typename Fn>
  void guarded(Fn&& fn) {
    try {
      fn();
    } catch (const std::exception& e) {
      fail(std::string("g_pr_sharded: shard driver failed: ") + e.what());
    } catch (...) {
      fail("g_pr_sharded: shard driver failed");
    }
  }

  GprResult finalize(Timer& total) {
    // The terminating round's compact phase ran after the last
    // after_apply snapshot — fold its trailing cost in.
    double tail = 0.0;
    for (Shard& s : shards_) {
      const double cost = s.dev.backend() == device::Backend::kSim
                              ? s.dev.modeled_ms() - s.prev_modeled_ms
                              : s.round_busy_ms;
      s.total_busy_ms += s.round_busy_ms;
      tail = std::max(tail, cost);
    }
    critical_ms_ += tail;

    Timer fix;
    detail::fix_matching(dev0_, g_, st_);

    GprResult result;
    result.matching.row_match = st_.mu_row.to_host();
    result.matching.col_match = st_.mu_col.to_host();
    result.stats = stats_;
    GprStats& out = result.stats;
    out.fix_ms = fix.elapsed_ms();
    for (const Shard& s : shards_) {
      out.split_items += s.stats.split_items;
      out.split_fragments += s.stats.split_fragments;
      out.shard_conflicts += s.stats.shard_conflicts;
      out.shard_transfers += s.stats.shard_transfers;
      out.frontier_builds += s.stats.frontier_builds;
      out.device_launches += static_cast<std::int64_t>(s.dev.launches());
      out.push_ms += s.total_busy_ms;
    }
    out.device_launches += static_cast<std::int64_t>(dev0_.launches());
    out.shards = plan_.shards();
    out.loops = round_;
    out.shard_critical_ms = critical_ms_;
    out.modeled_ms = dev0_.backend() == device::Backend::kSim
                         ? critical_ms_
                         : 0.0;
    out.total_ms = total.elapsed_ms();
    return result;
  }

  const BipartiteGraph& g_;
  const std::vector<graph::offset_t>& col_ptr_;
  const index_t* col_adj_;
  const index_t psi_inf_;
  GprOptions opts_;  ///< local copy: concurrent relabel forced off
  const ShardPlan plan_;

  DeviceState st_;
  device::relaxed_vector<index_t> i_a_;
  device::relaxed_vector<std::int64_t> claim_;
  std::vector<device::EngineArena> arenas_;
  std::vector<Shard> shards_;

  device::Device dev0_;  ///< coordinator stream (relabels, FIXMATCHING)
  obs::Tracer* tracer_;  ///< nullable; shard rows tid = shard id
  RelabelScheduler scheduler_{g_, opts_};
  Timer gr_timer_;
  GprStats stats_;

  std::int64_t round_ = 0;
  std::int64_t max_rounds_ = 0;
  double critical_ms_ = 0.0;
  /// Written only by the coordinator while every driver is blocked at the
  /// barrier; the completion happens-before each driver's return from
  /// arrive_and_wait, which publishes it.
  bool done_ = false;
  std::atomic<bool> failed_{false};
  std::mutex error_mutex_;
  std::string error_;
};

}  // namespace

GprResult g_pr_sharded(
    std::span<const std::shared_ptr<device::Engine>> engines,
    const BipartiteGraph& g, const matching::Matching& init,
    const GprOptions& options, obs::Tracer* tracer) {
  if (engines.empty())
    throw std::invalid_argument("g_pr_sharded: at least one engine required");
  const int shards = resolve_shard_count(g, options.shards, engines);
  if (shards <= 1) {
    device::Device dev(engines[0]);
    dev.set_tracer(tracer);
    GprResult r = g_pr(dev, g, init, options);
    r.stats.shards = 1;
    return r;
  }
  if (!init.is_valid(g))
    throw std::invalid_argument("g_pr_sharded: invalid initial matching: " +
                                init.first_violation(g));
  ShardedRun run(engines, g, init, options, shards, tracer);
  return run.run();
}

}  // namespace bpm::gpu
