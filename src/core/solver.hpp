#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "device/device.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm {

/// Static capabilities of a solver, used by harnesses and the pipeline to
/// decide how to schedule a run and how to interpret its results.
struct SolverCaps {
  /// Runs its kernels on the bulk-synchronous device engine; `run` requires
  /// `SolveContext::device` and reports modeled device time.
  bool needs_device = false;
  /// Spawns its own host worker threads (honours `SolveContext::threads`).
  bool multicore = false;
  /// Same execution schedule — and therefore the same matching — on every
  /// run.  False for the racy device kernels and the multicore matcher,
  /// whose *cardinality* is still always maximum but whose edge set depends
  /// on thread interleaving.
  bool deterministic = true;
  /// Guarantees a maximum-cardinality result.  False for the
  /// initialisation heuristics (greedy, Karp–Sipser), which are registered
  /// so that pipelines can run and compare them like any other solver.
  bool exact = true;
  /// Uses edge-balanced (`Device::launch_balanced`) kernels — on or auto
  /// (`GprOptions::balance`).  A routing hint: balanced kernels thrive on
  /// skewed instances and on the host backend's work-partitioned chunks
  /// (`serve::Routing::kBackendFit`).
  bool balanced = false;
  /// Cuts the instance into column shards and spreads them over
  /// `SolveContext::engines` (`g-pr-sh`, or `shards=K|auto` on a G-PR
  /// spec).  Dispatchers hand such solvers their whole engine fleet and
  /// pin the coordinator stream shard-local
  /// (`serve::DispatchProfile::preferred_engine`).
  bool sharded = false;
};

/// Unified per-run statistics every solver reports, regardless of backend.
struct SolveStats {
  graph::index_t cardinality = 0;
  double wall_ms = 0.0;          ///< host wall time of the run
  double modeled_ms = 0.0;       ///< device-model time; 0 for CPU solvers
  std::int64_t device_launches = 0;  ///< kernel launches; 0 for CPU solvers
  /// The algorithm's outer-iteration count: main-loop iterations (G-PR),
  /// phases (HK family), or rounds (P-DBFS).  0 for one-shot heuristics.
  std::int64_t iterations = 0;
  std::string detail;  ///< algorithm-specific counters, human-readable
};

struct SolveResult {
  matching::Matching matching;
  SolveStats stats;
};

/// Execution resources handed to a solver.  The caller owns both; a single
/// context (and device) can be reused across many runs and solvers.
struct SolveContext {
  device::Device* device = nullptr;  ///< required when caps().needs_device
  unsigned threads = 0;  ///< workers for multicore solvers (0 = hardware)
  /// Engine fleet for sharded solvers (`shards=K|auto`, `g-pr-sh`): shard
  /// k runs on `engines[k % size]`, so a serving process hands its whole
  /// `EngineGroup` here and one massive instance spreads across every
  /// engine.  Empty = shard on `device`'s own engine (still correct; the
  /// shards just time-share it).
  std::vector<std::shared_ptr<device::Engine>> engines;
  /// Optional trace collector (`obs::Tracer`): when set and enabled, the
  /// run records solve-phase spans (push / global-relabel / frontier
  /// compaction), per-launch device spans, and the sharded driver's
  /// per-shard round timelines.  Must outlive the run; tracing must not
  /// change the result (the conformance tests assert it).
  obs::Tracer* tracer = nullptr;
};

/// A maximum cardinality bipartite matching algorithm behind a uniform
/// interface.  Implementations adapt the free functions in core/, matching/
/// and multicore/ without touching their kernel logic; instances are
/// created by the `SolverRegistry` and carry per-instance tuning state set
/// via `set_option`.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Canonical registry name ("g-pr-shr", "hk", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual SolverCaps caps() const = 0;

  /// Sets a string-typed tuning knob ("k", "strategy", "initial-gr", ...).
  /// Returns false if the solver does not understand `key`; throws
  /// `std::invalid_argument` on a malformed value for a known key.
  virtual bool set_option(std::string_view key, std::string_view value);

  /// Runs the algorithm from the initial matching `init` (which must be
  /// valid for `g`; pass `Matching(g)` for an empty start).  Fills every
  /// applicable `SolveStats` field including wall time.  Throws
  /// `std::invalid_argument` if the context is missing a required device.
  [[nodiscard]] virtual SolveResult run(const SolveContext& ctx,
                                        const graph::BipartiteGraph& g,
                                        const matching::Matching& init) const = 0;
};

/// A parsed solver specification: a registry name plus `set_option`
/// key/value pairs, written `name:key=val,key=val` (e.g. `g-pr-shr:k=1.5`).
/// This is the one grammar every CLI surface (`--algo`), the pipeline, and
/// saved experiment configs use to express a *tuned* solver, so sweeps can
/// select non-default knobs without code changes.
struct SolverSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;
  /// Provenance: the spec this one was resolved from (e.g. "auto" when
  /// `policy::AutoSolver` picked it for an instance).  Deliberately
  /// EXCLUDED from `canonical()` — the resolved configuration is the
  /// identity, so an `auto` hit and an explicit hit on the same concrete
  /// spec share result-cache entries.  Empty for specs parsed from user
  /// input.
  std::string resolved_from;

  /// Parses one spec.  Throws `std::invalid_argument` (naming the grammar
  /// and the registered solvers) on malformed input; the name itself is
  /// validated later, by `instantiate`.
  [[nodiscard]] static SolverSpec parse(std::string_view spec);

  /// Parses a comma-separated spec list.  A `key=val` token continues the
  /// preceding spec's options, so `g-pr-shr:k=1.5,strategy=fix,hk` is two
  /// specs: a tuned g-pr-shr and a default hk.
  [[nodiscard]] static std::vector<SolverSpec> parse_list(
      std::string_view list);

  /// The spec back as a string, options sorted by key — a stable identity
  /// for cache keys, report headers, and round-tripping.  `resolved_from`
  /// is provenance, not configuration, and never appears here.
  [[nodiscard]] std::string canonical() const;

  /// `SolverRegistry::create(name)` plus `set_option` for every pair.
  /// Throws `std::invalid_argument` for an unknown name (listing the
  /// registry), an unknown option key, or a malformed option value.
  [[nodiscard]] std::unique_ptr<Solver> instantiate() const;
};

/// Name → factory table of every matching algorithm in the library.
///
/// `instance()` arrives pre-populated with the built-in solvers; callers
/// (plugins, experiments) can `add` their own factories, which makes the
/// registry the extension point for new backends — a new algorithm
/// registered here is immediately reachable from every bench harness,
/// example binary, and pipeline without touching any of them.
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// The process-wide registry, with built-ins registered.
  [[nodiscard]] static SolverRegistry& instance();

  /// Registers a factory under a canonical name.  Throws
  /// `std::invalid_argument` if the name is already taken.
  void add(const std::string& name, Factory factory);

  /// Registers an alternative spelling for an existing canonical name
  /// ("g-pr" → "g-pr-shr").  Aliases resolve in `create`/`contains` but do
  /// not appear in `names()`.
  void add_alias(const std::string& alias, const std::string& canonical);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the named solver.  Throws `std::invalid_argument` for an
  /// unknown name, listing the registered names in the message.
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name) const;

  /// Canonical names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// (alias, canonical) pairs, sorted by alias — for `--list-algos`.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> alias_list()
      const;

  /// names() joined with ", " — for --help strings and error messages.
  [[nodiscard]] std::string names_csv() const;

 private:
  SolverRegistry();

  std::map<std::string, Factory> factories_;
  std::map<std::string, std::string> aliases_;
};

/// One-line convenience: `create(name)` on the global registry and run.
[[nodiscard]] SolveResult solve(const std::string& solver_name,
                                const SolveContext& ctx,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init);

/// The result-shaped outcome of one verified solver run: the stats, whether
/// the run completed *and* passed verification, and why not otherwise.
/// This is the unit the batched pipeline reports per job and the serving
/// layer's `serve::ResultCache` stores per (instance, solver spec) key.
struct JobOutcome {
  SolveStats stats;
  bool ok = false;
  std::string error;
};

/// Runs `solver` from `init` and verifies the matching: edge-validity, the
/// reference-cardinality check against `reference_maximum`, an independent
/// Berge certificate for exact solvers, and the `<= maximum` bound for
/// heuristics.  Pass `reference_maximum = -1` to skip verification (the
/// run itself is still guarded: a throwing solver yields `ok == false`
/// with the exception text, never an exception).  Shared by
/// `MatchingPipeline` and `serve::MatchingService` so both layers accept
/// and reject results by exactly the same rules.
[[nodiscard]] JobOutcome run_verified(const Solver& solver,
                                      const SolveContext& ctx,
                                      const graph::BipartiteGraph& g,
                                      const matching::Matching& init,
                                      graph::index_t reference_maximum);

}  // namespace bpm
