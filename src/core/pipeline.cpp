#include "core/pipeline.hpp"

#include <atomic>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"
#include "util/timer.hpp"

namespace bpm {
namespace {

/// FNV-1a over the graph's dimensions and row-side CSR (the column side is
/// derived from it, so hashing one direction identifies the graph).
std::uint64_t graph_fingerprint(const graph::BipartiteGraph& g) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(g.num_rows()));
  mix(static_cast<std::uint64_t>(g.num_cols()));
  for (const graph::offset_t p : g.row_ptr()) mix(static_cast<std::uint64_t>(p));
  for (const graph::index_t a : g.row_adj()) mix(static_cast<std::uint64_t>(a));
  return h;
}

}  // namespace

std::vector<const PipelineJob*> PipelineReport::jobs_for(
    std::size_t instance) const {
  std::vector<const PipelineJob*> out;
  for (const PipelineJob& job : jobs)
    if (job.instance == instance) out.push_back(&job);
  return out;
}

MatchingPipeline::MatchingPipeline(PipelineOptions options)
    : options_(std::move(options)),
      engine_(std::make_shared<device::Engine>(options_.device_mode,
                                               options_.device_threads)),
      device_(engine_) {}

std::size_t MatchingPipeline::add_instance(std::string name,
                                           graph::BipartiteGraph graph) {
  PipelineInstance inst;
  inst.name = std::move(name);
  inst.graph = std::move(graph);
  inst.init = !options_.share_init ? matching::Matching(inst.graph)
              : options_.init_builder
                  ? options_.init_builder(inst.graph)
                  : matching::cheap_matching(inst.graph);
  inst.initial_cardinality = inst.init.cardinality();
  inst.fingerprint = graph_fingerprint(inst.graph);
  if (options_.verify)
    // Ground truth once per instance via Hopcroft–Karp seeded with the
    // shared init (tested against the independent reference in tests/).
    inst.maximum_cardinality =
        matching::hopcroft_karp(inst.graph, inst.init).cardinality();
  instances_.push_back(std::move(inst));
  return instances_.size() - 1;
}

PipelineReport MatchingPipeline::run(
    const std::vector<std::string>& solver_specs) {
  // Parse every entry up front so a typo fails the whole batch loudly
  // instead of surfacing as per-job errors after minutes of solving.
  std::vector<SolverSpec> specs;
  specs.reserve(solver_specs.size());
  for (const std::string& spec : solver_specs)
    specs.push_back(SolverSpec::parse(spec));
  return run_specs(specs);
}

PipelineReport MatchingPipeline::run_specs(
    const std::vector<SolverSpec>& specs) {
  std::vector<std::unique_ptr<Solver>> solvers;
  std::vector<JobSpec> jobs;
  solvers.reserve(specs.size());
  jobs.reserve(specs.size());
  for (const SolverSpec& spec : specs) {
    solvers.push_back(spec.instantiate());
    // The canonical spec is the configuration's identity: two spellings of
    // the same tuning share cache entries, different tunings never do.
    jobs.push_back({solvers.back().get(), spec.canonical(), spec.canonical()});
  }
  return run_jobs(jobs);
}

PipelineReport MatchingPipeline::run_with(
    const std::vector<std::unique_ptr<Solver>>& solvers) {
  std::vector<JobSpec> jobs;
  jobs.reserve(solvers.size());
  for (std::size_t s = 0; s < solvers.size(); ++s)
    // Keyed by position: a caller-tuned solver object is only identical to
    // itself (its options are not observable through the interface).
    jobs.push_back({solvers[s].get(), solvers[s]->name(),
                    solvers[s]->name() + "#" + std::to_string(s)});
  return run_jobs(jobs);
}

PipelineReport MatchingPipeline::run_jobs(const std::vector<JobSpec>& solvers) {
  Timer batch_timer;
  const std::size_t per_instance = solvers.size();
  const std::size_t num_jobs = instances_.size() * per_instance;

  PipelineReport report;
  report.jobs.resize(num_jobs);

  // Deterministic cache plan: the first job in instance-major order with a
  // given (instance fingerprint, solver key) computes; later duplicates
  // copy its outcome after the fact.  Deciding this *before* execution
  // makes the report independent of how concurrent jobs interleave.
  std::vector<std::size_t> source(num_jobs);
  std::map<std::pair<std::uint64_t, std::string>, std::size_t> first_job;
  std::vector<std::size_t> worklist;
  worklist.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    source[j] = j;
    if (options_.cache_results) {
      const auto [it, inserted] = first_job.try_emplace(
          {instances_[j / per_instance].fingerprint,
           solvers[j % per_instance].cache_key},
          j);
      if (!inserted) {
        source[j] = it->second;
        continue;
      }
    }
    worklist.push_back(j);
  }

  const auto run_one = [&](std::size_t j, device::Device& dev) {
    const PipelineInstance& inst = instances_[j / per_instance];
    const Solver& solver = *solvers[j % per_instance].solver;
    const SolveContext ctx{.device = &dev, .threads = options_.solver_threads};
    PipelineJob job;
    job.instance = j / per_instance;
    job.solver = solvers[j % per_instance].label;
    try {
      SolveResult result = solver.run(ctx, inst.graph, inst.init);
      job.stats = std::move(result.stats);
      job.ok = true;
      if (options_.verify) {
        if (!result.matching.is_valid(inst.graph)) {
          job.ok = false;
          job.error = "invalid matching: " +
                      result.matching.first_violation(inst.graph);
        } else if (solver.caps().exact &&
                   job.stats.cardinality != inst.maximum_cardinality) {
          job.ok = false;
          job.error = "not maximum: got " +
                      std::to_string(job.stats.cardinality) + ", want " +
                      std::to_string(inst.maximum_cardinality);
        } else if (solver.caps().exact &&
                   !matching::is_maximum(inst.graph, result.matching)) {
          // Independent Berge certificate, deliberately redundant with
          // the reference-cardinality check so a bug shared by the
          // solver and the ground-truth HK cannot slip through.
          job.ok = false;
          job.error = "Berge certificate failed: an augmenting path exists";
        } else if (!solver.caps().exact &&
                   job.stats.cardinality > inst.maximum_cardinality) {
          job.ok = false;
          job.error = "cardinality " + std::to_string(job.stats.cardinality) +
                      " exceeds the reference maximum " +
                      std::to_string(inst.maximum_cardinality);
        }
      }
    } catch (const std::exception& e) {
      job.ok = false;
      job.error = e.what();
    }
    report.jobs[j] = std::move(job);  // each job index is written once
  };

  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  const unsigned concurrency = std::min<std::size_t>(
      options_.max_concurrent_jobs ? options_.max_concurrent_jobs : hardware,
      worklist.size());

  if (concurrency <= 1) {
    // The sequential schedule, on the pipeline's primary stream.
    for (const std::size_t j : worklist) run_one(j, device_);
  } else {
    // Work-stealing schedule: every scheduler thread owns one device
    // stream and pulls the next unclaimed job until the list is drained,
    // so uneven job costs never idle a stream behind a static partition.
    std::atomic<std::size_t> next{0};
    const auto scheduler = [&] {
      device::Device stream(engine_);
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= worklist.size()) return;
        run_one(worklist[i], stream);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(concurrency - 1);
    for (unsigned t = 0; t + 1 < concurrency; ++t)
      threads.emplace_back(scheduler);
    scheduler();  // the calling thread schedules too
    for (std::thread& t : threads) t.join();
  }

  // Serve the planned cache hits from their sources.  Cost fields are not
  // re-charged: the work happened once.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    if (source[j] == j) continue;
    PipelineJob job = report.jobs[source[j]];
    job.instance = j / per_instance;
    job.cached = true;
    job.stats.wall_ms = 0.0;
    job.stats.modeled_ms = 0.0;
    job.stats.device_launches = 0;
    report.jobs[j] = std::move(job);
  }

  for (const PipelineJob& job : report.jobs) {
    report.totals.jobs += 1;
    report.totals.failed += job.ok ? 0 : 1;
    report.totals.cache_hits += job.cached ? 1 : 0;
    report.totals.matched_pairs += job.stats.cardinality;
    report.totals.device_launches += job.stats.device_launches;
    report.totals.wall_ms += job.stats.wall_ms;
    report.totals.modeled_ms += job.stats.modeled_ms;
  }
  report.totals.batch_wall_ms = batch_timer.elapsed_ms();
  return report;
}

}  // namespace bpm
