#include "core/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/verify.hpp"

namespace bpm {

std::vector<const PipelineJob*> PipelineReport::jobs_for(
    std::size_t instance) const {
  std::vector<const PipelineJob*> out;
  for (const PipelineJob& job : jobs)
    if (job.instance == instance) out.push_back(&job);
  return out;
}

MatchingPipeline::MatchingPipeline(PipelineOptions options)
    : options_(options),
      device_({.mode = options.device_mode,
               .num_threads = options.device_threads}) {}

std::size_t MatchingPipeline::add_instance(std::string name,
                                           graph::BipartiteGraph graph) {
  PipelineInstance inst;
  inst.name = std::move(name);
  inst.graph = std::move(graph);
  inst.init = !options_.share_init ? matching::Matching(inst.graph)
              : options_.init_builder
                  ? options_.init_builder(inst.graph)
                  : matching::cheap_matching(inst.graph);
  inst.initial_cardinality = inst.init.cardinality();
  if (options_.verify)
    // Ground truth once per instance via Hopcroft–Karp seeded with the
    // shared init (tested against the independent reference in tests/).
    inst.maximum_cardinality =
        matching::hopcroft_karp(inst.graph, inst.init).cardinality();
  instances_.push_back(std::move(inst));
  return instances_.size() - 1;
}

PipelineReport MatchingPipeline::run(
    const std::vector<std::string>& solver_names) {
  // Resolve every name up front so a typo fails the whole batch loudly
  // instead of surfacing as per-job errors after minutes of solving.
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.reserve(solver_names.size());
  for (const std::string& name : solver_names)
    solvers.push_back(SolverRegistry::instance().create(name));
  return run_with(solvers);
}

PipelineReport MatchingPipeline::run_with(
    const std::vector<std::unique_ptr<Solver>>& solvers) {
  const SolveContext ctx{.device = &device_, .threads = options_.solver_threads};

  PipelineReport report;
  report.jobs.reserve(instances_.size() * solvers.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const PipelineInstance& inst = instances_[i];
    for (const std::unique_ptr<Solver>& solver : solvers) {
      PipelineJob job;
      job.instance = i;
      job.solver = solver->name();
      try {
        SolveResult result = solver->run(ctx, inst.graph, inst.init);
        job.stats = std::move(result.stats);
        job.ok = true;
        if (options_.verify) {
          if (!result.matching.is_valid(inst.graph)) {
            job.ok = false;
            job.error = "invalid matching: " +
                        result.matching.first_violation(inst.graph);
          } else if (solver->caps().exact &&
                     job.stats.cardinality != inst.maximum_cardinality) {
            job.ok = false;
            job.error = "not maximum: got " +
                        std::to_string(job.stats.cardinality) + ", want " +
                        std::to_string(inst.maximum_cardinality);
          } else if (solver->caps().exact &&
                     !matching::is_maximum(inst.graph, result.matching)) {
            // Independent Berge certificate, deliberately redundant with
            // the reference-cardinality check so a bug shared by the
            // solver and the ground-truth HK cannot slip through.
            job.ok = false;
            job.error = "Berge certificate failed: an augmenting path exists";
          } else if (!solver->caps().exact &&
                     job.stats.cardinality > inst.maximum_cardinality) {
            job.ok = false;
            job.error = "cardinality " + std::to_string(job.stats.cardinality) +
                        " exceeds the reference maximum " +
                        std::to_string(inst.maximum_cardinality);
          }
        }
      } catch (const std::exception& e) {
        job.ok = false;
        job.error = e.what();
      }

      report.totals.jobs += 1;
      report.totals.failed += job.ok ? 0 : 1;
      report.totals.matched_pairs += job.stats.cardinality;
      report.totals.device_launches += job.stats.device_launches;
      report.totals.wall_ms += job.stats.wall_ms;
      report.totals.modeled_ms += job.stats.modeled_ms;
      report.jobs.push_back(std::move(job));
    }
  }
  return report;
}

}  // namespace bpm
