#include "core/pipeline.hpp"

#include <atomic>
#include <map>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "serve/result_cache.hpp"
#include "util/timer.hpp"

namespace bpm {

namespace {

/// Cache hits and in-batch duplicates never re-charge cost fields: the
/// work happened in the run that solved the entry.
void strip_cost_fields(SolveStats& stats) {
  stats.wall_ms = 0.0;
  stats.modeled_ms = 0.0;
  stats.device_launches = 0;
}

}  // namespace

AdmittedJobResult run_admitted_job(
    const AdmittedJob& job, const std::function<device::Device&()>& stream,
    serve::ResultCache* cache, const PipelineOptions& options) {
  AdmittedJobResult out;
  const PipelineInstance& inst = *job.instance;
  auto job_sp = obs::span(options.tracer, "job", "pipeline");
  if (job_sp) {
    job_sp.arg("instance", inst.name);
    job_sp.arg("solver", job.solver->name());
    job_sp.arg("fingerprint", static_cast<std::int64_t>(inst.fingerprint));
  }
  if (cache && !job.cache_key.empty()) {
    if (std::optional<JobOutcome> hit =
            cache->get(inst.fingerprint, job.cache_key)) {
      out.outcome = std::move(*hit);
      out.cached = true;
      strip_cost_fields(out.outcome.stats);
      if (job_sp) job_sp.arg("cached", true);
      return out;
    }
  }
  Timer timer;
  const SolveContext ctx{.device = &stream(),
                         .threads = options.solver_threads,
                         .engines = options.engines,
                         .tracer = options.tracer};
  out.outcome = run_verified(*job.solver, ctx, inst.graph, inst.init,
                             options.verify ? inst.maximum_cardinality : -1);
  out.solve_ms = timer.elapsed_ms();
  // Verified results only (the shared-cache rule): a verify-off caller
  // never seeds the cache other consumers trust.
  if (cache && !job.cache_key.empty() && out.outcome.ok && options.verify)
    cache->put(inst.fingerprint, job.cache_key, out.outcome);
  return out;
}

std::vector<AdmittedJobResult> run_admitted_jobs(
    const std::vector<AdmittedJob>& jobs,
    const std::function<device::Device&()>& stream,
    serve::ResultCache* cache, const PipelineOptions& options) {
  std::vector<AdmittedJobResult> out(jobs.size());
  std::map<std::pair<std::uint64_t, std::string_view>, std::size_t> first;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const AdmittedJob& job = jobs[i];
    if (!job.cache_key.empty()) {
      const auto [it, inserted] =
          first.try_emplace({job.instance->fingerprint, job.cache_key}, i);
      if (!inserted) {
        // In-batch duplicate: the loop is sequential, so the source (an
        // earlier index) is already resolved.  Failed outcomes are never
        // dedup sources — the cache refuses to publish them and an
        // uncoalesced service would re-solve each duplicate — so the
        // duplicate solves for itself and takes over as the source.
        if (out[it->second].outcome.ok) {
          out[i] = out[it->second];
          out[i].cached = true;
          out[i].in_batch_dup = true;
          out[i].solve_ms = 0.0;
          strip_cost_fields(out[i].outcome.stats);
          continue;
        }
        it->second = i;
      }
    }
    out[i] = run_admitted_job(job, stream, cache, options);
  }
  return out;
}

std::vector<const PipelineJob*> PipelineReport::jobs_for(
    std::size_t instance) const {
  std::vector<const PipelineJob*> out;
  for (const PipelineJob& job : jobs)
    if (job.instance == instance) out.push_back(&job);
  return out;
}

MatchingPipeline::MatchingPipeline(PipelineOptions options)
    : options_(std::move(options)),
      engine_(std::make_shared<device::Engine>(
          device::EngineDescriptor{.backend = options_.device_backend,
                                   .mode = options_.device_mode,
                                   .threads = options_.device_threads})),
      device_(engine_) {}

PipelineInstance admit_instance(std::string name, graph::BipartiteGraph graph,
                                const PipelineOptions& options) {
  PipelineInstance inst;
  inst.name = std::move(name);
  inst.graph = std::move(graph);
  inst.init = !options.share_init ? matching::Matching(inst.graph)
              : options.init_builder
                  ? options.init_builder(inst.graph)
                  : matching::cheap_matching(inst.graph);
  inst.initial_cardinality = inst.init.cardinality();
  inst.fingerprint = graph::structural_fingerprint(inst.graph);
  // Full feature extraction for policy resolution (and backend-fit
  // routing via `degree_skew`) — O(cols) over the CSR pointers, amortised
  // over every job this instance will serve.
  inst.features = policy::compute_features(inst.graph,
                                           inst.initial_cardinality);
  inst.degree_skew = inst.features.degree_skew;
  if (options.verify)
    // Ground truth once per instance via Hopcroft–Karp seeded with the
    // shared init (tested against the independent reference in tests/).
    inst.maximum_cardinality =
        matching::hopcroft_karp(inst.graph, inst.init).cardinality();
  return inst;
}

std::size_t MatchingPipeline::add_instance(std::string name,
                                           graph::BipartiteGraph graph) {
  instances_.push_back(
      admit_instance(std::move(name), std::move(graph), options_));
  return instances_.size() - 1;
}

std::size_t MatchingPipeline::add_instance(PipelineInstance instance) {
  if (instance.fingerprint == 0)
    instance.fingerprint = graph::structural_fingerprint(instance.graph);
  instances_.push_back(std::move(instance));
  return instances_.size() - 1;
}

void MatchingPipeline::set_shared_cache(
    std::shared_ptr<serve::ResultCache> cache) {
  options_.shared_cache = std::move(cache);
}

PipelineReport MatchingPipeline::run(
    const std::vector<std::string>& solver_specs) {
  // Parse every entry up front so a typo fails the whole batch loudly
  // instead of surfacing as per-job errors after minutes of solving.
  std::vector<SolverSpec> specs;
  specs.reserve(solver_specs.size());
  for (const std::string& spec : solver_specs)
    specs.push_back(SolverSpec::parse(spec));
  return run_specs(specs);
}

PipelineReport MatchingPipeline::run_specs(
    const std::vector<SolverSpec>& specs) {
  std::vector<std::unique_ptr<Solver>> solvers;
  std::vector<JobSpec> jobs;
  solvers.reserve(specs.size());
  jobs.reserve(specs.size());
  for (const SolverSpec& spec : specs) {
    solvers.push_back(spec.instantiate());
    // The canonical spec is the configuration's identity: two spellings of
    // the same tuning share cache entries, different tunings never do.
    jobs.push_back({solvers.back().get(), spec.canonical(), spec.canonical(),
                    /*shareable=*/true});
  }
  return run_jobs(jobs);
}

PipelineReport MatchingPipeline::run_with(
    const std::vector<std::unique_ptr<Solver>>& solvers) {
  std::vector<JobSpec> jobs;
  jobs.reserve(solvers.size());
  for (std::size_t s = 0; s < solvers.size(); ++s)
    // Keyed by position: a caller-tuned solver object is only identical to
    // itself (its options are not observable through the interface), so
    // these jobs also stay out of any cross-batch shared cache.
    jobs.push_back({solvers[s].get(), solvers[s]->name(),
                    solvers[s]->name() + "#" + std::to_string(s),
                    /*shareable=*/false});
  return run_jobs(jobs);
}

PipelineReport MatchingPipeline::run_jobs(const std::vector<JobSpec>& solvers) {
  Timer batch_timer;
  const std::size_t per_instance = solvers.size();
  const std::size_t num_jobs = instances_.size() * per_instance;
  auto batch_sp = obs::span(options_.tracer, "batch", "pipeline");
  if (batch_sp) {
    batch_sp.arg("instances", static_cast<std::int64_t>(instances_.size()));
    batch_sp.arg("jobs", static_cast<std::int64_t>(num_jobs));
  }

  PipelineReport report;
  report.jobs.resize(num_jobs);

  // Deterministic cache plan: the first job in instance-major order with a
  // given (instance fingerprint, solver key) computes; later duplicates
  // copy its outcome after the fact.  Deciding this *before* execution
  // makes the report independent of how concurrent jobs interleave.
  std::vector<std::size_t> source(num_jobs);
  std::map<std::pair<std::uint64_t, std::string>, std::size_t> first_job;
  std::vector<std::size_t> worklist;
  worklist.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    source[j] = j;
    if (options_.cache_results) {
      const auto [it, inserted] = first_job.try_emplace(
          {instances_[j / per_instance].fingerprint,
           solvers[j % per_instance].cache_key},
          j);
      if (!inserted) {
        source[j] = it->second;
        continue;
      }
    }
    worklist.push_back(j);
  }

  const auto run_one = [&](std::size_t j, device::Device& dev) {
    const PipelineInstance& inst = instances_[j / per_instance];
    const JobSpec& spec = solvers[j % per_instance];
    // Cross-batch cache: canonical-spec jobs may have been solved by an
    // earlier batch (or another pipeline/service sharing the cache).
    const bool shared =
        options_.cache_results && options_.shared_cache && spec.shareable;
    const std::function<device::Device&()> stream =
        [&dev]() -> device::Device& { return dev; };
    const AdmittedJob admitted{
        &inst, spec.solver,
        shared ? std::string_view(spec.cache_key) : std::string_view()};
    AdmittedJobResult r = run_admitted_job(
        admitted, stream, shared ? options_.shared_cache.get() : nullptr,
        options_);
    PipelineJob job;
    job.instance = j / per_instance;
    job.solver = spec.label;
    job.stats = std::move(r.outcome.stats);
    job.ok = r.outcome.ok;
    job.cached = r.cached;
    job.error = std::move(r.outcome.error);
    report.jobs[j] = std::move(job);  // each job index is written once
  };

  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  const unsigned concurrency = std::min<std::size_t>(
      options_.max_concurrent_jobs ? options_.max_concurrent_jobs : hardware,
      worklist.size());

  if (concurrency <= 1) {
    // The sequential schedule, on the pipeline's primary stream.
    if (options_.tracer != nullptr) device_.set_tracer(options_.tracer);
    for (const std::size_t j : worklist) run_one(j, device_);
  } else {
    // Work-stealing schedule: every scheduler thread owns one device
    // stream and pulls the next unclaimed job until the list is drained,
    // so uneven job costs never idle a stream behind a static partition.
    std::atomic<std::size_t> next{0};
    const auto scheduler = [&] {
      device::Device stream(engine_);
      if (options_.tracer != nullptr) stream.set_tracer(options_.tracer);
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= worklist.size()) return;
        run_one(worklist[i], stream);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(concurrency - 1);
    for (unsigned t = 0; t + 1 < concurrency; ++t)
      threads.emplace_back(scheduler);
    scheduler();  // the calling thread schedules too
    for (std::thread& t : threads) t.join();
  }

  // Serve the planned cache hits from their sources.  Cost fields are not
  // re-charged: the work happened once.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    if (source[j] == j) continue;
    PipelineJob job = report.jobs[source[j]];
    job.instance = j / per_instance;
    job.cached = true;
    job.stats.wall_ms = 0.0;
    job.stats.modeled_ms = 0.0;
    job.stats.device_launches = 0;
    report.jobs[j] = std::move(job);
  }

  for (const PipelineJob& job : report.jobs) {
    report.totals.jobs += 1;
    report.totals.failed += job.ok ? 0 : 1;
    report.totals.cache_hits += job.cached ? 1 : 0;
    report.totals.matched_pairs += job.stats.cardinality;
    report.totals.device_launches += job.stats.device_launches;
    report.totals.wall_ms += job.stats.wall_ms;
    report.totals.modeled_ms += job.stats.modeled_ms;
  }
  report.totals.batch_wall_ms = batch_timer.elapsed_ms();
  return report;
}

}  // namespace bpm
