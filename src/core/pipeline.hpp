#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "policy/features.hpp"

namespace bpm {

namespace serve {
class ResultCache;
}  // namespace serve

struct PipelineOptions {
  /// Backend of the pipeline's shared device engine: the modeled C2050
  /// simulator or the real multicore host executor
  /// (`device::HostParallelEngine`).
  device::Backend device_backend = device::default_backend();
  /// Execution mode of the pipeline's shared device engine (used by every
  /// needs-device solver in the batch).
  device::ExecMode device_mode = device::ExecMode::kConcurrent;
  unsigned device_threads = 0;  ///< device pool workers (0 = hardware)
  unsigned solver_threads = 0;  ///< multicore solver workers (0 = hardware)
  /// Upper bound on (instance × solver) jobs in flight at once, each on
  /// its own device stream (0 = hardware concurrency).  1 reproduces the
  /// sequential schedule exactly; the report order is identical either
  /// way.
  unsigned max_concurrent_jobs = 0;
  /// Serve a job whose (instance fingerprint, solver spec) pair already
  /// occurred earlier in the batch from that job's result instead of
  /// re-solving; hits are flagged on the job and counted in the totals.
  bool cache_results = true;
  /// Optional process-lifetime result cache shared *across* batches (and
  /// with `serve::MatchingService`): jobs selected by canonical spec
  /// (`run`/`run_specs`) consult it before solving and publish verified
  /// results into it.  Jobs from `run_with` never touch it — a caller-tuned
  /// solver object's configuration is not observable, so it has no stable
  /// cross-batch identity.  Null (the default) keeps caching batch-local.
  std::shared_ptr<serve::ResultCache> shared_cache;
  /// Check every job's matching: edge-validity plus maximality against the
  /// per-instance reference cardinality (heuristic solvers are only
  /// required to be valid and ≤ maximum).
  bool verify = true;
  /// Build the initial matching once per instance and hand it to every
  /// solver; false starts every job from an empty matching instead.
  bool share_init = true;
  /// How the shared init is built; defaults to the paper's cheap greedy
  /// heuristic (set e.g. matching::karp_sipser for a stronger start).
  std::function<matching::Matching(const graph::BipartiteGraph&)> init_builder;
  /// Engine fleet handed to every job's `SolveContext::engines`: sharded
  /// solvers (`g-pr-sh`, `shards=K|auto`) spread one massive instance over
  /// these engines, one shard per engine round-robin.  Empty (the default)
  /// lets sharded jobs fall back to the job's own stream engine.
  std::vector<std::shared_ptr<device::Engine>> engines;
  /// Optional trace sink: each admitted job records a `"job"` span (solver
  /// spec, instance fingerprint, cache outcome) and hands the tracer to its
  /// solve (`SolveContext::tracer`), so one timeline shows the scheduler's
  /// job packing above the per-solve phase spans.  Must outlive the batch;
  /// null or disabled costs one branch per job.
  obs::Tracer* tracer = nullptr;
};

/// One graph admitted to the batch, with everything that is computed once
/// and reused across all solvers that run on it.
struct PipelineInstance {
  std::string name;
  graph::BipartiteGraph graph;
  matching::Matching init;  ///< shared greedy init (see share_init)
  graph::index_t initial_cardinality = 0;
  /// Reference maximum cardinality (computed once when verify is on;
  /// -1 when verification is disabled).
  graph::index_t maximum_cardinality = -1;
  /// Structural hash of the graph (dimensions + CSR arrays): two admitted
  /// instances with equal fingerprints are the same graph, which is what
  /// keys the result cache.
  std::uint64_t fingerprint = 0;
  /// Column-degree skew (max/mean over non-empty columns), computed once
  /// at admission.  1 is perfectly uniform; hub instances run to 10+.
  /// Dispatchers use it to route skewed instances to engines whose
  /// backend thrives on balanced kernels (`serve::Routing::kBackendFit`).
  double degree_skew = 0.0;
  /// The full feature vector behind `degree_skew` (size, density, hub
  /// mass, deficiency), computed once at admission: what
  /// `policy::AutoSolver` resolves against at dispatch time.  Cached here
  /// means cached on `serve::InstanceStore` entries, which dedup by
  /// `fingerprint`.
  policy::InstanceFeatures features;
};

/// Builds the per-instance shared state the honoured `options` ask for:
/// the shared init, the reference maximum cardinality (when verifying),
/// and the structural fingerprint.  `MatchingPipeline::add_instance` and
/// `serve::InstanceStore` both admit through this, so a pipeline batch and
/// a serving process agree bit-for-bit on inits, ground truth, and cache
/// identity.
[[nodiscard]] PipelineInstance admit_instance(std::string name,
                                              graph::BipartiteGraph graph,
                                              const PipelineOptions& options);

/// Outcome of one (instance × solver) job.
struct PipelineJob {
  std::size_t instance = 0;  ///< index into MatchingPipeline::instances()
  std::string solver;
  SolveStats stats;
  bool ok = false;     ///< ran to completion and passed verification
  bool cached = false; ///< served from an earlier identical job; wall/model
                       ///< time and launches are not re-charged
  std::string error;   ///< why not, when !ok
};

struct PipelineTotals {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  std::size_t cache_hits = 0;      ///< jobs served without re-solving
  std::int64_t matched_pairs = 0;  ///< sum of job cardinalities
  std::int64_t device_launches = 0;
  double wall_ms = 0.0;     ///< sum of per-job wall times (solver cost)
  double modeled_ms = 0.0;  ///< sum of modeled device times
  /// Wall time of the whole batch, scheduler included.  With concurrent
  /// jobs this is below `wall_ms` (jobs overlap); do not conflate the two:
  /// `wall_ms` answers "how much solver work ran", `batch_wall_ms` answers
  /// "how long did the caller wait".
  double batch_wall_ms = 0.0;
};

struct PipelineReport {
  std::vector<PipelineJob> jobs;  ///< instance-major (instance × solver) order
  PipelineTotals totals;

  [[nodiscard]] bool all_ok() const { return totals.failed == 0; }

  /// The jobs of one instance, in solver order.
  [[nodiscard]] std::vector<const PipelineJob*> jobs_for(
      std::size_t instance) const;
};

/// One pre-admitted job for `run_admitted_jobs`: a borrowed admitted
/// instance, a borrowed solver, and the canonical spec identifying the
/// solver's configuration in the result cache (empty keeps the job out of
/// the cache and out of in-batch dedup — the `run_with` rule).  All three
/// fields are borrowed; the caller keeps them alive for the call.
struct AdmittedJob {
  const PipelineInstance* instance = nullptr;
  const Solver* solver = nullptr;
  std::string_view cache_key;
};

struct AdmittedJobResult {
  JobOutcome outcome;
  bool cached = false;    ///< served without solving (cache or in-batch dup);
                          ///< cost fields are zeroed, never re-charged
  bool in_batch_dup = false;  ///< cached via an earlier job of this batch,
                              ///< not the shared `ResultCache`
  double solve_ms = 0.0;  ///< this job's own solve+verify wall (0 if cached)
};

/// Runs one pre-admitted job: probes `cache` (when the job carries a
/// cache key), solves and verifies otherwise, and publishes a verified
/// result back.  `stream` is only invoked when the job actually solves,
/// so a cache hit touches no device at all.  This is the allocation-free
/// per-job core of `run_admitted_jobs`, which the pipeline's scheduler
/// calls directly from its hot loop.
[[nodiscard]] AdmittedJobResult run_admitted_job(
    const AdmittedJob& job, const std::function<device::Device&()>& stream,
    serve::ResultCache* cache, const PipelineOptions& options);

/// The batch entry point shared by `MatchingPipeline`'s scheduler and the
/// serving layer's request coalescer: runs pre-admitted jobs back to back
/// on one device stream, probing `cache` before each solve and publishing
/// verified results into it.  The first job with a given (fingerprint,
/// cache_key) identity to succeed is the dedup source; in-batch
/// duplicates copy its outcome — this is what makes a coalesced batch of
/// duplicate requests cost one solve.  `stream` is only invoked when a
/// job actually solves, so a dispatch served entirely from the cache
/// touches no device at all.
[[nodiscard]] std::vector<AdmittedJobResult> run_admitted_jobs(
    const std::vector<AdmittedJob>& jobs,
    const std::function<device::Device&()>& stream,
    serve::ResultCache* cache, const PipelineOptions& options);

/// Batched matching runs: many instances × many solvers scheduled
/// concurrently over the streams of one shared device engine, with
/// per-instance init reuse, a result cache, and per-job verification.
/// This is the serving layer: admit work with `add_instance`, then execute
/// a solver set over the whole batch with `run` — any registry name or
/// tuned spec (`g-pr-shr:k=1.5`) works, including solvers registered after
/// this library was built.
///
/// Jobs are pulled from a shared worklist by `max_concurrent_jobs`
/// scheduler threads, each running on its own device stream; the report is
/// always in deterministic instance-major order regardless of how the jobs
/// interleaved, and cache hits resolve to the earliest identical job in
/// that order, so a concurrent batch reports exactly what the sequential
/// schedule would.
///
/// ```
/// MatchingPipeline pipe({.max_concurrent_jobs = 4});
/// pipe.add_instance("a", graph_a);
/// pipe.add_instance("b", graph_b);
/// PipelineReport rep = pipe.run({"g-pr-shr:k=1.5", "hk", "p-dbfs"});
/// // rep.jobs: 6 verified results; rep.totals: aggregate stats, including
/// // batch_wall_ms (caller wait) vs wall_ms (summed solver cost).
/// ```
class MatchingPipeline {
 public:
  explicit MatchingPipeline(PipelineOptions options = {});

  /// Admits a graph to the batch; builds the shared greedy init and (when
  /// verifying) the reference cardinality once.  Returns the instance
  /// index used in `PipelineJob::instance`.
  std::size_t add_instance(std::string name, graph::BipartiteGraph graph);

  /// Admits an already-built instance (e.g. a harness's precomputed suite
  /// or another pipeline's) without redoing the init / ground-truth work;
  /// the caller guarantees its fields are consistent with this pipeline's
  /// options.
  std::size_t add_instance(PipelineInstance instance);

  [[nodiscard]] const std::vector<PipelineInstance>& instances() const {
    return instances_;
  }

  /// Runs every solver in `solver_specs` on every admitted instance.  Each
  /// entry is a registry name or a tuned spec (`SolverSpec` grammar); a
  /// job that throws or fails verification is recorded with `ok == false`
  /// and does not abort the batch.
  [[nodiscard]] PipelineReport run(
      const std::vector<std::string>& solver_specs);

  /// Same, over parsed specs.
  [[nodiscard]] PipelineReport run_specs(const std::vector<SolverSpec>& specs);

  /// Same, over caller-configured solver instances (e.g. after
  /// `set_option` tuning that the spec grammar cannot express).  Cache
  /// hits only occur between jobs of the *same* solver object, since two
  /// objects with one name may be tuned differently.
  [[nodiscard]] PipelineReport run_with(
      const std::vector<std::unique_ptr<Solver>>& solvers);

  /// Reschedule knob for sweeps: change the concurrency bound between
  /// runs without re-admitting instances.
  void set_max_concurrent_jobs(unsigned n) { options_.max_concurrent_jobs = n; }

  /// Attach (or detach, with null) a cross-batch result cache between
  /// runs — see `PipelineOptions::shared_cache`.
  void set_shared_cache(std::shared_ptr<serve::ResultCache> cache);

  /// The engine whose streams execute the batch's device jobs.
  [[nodiscard]] const std::shared_ptr<device::Engine>& engine() const {
    return engine_;
  }

  /// The pipeline's primary device stream (e.g. for one-off runs outside
  /// the batch); per-job streams share its engine, not its counters.
  [[nodiscard]] device::Device& device() { return device_; }

 private:
  struct JobSpec {
    const Solver* solver;
    std::string label;      ///< reported as PipelineJob::solver (canonical
                            ///< spec, so tuned variants are tellable apart)
    std::string cache_key;  ///< identity of the solver's configuration
    /// The cache key is a canonical spec, stable across batches and
    /// processes — only such jobs may use PipelineOptions::shared_cache.
    bool shareable = false;
  };

  [[nodiscard]] PipelineReport run_jobs(const std::vector<JobSpec>& solvers);

  PipelineOptions options_;
  std::shared_ptr<device::Engine> engine_;
  device::Device device_;
  std::vector<PipelineInstance> instances_;
};

}  // namespace bpm
