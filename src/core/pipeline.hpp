#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm {

struct PipelineOptions {
  /// Execution mode of the pipeline's shared device (used by every
  /// needs-device solver in the batch).
  device::ExecMode device_mode = device::ExecMode::kConcurrent;
  unsigned device_threads = 0;  ///< device pool workers (0 = hardware)
  unsigned solver_threads = 0;  ///< multicore solver workers (0 = hardware)
  /// Check every job's matching: edge-validity plus maximality against the
  /// per-instance reference cardinality (heuristic solvers are only
  /// required to be valid and ≤ maximum).
  bool verify = true;
  /// Build the initial matching once per instance and hand it to every
  /// solver; false starts every job from an empty matching instead.
  bool share_init = true;
  /// How the shared init is built; defaults to the paper's cheap greedy
  /// heuristic (set e.g. matching::karp_sipser for a stronger start).
  std::function<matching::Matching(const graph::BipartiteGraph&)> init_builder;
};

/// One graph admitted to the batch, with everything that is computed once
/// and reused across all solvers that run on it.
struct PipelineInstance {
  std::string name;
  graph::BipartiteGraph graph;
  matching::Matching init;  ///< shared greedy init (see share_init)
  graph::index_t initial_cardinality = 0;
  /// Reference maximum cardinality (computed once when verify is on;
  /// -1 when verification is disabled).
  graph::index_t maximum_cardinality = -1;
};

/// Outcome of one (instance × solver) job.
struct PipelineJob {
  std::size_t instance = 0;  ///< index into MatchingPipeline::instances()
  std::string solver;
  SolveStats stats;
  bool ok = false;     ///< ran to completion and passed verification
  std::string error;   ///< why not, when !ok
};

struct PipelineTotals {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  std::int64_t matched_pairs = 0;  ///< sum of job cardinalities
  std::int64_t device_launches = 0;
  double wall_ms = 0.0;     ///< sum of per-job wall times
  double modeled_ms = 0.0;  ///< sum of modeled device times
};

struct PipelineReport {
  std::vector<PipelineJob> jobs;  ///< instance-major (instance × solver) order
  PipelineTotals totals;

  [[nodiscard]] bool all_ok() const { return totals.failed == 0; }

  /// The jobs of one instance, in solver order.
  [[nodiscard]] std::vector<const PipelineJob*> jobs_for(
      std::size_t instance) const;
};

/// Batched matching runs: many instances × many solvers through one shared
/// device, with per-instance init reuse and per-job verification.  This is
/// the serving-layer seed: admit work with `add_instance`, then execute a
/// solver set over the whole batch with `run` — any registry name works,
/// including solvers registered after this library was built.
///
/// ```
/// MatchingPipeline pipe;
/// pipe.add_instance("a", graph_a);
/// pipe.add_instance("b", graph_b);
/// PipelineReport rep = pipe.run({"g-pr-shr", "hk", "p-dbfs"});
/// // rep.jobs: 6 verified results; rep.totals: aggregate stats.
/// ```
class MatchingPipeline {
 public:
  explicit MatchingPipeline(PipelineOptions options = {});

  /// Admits a graph to the batch; builds the shared greedy init and (when
  /// verifying) the reference cardinality once.  Returns the instance
  /// index used in `PipelineJob::instance`.
  std::size_t add_instance(std::string name, graph::BipartiteGraph graph);

  [[nodiscard]] const std::vector<PipelineInstance>& instances() const {
    return instances_;
  }

  /// Runs every solver in `solver_names` (registry names) on every admitted
  /// instance.  A job that throws or fails verification is recorded with
  /// `ok == false` and does not abort the batch.
  [[nodiscard]] PipelineReport run(
      const std::vector<std::string>& solver_names);

  /// Same, over caller-configured solver instances (e.g. after
  /// `set_option` tuning that plain registry names cannot express).
  [[nodiscard]] PipelineReport run_with(
      const std::vector<std::unique_ptr<Solver>>& solvers);

  /// The shared device (e.g. to reconfigure the model between runs).
  [[nodiscard]] device::Device& device() { return device_; }

 private:
  PipelineOptions options_;
  device::Device device_;
  std::vector<PipelineInstance> instances_;
};

}  // namespace bpm
