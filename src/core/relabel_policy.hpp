#pragma once

#include <cstdint>

#include "core/options.hpp"

namespace bpm::gpu {

/// GETITERGR (Algorithm 3 line 7 / Algorithm 7 line 8): given the depth
/// `max_level` of the global relabel that just finished and the current
/// loop counter, returns the loop index at which the *next* global
/// relabel fires.
///
///  * kFixed:    loop + max(1, round(k))            — "(fix, k)"
///  * kAdaptive: loop + max(1, round(k·maxLevel))   — "(adaptive, k)"
///
/// The adaptive rationale (paper Theorem 2): a deficiency-d matching has d
/// vertex-disjoint augmenting paths of total length < m+n, and maxLevel
/// bounds the alternating-BFS depth, so k·maxLevel push-kernel executions
/// give the surviving active columns time to traverse an average-length
/// path before labels go stale.
[[nodiscard]] std::int64_t next_global_relabel_loop(const GprOptions& options,
                                                    graph::index_t max_level,
                                                    std::int64_t loop);

}  // namespace bpm::gpu
