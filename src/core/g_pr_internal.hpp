#pragma once

// Shared internals of the G-PR drivers (core/g_pr.cpp) and the sharded
// execution path (core/shard.cpp): the activity test, the Γ(v) argmin
// scan, the SHRKRNL-shaped stream compaction, the relabel scheduler, and
// the edge-balanced push with intra-item min-combine.  Internal header —
// nothing here is part of the public solver surface.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/g_gr.hpp"
#include "core/options.hpp"
#include "core/relabel_policy.hpp"
#include "core/stats.hpp"
#include "device/device.hpp"
#include "device/mem.hpp"
#include "device/scan.hpp"
#include "matching/matching.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace bpm::gpu::detail {

using matching::kUnmatchable;
using matching::kUnmatched;

/// The matching invariant's activity test (DESIGN.md D3): a column is
/// active iff it is unmatched or its match was stolen.  Only evaluated by
/// the thread owning v (within kernels) or between launches, so its two
/// loads cannot race with this thread's own writes.
inline bool is_active_column(const DeviceState& st, index_t v) {
  const index_t mu_v = st.mu_col.load(static_cast<std::size_t>(v));
  if (mu_v == kUnmatched) return true;
  if (mu_v < 0) return false;  // kUnmatchable
  return st.mu_row.load(static_cast<std::size_t>(mu_v)) != v;
}

/// Γ(v) scan of every push kernel: the minimum-ψ row, with the paper's
/// early exit at the infimum ψ(v) − 1 (neighborhood invariant).
struct MinScan {
  index_t psi_min;
  index_t u_min;
  std::int64_t scanned;  ///< adjacency entries inspected (device model work)
};

/// Flat-slice form: scans `adj[0, degree)` directly.  The balanced
/// frontier caches each active column's CSR slice start so its push
/// kernel reads the adjacency without resolving `col_ptr` again; the
/// intra-item min-combine scans sub-slices of one column with it.
inline MinScan scan_min_row(const index_t* adj, std::int64_t degree,
                            const DeviceState& st, index_t psi_v,
                            index_t psi_inf) {
  MinScan r{psi_inf, kUnmatched, 0};
  for (std::int64_t e = 0; e < degree; ++e) {
    const index_t u = adj[e];
    ++r.scanned;
    const index_t pu = st.psi_row.load(static_cast<std::size_t>(u));
    if (pu < r.psi_min) {
      r.psi_min = pu;
      r.u_min = u;
      if (r.psi_min == psi_v - 1) break;
    }
  }
  return r;
}

inline MinScan scan_min_row(const BipartiteGraph& g, const DeviceState& st,
                            index_t v, index_t psi_v, index_t psi_inf) {
  const std::span<const index_t> nb = g.col_neighbors(v);
  return scan_min_row(nb.data(), static_cast<std::int64_t>(nb.size()), st,
                      psi_v, psi_inf);
}

/// G-PR-SHRKRNL's stream-compaction shape, shared by the shrink driver and
/// the balanced frontier (paper §III-C2): per-worker survivor counting
/// into cache-line-padded tallies, a serial prefix over the (tiny) worker
/// counts, then per-worker writes into private output regions.
/// `resolve(i)` names slot i's surviving column or −1; `prepare(total)`
/// sizes the outputs between the passes; `emit(out, v)` stores survivor
/// `v` at dense index `out` (each index written by exactly one worker).
/// Returns the survivor count.  Two `launch_chunked` launches; the model
/// work is charged by the caller.
template <typename Resolve, typename Prepare, typename Emit>
std::int64_t compact_survivors(device::Device& dev, std::int64_t len,
                               Resolve&& resolve, Prepare&& prepare,
                               Emit&& emit) {
  std::vector<device::PaddedCount> tallies(dev.num_workers());
  dev.launch_chunked(len, [&](unsigned w, std::int64_t begin,
                              std::int64_t end) {
    std::int64_t count = 0;
    for (std::int64_t i = begin; i < end; ++i)
      if (resolve(i) != -1) ++count;
    tallies[w].value = count;
  });
  std::vector<std::int64_t> counts(dev.num_workers() + 1, 0);
  for (std::size_t w = 0; w < tallies.size(); ++w)
    counts[w + 1] = counts[w] + tallies[w].value;
  prepare(counts.back());
  dev.launch_chunked(len, [&](unsigned w, std::int64_t begin,
                              std::int64_t end) {
    std::int64_t out = counts[w];
    for (std::int64_t i = begin; i < end; ++i) {
      const index_t v = resolve(i);
      if (v != -1) emit(out++, v);
    }
  });
  return counts.back();
}

inline std::int64_t loop_bound(const BipartiteGraph& g,
                               const GprOptions& options) {
  if (options.max_loops == 0) return INT64_MAX;
  if (options.max_loops > 0) return options.max_loops;
  return 64 * static_cast<std::int64_t>(g.psi_infinity()) + 1024;
}

[[noreturn]] inline void loop_bound_exceeded() {
  throw std::runtime_error(
      "g_pr: loop bound exceeded — termination regression (see DESIGN.md D8)");
}

/// Schedules global relabels for both drivers: synchronous G-GR calls, or
/// — with options.concurrent_global_relabel — the stream-overlapped
/// shadow relabel for every non-initial one (the initial relabel stays
/// synchronous; the paper found exact labels before the first push kernel
/// critical).  Returns true when fresh labels were published this loop
/// (the active-list driver uses that as its shrink trigger).
class RelabelScheduler {
 public:
  RelabelScheduler(const BipartiteGraph& g, const GprOptions& options)
      : options_(options), async_(g.num_rows(), g.num_cols()) {
    iter_gr_ = options.initial_global_relabel
                   ? 0
                   : next_global_relabel_loop(options, /*max_level=*/8, 0);
  }

  bool on_loop(device::Device& dev, const BipartiteGraph& g, DeviceState& st,
               std::int64_t loop, GprStats& stats, Timer& timer) {
    bool published = false;
    const bool overlap =
        options_.concurrent_global_relabel && stats.global_relabels > 0;
    if (!overlap) {
      if (loop == iter_gr_) {
        auto sp = obs::span(dev.tracer(), "global-relabel", "phase");
        if (sp) sp.arg("loop", loop);
        timer.restart();
        const GrResult gr = g_gr(dev, g, st);
        stats.gr_ms += timer.elapsed_ms();
        ++stats.global_relabels;
        stats.gr_level_kernels += gr.level_kernels;
        max_level_ = gr.max_level;
        stats.last_max_level = max_level_;
        iter_gr_ = next_global_relabel_loop(options_, max_level_, loop);
        published = true;
      }
      return published;
    }
    timer.restart();
    if (loop >= iter_gr_ && !async_.running()) {
      if (dirty_completions_ >= kMaxDirtyRetries) {
        // Contention keeps invalidating the snapshots; pay for one
        // synchronous relabel to guarantee fresh labels.
        auto sp = obs::span(dev.tracer(), "global-relabel", "phase");
        if (sp) {
          sp.arg("loop", loop);
          sp.arg("forced_sync", true);
        }
        const GrResult gr = g_gr(dev, g, st);
        ++stats.global_relabels;
        stats.gr_level_kernels += gr.level_kernels;
        max_level_ = gr.max_level;
        stats.last_max_level = max_level_;
        iter_gr_ = next_global_relabel_loop(options_, max_level_, loop);
        dirty_completions_ = 0;
        stats.gr_ms += timer.elapsed_ms();
        return true;
      }
      st.mu_dirty.reset();
      if (obs::Tracer* tracer = dev.tracer(); tracer && tracer->enabled())
        tracer->instant("global-relabel-async-start", "phase",
                        obs::arg_json("loop", loop));
      async_.start(dev, g, st);
      ++stats.concurrent_relabels;
    }
    if (async_.running()) {
      auto sp = obs::span(dev.tracer(), "global-relabel", "phase");
      if (sp) {
        sp.arg("loop", loop);
        sp.arg("async", true);
      }
      ++stats.gr_level_kernels;
      if (async_.step(dev, g)) {
        if (st.mu_dirty.is_raised()) {
          // Pushes rewired the matching mid-flight: the snapshot labels
          // may over-estimate and must be discarded (see
          // AsyncGlobalRelabel's contract).  Retry with a fresh snapshot
          // on the next loop.
          ++stats.async_discarded;
          ++dirty_completions_;
        } else {
          async_.apply(dev, g, st);
          ++stats.global_relabels;
          max_level_ = async_.max_level();
          stats.last_max_level = max_level_;
          iter_gr_ = next_global_relabel_loop(options_, max_level_, loop);
          dirty_completions_ = 0;
          published = true;
        }
      }
    }
    stats.gr_ms += timer.elapsed_ms();
    return published;
  }

 private:
  static constexpr int kMaxDirtyRetries = 2;

  const GprOptions& options_;
  AsyncGlobalRelabel async_;
  std::int64_t iter_gr_ = 0;
  index_t max_level_ = 0;
  int dirty_completions_ = 0;
};

/// Dense active-column frontier SoA (the compaction output the balanced
/// push consumes): column ids, cached ψ, flat CSR slice starts, degrees.
struct BalancedFrontier {
  std::vector<index_t> cols, psi;
  std::vector<graph::offset_t> adj_begin;
  std::vector<std::int64_t> degree;

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(cols.size());
  }
  void resize_for(std::int64_t survivors) {
    const auto sz = static_cast<std::size_t>(survivors);
    cols.assign(sz, -1);
    psi.assign(sz, 0);
    adj_begin.assign(sz, 0);
    degree.assign(sz, 0);
  }
  void swap(BalancedFrontier& other) noexcept {
    cols.swap(other.cols);
    psi.swap(other.psi);
    adj_begin.swap(other.adj_begin);
    degree.swap(other.degree);
  }
};

/// PUSHKRNL's write phase, shared by the in-kernel path and the deferred
/// intra-item-combine path: given column v's scanned minimum, perform the
/// single/double push (guarded by the iA conflict stamp) or retire v.
/// `displaced_slot` receives the captured double-push column (−1 for a
/// single push, untouched when the push is blocked); `pushed_row_slot`,
/// when non-null, receives the row pushed onto — the sharded driver's
/// reconciliation reads it.  Returns model work units.
inline std::int64_t apply_push(DeviceState& st,
                               device::relaxed_vector<index_t>& i_a,
                               index_t loop_stamp, index_t psi_inf, index_t v,
                               const MinScan& r, index_t* displaced_slot,
                               index_t* pushed_row_slot) {
  std::int64_t work = 0;
  if (r.psi_min < psi_inf) {
    // Capture the displaced column *before* overwriting µ(u)
    // (DESIGN.md D4); w == −1 encodes a single push.
    const index_t w = st.mu_row.load(static_cast<std::size_t>(r.u_min));
    ++work;  // µ(u) gather
    if (w == kUnmatched ||
        i_a.load(static_cast<std::size_t>(w)) != loop_stamp) {
      if (w != kUnmatched) ++work;  // iA(µ(u)) gather
      st.mu_row.store(static_cast<std::size_t>(r.u_min), v);
      st.mu_col.store(static_cast<std::size_t>(v), r.u_min);
      st.psi_col.store(static_cast<std::size_t>(v), r.psi_min + 1);
      st.psi_row.store(static_cast<std::size_t>(r.u_min), r.psi_min + 2);
      st.mu_dirty.raise();
      *displaced_slot = w;
      if (pushed_row_slot != nullptr) *pushed_row_slot = r.u_min;
      work += 2;  // scattered µ(u), ψ(u) writes
    }
    // else: µ(u)'s holder is active this loop — pushing would let one
    // column enter the frontier twice (paper §III-C1).  The pusher stays
    // active, so the next compaction rolls it back.
  } else {
    st.mu_col.store(static_cast<std::size_t>(v), kUnmatchable);
    // The pusher goes inactive with no displaced column: the slot dies at
    // the next resolve.
  }
  return work;
}

/// The intra-item min-combine's fragment size: `requested` verbatim when
/// positive, 0 (off) when negative, otherwise an even split of the
/// frontier's total edges over the device's parallel lanes (the sim's
/// straggler-model lanes; 4 slots per worker on the host, matching its
/// oversubscription), floored so tiny frontiers never fragment.
inline std::int64_t resolve_split_grain(const device::Device& dev,
                                        std::int64_t requested,
                                        std::int64_t total) {
  if (requested > 0) return requested;
  if (requested < 0) return 0;
  const std::int64_t lanes =
      dev.backend() == device::Backend::kHost
          ? static_cast<std::int64_t>(dev.num_workers()) * 4
          : std::max(dev.model().lanes, 1);
  return std::max<std::int64_t>(total / std::max<std::int64_t>(lanes, 1),
                                512);
}

/// One edge-balanced push over the frontier (G-PR-PUSHKRNL over the dense
/// SoA) with intra-item min-combine: columns whose degree exceeds twice
/// the resolved grain are chopped into ≤ grain-edge fragments that run as
/// independent balanced items, each recording a partial argmin; after the
/// launch barrier the partials of every split column are tree-combined
/// (strict-less, earliest fragment wins ties — the same row a sequential
/// scan of the whole slice picks) and the combined push applied through
/// the identical `apply_push`.  This removes the one-column lower bound
/// on the straggler critical path: no lane — model lane or host slot —
/// ever owns more than ~grain edges of a single column.
///
/// `displaced[i]` and (optionally) `pushed_row[i]` are slot-parallel
/// outputs over frontier items, exactly as in the unsplit kernel.
/// Builds the degree prefix sum internally (device scan).  Charges the
/// scan passes and the deferred combine to the model; updates the split
/// counters in `stats`.
inline void balanced_push(device::Device& dev, const index_t* col_adj,
                          DeviceState& st, const BalancedFrontier& f,
                          device::relaxed_vector<index_t>& i_a,
                          index_t loop_stamp, index_t psi_inf,
                          std::int64_t grain_option,
                          std::vector<index_t>& displaced,
                          std::vector<index_t>* pushed_row, GprStats& stats) {
  const std::int64_t n = f.size();
  if (n == 0) return;

  const auto full_item = [&](std::int64_t i) -> std::int64_t {
    const auto iz = static_cast<std::size_t>(i);
    const index_t v = f.cols[iz];
    const MinScan r = scan_min_row(col_adj + f.adj_begin[iz], f.degree[iz],
                                   st, f.psi[iz], psi_inf);
    return r.scanned +
           apply_push(st, i_a, loop_stamp, psi_inf, v, r, &displaced[iz],
                      pushed_row != nullptr ? &(*pushed_row)[iz] : nullptr);
  };

  const std::vector<std::int64_t> offsets =
      device::balanced_offsets(dev, f.degree);
  dev.charge_work(2 * n);  // the scan's two passes over the degrees
  const std::int64_t grain = resolve_split_grain(dev, grain_option,
                                                 offsets.back());

  std::int64_t max_degree = 0;
  for (const std::int64_t d : f.degree) max_degree = std::max(max_degree, d);
  if (grain <= 0 || max_degree <= 2 * grain) {
    dev.launch_balanced(offsets, full_item);
    return;
  }

  // Fragment plan: split items get ceil(degree/grain) pieces, everything
  // else one.  `item_frag_begin` bounds each item's fragment range for
  // the combine pass.
  std::vector<std::int64_t> frag_item, frag_off, frag_work;
  std::vector<std::int64_t> item_frag_begin(static_cast<std::size_t>(n) + 1,
                                            0);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto iz = static_cast<std::size_t>(i);
    item_frag_begin[iz] = static_cast<std::int64_t>(frag_item.size());
    const std::int64_t d = f.degree[iz];
    if (d > 2 * grain) {
      const std::int64_t pieces = (d + grain - 1) / grain;
      for (std::int64_t p = 0; p < pieces; ++p) {
        frag_item.push_back(i);
        frag_off.push_back(p * grain);
        frag_work.push_back(std::min(grain, d - p * grain));
      }
      ++stats.split_items;
      stats.split_fragments += pieces;
    } else {
      frag_item.push_back(i);
      frag_off.push_back(0);
      frag_work.push_back(d);
    }
  }
  item_frag_begin[static_cast<std::size_t>(n)] =
      static_cast<std::int64_t>(frag_item.size());

  // Per-fragment argmin partials.  Slot-parallel (one writer per entry);
  // only split items' entries are read back.  A fragment still early-exits
  // at ψ(v) − 1 within its own slice — the global infimum, so no other
  // fragment could have done better.
  std::vector<MinScan> partials(frag_item.size());
  const std::vector<std::int64_t> frag_offsets =
      device::balanced_offsets(dev, frag_work);
  dev.charge_work(2 * static_cast<std::int64_t>(frag_item.size()));
  dev.launch_balanced(frag_offsets, [&](std::int64_t fi) -> std::int64_t {
    const auto fz = static_cast<std::size_t>(fi);
    const std::int64_t i = frag_item[fz];
    const auto iz = static_cast<std::size_t>(i);
    if (item_frag_begin[iz + 1] - item_frag_begin[iz] == 1)
      return full_item(i);
    const MinScan r =
        scan_min_row(col_adj + f.adj_begin[iz] + frag_off[fz], frag_work[fz],
                     st, f.psi[iz], psi_inf);
    partials[fz] = r;
    return r.scanned;
  });

  // Deferred combine + push for the split items, after the launch
  // barrier.  Host-side and cheap: O(fragments of split items) per loop.
  std::int64_t combine_work = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto iz = static_cast<std::size_t>(i);
    const std::int64_t fb = item_frag_begin[iz];
    const std::int64_t fe = item_frag_begin[iz + 1];
    if (fe - fb == 1) continue;
    MinScan best = partials[static_cast<std::size_t>(fb)];
    for (std::int64_t fi = fb + 1; fi < fe; ++fi) {
      const MinScan& p = partials[static_cast<std::size_t>(fi)];
      if (p.psi_min < best.psi_min) {
        best.psi_min = p.psi_min;
        best.u_min = p.u_min;
      }
    }
    combine_work += fe - fb;
    combine_work +=
        apply_push(st, i_a, loop_stamp, psi_inf, f.cols[iz], best,
                   &displaced[iz],
                   pushed_row != nullptr ? &(*pushed_row)[iz] : nullptr);
  }
  dev.charge_work(combine_work);
}

/// FIXMATCHING: repair the benign column-side inconsistencies; row
/// matchings are authoritative and already correct.
inline void fix_matching(device::Device& dev, const BipartiteGraph& g,
                         DeviceState& st) {
  dev.launch_accounted(g.num_cols(), [&](std::int64_t i) -> std::int64_t {
    const auto vz = static_cast<std::size_t>(i);
    const index_t u = st.mu_col.load(vz);
    if (u < 0) {
      st.mu_col.store(vz, kUnmatched);
      return 0;
    }
    if (st.mu_row.load(static_cast<std::size_t>(u)) !=
        static_cast<index_t>(i)) {
      st.mu_col.store(vz, kUnmatched);
    }
    return 1;  // µ(µ(v)) gather
  });
}

}  // namespace bpm::gpu::detail
