#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"

namespace bpm::gpu {

/// Execution counters and timing breakdown of one G-PR run.
struct GprStats {
  std::int64_t loops = 0;            ///< main-loop iterations (Alg 3/7 line 4/5)
  std::int64_t global_relabels = 0;  ///< G-GR invocations
  std::int64_t gr_level_kernels = 0; ///< total G-GR-KRNL launches (BFS levels)
  std::int64_t concurrent_relabels = 0;  ///< overlapped relabels started
  std::int64_t async_discarded = 0;  ///< overlapped relabels invalidated by
                                     ///< pushes landing mid-flight
  std::int64_t shrinks = 0;          ///< G-PR-SHRKRNL invocations
  std::int64_t frontier_builds = 0;  ///< balanced-path frontier compactions
  /// balance=auto's input: max/mean degree over the initially unmatched
  /// columns (0 when the solve never measured it, i.e. balance != auto).
  double balance_skew = 0.0;
  bool balanced = false;  ///< ran the workload-balanced frontier path
  std::int64_t device_launches = 0;  ///< all kernel launches on the device
  graph::index_t last_max_level = 0; ///< maxLevel of the final global relabel
  graph::index_t active_peak = 0;    ///< longest active list observed

  /// Intra-item min-combine (GprOptions::split_grain): frontier columns
  /// whose push scan was split across balanced chunks, and the fragments
  /// they were split into (0/0 when no column ever exceeded the grain).
  std::int64_t split_items = 0;
  std::int64_t split_fragments = 0;

  /// Sharded execution (core/shard.hpp; all 0 for unsharded runs).
  int shards = 0;                      ///< shard count actually used
  std::int64_t shard_rounds = 0;       ///< barrier-synchronised rounds
  std::int64_t shard_conflicts = 0;    ///< rows claimed by >1 shard, min-combined
  std::int64_t shard_transfers = 0;    ///< displaced columns routed cross-shard
  /// Per-round critical path across the shard streams plus coordinator
  /// work — the modeled wall time of a K-engine fleet, which is what the
  /// shard-scaling bench reports (on one box the shards time-share the
  /// same cores, so the flat measured wall says nothing about fleet
  /// scaling).
  double shard_critical_ms = 0.0;

  double gr_ms = 0.0;     ///< time in global relabeling
  double push_ms = 0.0;   ///< time in INIT/PUSH/SHR kernels
  double fix_ms = 0.0;    ///< FIXMATCHING + host transfers
  double total_ms = 0.0;
  double modeled_ms = 0.0;  ///< device::DeviceModel time (DESIGN.md D9)
};

/// Counters of one G-HK / G-HKDW run.
struct GhkStats {
  std::int64_t phases = 0;
  std::int64_t bfs_level_kernels = 0;
  std::int64_t augmentations = 0;
  std::int64_t dw_augmentations = 0;
  std::int64_t sequential_fallbacks = 0;  ///< host augmentations forced by
                                          ///< total claim-validation failure
  double total_ms = 0.0;
  double modeled_ms = 0.0;  ///< device::DeviceModel time (DESIGN.md D9)
};

}  // namespace bpm::gpu
