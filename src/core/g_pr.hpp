#pragma once

#include "core/g_gr.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "device/device.hpp"
#include "matching/matching.hpp"

namespace bpm::gpu {

struct GprResult {
  matching::Matching matching;  ///< consistent, maximum cardinality
  GprStats stats;
};

/// Diagnostic hook observing device state at launch barriers — used by the
/// invariant tests (tests/test_invariants.cpp) to check the paper's
/// neighborhood and matching invariants between kernels.  The state
/// reference is only valid during the call; no kernel is in flight.
class GprObserver {
 public:
  virtual ~GprObserver() = default;
  /// After each main-loop iteration (post push kernel and buffer swap).
  virtual void on_loop_end(std::int64_t loop, const DeviceState& st) = 0;
};

/// G-PR: the paper's GPU push-relabel maximum cardinality bipartite
/// matching (Algorithms 3 and 6–9), executed on the device engine.
///
/// One logical device thread processes one active column per push-kernel
/// launch: it scans Γ(v) for the minimum-ψ row (early exit at ψ(v) − 1),
/// performs the single/double push and the two relabels with plain racy
/// stores, and never takes a lock or an atomic RMW.  Races leave stale
/// column entries in µ that the algorithm detects via µ(µ(v)) ≠ v and
/// repairs at the end (FIXMATCHING).  Periodic global relabeling (G-GR)
/// restores exact labels at a frequency chosen by GETITERGR
/// (core/relabel_policy.hpp).
///
/// Variants (GprOptions::variant):
///  * kFirst    — Algorithm 6, one thread per column of V_C;
///  * kNoShrink — Algorithms 7–9, double-buffered active list Ac/Ap with
///                conflict roll-back and the iA stamp array;
///  * kShrink   — plus prefix-sum compaction of the list after each global
///                relabel while |Ac| ≥ options.shrink_threshold.
///
/// `init` must be a valid (consistent) matching for `g` — the paper uses
/// the cheap greedy matching.  The result is maximum (Berge certificate
/// checked in tests) regardless of `dev`'s execution mode.
GprResult g_pr(device::Device& dev, const BipartiteGraph& g,
               const matching::Matching& init, const GprOptions& options = {},
               GprObserver* observer = nullptr);

}  // namespace bpm::gpu
