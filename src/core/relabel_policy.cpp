#include "core/relabel_policy.hpp"

#include <algorithm>
#include <cmath>

namespace bpm::gpu {

std::int64_t next_global_relabel_loop(const GprOptions& options,
                                      graph::index_t max_level,
                                      std::int64_t loop) {
  double interval = 0.0;
  switch (options.strategy) {
    case RelabelStrategy::kFixed:
      interval = options.k;
      break;
    case RelabelStrategy::kAdaptive:
      interval = options.k * static_cast<double>(max_level);
      break;
  }
  return loop + std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(std::llround(interval)));
}

}  // namespace bpm::gpu
