#include "core/solver.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "core/options.hpp"
#include "core/shard.hpp"
#include "matching/greedy.hpp"
#include "matching/hkdw.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/seq_pr.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"
#include "policy/auto_solver.hpp"
#include "util/timer.hpp"

namespace bpm {
namespace {

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  throw std::invalid_argument("option '" + std::string(key) +
                              "' wants a boolean, got '" + std::string(value) +
                              "'");
}

double parse_double(std::string_view key, std::string_view value) {
  try {
    return std::stod(std::string(value));
  } catch (const std::exception&) {
    throw std::invalid_argument("option '" + std::string(key) +
                                "' wants a number, got '" +
                                std::string(value) + "'");
  }
}

device::Device& required_device(const SolveContext& ctx,
                                const std::string& solver) {
  if (ctx.device == nullptr)
    throw std::invalid_argument("solver '" + solver +
                                "' needs a device; set SolveContext::device");
  return *ctx.device;
}

// ---- device push-relabel (G-PR family) -------------------------------------

class GprSolver final : public Solver {
 public:
  GprSolver(std::string name, gpu::GprVariant variant,
            gpu::BalanceMode balance = gpu::BalanceMode::kOff,
            int shards = 1)
      : name_(std::move(name)) {
    options_.variant = variant;
    options_.balance = balance;
    options_.shards = shards;
  }

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] SolverCaps caps() const override {
    return {.needs_device = true, .multicore = false, .deterministic = false,
            .exact = true,
            // The sharded driver's per-shard push is the edge-balanced one.
            .balanced = options_.balance != gpu::BalanceMode::kOff ||
                        options_.shards != 1,
            .sharded = options_.shards != 1};
  }

  bool set_option(std::string_view key, std::string_view value) override {
    if (key == "k") {
      options_.k = parse_double(key, value);
    } else if (key == "strategy") {
      if (value == "adaptive")
        options_.strategy = gpu::RelabelStrategy::kAdaptive;
      else if (value == "fix" || value == "fixed")
        options_.strategy = gpu::RelabelStrategy::kFixed;
      else
        throw std::invalid_argument("option 'strategy' wants adaptive|fix");
    } else if (key == "shrink-threshold") {
      options_.shrink_threshold =
          static_cast<graph::index_t>(parse_double(key, value));
    } else if (key == "initial-gr") {
      options_.initial_global_relabel = parse_bool(key, value);
    } else if (key == "concurrent-gr") {
      options_.concurrent_global_relabel = parse_bool(key, value);
    } else if (key == "balance") {
      if (value == "auto")
        options_.balance = gpu::BalanceMode::kAuto;
      else
        options_.balance = parse_bool(key, value) ? gpu::BalanceMode::kOn
                                                  : gpu::BalanceMode::kOff;
    } else if (key == "balance-skew") {
      options_.balance_skew_threshold = parse_double(key, value);
    } else if (key == "shards") {
      if (value == "auto")
        options_.shards = 0;
      else if (const int k = static_cast<int>(parse_double(key, value));
               k >= 1)
        options_.shards = k;
      else
        throw std::invalid_argument("option 'shards' wants K>=1 or auto");
    } else if (key == "shard-drivers") {
      if (value == "auto")
        options_.shard_drivers = gpu::ShardDrivers::kAuto;
      else if (value == "seq" || value == "sequential")
        options_.shard_drivers = gpu::ShardDrivers::kSequential;
      else if (value == "par" || value == "parallel")
        options_.shard_drivers = gpu::ShardDrivers::kParallel;
      else
        throw std::invalid_argument(
            "option 'shard-drivers' wants auto|seq|par");
    } else if (key == "split") {
      if (value == "auto")
        options_.split_grain = 0;
      else if (value == "off")
        options_.split_grain = -1;
      else if (const auto grain =
                   static_cast<std::int64_t>(parse_double(key, value));
               grain > 0)
        options_.split_grain = grain;
      else
        throw std::invalid_argument("option 'split' wants N>0, auto, or off");
    } else {
      return false;
    }
    return true;
  }

  [[nodiscard]] SolveResult run(const SolveContext& ctx,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    device::Device& dev = required_device(ctx, name_);
    // The context's tracer rides on the device stream: the per-launch and
    // phase spans read it from there, and the sharded path propagates it
    // to every per-shard stream.
    if (ctx.tracer != nullptr && dev.tracer() == nullptr)
      dev.set_tracer(ctx.tracer);
    Timer t;
    gpu::GprResult r;
    if (options_.shards != 1) {
      // Sharded execution: spread over the context's engine fleet, or —
      // when the caller handed none — shard on this device's own engine.
      std::vector<std::shared_ptr<device::Engine>> engines = ctx.engines;
      if (engines.empty()) engines.push_back(dev.engine());
      r = gpu::g_pr_sharded(engines, g, init, options_,
                            ctx.tracer != nullptr ? ctx.tracer : dev.tracer());
    } else {
      r = gpu::g_pr(dev, g, init, options_);
    }
    SolveResult out{std::move(r.matching), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    // Sharded host runs report the measured K-engine-fleet critical path
    // as their modeled time (GprStats::shard_critical_ms): the shards
    // time-share this machine's cores, so their flat summed wall is not
    // the number a one-engine-per-shard deployment would see.
    out.stats.modeled_ms = r.stats.modeled_ms > 0.0
                               ? r.stats.modeled_ms
                               : (r.stats.shards > 1
                                      ? r.stats.shard_critical_ms
                                      : 0.0);
    out.stats.device_launches = r.stats.device_launches;
    out.stats.iterations = r.stats.loops;
    std::ostringstream d;
    d << options_.describe() << ": " << r.stats.global_relabels
      << " global relabels, " << r.stats.shrinks << " shrinks, ";
    if (options_.balance == gpu::BalanceMode::kAuto)
      d << "skew " << r.stats.balance_skew << " -> "
        << (r.stats.balanced ? "balanced" : "vertex-parallel") << ", ";
    if (r.stats.balanced || r.stats.shards > 1)
      d << r.stats.frontier_builds << " frontier builds, ";
    if (r.stats.shards > 1)
      d << r.stats.shards << " shards, " << r.stats.shard_rounds
        << " rounds, " << r.stats.shard_conflicts << " conflicts, "
        << r.stats.shard_transfers << " transfers, critical "
        << r.stats.shard_critical_ms << " ms, ";
    if (r.stats.split_items > 0)
      d << r.stats.split_items << " split items ("
        << r.stats.split_fragments << " fragments), ";
    d << r.stats.device_launches << " launches";
    out.stats.detail = d.str();
    return out;
  }

 private:
  std::string name_;
  gpu::GprOptions options_;
};

// ---- device Hopcroft–Karp (G-HK / G-HKDW) ----------------------------------

class GhkSolver final : public Solver {
 public:
  GhkSolver(std::string name, bool duff_wiberg)
      : name_(std::move(name)), duff_wiberg_(duff_wiberg) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] SolverCaps caps() const override {
    return {.needs_device = true, .multicore = false, .deterministic = false,
            .exact = true};
  }

  [[nodiscard]] SolveResult run(const SolveContext& ctx,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    device::Device& dev = required_device(ctx, name_);
    const std::uint64_t launches_before = dev.launches();
    Timer t;
    gpu::GhkResult r = gpu::g_hk(dev, g, init, {.duff_wiberg = duff_wiberg_});
    SolveResult out{std::move(r.matching), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.modeled_ms = r.stats.modeled_ms;
    out.stats.device_launches =
        static_cast<std::int64_t>(dev.launches() - launches_before);
    out.stats.iterations = r.stats.phases;
    std::ostringstream d;
    d << r.stats.phases << " phases, " << r.stats.bfs_level_kernels
      << " BFS kernels, " << r.stats.sequential_fallbacks
      << " sequential fallbacks";
    out.stats.detail = d.str();
    return out;
  }

 private:
  std::string name_;
  bool duff_wiberg_;
};

// ---- multicore P-DBFS ------------------------------------------------------

class PdbfsSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "p-dbfs"; }

  [[nodiscard]] SolverCaps caps() const override {
    return {.needs_device = false, .multicore = true, .deterministic = false,
            .exact = true};
  }

  [[nodiscard]] SolveResult run(const SolveContext& ctx,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    Timer t;
    mc::PdbfsResult r = mc::p_dbfs(g, init, {.num_threads = ctx.threads});
    SolveResult out{std::move(r.matching), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.iterations = r.stats.rounds;
    std::ostringstream d;
    d << r.stats.rounds << " rounds, " << r.stats.augmentations
      << " augmentations, " << r.stats.blocked_searches << " blocked searches";
    out.stats.detail = d.str();
    return out;
  }
};

// ---- sequential matchers ---------------------------------------------------

class SeqPrSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "seq-pr"; }

  [[nodiscard]] SolverCaps caps() const override { return {}; }

  bool set_option(std::string_view key, std::string_view value) override {
    if (key == "k")
      options_.global_relabel_k = parse_double(key, value);
    else if (key == "gap")
      options_.gap_relabeling = parse_bool(key, value);
    else if (key == "initial-gr")
      options_.initial_global_relabel = parse_bool(key, value);
    else
      return false;
    return true;
  }

  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    Timer t;
    matching::SeqPrStats stats;
    SolveResult out{matching::seq_push_relabel(g, init, options_, &stats), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.iterations = stats.pushes;
    std::ostringstream d;
    d << stats.pushes << " pushes, " << stats.global_relabels
      << " global relabels, " << stats.gap_retired << " gap-retired";
    out.stats.detail = d.str();
    return out;
  }

 private:
  matching::SeqPrOptions options_;
};

class HkSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "hk"; }
  [[nodiscard]] SolverCaps caps() const override { return {}; }

  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    Timer t;
    matching::HkStats stats;
    SolveResult out{matching::hopcroft_karp(g, init, &stats), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.iterations = stats.phases;
    out.stats.detail = std::to_string(stats.phases) + " phases, " +
                       std::to_string(stats.augmentations) + " augmentations";
    return out;
  }
};

class HkdwSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "hkdw"; }
  [[nodiscard]] SolverCaps caps() const override { return {}; }

  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    Timer t;
    matching::HkdwStats stats;
    SolveResult out{matching::hkdw(g, init, &stats), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.iterations = stats.phases;
    out.stats.detail = std::to_string(stats.phases) + " phases, " +
                       std::to_string(stats.dw_augmentations) +
                       " DW augmentations";
    return out;
  }
};

class PfSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "pf"; }
  [[nodiscard]] SolverCaps caps() const override { return {}; }

  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override {
    Timer t;
    matching::PfStats stats;
    SolveResult out{matching::pothen_fan(g, init, &stats), {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    out.stats.iterations = stats.phases;
    out.stats.detail = std::to_string(stats.phases) + " phases, " +
                       std::to_string(stats.augmentations) + " augmentations";
    return out;
  }
};

// ---- initialisation heuristics as (inexact) solvers ------------------------

class GreedySolver final : public Solver {
 public:
  explicit GreedySolver(bool karp_sipser) : karp_sipser_(karp_sipser) {}

  [[nodiscard]] std::string name() const override {
    return karp_sipser_ ? "karp-sipser" : "greedy";
  }

  [[nodiscard]] SolverCaps caps() const override {
    return {.needs_device = false, .multicore = false, .deterministic = true,
            .exact = false};
  }

  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph& g,
                                const matching::Matching&) const override {
    Timer t;
    SolveResult out{karp_sipser_ ? matching::karp_sipser(g)
                                 : matching::cheap_matching(g),
                    {}};
    out.stats.wall_ms = t.elapsed_ms();
    out.stats.cardinality = out.matching.cardinality();
    return out;
  }

 private:
  bool karp_sipser_;
};

}  // namespace

bool Solver::set_option(std::string_view, std::string_view) { return false; }

// ---- SolverSpec ------------------------------------------------------------

namespace {

[[noreturn]] void malformed_spec(std::string_view spec,
                                 const std::string& why) {
  throw std::invalid_argument(
      "malformed solver spec '" + std::string(spec) + "': " + why +
      " (want name or name:key=val,key=val; have: " +
      SolverRegistry::instance().names_csv() + ")");
}

std::pair<std::string, std::string> parse_option(std::string_view spec,
                                                 std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos)
    malformed_spec(spec, "option '" + std::string(token) + "' has no '='");
  if (eq == 0) malformed_spec(spec, "option with empty key");
  return {std::string(token.substr(0, eq)), std::string(token.substr(eq + 1))};
}

}  // namespace

SolverSpec SolverSpec::parse(std::string_view spec) {
  SolverSpec out;
  const std::size_t colon = spec.find(':');
  out.name = std::string(spec.substr(0, colon));
  if (out.name.empty()) malformed_spec(spec, "empty solver name");
  if (out.name.find('=') != std::string::npos)
    malformed_spec(spec, "option '" + out.name + "' without a solver name");
  if (colon == std::string_view::npos) return out;
  std::string_view rest = spec.substr(colon + 1);
  if (rest.empty()) malformed_spec(spec, "':' with no options after it");
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    if (token.empty()) malformed_spec(spec, "empty option");
    out.options.push_back(parse_option(spec, token));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
    if (rest.empty()) malformed_spec(spec, "trailing ','");
  }
  return out;
}

std::vector<SolverSpec> SolverSpec::parse_list(std::string_view list) {
  std::vector<SolverSpec> out;
  std::string_view rest = list;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    // A bare key=val token (no ':') continues the previous spec's options;
    // anything else opens a new spec.
    if (token.empty()) {
      malformed_spec(list, "empty solver spec (doubled or trailing ','?)");
    } else if (token.find(':') == std::string_view::npos &&
               token.find('=') != std::string_view::npos) {
      if (out.empty())
        malformed_spec(list, "option '" + std::string(token) +
                                 "' before any solver name");
      out.back().options.push_back(parse_option(list, token));
    } else {
      out.push_back(parse(token));
    }
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
    if (rest.empty()) malformed_spec(list, "trailing ','");
  }
  return out;
}

std::string SolverSpec::canonical() const {
  std::string out = name;
  auto sorted = options;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += sorted[i].first + "=" + sorted[i].second;
  }
  return out;
}

std::unique_ptr<Solver> SolverSpec::instantiate() const {
  std::unique_ptr<Solver> solver = SolverRegistry::instance().create(name);
  for (const auto& [key, value] : options)
    if (!solver->set_option(key, value))
      throw std::invalid_argument("solver '" + name +
                                  "' does not understand option '" + key +
                                  "' (in spec '" + canonical() + "')");
  return solver;
}

SolverRegistry::SolverRegistry() {
  add("g-pr-shr", [] {
    return std::make_unique<GprSolver>("g-pr-shr", gpu::GprVariant::kShrink);
  });
  add("g-pr-noshr", [] {
    return std::make_unique<GprSolver>("g-pr-noshr",
                                       gpu::GprVariant::kNoShrink);
  });
  add("g-pr-first", [] {
    return std::make_unique<GprSolver>("g-pr-first", gpu::GprVariant::kFirst);
  });
  add("g-pr-wb", [] {
    // Workload-balanced G-PR: edge-balanced push over a per-loop compacted
    // frontier (GprOptions::balance).  Defaults to balance=auto — the
    // measured degree skew of the unmatched columns decides per solve, so
    // uniform instances keep the vertex-parallel path's speed; force with
    // balance=1 / balance=0.
    return std::make_unique<GprSolver>("g-pr-wb", gpu::GprVariant::kShrink,
                                       gpu::BalanceMode::kAuto);
  });
  add("g-pr-sh", [] {
    // Sharded G-PR: the columns are cut into edge-balanced shards (auto =
    // one per engine, grown until each fits an engine's memory budget),
    // each driven on its own device stream with min-combine boundary
    // reconciliation between rounds.  Any G-PR spec can opt in with
    // shards=K; this name just defaults to auto.
    return std::make_unique<GprSolver>("g-pr-sh", gpu::GprVariant::kShrink,
                                       gpu::BalanceMode::kOff, /*shards=*/0);
  });
  add("g-hk", [] { return std::make_unique<GhkSolver>("g-hk", false); });
  add("g-hkdw", [] { return std::make_unique<GhkSolver>("g-hkdw", true); });
  add("p-dbfs", [] { return std::make_unique<PdbfsSolver>(); });
  add("seq-pr", [] { return std::make_unique<SeqPrSolver>(); });
  add("hk", [] { return std::make_unique<HkSolver>(); });
  add("hkdw", [] { return std::make_unique<HkdwSolver>(); });
  add("pf", [] { return std::make_unique<PfSolver>(); });
  add("greedy", [] { return std::make_unique<GreedySolver>(false); });
  add("karp-sipser", [] { return std::make_unique<GreedySolver>(true); });
  add("auto", [] {
    // Feature-driven adaptive selection (`policy::AutoSolver`): resolves
    // to a concrete registered spec per instance from the calibrated cost
    // model + online estimates.  `auto:model=<path>,explore=<p>` tunes it.
    return std::make_unique<policy::AutoSolver>();
  });
  // The paper's shorthand spellings.
  add_alias("g-pr", "g-pr-shr");
  add_alias("pr", "seq-pr");
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

void SolverRegistry::add(const std::string& name, Factory factory) {
  if (factories_.contains(name) || aliases_.contains(name))
    throw std::invalid_argument("solver '" + name + "' already registered");
  factories_.emplace(name, std::move(factory));
}

void SolverRegistry::add_alias(const std::string& alias,
                               const std::string& canonical) {
  if (factories_.contains(alias) || aliases_.contains(alias))
    throw std::invalid_argument("solver '" + alias + "' already registered");
  if (!factories_.contains(canonical))
    throw std::invalid_argument("alias target '" + canonical + "' unknown");
  aliases_.emplace(alias, canonical);
}

bool SolverRegistry::contains(const std::string& name) const {
  return factories_.contains(name) || aliases_.contains(name);
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  const auto alias = aliases_.find(name);
  const auto it =
      factories_.find(alias == aliases_.end() ? name : alias->second);
  if (it == factories_.end())
    throw std::invalid_argument("unknown solver '" + name + "' (have: " +
                                names_csv() + ")");
  return it->second();
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::vector<std::pair<std::string, std::string>> SolverRegistry::alias_list()
    const {
  return {aliases_.begin(), aliases_.end()};  // std::map: sorted by alias
}

std::string SolverRegistry::names_csv() const {
  std::string out;
  for (const auto& name : names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

SolveResult solve(const std::string& solver_name, const SolveContext& ctx,
                  const graph::BipartiteGraph& g,
                  const matching::Matching& init) {
  return SolverRegistry::instance().create(solver_name)->run(ctx, g, init);
}

JobOutcome run_verified(const Solver& solver, const SolveContext& ctx,
                        const graph::BipartiteGraph& g,
                        const matching::Matching& init,
                        graph::index_t reference_maximum) {
  JobOutcome out;
  try {
    SolveResult result = solver.run(ctx, g, init);
    out.stats = std::move(result.stats);
    out.ok = true;
    if (reference_maximum < 0) return out;
    if (!result.matching.is_valid(g)) {
      out.ok = false;
      out.error = "invalid matching: " + result.matching.first_violation(g);
    } else if (solver.caps().exact &&
               out.stats.cardinality != reference_maximum) {
      out.ok = false;
      out.error = "not maximum: got " + std::to_string(out.stats.cardinality) +
                  ", want " + std::to_string(reference_maximum);
    } else if (solver.caps().exact &&
               !matching::is_maximum(g, result.matching)) {
      // Independent Berge certificate, deliberately redundant with the
      // reference-cardinality check so a bug shared by the solver and the
      // ground-truth HK cannot slip through.
      out.ok = false;
      out.error = "Berge certificate failed: an augmenting path exists";
    } else if (!solver.caps().exact &&
               out.stats.cardinality > reference_maximum) {
      out.ok = false;
      out.error = "cardinality " + std::to_string(out.stats.cardinality) +
                  " exceeds the reference maximum " +
                  std::to_string(reference_maximum);
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

}  // namespace bpm
