#pragma once

#include "core/stats.hpp"
#include "device/device.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::gpu {

struct GhkOptions {
  /// true → G-HKDW (extra unrestricted DFS pass per phase, the
  /// Duff–Wiberg extension); false → plain G-HK.
  bool duff_wiberg = true;
};

struct GhkResult {
  matching::Matching matching;
  GhkStats stats;
};

/// G-HK / G-HKDW: the authors' earlier GPU Hopcroft–Karp comparators,
/// re-implemented on the same device engine so that the paper's
/// G-PR-vs-G-HKDW comparison is apples-to-apples (DESIGN.md §2).
///
/// Each phase is (a) a level-synchronous BFS from unmatched columns — one
/// kernel launch per level, stopping at the first level that touches an
/// unmatched row — and (b) an augmentation kernel in which each unmatched
/// column walks the level DAG by thread-local DFS, claiming rows with
/// plain racy stores (claim[u] ← root id, last writer wins, no atomics).
/// A validation kernel then applies exactly the paths whose every row is
/// still owned by their root, which makes the applied set vertex-disjoint
/// without locks.  Losers retry in the next phase.  If claim collisions
/// ever invalidate *all* found paths, one host-side augmentation forces
/// progress (counted in GhkStats::sequential_fallbacks; this replaces the
/// restart heuristics of the original code with a deterministic guarantee).
///
/// With `duff_wiberg`, a second, level-unrestricted claim-DFS pass runs
/// after each phase, sweeping longer augmenting paths before the next BFS
/// is paid for — the HKDW idea.
GhkResult g_hk(device::Device& dev, const graph::BipartiteGraph& g,
               const matching::Matching& init, const GhkOptions& options = {});

}  // namespace bpm::gpu
