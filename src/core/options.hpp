#pragma once

#include <cstdint>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bpm::gpu {

using graph::index_t;

/// Which G-PR implementation variant to run (paper Figure 1 compares all
/// three).
enum class GprVariant {
  /// Algorithm 6: one logical thread per column of V_C, every launch.
  kFirst,
  /// Algorithms 7–9: double-buffered active-column list (Ac/Ap/iA) with
  /// conflict detection and roll-back, but no compaction.
  kNoShrink,
  /// kNoShrink plus G-PR-SHRKRNL: periodic prefix-sum compaction of the
  /// active list after each global relabel, when |Ac| ≥ shrink_threshold.
  kShrink,
};

/// Global-relabeling frequency strategy (paper §III-A).
enum class RelabelStrategy {
  /// (fix, k): next global relabel after k push-kernel executions.
  kFixed,
  /// (adaptive, k): next global relabel after k × maxLevel push-kernel
  /// executions, where maxLevel is the BFS depth of the previous global
  /// relabel — the paper's contribution, motivated by Theorem 2 (the
  /// deficiency-many disjoint augmenting paths have average length
  /// bounded via maxLevel).
  kAdaptive,
};

/// Whether a G-PR solve uses the workload-balanced (edge-partitioned)
/// push path.
enum class BalanceMode {
  kOff,  ///< always the vertex-parallel active-list path
  kOn,   ///< always the edge-balanced frontier path
  /// Decide per solve from the measured degree skew (max/mean column
  /// degree over the initially unmatched columns): balanced when the
  /// skew reaches `GprOptions::balance_skew_threshold`, vertex-parallel
  /// otherwise.  This keeps the balanced path's win on skewed instances
  /// without paying its frontier-compaction overhead on uniform ones
  /// (the ~1% uniform-suite regression recorded in
  /// BENCH_gpr_balance.json).
  kAuto,
};

/// How the sharded solver runs its K per-shard drivers.
enum class ShardDrivers {
  /// Parallel when the engines bring more than one worker in total,
  /// sequential otherwise (K shard drivers on one core only add barrier
  /// overhead to an identical instruction stream).
  kAuto,
  /// One coordinator thread iterates the shards phase by phase — the
  /// deterministic-schedule mode (interleavings within a shard's launch
  /// still race as usual).
  kSequential,
  /// K persistent driver threads synchronised by a barrier per phase —
  /// the real multi-engine execution shape; forced by the TSan
  /// reconciliation stress tests.
  kParallel,
};

struct GprOptions {
  GprVariant variant = GprVariant::kShrink;
  RelabelStrategy strategy = RelabelStrategy::kAdaptive;

  /// The k in (adaptive, k) / (fix, k).  The paper's best configuration is
  /// (adaptive, 0.7); Figure 1 sweeps {0.3, 0.7, 1, 1.5, 2} adaptive and
  /// {10, 50} fixed.
  double k = 0.7;

  /// Run G-PR-SHRKRNL only while the active list is at least this long
  /// (paper: 512; below that the compaction does not pay for itself).
  index_t shrink_threshold = 512;

  /// Force a global relabel before the first push kernel (iterGR = 0, as
  /// the paper does after observing "significant performance
  /// improvements" from it).  false starts from the ψ(u)=0 / ψ(v)=1
  /// initialisation instead — the configuration bench/ablation_initial_gr
  /// quantifies.
  bool initial_global_relabel = true;

  /// Workload-balanced execution (Hsieh et al., arXiv:2404.00270): every
  /// main-loop iteration compacts the active columns into a dense SoA
  /// frontier (column ids, cached ψ, flat CSR slice starts, and a degree
  /// prefix sum built with device::exclusive_scan) and runs the push
  /// kernel through device::Device::launch_balanced, which partitions
  /// *edges* rather than columns into equal chunks.  This removes the
  /// straggler problem of the paper's one-thread-per-column grid on
  /// degree-skewed graphs; the vertex-parallel path (kOff) remains the
  /// faithful reference, and kAuto picks per solve by measured degree
  /// skew.  Registered as the `g-pr-wb` solver (default auto), and
  /// sweepable on any G-PR solver via the `balance=0|1|auto` option.
  BalanceMode balance = BalanceMode::kOff;

  /// kAuto's decision threshold on max/mean unmatched-column degree.
  /// Calibrated against the bench suites: uniform_random sits near 3.4
  /// and planted near 4, the hub/power-law instances at 7.7+.
  double balance_skew_threshold = 4.5;

  /// The paper's Section V future work, implemented: run non-initial
  /// global relabels as a second stream overlapped with the push kernels
  /// (one shadow BFS level per main-loop iteration against a µ snapshot;
  /// labels publish when the BFS drains).  Pushes keep working with the
  /// stale labels meanwhile — see gpu::AsyncGlobalRelabel for the
  /// soundness argument, and bench/ablation_async_gr for the tradeoff.
  bool concurrent_global_relabel = false;

  /// Safety net against regressions in the termination argument: throw if
  /// the main loop exceeds `64·(m+n) + 1024` iterations.  0 disables.
  std::int64_t max_loops = -1;  ///< -1 = use the default bound

  /// Top-level column shard count (core/shard.hpp): 1 = unsharded (the
  /// drivers above), 0 = auto (one shard per available engine, grown
  /// until every shard fits the tightest engine memory budget), K > 1 =
  /// exactly K shards.  Sweepable on any G-PR spec as `shards=K|auto`;
  /// the `g-pr-sh` registration defaults to auto.
  int shards = 1;

  /// Shard driver threading (see ShardDrivers); `shard-drivers=auto|seq|par`.
  ShardDrivers shard_drivers = ShardDrivers::kAuto;

  /// Intra-item min-combine grain for the balanced push (edges per
  /// fragment): a frontier column whose degree exceeds twice this is
  /// chopped into fragments that scan independently — per-fragment argmin
  /// partials, tree-combined after the launch barrier — so one hub column
  /// no longer lower-bounds the straggler critical path.  0 = auto (the
  /// frontier's total edges over the device's lane count), < 0 = off.
  /// Sweepable as `split=N|auto|off`.
  std::int64_t split_grain = 0;

  [[nodiscard]] std::string describe() const;
};

inline std::string to_string(GprVariant v) {
  switch (v) {
    case GprVariant::kFirst: return "G-PR-First";
    case GprVariant::kNoShrink: return "G-PR-NoShr";
    case GprVariant::kShrink: return "G-PR-Shr";
  }
  return "?";
}

inline std::string to_string(RelabelStrategy s) {
  return s == RelabelStrategy::kFixed ? "fix" : "adaptive";
}

inline std::string to_string(BalanceMode b) {
  switch (b) {
    case BalanceMode::kOff: return "off";
    case BalanceMode::kOn: return "on";
    case BalanceMode::kAuto: return "auto";
  }
  return "?";
}

inline std::string to_string(ShardDrivers d) {
  switch (d) {
    case ShardDrivers::kAuto: return "auto";
    case ShardDrivers::kSequential: return "seq";
    case ShardDrivers::kParallel: return "par";
  }
  return "?";
}

inline std::string GprOptions::describe() const {
  const std::string wb = balance == BalanceMode::kOn     ? "+WB"
                         : balance == BalanceMode::kAuto ? "+WB?"
                                                         : "";
  const std::string sh =
      shards == 1 ? ""
                  : "+SH(" + (shards == 0 ? std::string("auto")
                                          : std::to_string(shards)) +
                        ")";
  return to_string(variant) + wb + sh + " (" + to_string(strategy) + ", " +
         std::to_string(k) + ")";
}

}  // namespace bpm::gpu
