#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "device/mem.hpp"
#include "graph/bipartite_graph.hpp"

namespace bpm::gpu {

using graph::BipartiteGraph;
using graph::index_t;

/// Device-resident matching + label state shared by all GPU kernels.
/// Rows are authoritative for µ; column entries may be stale (the paper's
/// matching invariant).  All cells are benign-race memory (device::mem).
struct DeviceState {
  device::relaxed_vector<index_t> mu_row;   ///< µ over V_R: −1 or column id
  device::relaxed_vector<index_t> mu_col;   ///< µ over V_C: −1, −2, or row id
  device::relaxed_vector<index_t> psi_row;  ///< ψ over V_R
  device::relaxed_vector<index_t> psi_col;  ///< ψ over V_C

  /// Raised by every push; the overlapped relabel uses it to decide
  /// whether its snapshot is still exact (AsyncGlobalRelabel docs).
  device::device_flag mu_dirty;

  DeviceState(index_t num_rows, index_t num_cols)
      : mu_row(static_cast<std::size_t>(num_rows), -1),
        mu_col(static_cast<std::size_t>(num_cols), -1),
        psi_row(static_cast<std::size_t>(num_rows), 0),
        psi_col(static_cast<std::size_t>(num_cols), 1) {}

  /// Allocates without touching any page: the sharded driver first-touch
  /// constructs each shard's column slice on that shard's engine arena
  /// (and the row arrays interleaved across all arenas) before any kernel
  /// runs.  Every cell must be constructed before use — see
  /// `device::uninitialized_t`.
  DeviceState(device::uninitialized_t, index_t num_rows, index_t num_cols)
      : mu_row(device::uninitialized, static_cast<std::size_t>(num_rows)),
        mu_col(device::uninitialized, static_cast<std::size_t>(num_cols)),
        psi_row(device::uninitialized, static_cast<std::size_t>(num_rows)),
        psi_col(device::uninitialized, static_cast<std::size_t>(num_cols)) {}
};

/// Outcome of one G-GR invocation.
struct GrResult {
  index_t max_level = 0;     ///< cLevel after the BFS drained (Alg 4 line 8)
  std::int64_t level_kernels = 0;  ///< number of G-GR-KRNL launches
};

/// G-GR (Algorithms 4–5): GPU global relabeling.
///
/// INITRELABEL sets ψ(u) = 0 for unmatched rows and ψ = m+n everywhere
/// else; then a level-synchronous BFS from all unmatched rows runs one
/// G-GR-KRNL launch per level: every row u with ψ(u) = cLevel relaxes its
/// unvisited column neighbors to cLevel+1 and their *consistently* matched
/// rows (µ(v) > −1 and µ(µ(v)) = v) to cLevel+2.  Concurrent writes to the
/// same ψ cell all carry the same value — the benign race the paper notes.
///
/// Vertices the BFS never reaches keep ψ = m+n and drop out of further
/// consideration (this is also where the gap heuristic's effect shows up
/// on the GPU: everything beyond the last populated level is retired).
GrResult g_gr(device::Device& dev, const BipartiteGraph& g, DeviceState& st);

/// Stream-overlapped global relabeling — the paper's Section V future
/// work, implemented: "the concurrent execution of global-relabeling and
/// push-relabel kernels … it may be promising to occupy the device with
/// two kernels".
///
/// The relabel runs as a second logical stream: `start()` snapshots µ and
/// initialises a *shadow* ψ; each `step()` advances the BFS by one level
/// kernel (interleaved by the driver with its push kernels, which keep
/// using the current labels); when the BFS drains, the driver may
/// `apply()` the shadow labels — but only if no push landed meanwhile.
///
/// Soundness (and why apply-if-clean is required): the shadow BFS yields
/// exact alternating distances w.r.t. the µ *snapshot*.  Distances are a
/// global property of the matching structure, and double pushes rewire
/// that structure arbitrarily (rows stay matched, but to different
/// columns), so snapshot distances can OVER-estimate distances under the
/// evolved matching — and over-estimated labels can wrongly retire
/// matchable columns (we observed exactly this: a naive wholesale apply
/// loses cardinality on small random graphs).  Incrementally-maintained
/// labels stay valid lower bounds; imported ones are only valid if the
/// matching is unchanged.  Hence the contract: the driver checks
/// `DeviceState::mu_dirty` (raised by every push) over the BFS's
/// lifetime, applies on clean, and discards or falls back to a
/// synchronous relabel on dirty.  Overlapping therefore pays off in
/// low-contention phases — the end-game with few active columns, which is
/// also where relabeling frequency matters most (paper §III-C).
class AsyncGlobalRelabel {
 public:
  AsyncGlobalRelabel(index_t num_rows, index_t num_cols);

  /// Snapshots µ from `st` and initialises the shadow labels (kernels on
  /// `dev`).  Must not be running.
  void start(device::Device& dev, const BipartiteGraph& g,
             const DeviceState& st);

  [[nodiscard]] bool running() const { return running_; }

  /// Runs one shadow BFS level kernel.  Returns true when the BFS just
  /// drained (the relabel is complete and ready to `apply`).
  bool step(device::Device& dev, const BipartiteGraph& g);

  /// Publishes the shadow labels into `st` and leaves the running state.
  void apply(device::Device& dev, const BipartiteGraph& g, DeviceState& st);

  /// maxLevel of the finished BFS (valid after `step` returned true).
  [[nodiscard]] index_t max_level() const { return c_level_; }

 private:
  device::relaxed_vector<index_t> mu_row_snap_;
  device::relaxed_vector<index_t> mu_col_snap_;
  device::relaxed_vector<index_t> psi_row_shadow_;
  device::relaxed_vector<index_t> psi_col_shadow_;
  index_t c_level_ = 0;
  bool running_ = false;
};

}  // namespace bpm::gpu
