#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/g_pr.hpp"
#include "core/options.hpp"
#include "device/device.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::gpu {

/// Top-level column shard cut of one instance: K contiguous, edge-balanced
/// column ranges (the `device::balanced_partition` machinery applied to
/// the column CSR's own prefix sum), each owning its CSR slice and
/// column-side state while the row-side arrays stay shared.
struct ShardPlan {
  std::vector<index_t> col_begin;        ///< K+1 column boundaries
  std::vector<std::int64_t> edge_begin;  ///< K+1 edge offsets at the cuts

  [[nodiscard]] int shards() const {
    return static_cast<int>(col_begin.size()) - 1;
  }
  [[nodiscard]] index_t cols(int k) const {
    return col_begin[static_cast<std::size_t>(k) + 1] -
           col_begin[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::int64_t edges(int k) const {
    return edge_begin[static_cast<std::size_t>(k) + 1] -
           edge_begin[static_cast<std::size_t>(k)];
  }

  /// Which shard owns column v (binary search over the cut).
  [[nodiscard]] int owner(index_t v) const;

  /// Shard k's resident column-side bytes: its CSR slice (adjacency +
  /// pointers) plus its µ/ψ/iA column state.  The shared row-side arrays
  /// are deliberately excluded — they exist once, not per shard.
  [[nodiscard]] std::size_t shard_bytes(int k) const;
};

/// Cuts `g`'s columns into `shards` edge-balanced contiguous ranges.
/// `shards` is clamped to the column count; shard 0 is never empty when
/// the graph has any edge (the ceil-target guarantee of
/// `balanced_partition`).  Throws on `shards < 1`.
[[nodiscard]] ShardPlan shard_columns(const BipartiteGraph& g, int shards);

/// The shard count a solve actually uses: `requested` verbatim when ≥ 1;
/// otherwise (auto) one shard per engine, doubled until every shard's
/// resident bytes (`ShardPlan::shard_bytes`) fit the tightest positive
/// engine memory budget — so one massive instance is served without any
/// shard exceeding one engine's budget.  Always in [1, num_cols].
[[nodiscard]] int resolve_shard_count(
    const BipartiteGraph& g, int requested,
    std::span<const std::shared_ptr<device::Engine>> engines);

/// Sharded G-PR (`g-pr-sh`, or `shards=K|auto` on any G-PR spec): the
/// instance's columns are cut into K edge-balanced shards, each driven by
/// its own `device::Device` stream — across the given engines round-robin
/// — through barrier-synchronised rounds of the workload-balanced push
/// (with intra-item min-combine), over ONE shared `DeviceState`.
///
/// Cross-shard interactions reduce to the paper's benign races plus one
/// reconciliation pass per round:
///  * rows pushed onto by more than one shard in a round are resolved by
///    a deterministic min-combine (lowest column id wins; the claims go
///    through the codebase's single atomic RMW, `relaxed_cell::store_min`)
///    and the losers re-enter their shard's frontier;
///  * columns displaced across a shard boundary are routed to their owner
///    shard's next-round frontier through per-shard outboxes the
///    coordinator drains between rounds (dropping them would silently
///    lose cardinality);
///  * global relabels run synchronously on the whole graph between rounds
///    — shard-local relabels are UNSOUND (a BFS restricted to one shard's
///    columns over-estimates alternating distances and wrongly retires
///    matchable columns, the exact hazard documented on
///    `AsyncGlobalRelabel`), so `concurrent_global_relabel` is forced off.
///
/// Rounds iterate until no shard has an active column and no cross-shard
/// transfer is in flight; the result is verified by the same oracle as
/// every other solver.  Column-side state is first-touch allocated on
/// each shard's engine arena (`device::EngineArena`), so NUMA-pinned
/// engines keep their shard's pages socket-local.
///
/// `engines` must be non-empty; shard k runs on `engines[k % size]`.
/// `options.shards` selects K (0 = auto); `options.shard_drivers` picks
/// sequential or parallel shard driver threads.
///
/// With a non-null enabled `tracer`, every per-shard stream records its
/// launches and each shard's compact/push/apply phases land on timeline
/// row `tid == shard id`, with the coordinator's outbox exchange and the
/// synchronous global-relabel barriers on their own row — the trace shows
/// the fleet's round structure, not the thread pool's.
GprResult g_pr_sharded(
    std::span<const std::shared_ptr<device::Engine>> engines,
    const BipartiteGraph& g, const matching::Matching& init,
    const GprOptions& options = {}, obs::Tracer* tracer = nullptr);

}  // namespace bpm::gpu
