#include "core/g_gr.hpp"

namespace bpm::gpu {

GrResult g_gr(device::Device& dev, const BipartiteGraph& g, DeviceState& st) {
  const index_t psi_inf = g.psi_infinity();

  // INITRELABEL: unmatched rows are BFS sources at level 0.
  dev.launch(g.num_rows(), [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    st.psi_row.store(u, st.mu_row.load(u) == -1 ? 0 : psi_inf);
  });
  dev.launch(g.num_cols(), [&](std::int64_t i) {
    st.psi_col.store(static_cast<std::size_t>(i), psi_inf);
  });

  GrResult result;
  device::device_flag u_added;
  index_t c_level = 0;
  bool added = true;
  while (added) {
    u_added.reset();
    // G-GR-KRNL: one launch per BFS level; rows at cLevel expand.  The
    // returned work units (frontier adjacency entries) feed the device
    // time model.
    dev.launch_accounted(g.num_rows(), [&](std::int64_t i) -> std::int64_t {
      const auto u = static_cast<std::size_t>(i);
      if (st.psi_row.load(u) != c_level) return 0;
      for (index_t v : g.row_neighbors(static_cast<index_t>(i))) {
        const auto vz = static_cast<std::size_t>(v);
        if (st.psi_col.load(vz) != psi_inf) continue;
        st.psi_col.store(vz, c_level + 1);
        const index_t w = st.mu_col.load(vz);
        if (w > -1 && st.mu_row.load(static_cast<std::size_t>(w)) == v) {
          st.psi_row.store(static_cast<std::size_t>(w), c_level + 2);
          u_added.raise();
        }
      }
      return g.row_degree(static_cast<index_t>(i));
    });
    ++result.level_kernels;
    added = u_added.is_raised();
    c_level += 2;
  }
  result.max_level = c_level;
  return result;
}

AsyncGlobalRelabel::AsyncGlobalRelabel(index_t num_rows, index_t num_cols)
    : mu_row_snap_(static_cast<std::size_t>(num_rows), -1),
      mu_col_snap_(static_cast<std::size_t>(num_cols), -1),
      psi_row_shadow_(static_cast<std::size_t>(num_rows), 0),
      psi_col_shadow_(static_cast<std::size_t>(num_cols), 0) {}

void AsyncGlobalRelabel::start(device::Device& dev, const BipartiteGraph& g,
                               const DeviceState& st) {
  const index_t psi_inf = g.psi_infinity();
  // Snapshot µ and run INITRELABEL against the snapshot in one pass.
  dev.launch(g.num_rows(), [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    const index_t mu = st.mu_row.load(u);
    mu_row_snap_.store(u, mu);
    psi_row_shadow_.store(u, mu == -1 ? 0 : psi_inf);
  });
  dev.launch(g.num_cols(), [&](std::int64_t i) {
    const auto v = static_cast<std::size_t>(i);
    mu_col_snap_.store(v, st.mu_col.load(v));
    psi_col_shadow_.store(v, psi_inf);
  });
  c_level_ = 0;
  running_ = true;
}

bool AsyncGlobalRelabel::step(device::Device& dev, const BipartiteGraph& g) {
  const index_t psi_inf = g.psi_infinity();
  device::device_flag u_added;
  const index_t c_level = c_level_;
  dev.launch_accounted(g.num_rows(), [&](std::int64_t i) -> std::int64_t {
    const auto u = static_cast<std::size_t>(i);
    if (psi_row_shadow_.load(u) != c_level) return 0;
    for (index_t v : g.row_neighbors(static_cast<index_t>(i))) {
      const auto vz = static_cast<std::size_t>(v);
      if (psi_col_shadow_.load(vz) != psi_inf) continue;
      psi_col_shadow_.store(vz, c_level + 1);
      const index_t w = mu_col_snap_.load(vz);
      if (w > -1 && mu_row_snap_.load(static_cast<std::size_t>(w)) == v) {
        psi_row_shadow_.store(static_cast<std::size_t>(w), c_level + 2);
        u_added.raise();
      }
    }
    return g.row_degree(static_cast<index_t>(i));
  });
  c_level_ += 2;
  if (!u_added.is_raised()) {
    running_ = false;
    return true;
  }
  return false;
}

void AsyncGlobalRelabel::apply(device::Device& dev, const BipartiteGraph& g,
                               DeviceState& st) {
  dev.launch(g.num_rows(), [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    st.psi_row.store(u, psi_row_shadow_.load(u));
  });
  dev.launch(g.num_cols(), [&](std::int64_t i) {
    const auto v = static_cast<std::size_t>(i);
    st.psi_col.store(v, psi_col_shadow_.load(v));
  });
}

}  // namespace bpm::gpu
