#include "core/g_pr.hpp"

#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/g_pr_internal.hpp"
#include "device/scan.hpp"
#include "util/timer.hpp"

namespace bpm::gpu {

namespace {

using matching::kUnmatchable;
using matching::kUnmatched;

using detail::BalancedFrontier;
using detail::compact_survivors;
using detail::is_active_column;
using detail::loop_bound;
using detail::loop_bound_exceeded;
using detail::MinScan;
using detail::RelabelScheduler;
using detail::scan_min_row;

/// Variant kFirst — Algorithm 6 driven by Algorithm 3.
void run_first(device::Device& dev, const BipartiteGraph& g, DeviceState& st,
               const GprOptions& options, GprStats& stats,
               GprObserver* observer) {
  const index_t psi_inf = g.psi_infinity();
  const std::int64_t max_loops = loop_bound(g, options);
  std::int64_t loop = 0;
  RelabelScheduler relabels(g, options);
  device::device_flag act_exists;
  Timer timer;

  bool active = true;
  while (active) {
    (void)relabels.on_loop(dev, g, st, loop, stats, timer);

    act_exists.reset();
    auto push_sp = obs::span(dev.tracer(), "push", "phase");
    if (push_sp) push_sp.arg("loop", loop);
    timer.restart();
    // G-PR-KRNL: one logical thread per column.  Work units model
    // uncoalesced gathers: the µ(µ(v)) activity probe costs one for every
    // matched column — the dead-thread cost the active-list variants
    // remove (paper §III-C, "decreased the divergence of the GPU
    // threads") — plus the Γ(v) scan and the scattered push writes.
    dev.launch_accounted(g.num_cols(), [&](std::int64_t i) -> std::int64_t {
      const auto v = static_cast<index_t>(i);
      const index_t mu_v = st.mu_col.load(static_cast<std::size_t>(v));
      std::int64_t work = mu_v >= 0 ? 1 : 0;  // µ(µ(v)) gather
      const bool active =
          mu_v == kUnmatched ||
          (mu_v >= 0 &&
           st.mu_row.load(static_cast<std::size_t>(mu_v)) != v);
      if (!active) return work;
      act_exists.raise();
      const index_t psi_v = st.psi_col.load(static_cast<std::size_t>(v));
      const MinScan r = scan_min_row(g, st, v, psi_v, psi_inf);
      work += r.scanned;
      if (r.psi_min < psi_inf) {
        st.mu_row.store(static_cast<std::size_t>(r.u_min), v);
        st.mu_col.store(static_cast<std::size_t>(v), r.u_min);
        st.psi_col.store(static_cast<std::size_t>(v), r.psi_min + 1);
        st.psi_row.store(static_cast<std::size_t>(r.u_min), r.psi_min + 2);
        st.mu_dirty.raise();
        work += 2;  // scattered µ(u), ψ(u) writes
      } else {
        st.mu_col.store(static_cast<std::size_t>(v), kUnmatchable);
      }
      return work;
    });
    push_sp.end();
    stats.push_ms += timer.elapsed_ms();
    active = act_exists.is_raised();
    if (observer) observer->on_loop_end(loop, st);
    if (++loop > max_loops) loop_bound_exceeded();
  }
  stats.loops = loop;
}

/// Variants kNoShrink / kShrink — Algorithms 7–9.
void run_active_list(device::Device& dev, const BipartiteGraph& g,
                     DeviceState& st, const GprOptions& options,
                     GprStats& stats, GprObserver* observer) {
  const index_t psi_inf = g.psi_infinity();
  const std::int64_t max_loops = loop_bound(g, options);
  const bool with_shrink = options.variant == GprVariant::kShrink;

  // Both buffers start as the unmatched-column list (paper §III-C1).
  std::vector<index_t> initial;
  for (index_t v = 0; v < g.num_cols(); ++v)
    if (st.mu_col.load(static_cast<std::size_t>(v)) == kUnmatched)
      initial.push_back(v);

  device::relaxed_vector<index_t> ac, ap;
  ac.assign_from(initial);
  ap.assign_from(initial);
  device::relaxed_vector<index_t> i_a(static_cast<std::size_t>(g.num_cols()),
                                      -1);
  auto len = static_cast<std::int64_t>(initial.size());
  stats.active_peak = static_cast<index_t>(len);

  std::int64_t loop = 0;
  RelabelScheduler relabels(g, options);
  bool shrink = false;
  device::device_flag act_exists;
  Timer timer;

  bool active = len > 0;
  while (active) {
    if (relabels.on_loop(dev, g, st, loop, stats, timer)) shrink = true;

    act_exists.reset();
    const auto loop_stamp = static_cast<index_t>(loop);
    timer.restart();

    if (with_shrink && shrink && len >= options.shrink_threshold) {
      // G-PR-SHRKRNL: resolve (roll back conflicts) and compact via the
      // shared two-pass stream compaction (paper §III-C2).
      auto shrink_sp = obs::span(dev.tracer(), "frontier-compaction", "phase");
      if (shrink_sp) shrink_sp.arg("loop", loop);
      device::relaxed_vector<index_t> compacted;
      const std::int64_t total = compact_survivors(
          dev, len,
          [&](std::int64_t i) -> index_t {
            const index_t v_prev = ap.load(static_cast<std::size_t>(i));
            if (v_prev != -1 && is_active_column(st, v_prev)) return v_prev;
            return ac.load(static_cast<std::size_t>(i));
          },
          [&](std::int64_t survivors) {
            compacted = device::relaxed_vector<index_t>(
                static_cast<std::size_t>(survivors), -1);
          },
          [&](std::int64_t out, index_t v) {
            compacted.store(static_cast<std::size_t>(out), v);
            i_a.store(static_cast<std::size_t>(v), loop_stamp);
          });
      ap = compacted;            // PUSH leaves forbidden slots untouched in
      ac = std::move(compacted);  // Ap; seeding both with v keeps the
                                  // roll-back path identical to INITKRNL's.
      // Model cost: two resolve passes (one µ(µ) gather per slot each)
      // plus the scattered iA stamps of the survivors.
      dev.charge_work(2 * len + total);
      len = total;
      if (len > 0) act_exists.raise();
      ++stats.shrinks;
      shrink = false;
    } else {
      // G-PR-INITKRNL (Algorithm 8): detect conflicts from the previous
      // push kernel, roll the losers back into Ac, and stamp iA for every
      // column that is active in this iteration.
      dev.launch_accounted(len, [&](std::int64_t i) -> std::int64_t {
        const auto iz = static_cast<std::size_t>(i);
        std::int64_t work = 0;
        const index_t v_prev = ap.load(iz);
        if (v_prev != -1) {
          ++work;  // µ(µ(v)) activity gather
          if (is_active_column(st, v_prev)) ac.store(iz, v_prev);  // roll back
        }
        const index_t v = ac.load(iz);
        if (v != -1) {
          i_a.store(static_cast<std::size_t>(v), loop_stamp);
          ++work;  // scattered iA stamp
          act_exists.raise();
        }
        return work;
      });
    }

    active = act_exists.is_raised();
    if (active) {
      // G-PR-PUSHKRNL (Algorithm 9).
      auto push_sp = obs::span(dev.tracer(), "push", "phase");
      if (push_sp) {
        push_sp.arg("loop", loop);
        push_sp.arg("active", len);
      }
      dev.launch_accounted(len, [&](std::int64_t i) -> std::int64_t {
        const auto iz = static_cast<std::size_t>(i);
        const index_t v = ac.load(iz);
        if (v == -1) {
          ap.store(iz, -1);
          return 0;
        }
        const index_t psi_v = st.psi_col.load(static_cast<std::size_t>(v));
        const MinScan r = scan_min_row(g, st, v, psi_v, psi_inf);
        std::int64_t work = r.scanned;
        if (r.psi_min < psi_inf) {
          // Capture the displaced column *before* overwriting µ(u)
          // (DESIGN.md D4); w == −1 encodes a single push.
          const index_t w = st.mu_row.load(static_cast<std::size_t>(r.u_min));
          ++work;  // µ(u) gather
          if (w == kUnmatched ||
              i_a.load(static_cast<std::size_t>(w)) != loop_stamp) {
            if (w != kUnmatched) ++work;  // iA(µ(u)) gather
            st.mu_row.store(static_cast<std::size_t>(r.u_min), v);
            st.mu_col.store(static_cast<std::size_t>(v), r.u_min);
            st.psi_col.store(static_cast<std::size_t>(v), r.psi_min + 1);
            st.psi_row.store(static_cast<std::size_t>(r.u_min), r.psi_min + 2);
            st.mu_dirty.raise();
            ap.store(iz, w);
            work += 2;  // scattered µ(u), ψ(u) writes
          }
          // else: µ(u)'s holder is active this loop — pushing would let one
          // column enter Ap twice (paper §III-C1).  Leave Ap(i) alone; the
          // next INITKRNL rolls v back.
        } else {
          st.mu_col.store(static_cast<std::size_t>(v), kUnmatchable);
          ac.store(iz, -1);
          ap.store(iz, -1);
        }
        return work;
      });
      ac.swap(ap);  // line 18 of Algorithm 7
    }
    stats.push_ms += timer.elapsed_ms();
    if (observer) observer->on_loop_end(loop, st);
    if (++loop > max_loops) loop_bound_exceeded();
  }
  stats.loops = loop;
}

/// Workload-balanced driver (GprOptions::balance, solver `g-pr-wb`).
///
/// Semantically this is the shrink driver with compaction every iteration:
/// the same resolve/roll-back rules (a slot's pusher rolls back while it
/// is still active, otherwise the slot yields its displaced column or
/// dies) and the same iA conflict stamps, so the termination and
/// maximality arguments of Algorithms 7–9 carry over unchanged.  What
/// changes is the execution schedule:
///
///  * every loop the active columns are compacted into a dense SoA
///    frontier — column ids, cached ψ, flat CSR slice starts, and degrees
///    — so the push kernel never scans a dead slot and never re-resolves
///    `col_ptr`;
///  * the degree prefix sum of the frontier (device::exclusive_scan via
///    balanced_offsets) feeds Device::launch_balanced, which partitions
///    the frontier's *edges* rather than its columns into equal chunks —
///    a high-degree hub column no longer serializes a chunk that also
///    holds an equal share of everything else (Hsieh et al.,
///    arXiv:2404.00270);
///  * columns whose degree exceeds the intra-item min-combine grain are
///    additionally split *within* the launch (detail::balanced_push), so
///    one hub column no longer bounds the critical path either.
void run_balanced(device::Device& dev, const BipartiteGraph& g,
                  DeviceState& st, const GprOptions& options, GprStats& stats,
                  GprObserver* observer) {
  const index_t psi_inf = g.psi_infinity();
  const std::int64_t max_loops = loop_bound(g, options);
  const std::vector<graph::offset_t>& col_ptr = g.col_ptr();
  const index_t* col_adj = g.col_adj().data();

  // `f` holds the current pushers (the Ap role) and `displaced` their push
  // outputs (displaced columns or −1 — the Ac role), slot-parallel.
  // Plain vectors: each slot has exactly one writer per launch and the
  // launch barrier publishes the writes to the next loop's kernels.
  BalancedFrontier f, next;
  for (index_t v = 0; v < g.num_cols(); ++v)
    if (st.mu_col.load(static_cast<std::size_t>(v)) == kUnmatched)
      f.cols.push_back(v);
  std::vector<index_t> displaced(f.cols.size(), kUnmatched);

  device::relaxed_vector<index_t> i_a(static_cast<std::size_t>(g.num_cols()),
                                      -1);

  std::int64_t loop = 0;
  RelabelScheduler relabels(g, options);
  Timer timer;
  std::int64_t len = f.size();
  stats.active_peak = static_cast<index_t>(len);

  while (len > 0) {
    (void)relabels.on_loop(dev, g, st, loop, stats, timer);
    const auto loop_stamp = static_cast<index_t>(loop);
    timer.restart();

    // --- frontier compaction -------------------------------------------
    // The shared SHRKRNL-shaped stream compaction, emitting the dense
    // frontier SoA instead of a bare column list.
    auto compact_sp = obs::span(dev.tracer(), "frontier-compaction", "phase");
    if (compact_sp) compact_sp.arg("loop", loop);
    const std::int64_t total = compact_survivors(
        dev, len,
        [&](std::int64_t i) -> index_t {
          const index_t v_prev = f.cols[static_cast<std::size_t>(i)];
          if (v_prev != -1 && is_active_column(st, v_prev)) return v_prev;
          return displaced[static_cast<std::size_t>(i)];
        },
        [&](std::int64_t survivors) { next.resize_for(survivors); },
        [&](std::int64_t out, index_t v) {
          const auto oz = static_cast<std::size_t>(out);
          const auto vz = static_cast<std::size_t>(v);
          next.cols[oz] = v;
          next.psi[oz] = st.psi_col.load(vz);
          next.adj_begin[oz] = col_ptr[vz];
          next.degree[oz] =
              static_cast<std::int64_t>(col_ptr[vz + 1] - col_ptr[vz]);
          i_a.store(vz, loop_stamp);
        });
    // Model cost: two resolve passes (one µ(µ) gather per slot each) plus
    // the survivors' scattered iA stamps and gathered ψ/CSR metadata.
    dev.charge_work(2 * len + 3 * total);
    ++stats.frontier_builds;
    if (compact_sp) compact_sp.arg("survivors", total);
    compact_sp.end();

    len = total;
    stats.active_peak =
        std::max(stats.active_peak, static_cast<index_t>(len));
    if (len == 0) {
      stats.push_ms += timer.elapsed_ms();
      if (observer) observer->on_loop_end(loop, st);
      if (++loop > max_loops) loop_bound_exceeded();
      break;
    }

    f.swap(next);  // the fresh frontier becomes this loop's pusher buffer
    displaced.assign(static_cast<std::size_t>(len), kUnmatched);

    // --- edge-balanced push (with intra-item min-combine) ---------------
    {
      auto push_sp = obs::span(dev.tracer(), "push", "phase");
      if (push_sp) {
        push_sp.arg("loop", loop);
        push_sp.arg("active", len);
      }
      detail::balanced_push(dev, col_adj, st, f, i_a, loop_stamp, psi_inf,
                            options.split_grain, displaced,
                            /*pushed_row=*/nullptr, stats);
    }
    stats.push_ms += timer.elapsed_ms();
    if (observer) observer->on_loop_end(loop, st);
    if (++loop > max_loops) loop_bound_exceeded();
  }
  stats.loops = loop;
}

}  // namespace

GprResult g_pr(device::Device& dev, const BipartiteGraph& g,
               const matching::Matching& init, const GprOptions& options,
               GprObserver* observer) {
  if (!init.is_valid(g))
    throw std::invalid_argument("g_pr: invalid initial matching: " +
                                init.first_violation(g));

  Timer total;
  GprResult result;
  GprStats& stats = result.stats;
  auto solve_sp = obs::span(dev.tracer(), "g-pr", "solve");
  if (solve_sp) {
    solve_sp.arg("rows", static_cast<std::int64_t>(g.num_rows()));
    solve_sp.arg("cols", static_cast<std::int64_t>(g.num_cols()));
  }
  const std::uint64_t launches_before = dev.launches();
  const double modeled_before = dev.modeled_ms();

  DeviceState st(g.num_rows(), g.num_cols());
  st.mu_row.assign_from(init.row_match);
  st.mu_col.assign_from(init.col_match);

  bool balanced = options.balance == BalanceMode::kOn;
  if (options.balance == BalanceMode::kAuto) {
    // Degree skew (max/mean) of the initially *unmatched* columns — the
    // columns the push kernels will actually iterate.  One O(n) host
    // pass over the CSR row pointers; the frontier compaction this
    // gates costs a scan + gather every main-loop iteration, so the
    // probe pays for itself immediately.
    const std::vector<graph::offset_t>& col_ptr = g.col_ptr();
    std::int64_t active = 0, edges = 0, max_deg = 0;
    for (index_t v = 0; v < g.num_cols(); ++v) {
      if (init.col_match[static_cast<std::size_t>(v)] >= 0) continue;
      const std::int64_t deg = col_ptr[static_cast<std::size_t>(v) + 1] -
                               col_ptr[static_cast<std::size_t>(v)];
      ++active;
      edges += deg;
      max_deg = std::max(max_deg, deg);
    }
    if (active > 0 && edges > 0) {
      stats.balance_skew = static_cast<double>(max_deg) * active /
                           static_cast<double>(edges);
      balanced = stats.balance_skew >= options.balance_skew_threshold;
    }
  }
  stats.balanced = balanced;

  if (balanced) {
    // The workload-balanced schedule subsumes the variant distinction:
    // every variant's push work runs over the compacted frontier.  The
    // vertex-parallel drivers below stay byte-for-byte the reference.
    run_balanced(dev, g, st, options, stats, observer);
  } else {
    switch (options.variant) {
      case GprVariant::kFirst:
        run_first(dev, g, st, options, stats, observer);
        break;
      case GprVariant::kNoShrink:
      case GprVariant::kShrink:
        run_active_list(dev, g, st, options, stats, observer);
        break;
    }
  }

  Timer fix;
  {
    auto fix_sp = obs::span(dev.tracer(), "fix-matching", "phase");
    detail::fix_matching(dev, g, st);
  }

  result.matching.row_match = st.mu_row.to_host();
  result.matching.col_match = st.mu_col.to_host();
  stats.fix_ms = fix.elapsed_ms();
  stats.device_launches =
      static_cast<std::int64_t>(dev.launches() - launches_before);
  stats.modeled_ms = dev.modeled_ms() - modeled_before;
  stats.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace bpm::gpu
