#include "policy/features.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>

#include "device/device.hpp"

namespace bpm::policy {

InstanceFeatures compute_features(const graph::BipartiteGraph& g,
                                  graph::index_t init_cardinality) {
  InstanceFeatures f;
  f.rows = g.num_rows();
  f.cols = g.num_cols();
  f.edges = g.num_edges();
  const auto& col_ptr = g.col_ptr();

  std::int64_t nonempty = 0, max_deg = 0;
  for (std::size_t v = 0; v + 1 < col_ptr.size(); ++v) {
    const std::int64_t deg = col_ptr[v + 1] - col_ptr[v];
    if (deg == 0) continue;
    ++nonempty;
    max_deg = std::max(max_deg, deg);
  }
  if (f.rows > 0 && f.cols > 0)
    f.density = static_cast<double>(f.edges) /
                (static_cast<double>(f.rows) * static_cast<double>(f.cols));
  if (nonempty > 0) {
    f.avg_degree = static_cast<double>(f.edges) / static_cast<double>(nonempty);
    f.degree_skew = static_cast<double>(max_deg) / f.avg_degree;
  }

  // Hub mass via the same edge-balanced cut machinery the balanced
  // kernels use: split the column-degree prefix sum (the CSR col_ptr IS
  // that prefix sum) into up to 256 equal-work chunks and sum the edges
  // of every chunk a single column monopolises.  A column only gets a
  // chunk to itself when its degree reaches ~edges/256, so this measures
  // exactly the straggler mass `Device::launch_balanced` exists for.
  if (f.edges > 0 && f.cols > 0) {
    const std::int64_t parts = std::min<std::int64_t>(256, f.cols);
    const std::vector<std::int64_t> bounds = device::balanced_partition(
        std::span<const std::int64_t>(col_ptr.data(), col_ptr.size()), parts);
    std::int64_t hub_edges = 0;
    for (std::size_t p = 0; p + 1 < bounds.size(); ++p)
      if (bounds[p + 1] - bounds[p] == 1)
        hub_edges += col_ptr[static_cast<std::size_t>(bounds[p]) + 1] -
                     col_ptr[static_cast<std::size_t>(bounds[p])];
    f.hub_mass = static_cast<double>(hub_edges) / static_cast<double>(f.edges);
  }

  const std::int64_t side = std::min(f.rows, f.cols);
  if (side > 0)
    f.deficiency_est = 1.0 - static_cast<double>(init_cardinality) /
                                 static_cast<double>(side);
  return f;
}

std::string BucketId::key() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "s%d.d%d.k%d.f%d", size, degree, skew,
                deficiency);
  return buf;
}

bool BucketId::parse(const std::string& key, BucketId& out) {
  BucketId b;
  char tail = 0;
  if (std::sscanf(key.c_str(), "s%d.d%d.k%d.f%d%c", &b.size, &b.degree,
                  &b.skew, &b.deficiency, &tail) != 4)
    return false;
  out = b;
  return true;
}

int BucketId::distance(const BucketId& other) const {
  return 1 * std::abs(size - other.size) +
         2 * std::abs(deficiency - other.deficiency) +
         3 * std::abs(degree - other.degree) +
         3 * std::abs(skew - other.skew);
}

BucketId bucket_of(const InstanceFeatures& f) {
  BucketId b;
  // Size bands of 8x edges each: band 3 ≈ 10^3..10^4 edges, the massive
  // suite lands around band 7-8.
  b.size = f.edges > 0
               ? static_cast<int>(std::log2(static_cast<double>(f.edges)) / 3.0)
               : 0;
  b.degree = f.avg_degree < 2.0   ? 0
             : f.avg_degree < 4.0 ? 1
             : f.avg_degree < 8.0 ? 2
             : f.avg_degree < 16.0 ? 3
                                   : 4;
  b.skew = f.degree_skew < 2.0 ? 0 : f.degree_skew < 8.0 ? 1 : 2;
  b.deficiency = f.deficiency_est < 0.001  ? 0
                 : f.deficiency_est < 0.02 ? 1
                                           : 2;
  return b;
}

}  // namespace bpm::policy
