#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "policy/cost_model.hpp"
#include "policy/features.hpp"

namespace bpm::policy {

/// The selection state behind the `auto` solver: the offline-calibrated
/// `CostModel` plus the online per-(bucket, spec) cost estimates that real
/// traffic feeds back through `observe`.  A mis-calibrated model
/// self-corrects — online estimates, once they have samples, take
/// precedence over the table, and an epsilon-greedy explore knob keeps
/// re-measuring the non-favourites so a drifted favourite is caught.
///
/// One process-wide instance (`global()`) backs every `auto` spec; tests
/// construct their own.  All members are thread-safe — `choose`/`observe`
/// run from every serving worker at once.
class PolicyEngine {
 public:
  /// Starts from `model` (the embedded default when omitted, or the file
  /// named by the `BPM_POLICY_MODEL` environment variable if set).
  PolicyEngine();
  explicit PolicyEngine(CostModel model);

  [[nodiscard]] static PolicyEngine& global();

  /// Replaces the offline model (test seam and `load-model`-style admin).
  void set_model(CostModel model);
  /// Snapshot of the offline model (copy: the live one may be swapped).
  [[nodiscard]] CostModel model_snapshot() const;

  struct Choice {
    SolverSpec spec;          ///< concrete registered spec, never "auto"
    std::string bucket;       ///< the feature bucket that decided
    bool explored = false;    ///< epsilon fired: chosen to re-measure
    bool from_online = false; ///< online estimate outranked the table
    bool fallback = false;    ///< no calibrated bucket: fixed exact pool
  };

  /// Picks the cheapest candidate for `f`: candidates come from the
  /// model's (nearest) bucket — or the fixed exact fallback pool when the
  /// model is empty — costed by the online estimate when it has samples,
  /// the calibration table otherwise.  With probability `explore` a
  /// uniformly random candidate is returned instead (flagged `explored`),
  /// which is what keeps the online estimates of non-favourites fresh.
  /// A non-null `model_override` replaces the engine's table for this
  /// choice (the `auto:model=<path>` option); online estimates still
  /// apply.
  [[nodiscard]] Choice choose(const InstanceFeatures& f, double explore,
                              const CostModel* model_override = nullptr);

  /// Feeds one observed solve back: `wall_ms` of `spec` (canonical) on an
  /// instance with features `f`.  Updates the bucket's decaying online
  /// estimate (alpha 0.3, so ~3 observations overturn a stale value).
  void observe(const InstanceFeatures& f, const std::string& spec,
               double wall_ms);

  struct OnlineEstimate {
    std::string bucket;
    std::string spec;
    double us_per_edge = 0.0;
    std::int64_t samples = 0;
  };
  /// The live online estimates, sorted by (bucket, spec) — the `policy`
  /// serve command dumps exactly this.
  [[nodiscard]] std::vector<OnlineEstimate> online_snapshot() const;

  /// Drops every online estimate (test isolation).
  void reset_online();

  /// The fixed exact candidate pool used when no calibrated bucket exists
  /// (every name registered, none heuristic — verification must pass).
  [[nodiscard]] static const std::vector<std::string>& fallback_pool();

 private:
  struct Online {
    double us_per_edge = 0.0;
    std::int64_t samples = 0;
  };

  void bump_counter(const char* name, std::uint64_t n = 1);

  mutable std::mutex mutex_;
  CostModel model_;
  std::map<std::pair<std::string, std::string>, Online> online_;
  /// Deterministically seeded: explore decisions are reproducible within
  /// a process run, which the convergence tests rely on.
  std::mt19937_64 rng_{0x9e3779b97f4a7c15ull};
};

/// The `auto` solver: resolves to a concrete registered spec per instance
/// from its features and runs it.  Registered in `bpm::SolverRegistry`
/// under "auto", so every harness `--algo auto`, `mtx_matcher`, the
/// pipeline, and the service sweep it with zero per-call-site code.
///
/// Options (`auto:model=<path>,explore=<p>`): `model` loads a calibration
/// table for this solver object instead of the engine's (the committed
/// default); `explore` sets the epsilon-greedy probability (default 0 —
/// services that want online refinement under live traffic turn it on).
///
/// The serving layer resolves BEFORE dispatch (`resolve` on the admitted
/// instance's cached features) and swaps in the concrete solver + spec,
/// so an `auto` request and an explicit request for the same concrete
/// spec share result-cache entries; everywhere else `run` resolves
/// internally and reports the choice in `SolveStats::detail`.
class AutoSolver final : public Solver {
 public:
  AutoSolver() : engine_(&PolicyEngine::global()) {}
  explicit AutoSolver(PolicyEngine& engine) : engine_(&engine) {}

  [[nodiscard]] std::string name() const override { return "auto"; }

  [[nodiscard]] SolverCaps caps() const override {
    // May resolve to any exact solver: claim the device (always provided
    // by pipelines/harnesses/services) and multicore threads; never claim
    // determinism — the choice itself can change with online state.
    return {.needs_device = true, .multicore = true, .deterministic = false,
            .exact = true};
  }

  bool set_option(std::string_view key, std::string_view value) override;

  struct Resolved {
    SolverSpec spec;  ///< concrete, with `resolved_from` provenance set
    std::unique_ptr<Solver> solver;
    std::string bucket;
    bool explored = false;
    bool from_online = false;
    bool fallback = false;
  };

  /// Resolves the concrete solver for an instance with features `f`.
  /// Always returns a registered, instantiable spec.
  [[nodiscard]] Resolved resolve(const InstanceFeatures& f) const;

  /// Features → resolve → run the chosen solver; prepends the choice to
  /// `SolveStats::detail` and feeds the observed wall back into the
  /// engine's online estimates.
  [[nodiscard]] SolveResult run(const SolveContext& ctx,
                                const graph::BipartiteGraph& g,
                                const matching::Matching& init) const override;

  [[nodiscard]] double explore() const { return explore_; }

 private:
  PolicyEngine* engine_;
  /// Loaded from `model=<path>`; overrides the engine's table (the
  /// online estimates still come from — and feed — the engine).
  std::optional<CostModel> model_override_;
  double explore_ = 0.0;
};

}  // namespace bpm::policy
