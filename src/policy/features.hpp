#pragma once

#include <cstdint>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bpm::policy {

/// The cheap structural summary of one instance that drives solver
/// selection: computed once at admission (`admit_instance` fills
/// `PipelineInstance::features`, so `serve::InstanceStore` caches it per
/// structural fingerprint) and matched against the calibration table's
/// feature buckets by `CostModel`.
///
/// Everything here is O(cols) off the CSR column pointers plus the shared
/// greedy init's cardinality — no edge-array pass — so feature extraction
/// never shows up next to a solve.  The paper's own comparison work
/// (arXiv:1303.1379) flips winners exactly along these axes: size,
/// density, degree skew, and deficiency.
struct InstanceFeatures {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t edges = 0;
  /// edges / (rows * cols) — the classic density.
  double density = 0.0;
  /// Mean degree over non-empty columns.
  double avg_degree = 0.0;
  /// Max/mean column degree over non-empty columns — 1 is perfectly
  /// uniform, hub instances run to 10+.  Identical to the admission-time
  /// `PipelineInstance::degree_skew` the backend-fit router uses.
  double degree_skew = 0.0;
  /// Fraction of all edges owned by columns heavy enough to monopolise a
  /// chunk of the edge-balanced partition (`device::balanced_partition`
  /// over the column-degree prefix sum): the mass the straggler problem is
  /// made of.  0 for uniform instances, approaching the hub block's edge
  /// share on hubby ones.
  double hub_mass = 0.0;
  /// 1 - init_cardinality / min(rows, cols): how far the shared greedy
  /// init left the instance from trivially saturated.  Near 0 means the
  /// solver mostly verifies; a few percent means real augmenting work.
  double deficiency_est = 0.0;
};

/// Computes the features of `g` given the shared init's cardinality.
/// Deterministic in the graph structure; invariant under vertex
/// relabeling except `hub_mass`, whose balanced-cut boundaries move with
/// column order (tests allow it a generous tolerance).
[[nodiscard]] InstanceFeatures compute_features(
    const graph::BipartiteGraph& g, graph::index_t init_cardinality);

/// A feature bucket of the calibration table: coarse bands per axis, so a
/// handful of calibration instances covers the whole feature space and an
/// unseen instance lands in (or next to) a calibrated cell.
struct BucketId {
  int size = 0;        ///< log8-ish edge-count band
  int degree = 0;      ///< average-degree band
  int skew = 0;        ///< degree-skew band
  int deficiency = 0;  ///< deficiency band

  /// The stable string key used in calibration tables and metrics
  /// ("s4.d2.k1.f2").
  [[nodiscard]] std::string key() const;
  /// Parses a `key()` string; returns false on anything else.
  static bool parse(const std::string& key, BucketId& out);

  /// Weighted axis distance for nearest-bucket fallback: size is the
  /// cheapest axis to relax (per-edge cost transfers across sizes),
  /// deficiency next, skew and degree shape the algorithm choice most.
  [[nodiscard]] int distance(const BucketId& other) const;

  [[nodiscard]] bool operator==(const BucketId& other) const = default;
};

/// The bucket `f` falls into.
[[nodiscard]] BucketId bucket_of(const InstanceFeatures& f);

}  // namespace bpm::policy
