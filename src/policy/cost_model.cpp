#include "policy/cost_model.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bpm::policy {

namespace {

/// Round-trippable doubles, same convention as harness_common's JSON.
std::string json_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Minimal scanner over exactly the JSON subset `to_json` emits: objects,
/// string keys, and numbers.  Keys never contain escapes (bucket keys and
/// canonical specs are `[-a-z0-9.=:,]`), so no unescaping is needed.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] bool consume(char c) {
    if (!peek(c)) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escapes are not part of the model schema");
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    return std::string(text_.substr(start, pos_++ - start));
  }

  [[nodiscard]] double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    double value = 0.0;
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start)
      fail("malformed number");
    return value;
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after the document");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("cost model JSON: " + why + " at byte " +
                                std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void CostModel::record(const std::string& bucket, const std::string& spec,
                       double us_per_edge) {
  CostEntry& e = buckets_[bucket][spec];
  e.us_per_edge =
      (e.us_per_edge * static_cast<double>(e.samples) + us_per_edge) /
      static_cast<double>(e.samples + 1);
  ++e.samples;
}

const CostModel::SpecTable* CostModel::find(
    const std::string& bucket_key) const {
  const auto it = buckets_.find(bucket_key);
  return it == buckets_.end() ? nullptr : &it->second;
}

const CostModel::SpecTable* CostModel::lookup(const BucketId& bucket) const {
  if (const SpecTable* exact = find(bucket.key())) return exact;
  const SpecTable* best = nullptr;
  int best_distance = 0;
  for (const auto& [key, table] : buckets_) {
    BucketId candidate;
    if (!BucketId::parse(key, candidate)) continue;
    const int d = bucket.distance(candidate);
    // Strict '<' keeps the first (lexicographically smallest, the map is
    // sorted) bucket on ties — deterministic fallback.
    if (best == nullptr || d < best_distance) {
      best = &table;
      best_distance = d;
    }
  }
  return best;
}

std::string CostModel::to_json() const {
  std::ostringstream os;
  os << "{\n  \"policy_cost_model\": 1,\n  \"buckets\": {";
  bool first_bucket = true;
  for (const auto& [bucket, specs] : buckets_) {
    os << (first_bucket ? "\n" : ",\n") << "    \"" << bucket << "\": {";
    first_bucket = false;
    bool first_spec = true;
    for (const auto& [spec, entry] : specs) {
      os << (first_spec ? "\n" : ",\n") << "      \"" << spec
         << "\": {\"us_per_edge\": " << json_number(entry.us_per_edge)
         << ", \"samples\": " << entry.samples << "}";
      first_spec = false;
    }
    os << "\n    }";
  }
  os << (first_bucket ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

void CostModel::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cost model: cannot open " + path);
  out << to_json();
  if (!out.good())
    throw std::runtime_error("cost model: write failed: " + path);
}

CostModel CostModel::from_json(std::string_view json) {
  CostModel model;
  Scanner s(json);
  s.expect('{');
  bool first_field = true;
  while (!s.peek('}')) {
    if (!first_field) s.expect(',');
    first_field = false;
    const std::string field = s.string();
    s.expect(':');
    if (field == "policy_cost_model") {
      if (s.number() != 1.0)
        throw std::invalid_argument("cost model JSON: unsupported version");
    } else if (field == "buckets") {
      s.expect('{');
      bool first_bucket = true;
      while (!s.peek('}')) {
        if (!first_bucket) s.expect(',');
        first_bucket = false;
        const std::string bucket = s.string();
        s.expect(':');
        s.expect('{');
        bool first_spec = true;
        while (!s.peek('}')) {
          if (!first_spec) s.expect(',');
          first_spec = false;
          const std::string spec = s.string();
          s.expect(':');
          s.expect('{');
          CostEntry entry;
          bool first_key = true;
          while (!s.peek('}')) {
            if (!first_key) s.expect(',');
            first_key = false;
            const std::string key = s.string();
            s.expect(':');
            const double value = s.number();
            if (key == "us_per_edge")
              entry.us_per_edge = value;
            else if (key == "samples")
              entry.samples = static_cast<std::int64_t>(value);
            else
              throw std::invalid_argument("cost model JSON: unknown field '" +
                                          key + "'");
          }
          s.expect('}');
          model.buckets_[bucket][spec] = entry;
        }
        s.expect('}');
      }
      s.expect('}');
    } else {
      throw std::invalid_argument("cost model JSON: unknown field '" + field +
                                  "'");
    }
  }
  s.expect('}');
  s.finish();
  return model;
}

CostModel CostModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cost model: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

const CostModel& CostModel::embedded_default() {
  static const CostModel model = from_json(
#include "policy/default_model.inc"
  );
  return model;
}

}  // namespace bpm::policy
