#include "policy/auto_solver.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace bpm::policy {

namespace {

constexpr double kOnlineAlpha = 0.3;

}  // namespace

PolicyEngine::PolicyEngine() {
  if (const char* path = std::getenv("BPM_POLICY_MODEL");
      path != nullptr && *path != '\0')
    model_ = CostModel::load(path);
  else
    model_ = CostModel::embedded_default();
}

PolicyEngine::PolicyEngine(CostModel model) : model_(std::move(model)) {}

PolicyEngine& PolicyEngine::global() {
  static PolicyEngine engine;
  return engine;
}

void PolicyEngine::set_model(CostModel model) {
  const std::lock_guard lock(mutex_);
  model_ = std::move(model);
}

CostModel PolicyEngine::model_snapshot() const {
  const std::lock_guard lock(mutex_);
  return model_;
}

const std::vector<std::string>& PolicyEngine::fallback_pool() {
  // Exact solvers only — an `auto` resolution must always pass the same
  // verification an explicit request would.  Covers every family: the
  // device push-relabel pair, the CPU augmenting-path codes, the
  // sequential push-relabel, and the multicore searcher.
  static const std::vector<std::string> pool = {
      "g-pr-wb", "g-pr-shr", "hk", "hkdw", "pf", "p-dbfs", "seq-pr"};
  return pool;
}

void PolicyEngine::bump_counter(const char* name, std::uint64_t n) {
  obs::Registry::global().counter(name).add(n);
}

PolicyEngine::Choice PolicyEngine::choose(const InstanceFeatures& f,
                                          double explore,
                                          const CostModel* model_override) {
  Choice out;
  const BucketId bucket = bucket_of(f);
  out.bucket = bucket.key();

  // Candidate pool: the calibrated (nearest) bucket's specs, else the
  // fixed exact pool.
  std::vector<std::pair<std::string, double>> candidates;  // spec, table us/e
  {
    const std::lock_guard lock(mutex_);
    const CostModel& model = model_override ? *model_override : model_;
    if (const CostModel::SpecTable* table = model.lookup(bucket)) {
      for (const auto& [spec, entry] : *table)
        candidates.emplace_back(spec, entry.us_per_edge);
    }
    if (candidates.empty()) {
      out.fallback = true;
      for (const std::string& spec : fallback_pool())
        candidates.emplace_back(spec, 0.0);
    }

    // Epsilon-greedy: with probability `explore`, re-measure a uniformly
    // random candidate instead of exploiting the estimate.
    if (explore > 0.0 && candidates.size() > 1) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng_) < explore) {
        std::uniform_int_distribution<std::size_t> pick(0,
                                                        candidates.size() - 1);
        const auto& [spec, us] = candidates[pick(rng_)];
        out.spec = SolverSpec::parse(spec);
        out.explored = true;
      }
    }

    if (!out.explored) {
      // Exploit: cheapest by online estimate (when sampled) or the table.
      std::size_t best = 0;
      double best_cost = 0.0;
      bool best_online = false;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        double cost = candidates[c].second;
        bool online = false;
        const auto it = online_.find({out.bucket, candidates[c].first});
        if (it != online_.end() && it->second.samples > 0) {
          cost = it->second.us_per_edge;
          online = true;
        }
        if (c == 0 || cost < best_cost) {
          best = c;
          best_cost = cost;
          best_online = online;
        }
      }
      out.spec = SolverSpec::parse(candidates[best].first);
      out.from_online = best_online;
    }
  }

  out.spec.resolved_from = "auto";
  bump_counter("policy.resolves");
  if (out.explored) bump_counter("policy.explores");
  if (out.fallback)
    bump_counter("policy.fallbacks");
  else
    bump_counter("policy.model_hits");
  return out;
}

void PolicyEngine::observe(const InstanceFeatures& f, const std::string& spec,
                           double wall_ms) {
  if (f.edges <= 0 || wall_ms < 0.0) return;
  const double us_per_edge = wall_ms * 1e3 / static_cast<double>(f.edges);
  const std::string bucket = bucket_of(f).key();
  std::size_t buckets = 0;
  {
    const std::lock_guard lock(mutex_);
    Online& o = online_[{bucket, spec}];
    o.us_per_edge = o.samples == 0
                        ? us_per_edge
                        : o.us_per_edge * (1.0 - kOnlineAlpha) +
                              us_per_edge * kOnlineAlpha;
    ++o.samples;
    buckets = online_.size();
  }
  bump_counter("policy.observations");
  obs::Registry::global()
      .gauge("policy.online_cells")
      .set(static_cast<double>(buckets));
}

std::vector<PolicyEngine::OnlineEstimate> PolicyEngine::online_snapshot()
    const {
  const std::lock_guard lock(mutex_);
  std::vector<OnlineEstimate> out;
  out.reserve(online_.size());
  for (const auto& [key, o] : online_)  // map: sorted by (bucket, spec)
    out.push_back({key.first, key.second, o.us_per_edge, o.samples});
  return out;
}

void PolicyEngine::reset_online() {
  const std::lock_guard lock(mutex_);
  online_.clear();
}

// ---- AutoSolver ------------------------------------------------------------

bool AutoSolver::set_option(std::string_view key, std::string_view value) {
  if (key == "model") {
    model_override_ = CostModel::load(std::string(value));
  } else if (key == "explore") {
    char* end = nullptr;
    const std::string v(value);
    explore_ = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size() || explore_ < 0.0 || explore_ > 1.0)
      throw std::invalid_argument(
          "option 'explore' wants a probability in [0, 1], got '" + v + "'");
  } else {
    return false;
  }
  return true;
}

AutoSolver::Resolved AutoSolver::resolve(const InstanceFeatures& f) const {
  PolicyEngine::Choice choice = engine_->choose(
      f, explore_, model_override_ ? &*model_override_ : nullptr);
  Resolved out;
  out.solver = choice.spec.instantiate();
  out.spec = std::move(choice.spec);
  out.bucket = std::move(choice.bucket);
  out.explored = choice.explored;
  out.from_online = choice.from_online;
  out.fallback = choice.fallback;
  return out;
}

SolveResult AutoSolver::run(const SolveContext& ctx,
                            const graph::BipartiteGraph& g,
                            const matching::Matching& init) const {
  Timer t;
  const InstanceFeatures features = compute_features(g, init.cardinality());
  const Resolved resolved = resolve(features);
  SolveResult result = resolved.solver->run(ctx, g, init);
  // The resolution provenance, ahead of the inner solver's own detail —
  // this is how pipeline reports and ticket stats carry the chosen spec.
  std::ostringstream d;
  d << "auto -> " << resolved.spec.canonical() << " [bucket="
    << resolved.bucket << ", "
    << (resolved.explored     ? "explored"
        : resolved.from_online ? "online"
        : resolved.fallback    ? "fallback"
                               : "model")
    << "]";
  if (!result.stats.detail.empty()) d << "; " << result.stats.detail;
  result.stats.detail = d.str();
  // Charge the full wall (features + resolution + solve) and feed it
  // back: what the caller waited for is what the estimate must predict.
  result.stats.wall_ms = t.elapsed_ms();
  engine_->observe(features, resolved.spec.canonical(), result.stats.wall_ms);
  return result;
}

}  // namespace bpm::policy
