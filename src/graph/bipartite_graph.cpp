#include "graph/bipartite_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bpm::graph {

BipartiteGraph::BipartiteGraph(index_t num_rows, index_t num_cols,
                               std::vector<offset_t> row_ptr,
                               std::vector<index_t> row_adj,
                               std::vector<offset_t> col_ptr,
                               std::vector<index_t> col_adj)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      row_ptr_(std::move(row_ptr)),
      row_adj_(std::move(row_adj)),
      col_ptr_(std::move(col_ptr)),
      col_adj_(std::move(col_adj)) {
  if (num_rows_ < 0 || num_cols_ < 0)
    throw std::invalid_argument("BipartiteGraph: negative dimension");
  if (row_ptr_.size() != static_cast<std::size_t>(num_rows_) + 1 ||
      col_ptr_.size() != static_cast<std::size_t>(num_cols_) + 1)
    throw std::invalid_argument("BipartiteGraph: pointer array size mismatch");
  if (row_adj_.size() != col_adj_.size())
    throw std::invalid_argument(
        "BipartiteGraph: the two CSR directions disagree on edge count");
  validate();
}

bool BipartiteGraph::has_edge(index_t u, index_t v) const {
  if (u < 0 || u >= num_rows_ || v < 0 || v >= num_cols_) return false;
  auto nbrs = row_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void BipartiteGraph::validate() const {
  auto check_csr = [](const std::vector<offset_t>& ptr,
                      const std::vector<index_t>& adj, index_t bound,
                      const char* side) {
    if (ptr.empty() || ptr.front() != 0)
      throw std::logic_error(std::string("CSR ") + side +
                             ": pointer array must start at 0");
    if (ptr.back() != static_cast<offset_t>(adj.size()))
      throw std::logic_error(std::string("CSR ") + side +
                             ": pointer array must end at nnz");
    for (std::size_t i = 0; i + 1 < ptr.size(); ++i) {
      if (ptr[i] > ptr[i + 1])
        throw std::logic_error(std::string("CSR ") + side +
                               ": pointers not monotone");
      for (offset_t k = ptr[i]; k < ptr[i + 1]; ++k) {
        const index_t nb = adj[static_cast<std::size_t>(k)];
        if (nb < 0 || nb >= bound)
          throw std::logic_error(std::string("CSR ") + side +
                                 ": neighbor out of range");
        if (k > ptr[i] && adj[static_cast<std::size_t>(k - 1)] >= nb)
          throw std::logic_error(std::string("CSR ") + side +
                                 ": neighbors not strictly sorted");
      }
    }
  };
  check_csr(row_ptr_, row_adj_, num_cols_, "rows");
  check_csr(col_ptr_, col_adj_, num_rows_, "cols");
}

std::string BipartiteGraph::describe() const {
  std::ostringstream os;
  os << num_rows_ << " rows x " << num_cols_ << " cols, " << num_edges()
     << " edges";
  if (num_rows_ > 0) {
    os << ", avg row degree "
       << static_cast<double>(num_edges()) / static_cast<double>(num_rows_);
  }
  return os.str();
}

std::uint64_t structural_fingerprint(const BipartiteGraph& g) {
  // FNV-1a over the dimensions and the row-side CSR.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(g.num_rows()));
  mix(static_cast<std::uint64_t>(g.num_cols()));
  for (const offset_t p : g.row_ptr()) mix(static_cast<std::uint64_t>(p));
  for (const index_t a : g.row_adj()) mix(static_cast<std::uint64_t>(a));
  return h;
}

}  // namespace bpm::graph
