#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"

namespace bpm::graph::gen {

/// Synthetic bipartite graph generators.
///
/// The paper evaluates on bipartite graphs of 28 UFL/SuiteSparse matrices.
/// Those files are not redistributable here, so each matrix *class* gets a
/// generator that reproduces the structural properties driving the paper's
/// performance story: degree skew (drives deficiency after greedy init and
/// BFS frontier width), diameter (drives the number of global-relabel BFS
/// levels and hence kernel launches), and locality.  See DESIGN.md §2.
///
/// All generators are deterministic in (parameters, seed).

/// Uniformly random bipartite graph with ~`target_edges` distinct edges
/// (duplicates from sampling are removed, so the realised count can be
/// slightly lower).  Analogue for unstructured rectangular matrices
/// (GL7d19-like when nrows ≈ ncols and degree ≳ log n).
[[nodiscard]] BipartiteGraph random_uniform(index_t num_rows, index_t num_cols,
                                            offset_t target_edges,
                                            std::uint64_t seed);

/// n x n graph with a planted perfect matching plus `extra_degree` random
/// edges per row.  Guarantees maximum matching = n; analogue for circuit
/// matrices with zero-free diagonals (Hamrle3-like).
[[nodiscard]] BipartiteGraph planted_perfect(index_t n, double extra_degree,
                                             std::uint64_t seed);

/// R-MAT / Kronecker graph with 2^scale vertices per side and
/// `edge_factor * 2^scale` sampled edges (kron_g500-logn* analogue).
/// Quadrant probabilities default to the Graph500 values; `d = 1-a-b-c`.
[[nodiscard]] BipartiteGraph rmat(int scale, double edge_factor,
                                  std::uint64_t seed, double a = 0.57,
                                  double b = 0.19, double c = 0.19);

/// Chung–Lu power-law graph: vertex weights follow a Zipf-like law with
/// exponent `gamma` (degree distribution P(d) ~ d^-gamma), average degree
/// `avg_degree`.  Analogue for the social/web/citation instances
/// (amazon, flickr, eu-2005, in-2004, as-Skitter, wikipedia, patents,
/// livejournal, wb-edu).  Vertex ids are randomly permuted so that degree
/// is uncorrelated with index order.
[[nodiscard]] BipartiteGraph chung_lu(index_t num_rows, index_t num_cols,
                                      double avg_degree, double gamma,
                                      std::uint64_t seed);

/// Few-hub skewed-degree graph: `num_hubs` *column* hubs, each adjacent
/// to ~`hub_fraction · num_rows` random rows, over a sparse uniform
/// background of ~`background_degree` edges per column.  This is the
/// straggler instance for vertex-parallel push kernels — one logical
/// thread per column makes a hub serialize its whole launch chunk, the
/// problem edge-balanced work partitioning solves (Hsieh et al.,
/// arXiv:2404.00270); Deveci et al. (arXiv:1303.1379) motivate the same
/// shape with their degree-skewed instance suite.  Choosing
/// `num_rows < num_cols` leaves a structural deficiency that keeps
/// columns — hubs included — active and contended deep into a
/// push-relabel run instead of retiring right after greedy init.
///
/// `scatter` controls where the hubs live in the id space: true randomly
/// permutes vertex ids so degree is uncorrelated with index order (the
/// collection-default the other generators use); false leaves the hubs as
/// a contiguous low-id block — the crawl-ordered regime of real
/// web/social matrices (eu-2005, in-2004), where a static equal-column
/// partition hands one worker the whole hub block: exactly the straggler
/// case edge-balanced partitioning fixes.
[[nodiscard]] BipartiteGraph skewed_hubs(index_t num_rows, index_t num_cols,
                                         index_t num_hubs, double hub_fraction,
                                         double background_degree,
                                         std::uint64_t seed,
                                         bool scatter = true);

/// Road-network analogue (roadNet-PA/TX/CA, italy_osm): the symmetric
/// adjacency matrix of an nx x ny lattice where each lattice edge survives
/// with probability `keep_prob`, plus a sprinkling of shortcut edges.
/// Low `keep_prob` (~0.55) yields the degree≈2 polyline structure of OSM
/// exports; ~0.9 yields US-road-like grids.  High diameter by design.
[[nodiscard]] BipartiteGraph road_network(index_t nx, index_t ny,
                                          double keep_prob,
                                          std::uint64_t seed);

/// Delaunay-triangulation analogue (delaunay_n2x): a triangulated lattice
/// — every lattice cell gets one of its two diagonals at random — giving
/// planar structure with average degree ≈ 6 like a true Delaunay mesh.
[[nodiscard]] BipartiteGraph delaunay_mesh(index_t nx, index_t ny,
                                           std::uint64_t seed);

/// Huge-diameter thin mesh (hugetrace-*/hugebubbles-* analogue): a
/// `length x width` strip with `width << length`; `hole_prob` punches
/// bubbles (deleted vertices) into the strip.  These are the paper's
/// adversarial instances: diameter Θ(length) forces Θ(length) BFS level
/// kernels per global relabel, which is where G-PR loses to CPU codes.
[[nodiscard]] BipartiteGraph trace_mesh(index_t length, index_t width,
                                        double hole_prob, std::uint64_t seed);

/// Co-authorship clique-overlap analogue (coPapersDBLP): vertices are
/// covered by `num_communities` cliques whose sizes are drawn around
/// `avg_community`, each clique spanning a random local window; cliques
/// share vertices, producing dense local structure and a near-perfect
/// greedy matching.  Community sizes are capped to keep |E| manageable.
[[nodiscard]] BipartiteGraph copaper(index_t num_vertices,
                                     index_t num_communities,
                                     double avg_community, std::uint64_t seed);

/// Massive-instance generator for shard scaling: ~`avg_degree` random
/// rows per column, plus a hub column every `hub_every` columns with
/// ~`hub_fraction · num_rows` neighbours (0 disables hubs).  Unlike the
/// other generators there is NO intermediate edge list: columns are
/// sampled one at a time straight into the column CSR (a per-column
/// scratch buffer is the only transient), and the row CSR is derived by a
/// counting pass — peak memory is the final graph plus O(max degree), so
/// instances ~10x the rest of the suite build without a memory spike.
/// Hubs stay on their natural ids (no scatter permutation — permuting
/// would materialise an edge list again); the shard cut still spreads
/// them because they recur every `hub_every` columns.
[[nodiscard]] BipartiteGraph huge_bipartite(index_t num_rows, index_t num_cols,
                                            double avg_degree,
                                            double hub_fraction,
                                            index_t hub_every,
                                            std::uint64_t seed);

// --- Deterministic shapes for tests and examples ---------------------------

/// Complete bipartite K_{m,n}.
[[nodiscard]] BipartiteGraph complete_bipartite(index_t m, index_t n);

/// No edges at all.
[[nodiscard]] BipartiteGraph empty_graph(index_t m, index_t n);

/// One row connected to `leaves` columns (maximum matching = 1).
[[nodiscard]] BipartiteGraph star(index_t leaves);

/// Path r0-c0-r1-c1-...-r(k-1)-c(k-1): k rows, k cols, 2k-1 edges,
/// perfect matching of size k, and — crucially for push-relabel tests —
/// augmenting paths of maximal length.
[[nodiscard]] BipartiteGraph chain(index_t k);

}  // namespace bpm::graph::gen
