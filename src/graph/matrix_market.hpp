#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.hpp"

namespace bpm::graph {

/// Matrix Market (.mtx) coordinate-format I/O.
///
/// The paper evaluates on bipartite graphs of sparse matrices from the
/// UFL (SuiteSparse) collection, which are distributed in this format.
/// A matrix A induces the bipartite graph with an edge {row i, column j}
/// for every structural nonzero a_ij — numerical values are ignored for
/// cardinality matching.
///
/// Supported headers:
///   %%MatrixMarket matrix coordinate {pattern|real|integer|complex}
///                  {general|symmetric|skew-symmetric|hermitian}
/// Symmetric variants mirror each off-diagonal entry (i,j) to (j,i), as
/// SuiteSparse stores only the lower triangle.
///
/// Throws `std::runtime_error` with a line number on malformed input.
[[nodiscard]] BipartiteGraph read_matrix_market(std::istream& in);
[[nodiscard]] BipartiteGraph read_matrix_market_file(const std::string& path);

/// Writes `g` as a `pattern general` coordinate matrix (1-based indices).
/// `read_matrix_market(write_matrix_market(g)) == g` structurally.
void write_matrix_market(std::ostream& out, const BipartiteGraph& g);
void write_matrix_market_file(const std::string& path,
                              const BipartiteGraph& g);

}  // namespace bpm::graph
