#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace bpm::graph {

namespace {

/// Counting-sort one CSR direction from a deduplicated edge list.
/// `key(e)` selects the source side, `val(e)` the target side.
template <typename Key, typename Val>
void build_csr(std::span<const Edge> edges, index_t num_src, Key key, Val val,
               std::vector<offset_t>& ptr, std::vector<index_t>& adj) {
  ptr.assign(static_cast<std::size_t>(num_src) + 1, 0);
  for (const Edge& e : edges) ptr[static_cast<std::size_t>(key(e)) + 1]++;
  std::partial_sum(ptr.begin(), ptr.end(), ptr.begin());
  adj.resize(edges.size());
  std::vector<offset_t> cursor(ptr.begin(), ptr.end() - 1);
  for (const Edge& e : edges)
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(key(e))]++)] =
        val(e);
  for (index_t s = 0; s < num_src; ++s)
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<std::size_t>(s)]),
              adj.begin() + static_cast<std::ptrdiff_t>(ptr[static_cast<std::size_t>(s) + 1]));
}

}  // namespace

BipartiteGraph build_from_edges(index_t num_rows, index_t num_cols,
                                std::span<const Edge> edges) {
  if (num_rows < 0 || num_cols < 0)
    throw std::invalid_argument("build_from_edges: negative dimension");
  for (const Edge& e : edges) {
    if (e.row < 0 || e.row >= num_rows || e.col < 0 || e.col >= num_cols)
      throw std::invalid_argument(
          "build_from_edges: edge endpoint out of range");
  }

  // Deduplicate without disturbing the caller's buffer.
  std::vector<Edge> sorted(edges.begin(), edges.end());
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<offset_t> row_ptr, col_ptr;
  std::vector<index_t> row_adj, col_adj;
  build_csr(
      sorted, num_rows, [](const Edge& e) { return e.row; },
      [](const Edge& e) { return e.col; }, row_ptr, row_adj);
  build_csr(
      sorted, num_cols, [](const Edge& e) { return e.col; },
      [](const Edge& e) { return e.row; }, col_ptr, col_adj);

  return BipartiteGraph(num_rows, num_cols, std::move(row_ptr),
                        std::move(row_adj), std::move(col_ptr),
                        std::move(col_adj));
}

BipartiteGraph build_from_edges(
    index_t num_rows, index_t num_cols,
    const std::vector<std::pair<index_t, index_t>>& edges) {
  std::vector<Edge> es;
  es.reserve(edges.size());
  for (auto [u, v] : edges) es.push_back({u, v});
  return build_from_edges(num_rows, num_cols, es);
}

BipartiteGraph permute_vertices(const BipartiteGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<index_t> row_perm(static_cast<std::size_t>(g.num_rows()));
  std::vector<index_t> col_perm(static_cast<std::size_t>(g.num_cols()));
  std::iota(row_perm.begin(), row_perm.end(), 0);
  std::iota(col_perm.begin(), col_perm.end(), 0);
  std::shuffle(row_perm.begin(), row_perm.end(), rng);
  std::shuffle(col_perm.begin(), col_perm.end(), rng);

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u))
      edges.push_back({row_perm[static_cast<std::size_t>(u)],
                       col_perm[static_cast<std::size_t>(v)]});
  return build_from_edges(g.num_rows(), g.num_cols(), edges);
}

}  // namespace bpm::graph
