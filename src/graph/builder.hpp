#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bpm::graph {

/// An edge {row u, column v} of a bipartite graph.
struct Edge {
  index_t row;
  index_t col;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Builds a `BipartiteGraph` from an arbitrary edge list.
///
/// Duplicates are removed, adjacency lists are sorted, and both CSR
/// directions are constructed with counting sort (O(|E| + m + n)).
/// Out-of-range endpoints throw `std::invalid_argument` — generators and
/// file readers are expected to produce in-range vertices, and silently
/// clamping would corrupt experiments.
[[nodiscard]] BipartiteGraph build_from_edges(index_t num_rows,
                                              index_t num_cols,
                                              std::span<const Edge> edges);

/// Convenience overload.
[[nodiscard]] BipartiteGraph build_from_edges(
    index_t num_rows, index_t num_cols,
    const std::vector<std::pair<index_t, index_t>>& edges);

/// Returns the same graph with rows and columns independently relabeled by
/// random permutations (seeded).  Used by tests to check that algorithms
/// are invariant to vertex order, and by generators to destroy the
/// artificial locality of lattice constructions.
[[nodiscard]] BipartiteGraph permute_vertices(const BipartiteGraph& g,
                                              std::uint64_t seed);

}  // namespace bpm::graph
