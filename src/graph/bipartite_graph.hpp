#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bpm::graph {

/// Vertex index type.  The paper's instances peak at ~18M vertices, well
/// within 32 bits; edge offsets use 64 bits because kron-style instances
/// reach 91M edges.
using index_t = std::int32_t;
using offset_t = std::int64_t;

/// An undirected bipartite graph G = (V_R ∪ V_C, E) in dual-CSR form.
///
/// Following the paper's matrix notation, the two sides are "rows" (V_R)
/// and "columns" (V_C).  Both adjacency directions are materialised:
///
///  * rows → columns  (`row_ptr` / `row_adj`) — walked by the global
///    relabeling BFS (Algorithms 2, 4–5), which expands *row* frontiers;
///  * columns → rows  (`col_ptr` / `col_adj`) — walked by every push
///    kernel (Algorithms 1, 6, 9), which scans Γ(v) of a *column* v.
///
/// Adjacency lists are sorted and duplicate-free (guaranteed by the
/// builder).  The structure is immutable after construction.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Constructs from prevalidated CSR arrays.  Prefer `build_from_edges`
  /// (graph/builder.hpp) unless you already hold CSR data.
  /// Throws `std::invalid_argument` if the arrays are inconsistent.
  BipartiteGraph(index_t num_rows, index_t num_cols,
                 std::vector<offset_t> row_ptr, std::vector<index_t> row_adj,
                 std::vector<offset_t> col_ptr, std::vector<index_t> col_adj);

  [[nodiscard]] index_t num_rows() const { return num_rows_; }
  [[nodiscard]] index_t num_cols() const { return num_cols_; }
  [[nodiscard]] offset_t num_edges() const {
    return static_cast<offset_t>(row_adj_.size());
  }

  /// m + n: the paper's "unreachable" label value ψ = m + n.
  [[nodiscard]] index_t psi_infinity() const { return num_rows_ + num_cols_; }

  /// Neighbors Γ(u) of row u, as column indices.
  [[nodiscard]] std::span<const index_t> row_neighbors(index_t u) const {
    return {row_adj_.data() + row_ptr_[static_cast<std::size_t>(u)],
            row_adj_.data() + row_ptr_[static_cast<std::size_t>(u) + 1]};
  }

  /// Neighbors Γ(v) of column v, as row indices.
  [[nodiscard]] std::span<const index_t> col_neighbors(index_t v) const {
    return {col_adj_.data() + col_ptr_[static_cast<std::size_t>(v)],
            col_adj_.data() + col_ptr_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] index_t row_degree(index_t u) const {
    return static_cast<index_t>(row_ptr_[static_cast<std::size_t>(u) + 1] -
                                row_ptr_[static_cast<std::size_t>(u)]);
  }
  [[nodiscard]] index_t col_degree(index_t v) const {
    return static_cast<index_t>(col_ptr_[static_cast<std::size_t>(v) + 1] -
                                col_ptr_[static_cast<std::size_t>(v)]);
  }

  /// Raw CSR access for the kernels (read-only).
  [[nodiscard]] const std::vector<offset_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<index_t>& row_adj() const { return row_adj_; }
  [[nodiscard]] const std::vector<offset_t>& col_ptr() const { return col_ptr_; }
  [[nodiscard]] const std::vector<index_t>& col_adj() const { return col_adj_; }

  /// True if (u, v) ∈ E.  Binary search over the sorted row adjacency;
  /// intended for tests and validators, not hot paths.
  [[nodiscard]] bool has_edge(index_t u, index_t v) const;

  /// Structural self-check (CSR consistency, sortedness, symmetry of the
  /// two directions).  Throws `std::logic_error` on violation.  Used by
  /// tests and by the Matrix Market reader.
  void validate() const;

  /// One-line human-readable summary ("m x n, nnz, avg degree").
  [[nodiscard]] std::string describe() const;

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<offset_t> row_ptr_{0};
  std::vector<index_t> row_adj_;
  std::vector<offset_t> col_ptr_{0};
  std::vector<index_t> col_adj_;
};

/// Structural hash of a graph (dimensions + row-side CSR; the column side
/// is derived from it, so hashing one direction identifies the graph).
/// Two graphs with equal fingerprints are the same structure — this is the
/// identity that keys result caches and dedups instance stores.
[[nodiscard]] std::uint64_t structural_fingerprint(const BipartiteGraph& g);

}  // namespace bpm::graph
