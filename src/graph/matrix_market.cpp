#include "graph/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace bpm::graph {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("matrix market: line " + std::to_string(line_no) +
                           ": " + what);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

BipartiteGraph read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  // --- Header -------------------------------------------------------------
  if (!std::getline(in, line)) fail(1, "empty stream");
  ++line_no;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (lower(banner) != "%%matrixmarket") fail(line_no, "missing banner");
  if (lower(object) != "matrix") fail(line_no, "only 'matrix' is supported");
  if (lower(format) != "coordinate")
    fail(line_no, "only 'coordinate' (sparse) is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  const bool complex_field = field == "complex";
  if (!pattern && field != "real" && field != "integer" && !complex_field)
    fail(line_no, "unsupported field type '" + field + "'");
  const bool symmetric = symmetry == "symmetric" ||
                         symmetry == "skew-symmetric" ||
                         symmetry == "hermitian";
  if (!symmetric && symmetry != "general")
    fail(line_no, "unsupported symmetry '" + symmetry + "'");
  // A skew-symmetric matrix has A = -A^T, so its values carry the sign —
  // a pattern field (no values) cannot express that.  The combination is
  // a malformed header, not a representable matrix.
  if (pattern && symmetry == "skew-symmetric")
    fail(line_no, "contradictory header: 'pattern' cannot be "
                  "'skew-symmetric' (signs require values)");

  // --- Size line (skipping comments) --------------------------------------
  long long nrows = -1, ncols = -1, nnz = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    if (!(ls >> nrows >> ncols >> nnz)) fail(line_no, "bad size line");
    break;
  }
  if (nrows < 0) fail(line_no, "missing size line");
  if (nrows > std::numeric_limits<index_t>::max() ||
      ncols > std::numeric_limits<index_t>::max())
    fail(line_no, "matrix too large for 32-bit indices");

  // --- Entries -------------------------------------------------------------
  if (nnz < 0) fail(line_no, "negative entry count");
  std::vector<Edge> edges;
  // Reserve is only a hint: clamp it so a hostile header (declaring
  // billions of entries it never provides) cannot force a huge upfront
  // allocation before the entry loop rejects the file.
  constexpr long long kReserveCap = 1 << 22;
  edges.reserve(static_cast<std::size_t>(
      std::min(symmetric ? 2 * nnz : nnz, kReserveCap)));
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long i = 0, j = 0;
    if (!(ls >> i >> j)) fail(line_no, "bad entry");
    if (!pattern) {
      double value = 0.0;
      if (!(ls >> value)) fail(line_no, "missing value");
      if (complex_field) {
        double imag = 0.0;
        if (!(ls >> imag)) fail(line_no, "missing imaginary part");
      }
    }
    if (i < 1 || i > nrows || j < 1 || j > ncols)
      fail(line_no, "entry out of bounds");
    const auto u = static_cast<index_t>(i - 1);
    const auto v = static_cast<index_t>(j - 1);
    edges.push_back({u, v});
    if (symmetric && i != j) {
      // Only the lower triangle is stored; mirror the entry to (j, i).
      if (nrows != ncols) fail(line_no, "symmetric matrix must be square");
      edges.push_back({v, u});
    }
    ++seen;
  }
  if (seen != nnz) fail(line_no, "fewer entries than declared");
  // The declared nnz is a contract: trailing entries mean the header lied
  // (or two files were concatenated) — silently dropping them would hand
  // back a graph that is NOT what the file describes.
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    fail(line_no, "more entries than the declared " + std::to_string(nnz));
  }

  return build_from_edges(static_cast<index_t>(nrows),
                          static_cast<index_t>(ncols), edges);
}

BipartiteGraph read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const BipartiteGraph& g) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by bpm (push-relabel bipartite matching reproduction)\n";
  out << g.num_rows() << ' ' << g.num_cols() << ' ' << g.num_edges() << '\n';
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u)) out << u + 1 << ' ' << v + 1 << '\n';
}

void write_matrix_market_file(const std::string& path,
                              const BipartiteGraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot open " + path);
  write_matrix_market(out, g);
}

}  // namespace bpm::graph
