#include "graph/instances.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace bpm::graph {

const char* to_string(InstanceClass c) {
  switch (c) {
    case InstanceClass::kSocial: return "social";
    case InstanceClass::kWeb: return "web";
    case InstanceClass::kKron: return "kron";
    case InstanceClass::kRoad: return "road";
    case InstanceClass::kOsm: return "osm";
    case InstanceClass::kDelaunay: return "delaunay";
    case InstanceClass::kTrace: return "trace";
    case InstanceClass::kCoPaper: return "copaper";
    case InstanceClass::kCircuit: return "circuit";
    case InstanceClass::kCombinat: return "combinat";
  }
  return "unknown";
}

BipartiteGraph Instance::build(double scale, std::uint64_t seed) const {
  if (scale <= 0.0) throw std::invalid_argument("Instance::build: scale <= 0");
  // Target vertex count per side, never below a floor that keeps the
  // instance meaningful.
  const auto target = [&](std::int64_t paper_count) {
    return static_cast<index_t>(
        std::max<double>(1024.0, std::round(static_cast<double>(paper_count) * scale)));
  };
  const index_t n = target(paper.rows);
  const double avg_deg =
      static_cast<double>(paper.edges) / static_cast<double>(paper.rows);

  switch (cls) {
    case InstanceClass::kSocial:
      return gen::chung_lu(n, target(paper.cols), avg_deg, 2.6, seed);
    case InstanceClass::kWeb:
      // Exponent tuned so the matchable fraction MM/n of the three web
      // instances tracks Table I (eu-2005 0.76, in-2004 0.58, wb-edu
      // 0.51): web deficiency comes from hub concentration, so the tail
      // must be heavier than for the social class.
      return gen::chung_lu(n, target(paper.cols), avg_deg, 2.05, seed);
    case InstanceClass::kKron: {
      const int sc = std::max(8, static_cast<int>(std::lround(
                                     std::log2(static_cast<double>(n)))));
      return gen::rmat(sc, avg_deg, seed);
    }
    // Road and Delaunay matrices in the collection are ordered by point /
    // OSM-node id, not by lattice coordinates; the random permutation
    // removes the lattice-order locality that would otherwise let the
    // greedy init reach ~99% (the paper's IM/MM sits at 86-95% for these
    // classes).  Trace meshes keep their natural band ordering, as FEM
    // exports do (paper IM/MM ≈ 99.8%).
    case InstanceClass::kRoad: {
      const auto side = static_cast<index_t>(
          std::max(32.0, std::sqrt(static_cast<double>(n))));
      return permute_vertices(gen::road_network(side, side, 0.9, seed),
                              seed ^ 0xf00dULL);
    }
    case InstanceClass::kOsm: {
      const auto side = static_cast<index_t>(
          std::max(32.0, std::sqrt(static_cast<double>(n))));
      return permute_vertices(gen::road_network(side, side, 0.52, seed),
                              seed ^ 0x05afULL);
    }
    case InstanceClass::kDelaunay: {
      const auto side = static_cast<index_t>(
          std::max(32.0, std::sqrt(static_cast<double>(n))));
      return permute_vertices(gen::delaunay_mesh(side, side, seed),
                              seed ^ 0xde1aULL);
    }
    case InstanceClass::kTrace: {
      // Thin strip: width grows slowly with n so diameter stays Θ(n/width).
      const auto width = static_cast<index_t>(std::max(
          4.0, std::pow(static_cast<double>(n), 0.25)));
      const auto length = std::max<index_t>(16, n / width);
      const double holes = name.find("bubbles") != std::string::npos ? 0.08 : 0.02;
      return gen::trace_mesh(length, width, holes, seed);
    }
    case InstanceClass::kCoPaper: {
      // avg degree ~28 in coPapersDBLP; communities sized ~12 give
      // |E| ≈ communities * s^2 ≈ desired.
      const double avg_comm = 12.0;
      const auto comms = static_cast<index_t>(
          std::max(16.0, static_cast<double>(n) * avg_deg /
                             (avg_comm * (avg_comm - 1.0))));
      return gen::copaper(n, comms, avg_comm, seed);
    }
    case InstanceClass::kCircuit:
      return gen::planted_perfect(n, std::max(0.5, avg_deg - 1.0), seed);
    case InstanceClass::kCombinat:
      return gen::random_uniform(
          n, target(paper.cols),
          static_cast<offset_t>(avg_deg * static_cast<double>(n)), seed);
  }
  throw std::logic_error("Instance::build: unhandled class");
}

const std::vector<Instance>& paper_instances() {
  // Table I of the paper, verbatim: id, name, rows, cols, edges, IM, MM,
  // and the four runtime columns (seconds).
  static const std::vector<Instance> kInstances = {
      {1, "amazon0505", InstanceClass::kSocial,
       {410236, 410236, 3356824, 332972, 395397, 0.09, 0.18, 22.70, 0.52}},
      {2, "coPapersDBLP", InstanceClass::kCoPaper,
       {540486, 540486, 15245729, 510992, 540226, 0.62, 0.42, 6.27, 0.59}},
      {3, "amazon-2008", InstanceClass::kSocial,
       {735323, 735323, 5158388, 587877, 641379, 0.12, 0.11, 0.18, 0.93}},
      {4, "flickr", InstanceClass::kSocial,
       {820878, 820878, 9837214, 285241, 367147, 0.13, 0.22, 0.35, 0.99}},
      {5, "eu-2005", InstanceClass::kWeb,
       {862664, 862664, 19235140, 642027, 652328, 0.40, 1.54, 0.94, 0.80}},
      {6, "delaunay_n20", InstanceClass::kDelaunay,
       {1048576, 1048576, 3145686, 993174, 1048576, 0.06, 0.04, 0.09, 0.32}},
      {7, "kron_g500-logn20", InstanceClass::kKron,
       {1048576, 1048576, 44620272, 431854, 513334, 0.38, 0.60, 8.19, 1.24}},
      {8, "roadNet-PA", InstanceClass::kRoad,
       {1090920, 1090920, 1541898, 916444, 1059398, 0.33, 0.14, 0.29, 0.59}},
      {9, "in-2004", InstanceClass::kWeb,
       {1382908, 1382908, 16917053, 781063, 804245, 0.58, 1.44, 2.16, 0.56}},
      {10, "roadNet-TX", InstanceClass::kRoad,
       {1393383, 1393383, 1921660, 1158420, 1342440, 0.45, 0.14, 0.33, 0.69}},
      {11, "Hamrle3", InstanceClass::kCircuit,
       {1447360, 1447360, 5514242, 1211049, 1447360, 0.94, 1.36, 2.70, 0.56}},
      {12, "as-Skitter", InstanceClass::kSocial,
       {1696415, 1696415, 11095298, 891280, 1035521, 0.34, 0.49, 1.89, 1.13}},
      {13, "GL7d19", InstanceClass::kCombinat,
       {1911130, 1955309, 37322725, 1904144, 1911130, 0.24, 0.58, 0.38, 1.38}},
      {14, "roadNet-CA", InstanceClass::kRoad,
       {1971281, 1971281, 2766607, 1668268, 1913589, 0.68, 0.34, 0.53, 1.55}},
      {15, "delaunay_n21", InstanceClass::kDelaunay,
       {2097152, 2097152, 6291408, 1987326, 2097152, 0.18, 0.13, 0.21, 1.06}},
      {16, "kron_g500-logn21", InstanceClass::kKron,
       {2097152, 2097152, 91042010, 812883, 964679, 0.68, 0.99, 1.50, 2.77}},
      {17, "wikipedia-20070206", InstanceClass::kSocial,
       {3566907, 3566907, 45030389, 1623931, 1992408, 0.62, 1.09, 5.24, 3.11}},
      {18, "patents", InstanceClass::kSocial,
       {3774768, 3774768, 14970767, 1892820, 2011083, 0.54, 0.88, 0.84, 3.65}},
      {19, "com-livejournal", InstanceClass::kSocial,
       {3997962, 3997962, 34681189, 2577642, 3608272, 2.08, 4.58, 22.46, 9.67}},
      {20, "hugetrace-00000", InstanceClass::kTrace,
       {4588484, 4588484, 6879133, 4581148, 4588484, 2.71, 1.96, 0.83, 0.84}},
      {21, "soc-LiveJournal1", InstanceClass::kSocial,
       {4847571, 4847571, 68993773, 2831783, 3835002, 1.35, 3.32, 14.35, 12.66}},
      {22, "ljournal-2008", InstanceClass::kSocial,
       {5363260, 5363260, 79023142, 3941073, 4355699, 1.54, 2.37, 10.30, 10.01}},
      {23, "italy_osm", InstanceClass::kOsm,
       {6686493, 6686493, 7013978, 6438492, 6644390, 5.46, 5.86, 1.20, 6.84}},
      {24, "delaunay_n23", InstanceClass::kDelaunay,
       {8388608, 8388608, 25165784, 7950070, 8388608, 0.81, 0.96, 1.26, 8.86}},
      {25, "wb-edu", InstanceClass::kWeb,
       {9845725, 9845725, 57156537, 4810825, 5000334, 2.00, 33.82, 8.61, 3.94}},
      {26, "hugetrace-00020", InstanceClass::kTrace,
       {16002413, 16002413, 23998813, 15535760, 16002413, 14.19, 7.90, 393.13, 28.69}},
      {27, "delaunay_n24", InstanceClass::kDelaunay,
       {16777216, 16777216, 50331601, 15892194, 16777216, 1.83, 1.98, 2.41, 23.01}},
      {28, "hugebubbles-00000", InstanceClass::kTrace,
       {18318143, 18318143, 27470081, 18303614, 18318143, 13.65, 13.16, 3.55, 13.51}},
  };
  return kInstances;
}

std::vector<Instance> select_instances(int stride) {
  if (stride < 1) throw std::invalid_argument("select_instances: stride < 1");
  std::vector<Instance> out;
  const auto& all = paper_instances();
  for (std::size_t i = 0; i < all.size(); i += static_cast<std::size_t>(stride))
    out.push_back(all[i]);
  return out;
}

}  // namespace bpm::graph
