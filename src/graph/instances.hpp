#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bpm::graph {

/// Structural class of a benchmark instance; determines which generator
/// produces its synthetic analogue (DESIGN.md §2).
enum class InstanceClass {
  kSocial,     ///< power-law social/co-purchase (Chung–Lu)
  kWeb,        ///< power-law web crawl (Chung–Lu, heavier tail)
  kKron,       ///< Kronecker / R-MAT (kron_g500)
  kRoad,       ///< road network lattice
  kOsm,        ///< polyline OSM road export (degree ≈ 2)
  kDelaunay,   ///< planar triangulation
  kTrace,      ///< huge-diameter FEM strip (hugetrace/hugebubbles)
  kCoPaper,    ///< overlapping-clique co-authorship
  kCircuit,    ///< zero-free-diagonal circuit matrix (planted perfect)
  kCombinat,   ///< unstructured rectangular combinatorial matrix
};

[[nodiscard]] const char* to_string(InstanceClass c);

/// Runtimes and matching sizes the paper reports in Table I for one graph.
/// Kept alongside each instance so the bench harnesses can print
/// paper-vs-measured rows without a separate data file.
struct PaperNumbers {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t edges = 0;
  std::int64_t initial_matching = 0;   ///< IM column
  std::int64_t maximum_matching = 0;   ///< MM column
  double g_pr_s = 0.0;                 ///< G-PR runtime, seconds
  double g_hkdw_s = 0.0;               ///< G-HKDW runtime, seconds
  double p_dbfs_s = 0.0;               ///< P-DBFS runtime, seconds
  double pr_s = 0.0;                   ///< sequential PR runtime, seconds
};

/// One of the 28 evaluation instances (Table I order, ordered by #rows).
struct Instance {
  int id = 0;                 ///< 1-based Table I id
  std::string name;           ///< paper graph name
  InstanceClass cls;
  PaperNumbers paper;

  /// Generates the synthetic analogue.  `scale` multiplies the paper's
  /// vertex count (default harness scale is 1/64); `seed` feeds the
  /// deterministic generator.
  [[nodiscard]] BipartiteGraph build(double scale, std::uint64_t seed) const;
};

/// The full 28-instance registry in Table I order.
[[nodiscard]] const std::vector<Instance>& paper_instances();

/// Subset selection used by fast CI runs: every `stride`-th instance.
[[nodiscard]] std::vector<Instance> select_instances(int stride);

}  // namespace bpm::graph
