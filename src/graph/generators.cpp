#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace bpm::graph::gen {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

/// `per * n` as an edge count.  The cast of an out-of-range double to
/// offset_t is undefined behaviour, not a saturated big number — so a
/// request like planted_perfect(1000, 1e18, ...) must be rejected here,
/// before the cast, with a usable message.
offset_t checked_count(double per, double n, const char* what) {
  const double product = per * n;
  if (!(product >= 0.0) ||
      product >= static_cast<double>(std::numeric_limits<offset_t>::max()))
    throw std::invalid_argument(std::string(what) +
                                ": implied edge count overflows");
  return static_cast<offset_t>(product);
}

/// Emit both (i,j) and (j,i) — generators that model symmetric adjacency
/// matrices of undirected graphs use this.
void push_symmetric(std::vector<Edge>& edges, index_t i, index_t j) {
  edges.push_back({i, j});
  edges.push_back({j, i});
}

}  // namespace

BipartiteGraph random_uniform(index_t num_rows, index_t num_cols,
                              offset_t target_edges, std::uint64_t seed) {
  require(num_rows > 0 && num_cols > 0, "random_uniform: empty side");
  require(target_edges >= 0, "random_uniform: negative edge count");
  const offset_t capacity =
      static_cast<offset_t>(num_rows) * static_cast<offset_t>(num_cols);
  require(target_edges <= capacity, "random_uniform: more edges than pairs");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(target_edges));
  for (offset_t e = 0; e < target_edges; ++e)
    edges.push_back(
        {static_cast<index_t>(rng.below(static_cast<std::uint64_t>(num_rows))),
         static_cast<index_t>(
             rng.below(static_cast<std::uint64_t>(num_cols)))});
  return build_from_edges(num_rows, num_cols, edges);
}

BipartiteGraph planted_perfect(index_t n, double extra_degree,
                               std::uint64_t seed) {
  require(n > 0, "planted_perfect: empty side");
  require(extra_degree >= 0.0, "planted_perfect: negative degree");
  Rng rng(seed);
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);

  std::vector<Edge> edges;
  const offset_t extra =
      checked_count(extra_degree, static_cast<double>(n), "planted_perfect");
  edges.reserve(static_cast<std::size_t>(n + extra));
  for (index_t u = 0; u < n; ++u)
    edges.push_back({u, perm[static_cast<std::size_t>(u)]});
  for (offset_t e = 0; e < extra; ++e)
    edges.push_back(
        {static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n))),
         static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)))});
  return build_from_edges(n, n, edges);
}

BipartiteGraph rmat(int scale, double edge_factor, std::uint64_t seed,
                    double a, double b, double c) {
  require(scale >= 1 && scale <= 30, "rmat: scale out of range");
  require(edge_factor > 0.0, "rmat: non-positive edge factor");
  const double d = 1.0 - a - b - c;
  require(a > 0 && b > 0 && c > 0 && d > 0, "rmat: bad quadrant probabilities");

  const index_t n = static_cast<index_t>(1) << scale;
  const offset_t num_edges =
      checked_count(edge_factor, static_cast<double>(n), "rmat");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (offset_t e = 0; e < num_edges; ++e) {
    index_t row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double p = rng.uniform();
      row <<= 1;
      col <<= 1;
      if (p < a) {
        // top-left quadrant: nothing to add.
      } else if (p < a + b) {
        col |= 1;
      } else if (p < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    edges.push_back({row, col});
  }
  return build_from_edges(n, n, edges);
}

BipartiteGraph chung_lu(index_t num_rows, index_t num_cols, double avg_degree,
                        double gamma, std::uint64_t seed) {
  require(num_rows > 0 && num_cols > 0, "chung_lu: empty side");
  require(avg_degree > 0.0, "chung_lu: non-positive degree");
  require(gamma > 2.0, "chung_lu: exponent must exceed 2 for finite mean");
  Rng rng(seed);

  // Zipf-like weights w_i = (i+1)^{-1/(gamma-1)}; inverse-CDF sampling over
  // the cumulative weights gives endpoint picks proportional to w.
  auto make_cdf = [&](index_t n) {
    std::vector<double> cdf(static_cast<std::size_t>(n));
    double acc = 0.0;
    const double exponent = -1.0 / (gamma - 1.0);
    for (index_t i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i + 1), exponent);
      cdf[static_cast<std::size_t>(i)] = acc;
    }
    return cdf;
  };
  const auto row_cdf = make_cdf(num_rows);
  const auto col_cdf = make_cdf(num_cols);

  auto sample = [&](const std::vector<double>& cdf) {
    const double target = rng.uniform() * cdf.back();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
    return static_cast<index_t>(std::distance(cdf.begin(), it));
  };

  const offset_t num_edges = checked_count(
      avg_degree, static_cast<double>(std::min(num_rows, num_cols)),
      "chung_lu");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (offset_t e = 0; e < num_edges; ++e) {
    index_t u = sample(row_cdf);
    index_t v = sample(col_cdf);
    if (u >= num_rows) u = num_rows - 1;  // guard FP edge of upper_bound
    if (v >= num_cols) v = num_cols - 1;
    edges.push_back({u, v});
  }
  auto g = build_from_edges(num_rows, num_cols, edges);
  // Weights are index-sorted; permute so that degree is uncorrelated with
  // vertex id, as in real collections.
  return permute_vertices(g, seed ^ 0x9e3779b97f4a7c15ULL);
}

BipartiteGraph skewed_hubs(index_t num_rows, index_t num_cols,
                           index_t num_hubs, double hub_fraction,
                           double background_degree, std::uint64_t seed,
                           bool scatter) {
  require(num_rows > 0 && num_cols > 0, "skewed_hubs: empty side");
  require(num_hubs >= 0 && num_hubs <= num_cols,
          "skewed_hubs: more hubs than columns");
  require(hub_fraction > 0.0 && hub_fraction <= 1.0,
          "skewed_hubs: hub_fraction must be in (0, 1]");
  require(background_degree >= 0.0, "skewed_hubs: negative degree");
  Rng rng(seed);

  const offset_t hub_degree = checked_count(
      hub_fraction, static_cast<double>(num_rows), "skewed_hubs");
  const offset_t background = checked_count(
      background_degree, static_cast<double>(num_cols), "skewed_hubs");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(
      static_cast<offset_t>(num_hubs) * hub_degree + background));
  // Hubs take the first column ids; with `scatter` the trailing
  // permutation spreads them over the id space, otherwise they stay a
  // contiguous crawl-ordered block.  Duplicate samples are deduplicated
  // by the builder, so the realised hub degree lands slightly below the
  // target.
  for (index_t h = 0; h < num_hubs; ++h)
    for (offset_t e = 0; e < hub_degree; ++e)
      edges.push_back(
          {static_cast<index_t>(rng.below(static_cast<std::uint64_t>(num_rows))),
           h});
  for (offset_t e = 0; e < background; ++e)
    edges.push_back(
        {static_cast<index_t>(rng.below(static_cast<std::uint64_t>(num_rows))),
         static_cast<index_t>(rng.below(static_cast<std::uint64_t>(num_cols)))});
  auto g = build_from_edges(num_rows, num_cols, edges);
  if (!scatter) return g;
  return permute_vertices(g, seed ^ 0xda3e39cb94b95bdbULL);
}

BipartiteGraph road_network(index_t nx, index_t ny, double keep_prob,
                            std::uint64_t seed) {
  require(nx > 0 && ny > 0, "road_network: empty lattice");
  require(keep_prob > 0.0 && keep_prob <= 1.0, "road_network: bad keep_prob");
  const offset_t n64 = static_cast<offset_t>(nx) * static_cast<offset_t>(ny);
  require(n64 <= std::numeric_limits<index_t>::max(),
          "road_network: lattice too large");
  const auto n = static_cast<index_t>(n64);
  Rng rng(seed);

  auto id = [&](index_t x, index_t y) { return x * ny + y; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(4 * n));
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx && rng.chance(keep_prob))
        push_symmetric(edges, id(x, y), id(x + 1, y));
      if (y + 1 < ny && rng.chance(keep_prob))
        push_symmetric(edges, id(x, y), id(x, y + 1));
    }
  }
  // Shortcuts: highways / bridges, ~0.2% of vertices.
  const auto shortcuts = static_cast<offset_t>(static_cast<double>(n) * 0.002);
  for (offset_t s = 0; s < shortcuts; ++s) {
    const auto i =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const auto j =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (i != j) push_symmetric(edges, i, j);
  }
  return build_from_edges(n, n, edges);
}

BipartiteGraph delaunay_mesh(index_t nx, index_t ny, std::uint64_t seed) {
  require(nx > 0 && ny > 0, "delaunay_mesh: empty lattice");
  const offset_t n64 = static_cast<offset_t>(nx) * static_cast<offset_t>(ny);
  require(n64 <= std::numeric_limits<index_t>::max(),
          "delaunay_mesh: lattice too large");
  const auto n = static_cast<index_t>(n64);
  Rng rng(seed);

  auto id = [&](index_t x, index_t y) { return x * ny + y; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(6 * n));
  for (index_t x = 0; x < nx; ++x) {
    for (index_t y = 0; y < ny; ++y) {
      if (x + 1 < nx) push_symmetric(edges, id(x, y), id(x + 1, y));
      if (y + 1 < ny) push_symmetric(edges, id(x, y), id(x, y + 1));
      if (x + 1 < nx && y + 1 < ny) {
        // One diagonal per cell, at random — triangulates the lattice.
        if (rng.chance(0.5))
          push_symmetric(edges, id(x, y), id(x + 1, y + 1));
        else
          push_symmetric(edges, id(x + 1, y), id(x, y + 1));
      }
    }
  }
  return build_from_edges(n, n, edges);
}

BipartiteGraph trace_mesh(index_t length, index_t width, double hole_prob,
                          std::uint64_t seed) {
  require(length > 0 && width > 0, "trace_mesh: empty strip");
  require(hole_prob >= 0.0 && hole_prob < 1.0, "trace_mesh: bad hole_prob");
  const offset_t n64 =
      static_cast<offset_t>(length) * static_cast<offset_t>(width);
  require(n64 <= std::numeric_limits<index_t>::max(),
          "trace_mesh: strip too large");
  const auto n = static_cast<index_t>(n64);
  Rng rng(seed);

  // Punch holes first so that both endpoints of an edge can be checked.
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  for (index_t v = 0; v < n; ++v)
    if (rng.chance(hole_prob)) alive[static_cast<std::size_t>(v)] = 0;

  auto id = [&](index_t x, index_t y) { return x * width + y; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(3 * n));
  for (index_t x = 0; x < length; ++x) {
    for (index_t y = 0; y < width; ++y) {
      if (!alive[static_cast<std::size_t>(id(x, y))]) continue;
      if (x + 1 < length && alive[static_cast<std::size_t>(id(x + 1, y))])
        push_symmetric(edges, id(x, y), id(x + 1, y));
      if (y + 1 < width && alive[static_cast<std::size_t>(id(x, y + 1))])
        push_symmetric(edges, id(x, y), id(x, y + 1));
      // Triangulate the strip like the huge* FEM meshes.
      if (x + 1 < length && y + 1 < width &&
          alive[static_cast<std::size_t>(id(x + 1, y + 1))])
        push_symmetric(edges, id(x, y), id(x + 1, y + 1));
    }
  }
  return build_from_edges(n, n, edges);
}

BipartiteGraph copaper(index_t num_vertices, index_t num_communities,
                       double avg_community, std::uint64_t seed) {
  require(num_vertices > 0, "copaper: no vertices");
  require(num_communities > 0, "copaper: no communities");
  require(avg_community >= 2.0, "copaper: communities need >= 2 members");
  // Sizes are capped at kMaxCommunity below; the sampling width is cast
  // to an integer first, so it must be bounded before the cast, not after.
  require(avg_community <= 1e6, "copaper: average community size too large");
  Rng rng(seed);

  constexpr index_t kMaxCommunity = 64;  // keeps |E| = O(sum s^2) bounded
  std::vector<Edge> edges;
  for (index_t comm = 0; comm < num_communities; ++comm) {
    // Community size: geometric-ish around the mean, capped.
    auto size = static_cast<index_t>(
        2 + rng.below(static_cast<std::uint64_t>(2.0 * (avg_community - 2.0) + 1.0)));
    size = std::min(size, kMaxCommunity);
    // Members live in a local window (papers cluster by field/venue).
    const auto window = static_cast<std::uint64_t>(
        std::min<offset_t>(num_vertices, 8 * static_cast<offset_t>(size)));
    const auto base = static_cast<index_t>(rng.below(
        static_cast<std::uint64_t>(num_vertices) - window + 1));
    std::vector<index_t> members(static_cast<std::size_t>(size));
    for (auto& m : members)
      m = base + static_cast<index_t>(rng.below(window));
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        push_symmetric(edges, members[i], members[j]);
  }
  return build_from_edges(num_vertices, num_vertices, edges);
}

BipartiteGraph huge_bipartite(index_t num_rows, index_t num_cols,
                              double avg_degree, double hub_fraction,
                              index_t hub_every, std::uint64_t seed) {
  require(num_rows > 0 && num_cols > 0, "huge_bipartite: empty side");
  require(avg_degree >= 0.0, "huge_bipartite: negative degree");
  require(hub_fraction >= 0.0 && hub_fraction <= 1.0,
          "huge_bipartite: hub_fraction must be in [0, 1]");
  require(hub_every >= 0, "huge_bipartite: negative hub_every");
  Rng rng(seed);

  const offset_t base = checked_count(avg_degree, 1.0, "huge_bipartite");
  const offset_t hub_degree = checked_count(
      hub_fraction, static_cast<double>(num_rows), "huge_bipartite");

  // Column pass: sample each column's neighbours straight into the column
  // CSR.  `scratch` (one column's samples) is the only transient — no
  // global edge list ever exists.
  std::vector<offset_t> col_ptr;
  col_ptr.reserve(static_cast<std::size_t>(num_cols) + 1);
  col_ptr.push_back(0);
  std::vector<index_t> col_adj;
  col_adj.reserve(static_cast<std::size_t>(
      static_cast<offset_t>(num_cols) * base +
      (hub_every > 0 ? (static_cast<offset_t>(num_cols) / hub_every + 1) *
                           hub_degree
                     : 0)));
  std::vector<index_t> scratch;
  for (index_t v = 0; v < num_cols; ++v) {
    const bool hub = hub_every > 0 && v % hub_every == 0;
    const offset_t want = base + (hub ? hub_degree : 0);
    scratch.clear();
    scratch.reserve(static_cast<std::size_t>(want));
    for (offset_t e = 0; e < want; ++e)
      scratch.push_back(static_cast<index_t>(
          rng.below(static_cast<std::uint64_t>(num_rows))));
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    col_adj.insert(col_adj.end(), scratch.begin(), scratch.end());
    col_ptr.push_back(static_cast<offset_t>(col_adj.size()));
  }
  col_adj.shrink_to_fit();

  // Row pass: counting sort of the column CSR.  Walking columns in
  // ascending order writes each row's neighbours already sorted.
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(num_rows) + 1, 0);
  for (const index_t u : col_adj) ++row_ptr[static_cast<std::size_t>(u) + 1];
  for (std::size_t u = 0; u < static_cast<std::size_t>(num_rows); ++u)
    row_ptr[u + 1] += row_ptr[u];
  std::vector<index_t> row_adj(col_adj.size());
  std::vector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t v = 0; v < num_cols; ++v)
    for (offset_t e = col_ptr[static_cast<std::size_t>(v)];
         e < col_ptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto u = static_cast<std::size_t>(col_adj[static_cast<std::size_t>(e)]);
      row_adj[static_cast<std::size_t>(cursor[u]++)] = v;
    }
  return {num_rows, num_cols, std::move(row_ptr), std::move(row_adj),
          std::move(col_ptr), std::move(col_adj)};
}

BipartiteGraph complete_bipartite(index_t m, index_t n) {
  require(m >= 0 && n >= 0, "complete_bipartite: negative dimension");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (index_t u = 0; u < m; ++u)
    for (index_t v = 0; v < n; ++v) edges.push_back({u, v});
  return build_from_edges(m, n, edges);
}

BipartiteGraph empty_graph(index_t m, index_t n) {
  return build_from_edges(m, n, std::span<const Edge>{});
}

BipartiteGraph star(index_t leaves) {
  require(leaves >= 1, "star: need at least one leaf");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(leaves));
  for (index_t v = 0; v < leaves; ++v) edges.push_back({0, v});
  return build_from_edges(1, leaves, edges);
}

BipartiteGraph chain(index_t k) {
  require(k >= 1, "chain: need at least one link");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(2 * k - 1));
  // r_i — c_i for all i, and c_i — r_{i+1} linking consecutive pairs.
  for (index_t i = 0; i < k; ++i) {
    edges.push_back({i, i});
    if (i + 1 < k) edges.push_back({i + 1, i});
  }
  return build_from_edges(k, k, edges);
}

}  // namespace bpm::graph::gen
