#include "device/device.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bpm::device {

Backend parse_backend(std::string_view name) {
  if (name == "sim") return Backend::kSim;
  if (name == "host") return Backend::kHost;
  throw std::invalid_argument("unknown backend '" + std::string(name) +
                              "' (choices: sim, host)");
}

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kHost:
      return "host";
  }
  return "?";
}

Backend default_backend() {
  static const Backend value = [] {
    const char* env = std::getenv("BPM_DEVICE_BACKEND");
    return env != nullptr && *env != '\0' ? parse_backend(env)
                                          : Backend::kSim;
  }();
  return value;
}

std::string EngineDescriptor::summary() const {
  std::string out(backend_name(backend));
  out += backend == Backend::kHost ? "(workers=" : "(lanes=";
  out += std::to_string(lanes);
  if (mode == ExecMode::kSequential) out += ",seq";
  out += ')';
  return out;
}

std::vector<std::int64_t> balanced_partition(
    std::span<const std::int64_t> offsets, std::int64_t parts) {
  if (offsets.empty() || offsets.front() != 0)
    throw std::invalid_argument(
        "balanced_partition: offsets must be an exclusive prefix sum "
        "starting at 0 with the total appended");
  if (parts < 1)
    throw std::invalid_argument("balanced_partition: parts must be >= 1");
  const auto n = static_cast<std::int64_t>(offsets.size()) - 1;
  const std::int64_t total = offsets.back();
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds.back() = n;
  for (std::int64_t p = 1; p < parts; ++p) {
    // First item whose start offset reaches the ideal target — chunk p-1
    // overshoots the ideal by at most the work of its final item.
    const std::int64_t target = (total / parts) * p + (total % parts) * p / parts;
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    bounds[static_cast<std::size_t>(p)] =
        std::min<std::int64_t>(it - offsets.begin(), n);
  }
  // Monotonicity is guaranteed by monotone targets over a monotone prefix
  // sum, but clamp against the tail so degenerate (all-zero) inputs keep
  // every boundary in range.
  for (std::size_t p = 1; p < bounds.size(); ++p)
    bounds[p] = std::max(bounds[p], bounds[p - 1]);
  return bounds;
}

Engine::Engine(ExecMode mode, unsigned num_threads)
    : Engine(EngineDescriptor{.backend = default_backend(),
                              .mode = mode,
                              .threads = num_threads}) {}

Engine::Engine(EngineDescriptor descriptor) : descriptor_(descriptor) {
  if (descriptor_.mode == ExecMode::kConcurrent)
    pool_ = std::make_unique<ThreadPool>(descriptor_.threads);
  if (descriptor_.backend == Backend::kHost)
    descriptor_.lanes = static_cast<int>(num_workers());
}

EngineStats Engine::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

void Engine::note_stream_opened() {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_opened;
}

void Engine::retire_stream(std::uint64_t launches, double modeled_us,
                           double native_us) {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_retired;
  stats_.launches += launches;
  stats_.modeled_ms += modeled_us / 1e3;
  stats_.native_ms += native_us / 1e3;
}

void Engine::add_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ += work;
}

void Engine::remove_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ -= work;
  if (load_ < 0.0) load_ = 0.0;  // paired by construction; clamp anyway
}

double Engine::load() const {
  const std::scoped_lock lock(stats_mutex_);
  return load_;
}

}  // namespace bpm::device
