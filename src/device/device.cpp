#include "device/device.hpp"

namespace bpm::device {

Device::Device(DeviceOptions options) : options_(options) {
  if (options_.mode == ExecMode::kConcurrent)
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

}  // namespace bpm::device
