#include "device/device.hpp"

namespace bpm::device {

Engine::Engine(ExecMode mode, unsigned num_threads) : mode_(mode) {
  if (mode_ == ExecMode::kConcurrent)
    pool_ = std::make_unique<ThreadPool>(num_threads);
}

EngineStats Engine::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

void Engine::note_stream_opened() {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_opened;
}

void Engine::retire_stream(std::uint64_t launches, double modeled_us) {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_retired;
  stats_.launches += launches;
  stats_.modeled_ms += modeled_us / 1e3;
}

void Engine::add_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ += work;
}

void Engine::remove_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ -= work;
  if (load_ < 0.0) load_ = 0.0;  // paired by construction; clamp anyway
}

double Engine::load() const {
  const std::scoped_lock lock(stats_mutex_);
  return load_;
}

}  // namespace bpm::device
