#include "device/device.hpp"

namespace bpm::device {

Engine::Engine(ExecMode mode, unsigned num_threads) : mode_(mode) {
  if (mode_ == ExecMode::kConcurrent)
    pool_ = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace bpm::device
