#include "device/device.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

namespace bpm::device {

Backend parse_backend(std::string_view name) {
  if (name == "sim") return Backend::kSim;
  if (name == "host") return Backend::kHost;
  throw std::invalid_argument("unknown backend '" + std::string(name) +
                              "' (choices: sim, host)");
}

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim:
      return "sim";
    case Backend::kHost:
      return "host";
  }
  return "?";
}

Backend default_backend() {
  static const Backend value = [] {
    const char* env = std::getenv("BPM_DEVICE_BACKEND");
    return env != nullptr && *env != '\0' ? parse_backend(env)
                                          : Backend::kSim;
  }();
  return value;
}

std::string EngineDescriptor::summary() const {
  std::string out(backend_name(backend));
  out += backend == Backend::kHost ? "(workers=" : "(lanes=";
  out += std::to_string(lanes);
  if (mode == ExecMode::kSequential) out += ",seq";
  if (numa_node >= 0) out += ",numa=" + std::to_string(numa_node);
  out += ')';
  return out;
}

namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; malformed pieces
/// are skipped rather than fatal — sysfs is advisory input.
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    if (piece.empty()) continue;
    const auto dash = piece.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(piece));
      } else {
        const int lo = std::stoi(piece.substr(0, dash));
        const int hi = std::stoi(piece.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
    }
  }
  return cpus;
}

}  // namespace

std::vector<std::vector<int>> numa_topology() {
  std::vector<std::vector<int>> nodes;
#if defined(__linux__)
  namespace fs = std::filesystem;
  std::error_code ec;
  for (int node = 0;; ++node) {
    const fs::path dir =
        "/sys/devices/system/node/node" + std::to_string(node);
    if (!fs::exists(dir, ec) || ec) break;
    std::ifstream in(dir / "cpulist");
    std::string line;
    if (in && std::getline(in, line)) {
      std::vector<int> cpus = parse_cpulist(line);
      if (!cpus.empty()) nodes.push_back(std::move(cpus));
    }
  }
#endif
  if (nodes.empty()) {
    // No sysfs tree (or not Linux): one node holding every CPU.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> all(n);
    for (unsigned c = 0; c < n; ++c) all[c] = static_cast<int>(c);
    nodes.push_back(std::move(all));
  }
  return nodes;
}

std::vector<std::int64_t> balanced_partition(
    std::span<const std::int64_t> offsets, std::int64_t parts) {
  if (offsets.empty() || offsets.front() != 0)
    throw std::invalid_argument(
        "balanced_partition: offsets must be an exclusive prefix sum "
        "starting at 0 with the total appended");
  if (parts < 1)
    throw std::invalid_argument("balanced_partition: parts must be >= 1");
  const auto n = static_cast<std::int64_t>(offsets.size()) - 1;
  const std::int64_t total = offsets.back();
  std::vector<std::int64_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
  bounds.back() = n;
  if (total == 0) {
    // No work at all: fall back to near-equal *item* chunks so callers that
    // partition by chunk (shard cuts) still get every item spread out
    // instead of one chunk holding everything.
    for (std::int64_t p = 1; p < parts; ++p)
      bounds[static_cast<std::size_t>(p)] = n * p / parts;
    return bounds;
  }
  for (std::int64_t p = 1; p < parts; ++p) {
    // First item whose start offset reaches the ideal target — chunk p-1
    // overshoots the ideal by at most the work of its final item.  The
    // target is the *ceiling* of total*p/parts: a floor target rounds to 0
    // when total < parts and every leading chunk collapses onto item 0,
    // which a shard cut must never see (shard 0 would own no columns).
    const std::int64_t target = (total * p + parts - 1) / parts;
    const auto it = std::lower_bound(offsets.begin(), offsets.end(), target);
    bounds[static_cast<std::size_t>(p)] =
        std::min<std::int64_t>(it - offsets.begin(), n);
  }
  // Monotonicity is guaranteed by monotone targets over a monotone prefix
  // sum, but clamp against the tail so degenerate (all-zero) inputs keep
  // every boundary in range.
  for (std::size_t p = 1; p < bounds.size(); ++p)
    bounds[p] = std::max(bounds[p], bounds[p - 1]);
  return bounds;
}

Engine::Engine(ExecMode mode, unsigned num_threads)
    : Engine(EngineDescriptor{.backend = default_backend(),
                              .mode = mode,
                              .threads = num_threads}) {}

Engine::Engine(EngineDescriptor descriptor) : descriptor_(descriptor) {
  if (descriptor_.mode == ExecMode::kConcurrent) {
    std::vector<int> pin_cpus;
    if (descriptor_.backend == Backend::kHost && descriptor_.numa_node >= 0) {
      // A NUMA-pinned host engine keeps its workers on the hinted node so
      // first-touch allocations through its pool land there.  A hint
      // beyond the topology wraps — callers can number engines without
      // probing the node count first.
      const auto nodes = numa_topology();
      pin_cpus = nodes[static_cast<std::size_t>(descriptor_.numa_node) %
                       nodes.size()];
      if (descriptor_.threads == 0)
        descriptor_.threads = static_cast<unsigned>(pin_cpus.size());
    }
    pool_ =
        std::make_unique<ThreadPool>(descriptor_.threads, std::move(pin_cpus));
  }
  if (descriptor_.backend == Backend::kHost)
    descriptor_.lanes = static_cast<int>(num_workers());
}

EngineStats Engine::stats() const {
  const std::scoped_lock lock(stats_mutex_);
  return stats_;
}

void Engine::note_stream_opened() {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_opened;
}

void Engine::retire_stream(std::uint64_t launches, double modeled_us,
                           double native_us) {
  const std::scoped_lock lock(stats_mutex_);
  ++stats_.streams_retired;
  stats_.launches += launches;
  stats_.modeled_ms += modeled_us / 1e3;
  stats_.native_ms += native_us / 1e3;
}

void Engine::add_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ += work;
}

void Engine::remove_load(double work) {
  const std::scoped_lock lock(stats_mutex_);
  load_ -= work;
  if (load_ < 0.0) load_ = 0.0;  // paired by construction; clamp anyway
}

double Engine::load() const {
  const std::scoped_lock lock(stats_mutex_);
  return load_;
}

}  // namespace bpm::device
