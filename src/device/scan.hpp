#pragma once

#include <cstdint>
#include <span>

#include "device/device.hpp"

namespace bpm::device {

/// Parallel exclusive prefix sum: `out[i] = sum(in[0..i))`, returns the
/// grand total.  Two-pass chunk algorithm (per-worker partial sums, serial
/// scan of the per-worker totals, per-worker write-out) — the same shape
/// as the per-thread counting + prefix sum inside the paper's
/// G-PR-SHRKRNL.  `in` and `out` may alias.
std::int64_t exclusive_scan(Device& dev, std::span<const std::int64_t> in,
                            std::span<std::int64_t> out);

/// Parallel sum reduction.
std::int64_t reduce_sum(Device& dev, std::span<const std::int64_t> in);

}  // namespace bpm::device
