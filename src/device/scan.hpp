#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/device.hpp"

namespace bpm::device {

/// Parallel exclusive prefix sum: `out[i] = sum(in[0..i))`, returns the
/// grand total.  Two-pass chunk algorithm (per-worker partial sums, serial
/// scan of the per-worker totals, per-worker write-out) — the same shape
/// as the per-thread counting + prefix sum inside the paper's
/// G-PR-SHRKRNL.  `in` and `out` may alias.  Runs through
/// `Device::launch_chunked`, so it is backend-generic: on the sim it is
/// charged model time, on the host backend (`HostParallelEngine`) both
/// passes execute on real threads and contribute measured wall time.
std::int64_t exclusive_scan(Device& dev, std::span<const std::int64_t> in,
                            std::span<std::int64_t> out);

/// Parallel sum reduction.
std::int64_t reduce_sum(Device& dev, std::span<const std::int64_t> in);

/// The offsets form `Device::launch_balanced` and `balanced_partition`
/// consume: the exclusive prefix sum of the per-item work estimates
/// (degrees) with the grand total appended — size `work.size() + 1`,
/// `out[0] == 0`.  The scan itself runs on the device via
/// `exclusive_scan`, mirroring the degree prefix sum an edge-balanced
/// CUDA kernel builds before its binary-search partition.
[[nodiscard]] std::vector<std::int64_t> balanced_offsets(
    Device& dev, std::span<const std::int64_t> work);

}  // namespace bpm::device
