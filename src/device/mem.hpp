#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "device/device.hpp"

namespace bpm::device {

/// A memory cell that many device threads may read and write concurrently
/// without synchronisation — the C++ embodiment of the paper's *benign
/// races* on the µ, ψ and iA arrays.
///
/// The paper's kernels deliberately race: concurrent pushes overwrite µ(u),
/// the last writer wins, and losers are detected afterwards via
/// `µ(µ(v)) ≠ v`.  A plain C++ data race is undefined behaviour, so the
/// cell uses `std::atomic` with `memory_order_relaxed`: on mainstream ISAs
/// relaxed 32-bit load/store compiles to an ordinary `mov` — no lock
/// prefixes, no read-modify-write — exactly matching the paper's claim of
/// an "atomic- and lock-free" implementation (they avoid atomic *RMW*
/// instructions, not loads/stores).  `bench/ablation_race` measures what
/// promoting these to seq_cst would cost.
///
/// Copy operations exist so that containers of cells are usable; they are
/// *not* atomic as a pair and must only run while no kernel is in flight
/// (i.e. host-side, between launches).
template <typename T>
class relaxed_cell {
 public:
  relaxed_cell() noexcept : value_(T{}) {}
  explicit relaxed_cell(T v) noexcept : value_(v) {}
  relaxed_cell(const relaxed_cell& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  relaxed_cell& operator=(const relaxed_cell& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] T load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void store(T v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Atomically lowers the cell to `min(current, v)`; returns the value
  /// observed before the update (relaxed CAS loop, lock-free).  The one
  /// RMW in the codebase, and deliberately so: it implements the sharded
  /// solver's deterministic boundary min-combine — the paper's push path
  /// itself stays free of RMW instructions.
  T store_min(T v) noexcept {
    T cur = value_.load(std::memory_order_relaxed);
    while (v < cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
    return cur;
  }

  /// Sequentially-consistent accessors for the race-cost ablation.
  [[nodiscard]] T load_seq_cst() const noexcept { return value_.load(); }
  void store_seq_cst(T v) noexcept { value_.store(v); }

 private:
  std::atomic<T> value_;
};

/// Tag selecting the *uninitialized* `relaxed_vector` constructor: storage
/// is allocated but no cell is constructed, so the pages are not yet
/// touched.  `construct_range` then places cells — on whatever thread runs
/// it, which is how `EngineArena` performs NUMA first-touch on an engine's
/// (possibly pinned) worker pool.
struct uninitialized_t {
  explicit uninitialized_t() = default;
};
inline constexpr uninitialized_t uninitialized{};

/// Fixed-capacity array of racy cells — "device memory".  The interface is
/// deliberately narrow: size, element access, bulk fill, host snapshot.
///
/// Storage is raw aligned memory rather than `std::vector`, so that cell
/// construction (the first write to each page) can be deferred and placed
/// on specific threads: on a first-touch NUMA policy, the thread that
/// constructs a page decides which node backs it.  The cell type must be
/// trivially destructible (it is, for the trivially-copyable `T`s device
/// state uses), which keeps destruction allocation-shaped: no per-cell
/// destructor walk over gigabytes of state.
///
/// Copying/moving and the bulk operations are host-side only (no kernel in
/// flight), like every non-atomic operation on device memory here; copying
/// an incompletely-constructed vector (uninitialized ctor without a full
/// `construct_range`) is undefined.
template <typename T>
class relaxed_vector {
  static_assert(std::is_trivially_destructible_v<relaxed_cell<T>>,
                "relaxed_vector storage relies on skipping destructors");

 public:
  relaxed_vector() = default;
  explicit relaxed_vector(std::size_t n, T init = T{})
      : relaxed_vector(uninitialized, n) {
    construct_range(0, n, init);
  }
  /// Allocates without constructing — see `uninitialized_t`.
  relaxed_vector(uninitialized_t, std::size_t n)
      : cells_(allocate(n)), size_(n) {}

  relaxed_vector(const relaxed_vector& other)
      : cells_(allocate(other.size_)), size_(other.size_) {
    for (std::size_t i = 0; i < size_; ++i)
      new (cells_ + i) relaxed_cell<T>(other.cells_[i].load());
  }
  relaxed_vector& operator=(const relaxed_vector& other) {
    if (this != &other) {
      relaxed_vector copy(other);
      swap(copy);
    }
    return *this;
  }
  relaxed_vector(relaxed_vector&& other) noexcept
      : cells_(std::exchange(other.cells_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  relaxed_vector& operator=(relaxed_vector&& other) noexcept {
    if (this != &other) {
      deallocate(cells_);
      cells_ = std::exchange(other.cells_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~relaxed_vector() { deallocate(cells_); }

  /// Constructs (first-touches) cells `[begin, end)` with `init`.  Safe to
  /// call concurrently on disjoint ranges — this is the parallel
  /// first-touch entry point `EngineArena` fans out over a pool.
  void construct_range(std::size_t begin, std::size_t end, T init) {
    for (std::size_t i = begin; i < end; ++i)
      new (cells_ + i) relaxed_cell<T>(init);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// O(1) buffer exchange — the Ac/Ap double-buffer swap of Algorithm 7.
  /// Host-side only (no kernel in flight).
  void swap(relaxed_vector& other) noexcept {
    std::swap(cells_, other.cells_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] T load(std::size_t i) const noexcept {
    return cells_[i].load();
  }
  void store(std::size_t i, T v) noexcept { cells_[i].store(v); }
  /// See `relaxed_cell::store_min`.
  T store_min(std::size_t i, T v) noexcept { return cells_[i].store_min(v); }

  /// Host-side bulk operations (no kernel may be in flight).
  void fill(T v) {
    for (std::size_t i = 0; i < size_; ++i) cells_[i].store(v);
  }
  void assign_from(const std::vector<T>& host) {
    relaxed_vector fresh(uninitialized, host.size());
    for (std::size_t i = 0; i < host.size(); ++i)
      new (fresh.cells_ + i) relaxed_cell<T>(host[i]);
    swap(fresh);
  }
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = cells_[i].load();
    return out;
  }

 private:
  static relaxed_cell<T>* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<relaxed_cell<T>*>(::operator new(
        n * sizeof(relaxed_cell<T>), std::align_val_t{kAlignment}));
  }
  static void deallocate(relaxed_cell<T>* p) noexcept {
    if (p != nullptr) ::operator delete(p, std::align_val_t{kAlignment});
  }

  /// Cache-line alignment: the arrays are sliced across shards, and a
  /// shared line at a slice boundary is tolerable (benign races), but the
  /// *start* of each array staying line-aligned keeps false sharing with
  /// unrelated allocations out of the picture.
  static constexpr std::size_t kAlignment =
      alignof(relaxed_cell<T>) > 64 ? alignof(relaxed_cell<T>) : 64;

  relaxed_cell<T>* cells_ = nullptr;
  std::size_t size_ = 0;
};

/// Kernel-wide flag (the paper's `actExists` / `uAdded`): any thread may
/// raise it during a launch; the host reads it after the launch barrier.
/// Multiple concurrent `raise()` calls are the benign same-value race the
/// paper describes for these variables.
class device_flag {
 public:
  device_flag() = default;
  /// Copying reads the current value; host-side only, like relaxed_cell.
  device_flag(const device_flag& other) noexcept
      : flag_(other.flag_.load(std::memory_order_relaxed)) {}
  device_flag& operator=(const device_flag& other) noexcept {
    flag_.store(other.flag_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }
  void raise() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool is_raised() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Engine-pinned allocation arena: constructs `relaxed_vector` ranges on a
/// specific engine's worker pool so that, under Linux's default
/// first-touch policy, the backing pages land on that engine's NUMA node
/// (the engine's workers are CPU-pinned when its descriptor carries a
/// `numa_node` hint).  This is how a sharded solve gives each shard's
/// column-side state to the engine that will run the shard's kernels,
/// instead of every page landing on whichever node ran the allocator.
///
/// On engines without a pool (sequential mode) the touch simply runs
/// inline — correct everywhere, NUMA-beneficial where it can be.
class EngineArena {
 public:
  explicit EngineArena(std::shared_ptr<Engine> engine)
      : engine_(std::move(engine)) {}

  [[nodiscard]] const std::shared_ptr<Engine>& engine() const {
    return engine_;
  }

  /// First-touch constructs cells `[begin, end)` of `v` with `init`,
  /// fanned out in page-multiple chunks over the engine's pool.  The
  /// range must not have been constructed before (see `uninitialized_t`).
  template <typename T>
  void first_touch(relaxed_vector<T>& v, std::size_t begin, std::size_t end,
                   T init) const {
    if (begin >= end) return;
    ThreadPool* pool = engine_ ? engine_->pool() : nullptr;
    const std::size_t n = end - begin;
    // 16 KiB of cells per chunk: a multiple of every page size that
    // matters, small enough to spread a shard slice over all workers.
    const std::size_t chunk =
        std::max<std::size_t>(16384 / sizeof(relaxed_cell<T>), 1);
    const std::size_t slots = (n + chunk - 1) / chunk;
    if (pool == nullptr || slots <= 1) {
      v.construct_range(begin, end, init);
      return;
    }
    pool->run_tasks(static_cast<unsigned>(slots), [&](unsigned s) {
      const std::size_t b = begin + static_cast<std::size_t>(s) * chunk;
      const std::size_t e = std::min(end, b + chunk);
      v.construct_range(b, e, init);
    });
  }

  /// Convenience: a fully constructed vector whose every page was
  /// first-touched on this arena's engine.
  template <typename T>
  [[nodiscard]] relaxed_vector<T> make(std::size_t n, T init = T{}) const {
    relaxed_vector<T> v(uninitialized, n);
    first_touch(v, 0, n, init);
    return v;
  }

 private:
  std::shared_ptr<Engine> engine_;
};

}  // namespace bpm::device
