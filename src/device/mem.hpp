#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace bpm::device {

/// A memory cell that many device threads may read and write concurrently
/// without synchronisation — the C++ embodiment of the paper's *benign
/// races* on the µ, ψ and iA arrays.
///
/// The paper's kernels deliberately race: concurrent pushes overwrite µ(u),
/// the last writer wins, and losers are detected afterwards via
/// `µ(µ(v)) ≠ v`.  A plain C++ data race is undefined behaviour, so the
/// cell uses `std::atomic` with `memory_order_relaxed`: on mainstream ISAs
/// relaxed 32-bit load/store compiles to an ordinary `mov` — no lock
/// prefixes, no read-modify-write — exactly matching the paper's claim of
/// an "atomic- and lock-free" implementation (they avoid atomic *RMW*
/// instructions, not loads/stores).  `bench/ablation_race` measures what
/// promoting these to seq_cst would cost.
///
/// Copy operations exist so that `std::vector<relaxed_cell>` is usable;
/// they are *not* atomic as a pair and must only run while no kernel is in
/// flight (i.e. host-side, between launches).
template <typename T>
class relaxed_cell {
 public:
  relaxed_cell() noexcept : value_(T{}) {}
  explicit relaxed_cell(T v) noexcept : value_(v) {}
  relaxed_cell(const relaxed_cell& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  relaxed_cell& operator=(const relaxed_cell& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] T load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void store(T v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Sequentially-consistent accessors for the race-cost ablation.
  [[nodiscard]] T load_seq_cst() const noexcept { return value_.load(); }
  void store_seq_cst(T v) noexcept { value_.store(v); }

 private:
  std::atomic<T> value_;
};

/// Fixed-capacity array of racy cells — "device memory".  The interface is
/// deliberately narrow: size, element access, bulk fill, host snapshot.
template <typename T>
class relaxed_vector {
 public:
  relaxed_vector() = default;
  explicit relaxed_vector(std::size_t n, T init = T{})
      : cells_(n, relaxed_cell<T>(init)) {}

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

  /// O(1) buffer exchange — the Ac/Ap double-buffer swap of Algorithm 7.
  /// Host-side only (no kernel in flight).
  void swap(relaxed_vector& other) noexcept { cells_.swap(other.cells_); }

  [[nodiscard]] T load(std::size_t i) const noexcept { return cells_[i].load(); }
  void store(std::size_t i, T v) noexcept { cells_[i].store(v); }

  /// Host-side bulk operations (no kernel may be in flight).
  void fill(T v) {
    for (auto& c : cells_) c.store(v);
  }
  void assign_from(const std::vector<T>& host) {
    cells_.assign(host.size(), relaxed_cell<T>{});
    for (std::size_t i = 0; i < host.size(); ++i) cells_[i].store(host[i]);
  }
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].load();
    return out;
  }

 private:
  std::vector<relaxed_cell<T>> cells_;
};

/// Kernel-wide flag (the paper's `actExists` / `uAdded`): any thread may
/// raise it during a launch; the host reads it after the launch barrier.
/// Multiple concurrent `raise()` calls are the benign same-value race the
/// paper describes for these variables.
class device_flag {
 public:
  device_flag() = default;
  /// Copying reads the current value; host-side only, like relaxed_cell.
  device_flag(const device_flag& other) noexcept
      : flag_(other.flag_.load(std::memory_order_relaxed)) {}
  device_flag& operator=(const device_flag& other) noexcept {
    flag_.store(other.flag_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }
  void raise() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool is_raised() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace bpm::device
