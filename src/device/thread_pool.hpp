#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bpm::device {

/// Persistent worker pool shared by every stream of a device engine.
///
/// `run_tasks(count, task)` runs `task(slot)` for every slot in
/// `[0, count)` and blocks the caller until all of them finished — one
/// fork-join per *kernel launch* in the device model, so the pool is
/// created once per engine and reused across thousands of launches
/// (thread creation per launch would dominate small kernels, just as CUDA
/// context creation would).
///
/// Unlike a plain fork-join pool, `run_tasks` may be called from several
/// host threads at once: each call enqueues its batch on a shared task
/// queue and the workers interleave slots from all in-flight batches.
/// This is what lets N device *streams* borrow one set of workers — the
/// host-thread analogue of CUDA streams sharing the SMs.  The caller
/// participates in executing its own batch, so every batch makes progress
/// even when all workers are busy with other streams' launches.
///
/// A slot index identifies a logical partition of the launch, not a
/// physical thread: one worker may execute several slots of the same
/// batch.  Slots within a batch are claimed exactly once.
///
/// The join is an acquire/release synchronisation point: everything
/// executed during the batch happens-before the caller's return, which is
/// what gives kernel launches their bulk-synchronous barrier semantics.
class ThreadPool {
 public:
  /// Creates `num_threads` workers.  `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()`.
  ///
  /// A non-empty `pin_cpus` pins worker `i` to CPU `pin_cpus[i % size]`
  /// (Linux only; silently ignored elsewhere) — how a NUMA-pinned engine
  /// keeps its workers, and therefore its first-touched pages, on one
  /// node.  Pinning is best-effort: an invalid CPU id leaves the worker
  /// unpinned rather than failing pool construction.
  explicit ThreadPool(unsigned num_threads = 0, std::vector<int> pin_cpus = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `task(slot)` for every slot in `[0, count)`; returns when all
  /// finished.  Safe to call concurrently from multiple threads.
  /// Exceptions thrown inside `task` terminate (kernels must not throw,
  /// mirroring the no-exceptions execution environment of GPU code).
  void run_tasks(unsigned count, const std::function<void(unsigned)>& task);

  /// Back-compat spelling: one slot per worker (`run_tasks(size(), job)`).
  void run_on_all(const std::function<void(unsigned)>& job) {
    run_tasks(size(), job);
  }

 private:
  /// One in-flight `run_tasks` call.  Lives on the caller's stack; the
  /// queue holds only batches that still have unclaimed slots.
  struct Batch {
    const std::function<void(unsigned)>* task;
    unsigned count;
    unsigned next = 0;       ///< next unclaimed slot (guarded by mutex_)
    unsigned remaining = 0;  ///< slots not yet finished (guarded by mutex_)
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty / shutdown
  std::condition_variable done_cv_;  ///< callers: their batch completed
  std::deque<Batch*> queue_;         ///< batches with unclaimed slots
  bool shutdown_ = false;
};

}  // namespace bpm::device
