#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bpm::device {

/// Persistent fork-join worker pool.
///
/// `run_on_all(job)` wakes every worker, runs `job(worker_id)` on each, and
/// blocks the caller until all are done — one fork-join per *kernel launch*
/// in the device model, so the pool is created once per `Device` and reused
/// across thousands of launches (thread creation per launch would dominate
/// small kernels, just as CUDA context creation would).
///
/// The join is an acquire/release synchronisation point: everything workers
/// wrote during the job happens-before the caller's return, which is what
/// gives kernel launches their bulk-synchronous barrier semantics.
class ThreadPool {
 public:
  /// Creates `num_threads` workers.  `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()`.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `job(worker_id)` on every worker; returns when all finished.
  /// Exceptions thrown inside `job` terminate (kernels must not throw,
  /// mirroring the no-exceptions execution environment of GPU code).
  void run_on_all(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace bpm::device
