#include "device/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bpm::device {

namespace {

void pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best-effort: an id outside the process's affinity mask just fails,
  // leaving the worker where the scheduler put it.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads, std::vector<int> pin_cpus) {
  if (num_threads == 0)
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (unsigned id = 0; id < num_threads; ++id) {
    const int cpu =
        pin_cpus.empty() ? -1 : pin_cpus[id % pin_cpus.size()];
    workers_.emplace_back([this, cpu] {
      if (cpu >= 0) pin_current_thread(cpu);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_tasks(unsigned count,
                           const std::function<void(unsigned)>& task) {
  if (count == 0) return;
  if (count == 1) {  // nothing to share: skip the queue entirely
    task(0);
    return;
  }
  Batch batch{&task, count, /*next=*/0, /*remaining=*/count};
  std::unique_lock lock(mutex_);
  queue_.push_back(&batch);
  work_cv_.notify_all();
  // Claim slots of our own batch until they are all taken; workers may be
  // claiming from the same batch (or from other streams' batches)
  // concurrently.
  while (batch.next < batch.count) {
    const unsigned slot = batch.next++;
    if (batch.next == batch.count)
      queue_.erase(std::find(queue_.begin(), queue_.end(), &batch));
    lock.unlock();
    (*batch.task)(slot);
    lock.lock();
    if (--batch.remaining == 0) done_cv_.notify_all();
  }
  done_cv_.wait(lock, [&] { return batch.remaining == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    Batch* batch = queue_.front();
    const unsigned slot = batch->next++;
    if (batch->next == batch->count) queue_.pop_front();
    lock.unlock();
    (*batch->task)(slot);
    lock.lock();
    if (--batch->remaining == 0) done_cv_.notify_all();
  }
}

}  // namespace bpm::device
