#include "device/thread_pool.hpp"

#include <algorithm>

namespace bpm::device {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0)
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (unsigned id = 0; id < num_threads; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_on_all(const std::function<void(unsigned)>& job) {
  std::unique_lock lock(mutex_);
  job_ = &job;
  remaining_ = size();
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(id);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace bpm::device
