#include "device/scan.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

namespace bpm::device {

std::int64_t exclusive_scan(Device& dev, std::span<const std::int64_t> in,
                            std::span<std::int64_t> out) {
  if (out.size() != in.size())
    throw std::invalid_argument("exclusive_scan: size mismatch");
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;

  // Pass 1: per-worker partial sums.
  std::vector<std::int64_t> partial(dev.num_workers() + 1, 0);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(dev.num_workers(),
                                                            {0, 0});
  dev.launch_chunked(n, [&](unsigned w, std::int64_t begin, std::int64_t end) {
    std::int64_t sum = 0;
    for (std::int64_t i = begin; i < end; ++i) sum += in[static_cast<std::size_t>(i)];
    partial[w + 1] = sum;
    ranges[w] = {begin, end};
  });

  // Serial scan over the (tiny) per-worker totals.
  std::partial_sum(partial.begin(), partial.end(), partial.begin());

  // Pass 2: write out with per-worker offsets.
  dev.launch_chunked(n, [&](unsigned w, std::int64_t begin, std::int64_t end) {
    std::int64_t acc = partial[w];
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int64_t v = in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = acc;
      acc += v;
    }
  });
  return partial.back();
}

std::vector<std::int64_t> balanced_offsets(Device& dev,
                                           std::span<const std::int64_t> work) {
  std::vector<std::int64_t> out(work.size() + 1, 0);
  out.back() = exclusive_scan(
      dev, work, std::span<std::int64_t>(out.data(), work.size()));
  return out;
}

std::int64_t reduce_sum(Device& dev, std::span<const std::int64_t> in) {
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;
  std::vector<std::int64_t> partial(dev.num_workers(), 0);
  dev.launch_chunked(n, [&](unsigned w, std::int64_t begin, std::int64_t end) {
    std::int64_t sum = 0;
    for (std::int64_t i = begin; i < end; ++i) sum += in[static_cast<std::size_t>(i)];
    partial[w] = sum;
  });
  return std::accumulate(partial.begin(), partial.end(), std::int64_t{0});
}

}  // namespace bpm::device
