#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "device/thread_pool.hpp"

namespace bpm::device {

/// How kernel launches execute.
enum class ExecMode {
  /// One worker, indices in order.  Deterministic; used by tests to
  /// separate logic bugs from race bugs, and by the race ablation.
  kSequential,
  /// All pool workers, static index partition, arbitrary interleaving —
  /// the faithful model of a CUDA grid.
  kConcurrent,
};

/// Analytic timing model of a target GPU, used to report *modeled device
/// time* next to host wall time (DESIGN.md D9).  A kernel over n logical
/// threads that scans `work` adjacency entries is charged
///
///   launch_latency_us + (n·ns_per_item + work·ns_per_work) · 1e-3
///
/// where the per-unit rates are *device-wide effective* costs.  Defaults
/// approximate the paper's Tesla C2050:
///  * 7 µs kernel launch latency (Fermi era) — this is why deep-BFS
///    instances (hugetrace, italy_osm) lose: one launch per level;
///  * ns_per_item = 0.2 (5 G logical threads/s): a near-trivial predicate
///    plus one coalesced 4-byte ψ read per thread, ≈ 20 GB/s of the
///    C2050's 144 GB/s — compute-side 448 cores × 1.15 GHz bound it too;
///  * ns_per_work = 0.6 (1.7 G adjacency entries/s): an irregular gather
///    of ψ(u) per CSR entry plus the entry itself, 8–12 bytes at poor
///    coalescing.
/// Sanity anchors against Table I: a hugetrace-scale global relabel
/// (≈3000 levels × (7 µs + 4.6 M rows · 0.2 ns)) models to ≈2.8 s vs the
/// paper's 2.71 s; delaunay_n20 models to ≈60 ms vs the paper's 0.06 s.
/// The model captures the two effects that decide every shape in the
/// evaluation — launch-latency domination on high-diameter graphs and
/// bandwidth-bound bulk work on wide ones — and nothing else.
struct DeviceModel {
  double launch_latency_us = 7.0;
  double ns_per_item = 0.2;  ///< per logical thread (device-wide effective)
  double ns_per_work = 0.6;  ///< per adjacency entry (device-wide effective)
};

struct DeviceOptions {
  ExecMode mode = ExecMode::kConcurrent;
  /// Worker count; 0 = hardware concurrency.  Oversubscribing (threads >>
  /// cores) widens the space of observable interleavings — the race stress
  /// tests use this.
  unsigned num_threads = 0;
  DeviceModel model;
};

/// A `std::int64_t` padded to its own cache line.  Per-slot accumulators
/// written concurrently by different workers (launch_accounted's work
/// tallies, the shrink kernel's per-worker counts) must not share lines,
/// or every increment ping-pongs the line between cores.
struct alignas(64) PaddedCount {
  std::int64_t value = 0;
};

/// Lifetime aggregates of one engine: how many streams it has served and
/// the launch/model totals those streams retired into it.  This is the
/// counter a long-running serving process reports — per-job streams come
/// and go, the engine's totals survive them all.
struct EngineStats {
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_retired = 0;
  /// Totals folded in by retired streams (live streams' counters are
  /// theirs until destruction, so two streams' stats never mix).
  std::uint64_t launches = 0;
  double modeled_ms = 0.0;
};

/// The shared execution backend of a device: the worker pool and the
/// execution mode.  One engine is created per simulated GPU; any number of
/// `Device` streams borrow its workers concurrently.  The engine itself is
/// stateless per launch — all launch counting and time modeling lives in
/// the streams — so sharing it never mixes two streams' stats; each stream
/// folds its totals into the engine's `EngineStats` when it retires.
class Engine {
 public:
  explicit Engine(ExecMode mode = ExecMode::kConcurrent,
                  unsigned num_threads = 0);

  [[nodiscard]] ExecMode mode() const { return mode_; }
  [[nodiscard]] unsigned num_workers() const {
    return pool_ ? pool_->size() : 1;
  }
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  /// Lifetime aggregates (streams opened/retired, retired launch and
  /// modeled-time totals).  Safe to call concurrently with stream churn.
  [[nodiscard]] EngineStats stats() const;

  /// Stream bookkeeping, called by `Device`.
  void note_stream_opened();
  void retire_stream(std::uint64_t launches, double modeled_us);

  /// In-flight load gauge for dispatchers (`serve::EngineGroup`): the
  /// modeled work units currently routed onto this engine.  The engine
  /// does not estimate this itself — whoever dispatches work charges the
  /// estimate up front and removes it when the dispatch retires — so it
  /// reads 0 for engines nothing is routed to.
  void add_load(double work);
  void remove_load(double work);
  [[nodiscard]] double load() const;

 private:
  ExecMode mode_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex stats_mutex_;
  EngineStats stats_;
  double load_ = 0.0;
};

/// A CUDA-style bulk-synchronous execution stream on host threads.
///
/// `launch(n, kernel)` models one kernel launch over a grid of `n` logical
/// threads: `kernel(i)` runs for every `i` in `[0, n)`, concurrently and in
/// no particular order; the call returns only after all of them finish
/// (stream-order barrier).  Logical threads are statically partitioned
/// into contiguous chunks over the engine's workers, mirroring how the
/// paper maps columns/rows to CUDA threads.
///
/// A `Device` is a *stream* over a shared `Engine`: it owns its launch
/// counter and modeled-time accumulator but borrows the engine's worker
/// pool, so N streams can run N jobs concurrently without corrupting each
/// other's stats — the host-thread analogue of CUDA streams.  The
/// single-argument constructor keeps the original one-device-one-engine
/// behaviour for code that needs no cross-job concurrency.
///
/// `launch_chunked` exposes the partition itself — kernels like
/// G-PR-SHRKRNL need per-physical-thread counting followed by a prefix sum
/// over the thread-private counts (paper §III-C2).  The `worker` argument
/// is the chunk slot, unique within the launch.
///
/// Streams count launches: the paper's global-relabeling policies are
/// expressed in units of push-kernel executions, and the experiment
/// harnesses report launch totals.
class Device {
 public:
  /// A device with its own private engine (the pre-stream behaviour).
  explicit Device(DeviceOptions options = {})
      : engine_(std::make_shared<Engine>(options.mode, options.num_threads)),
        model_(options.model) {
    engine_->note_stream_opened();
  }

  /// A stream on `engine`: borrowed workers, own stats.
  explicit Device(std::shared_ptr<Engine> engine, DeviceModel model = {})
      : engine_(std::move(engine)), model_(model) {
    engine_->note_stream_opened();
  }

  /// Streams are movable but not copyable: each one's counters retire
  /// into the engine's lifetime stats exactly once, on destruction.
  Device(Device&&) noexcept = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  Device& operator=(Device&&) = delete;

  ~Device() {
    if (engine_) engine_->retire_stream(launches_, modeled_us_);
  }

  [[nodiscard]] const std::shared_ptr<Engine>& engine() const {
    return engine_;
  }
  [[nodiscard]] ExecMode mode() const { return engine_->mode(); }
  [[nodiscard]] unsigned num_workers() const { return engine_->num_workers(); }
  [[nodiscard]] std::uint64_t launches() const { return launches_; }
  void reset_launch_count() { launches_ = 0; }

  /// Modeled device time accumulated on this stream (see DeviceModel).
  /// Kernels that report their work via `launch_accounted` contribute
  /// their work term; plain launches contribute latency + per-item cost
  /// only.
  [[nodiscard]] double modeled_ms() const { return modeled_us_ / 1e3; }
  void reset_modeled_time() { modeled_us_ = 0.0; }

  /// Adds work units to the model without a launch — for kernels whose
  /// work is easier to tally host-side (e.g. the shrink compaction's two
  /// resolve passes).
  void charge_work(std::int64_t work) {
    modeled_us_ += static_cast<double>(work) * model_.ns_per_work * 1e-3;
  }

  /// One kernel launch: `kernel(i)` for all i in [0, n).
  template <typename Kernel>
  void launch(std::int64_t n, Kernel&& kernel) {
    ++launches_;
    account(n, 0);
    if (n <= 0) return;
    if (mode() == ExecMode::kSequential || num_workers() == 1) {
      for (std::int64_t i = 0; i < n; ++i) kernel(i);
      return;
    }
    const auto workers = static_cast<std::int64_t>(num_workers());
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const auto [begin, end] = chunk(n, workers, w);
      for (std::int64_t i = begin; i < end; ++i) kernel(i);
    };
    engine_->pool()->run_tasks(num_workers(), job);
  }

  /// Like `launch`, but the kernel returns its work units (e.g. adjacency
  /// entries scanned), which feed the device time model.
  template <typename Kernel>
  void launch_accounted(std::int64_t n, Kernel&& kernel) {
    ++launches_;
    if (n <= 0) {
      account(n, 0);
      return;
    }
    if (mode() == ExecMode::kSequential || num_workers() == 1) {
      std::int64_t work = 0;
      for (std::int64_t i = 0; i < n; ++i) work += kernel(i);
      account(n, work);
      return;
    }
    const auto workers = static_cast<std::int64_t>(num_workers());
    std::vector<PaddedCount> per_worker(num_workers());
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const auto [begin, end] = chunk(n, workers, w);
      std::int64_t work = 0;
      for (std::int64_t i = begin; i < end; ++i) work += kernel(i);
      per_worker[w].value = work;
    };
    engine_->pool()->run_tasks(num_workers(), job);
    std::int64_t work = 0;
    for (const PaddedCount& w : per_worker) work += w.value;
    account(n, work);
  }

  /// One kernel launch with the worker partition exposed:
  /// `kernel(worker_id, begin, end)` where the `[begin, end)` ranges
  /// partition `[0, n)`.  Also counts as a single launch.
  template <typename Kernel>
  void launch_chunked(std::int64_t n, Kernel&& kernel) {
    ++launches_;
    if (n <= 0) return;
    if (mode() == ExecMode::kSequential || num_workers() == 1) {
      kernel(0u, std::int64_t{0}, n);
      return;
    }
    const auto workers = static_cast<std::int64_t>(num_workers());
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const auto [begin, end] = chunk(n, workers, w);
      kernel(w, begin, end);
    };
    engine_->pool()->run_tasks(num_workers(), job);
  }

 private:
  void account(std::int64_t items, std::int64_t work) {
    modeled_us_ += model_.launch_latency_us +
                   (static_cast<double>(std::max<std::int64_t>(items, 0)) *
                        model_.ns_per_item +
                    static_cast<double>(work) * model_.ns_per_work) *
                       1e-3;
  }

  static std::pair<std::int64_t, std::int64_t> chunk(std::int64_t n,
                                                     std::int64_t workers,
                                                     unsigned w) {
    const std::int64_t per = n / workers;
    const std::int64_t extra = n % workers;
    const auto wi = static_cast<std::int64_t>(w);
    const std::int64_t begin = wi * per + std::min(wi, extra);
    const std::int64_t end = begin + per + (wi < extra ? 1 : 0);
    return {begin, end};
  }

  std::shared_ptr<Engine> engine_;
  DeviceModel model_;
  std::uint64_t launches_ = 0;
  double modeled_us_ = 0.0;
};

}  // namespace bpm::device
