#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "device/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpm::device {

/// How kernel launches execute.
enum class ExecMode {
  /// One worker, indices in order.  Deterministic; used by tests to
  /// separate logic bugs from race bugs, and by the race ablation.
  kSequential,
  /// All pool workers, static index partition, arbitrary interleaving —
  /// the faithful model of a CUDA grid.
  kConcurrent,
};

/// Which execution backend an engine is.  Orthogonal to `ExecMode`: the
/// mode picks interleaving semantics (sequential vs concurrent), the
/// backend picks what a launch *costs* and how its items are chunked.
enum class Backend {
  /// The modeled C2050 simulator: per-launch `DeviceModel` charges,
  /// equal-item worker chunks, lane-tally straggler accounting.  Its
  /// native time metric is the modeled device time.
  kSim,
  /// The real multicore host executor (`HostParallelEngine`): kernels run
  /// in parallel on the pool with dynamically claimed, oversubscribed
  /// chunks (edge-balanced ones in `launch_balanced`), no model charges
  /// and no lane tallies.  Its native time metric is measured wall clock.
  kHost,
};

/// "sim" | "host"; throws `std::invalid_argument` on anything else.
[[nodiscard]] Backend parse_backend(std::string_view name);
[[nodiscard]] std::string_view backend_name(Backend backend);

/// The process-wide default backend: `sim`, unless the BPM_DEVICE_BACKEND
/// environment variable says otherwise ("sim" | "host", read once).  Every
/// construction path that does not name a backend explicitly starts here —
/// this is how CI reruns the existing test suites on the host backend
/// without touching a single test.
[[nodiscard]] Backend default_backend();

/// Analytic timing model of a target GPU, used to report *modeled device
/// time* next to host wall time (DESIGN.md D9).  A kernel over n logical
/// threads that scans `work` adjacency entries is charged
///
///   launch_latency_us + (n·ns_per_item + work·ns_per_work) · 1e-3
///
/// where the per-unit rates are *device-wide effective* costs.  Defaults
/// approximate the paper's Tesla C2050:
///  * 7 µs kernel launch latency (Fermi era) — this is why deep-BFS
///    instances (hugetrace, italy_osm) lose: one launch per level;
///  * ns_per_item = 0.2 (5 G logical threads/s): a near-trivial predicate
///    plus one coalesced 4-byte ψ read per thread, ≈ 20 GB/s of the
///    C2050's 144 GB/s — compute-side 448 cores × 1.15 GHz bound it too;
///  * ns_per_work = 0.6 (1.7 G adjacency entries/s): an irregular gather
///    of ψ(u) per CSR entry plus the entry itself, 8–12 bytes at poor
///    coalescing.
/// Sanity anchors against Table I: a hugetrace-scale global relabel
/// (≈3000 levels × (7 µs + 4.6 M rows · 0.2 ns)) models to ≈2.8 s vs the
/// paper's 2.71 s; delaunay_n20 models to ≈60 ms vs the paper's 0.06 s.
///
/// Accounted launches additionally model the *straggler critical path*:
/// logical threads are charged as if mapped onto `lanes` physical lanes
/// (448 = the C2050's CUDA cores) in contiguous item chunks, and the
/// work term is the slower of device-wide throughput and the busiest
/// lane, `max(work, lanes · max_lane_work) · ns_per_work`.  This is what
/// makes degree skew visible in modeled time: one high-degree column in a
/// one-thread-per-column push kernel serializes its lane exactly as it
/// serializes a CUDA core, the straggler problem Hsieh et al.
/// (arXiv:2404.00270) attack with edge-balanced work partitioning
/// (`Device::launch_balanced`, whose lanes are edge-balanced and
/// therefore skew-free up to one item).  `lanes = 0` disables the
/// straggler term and reverts to pure-throughput accounting.
///
/// The model therefore captures the three effects that decide every shape
/// in the evaluation — launch-latency domination on high-diameter graphs,
/// bandwidth-bound bulk work on wide ones, and straggler serialization on
/// degree-skewed ones — and nothing else.
struct DeviceModel {
  double launch_latency_us = 7.0;
  double ns_per_item = 0.2;  ///< per logical thread (device-wide effective)
  double ns_per_work = 0.6;  ///< per adjacency entry (device-wide effective)
  int lanes = 448;  ///< physical lanes of the straggler model (0 = off)
};

/// What an engine *is*: its backend kind and the execution resources it
/// brings.  Surfaced through `Engine::descriptor()` so dispatchers
/// (`serve::EngineGroup`) can route work by backend fit — a mixed pool of
/// sim and host engines is just a pool of differing descriptors.
struct EngineDescriptor {
  Backend backend = Backend::kSim;
  ExecMode mode = ExecMode::kConcurrent;
  unsigned threads = 0;  ///< pool workers (0 = hardware concurrency)
  /// Parallel lanes behind a launch: the sim's straggler-model lanes
  /// (`DeviceModel::lanes`); the host backend's resolved worker count
  /// (filled in by the engine once its pool exists).
  int lanes = 448;
  /// Advisory device memory budget in bytes (0 = unbounded).  The host
  /// backend shares host RAM, so this is a routing hint, not a limit.
  std::size_t memory_budget = 0;
  /// Host backend: the smallest per-slot item count worth a pool
  /// dispatch.  Launches whose per-slot share would fall below it run
  /// inline on the calling thread (the serial cutoff every real host
  /// runtime applies); lower it to force fan-out on tiny grids (the TSan
  /// tests do).
  std::int64_t host_grain = 16384;
  /// NUMA node this engine is pinned to (-1 = unpinned).  A pinned host
  /// engine builds its pool with the node's CPU list (`numa_topology`),
  /// so worker threads — and every page they first-touch through an
  /// `EngineArena` — stay on that node's socket.  Routing hints only on
  /// non-Linux platforms and sim engines.
  int numa_node = -1;

  /// One-line human-readable form, e.g. "host(workers=8)" or
  /// "sim(lanes=448)".
  [[nodiscard]] std::string summary() const;
};

struct DeviceOptions {
  /// Execution backend of the device's private engine (see `Backend`).
  /// Declared first so existing `{.mode = ..., .num_threads = ...}`
  /// initializers stay valid.
  Backend backend = default_backend();
  ExecMode mode = ExecMode::kConcurrent;
  /// Worker count; 0 = hardware concurrency.  Oversubscribing (threads >>
  /// cores) widens the space of observable interleavings — the race stress
  /// tests use this.
  unsigned num_threads = 0;
  DeviceModel model;
};

/// A `std::int64_t` padded to its own cache line.  Per-slot accumulators
/// written concurrently by different workers (launch_accounted's work
/// tallies, the shrink kernel's per-worker counts) must not share lines,
/// or every increment ping-pongs the line between cores.
struct alignas(64) PaddedCount {
  std::int64_t value = 0;
};

/// Per-chunk (model lane, work) tallies of one accounted launch, padded to
/// a cache line for the same reason as `PaddedCount`: each worker appends
/// to its own slot concurrently, and adjacent `std::vector` headers would
/// otherwise share lines while their size/pointer fields are mutated.
struct alignas(64) PaddedLaneTally {
  std::vector<std::pair<std::int64_t, std::int64_t>> entries;
};

/// Item boundaries of an edge-balanced partition: splits the `n` items
/// whose exclusive work prefix sum is `offsets` (size n+1, `offsets[0] ==
/// 0`, grand total at the back) into `parts` contiguous chunks of
/// near-equal *work*, each boundary located by binary search at the ideal
/// target `total·p/parts`.  Returns `parts + 1` item indices starting at 0
/// and ending at n; every item falls in exactly one chunk and every
/// chunk's work is within one maximum item work of the ideal
/// `total/parts`.  Throws `std::invalid_argument` on an empty or
/// non-exclusive-prefix `offsets` span or `parts < 1`.
[[nodiscard]] std::vector<std::int64_t> balanced_partition(
    std::span<const std::int64_t> offsets, std::int64_t parts);

/// CPU ids per NUMA node, parsed from `/sys/devices/system/node/node*/
/// cpulist` (Linux).  Always returns at least one node: machines without
/// the sysfs tree (or non-Linux builds) report a single node holding every
/// CPU id `[0, hardware_concurrency)`.  This is what `EngineGroup` callers
/// use to spread engine descriptors' `numa_node` hints across sockets.
[[nodiscard]] std::vector<std::vector<int>> numa_topology();

/// Lifetime aggregates of one engine: how many streams it has served and
/// the launch/model totals those streams retired into it.  This is the
/// counter a long-running serving process reports — per-job streams come
/// and go, the engine's totals survive them all.
struct EngineStats {
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_retired = 0;
  /// Totals folded in by retired streams (live streams' counters are
  /// theirs until destruction, so two streams' stats never mix).
  std::uint64_t launches = 0;
  double modeled_ms = 0.0;
  /// The backend's native time metric: measured in-kernel wall time for
  /// host engines, modeled device time for sim engines (see
  /// `Device::native_ms`).
  double native_ms = 0.0;
};

/// The shared execution backend of a device: the worker pool and the
/// execution mode.  One engine is created per simulated GPU; any number of
/// `Device` streams borrow its workers concurrently.  The engine itself is
/// stateless per launch — all launch counting and time modeling lives in
/// the streams — so sharing it never mixes two streams' stats; each stream
/// folds its totals into the engine's `EngineStats` when it retires.
class Engine {
 public:
  /// A sim engine (the pre-backend spelling, kept for the many call
  /// sites that only care about mode and worker count).
  explicit Engine(ExecMode mode = ExecMode::kConcurrent,
                  unsigned num_threads = 0);
  /// An engine of any backend.  The descriptor's `lanes` field is
  /// resolved to the actual pool size for host engines.
  explicit Engine(EngineDescriptor descriptor);
  virtual ~Engine() = default;

  [[nodiscard]] ExecMode mode() const { return descriptor_.mode; }
  [[nodiscard]] Backend backend() const { return descriptor_.backend; }
  [[nodiscard]] const EngineDescriptor& descriptor() const {
    return descriptor_;
  }
  [[nodiscard]] unsigned num_workers() const {
    return pool_ ? pool_->size() : 1;
  }
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  /// Lifetime aggregates (streams opened/retired, retired launch and
  /// modeled-time totals).  Safe to call concurrently with stream churn.
  [[nodiscard]] EngineStats stats() const;

  /// Stream bookkeeping, called by `Device`.
  void note_stream_opened();
  void retire_stream(std::uint64_t launches, double modeled_us,
                     double native_us);

  /// In-flight load gauge for dispatchers (`serve::EngineGroup`): the
  /// modeled work units currently routed onto this engine.  The engine
  /// does not estimate this itself — whoever dispatches work charges the
  /// estimate up front and removes it when the dispatch retires — so it
  /// reads 0 for engines nothing is routed to.
  void add_load(double work);
  void remove_load(double work);
  [[nodiscard]] double load() const;

 private:
  EngineDescriptor descriptor_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex stats_mutex_;
  EngineStats stats_;
  double load_ = 0.0;
};

/// The real multicore backend behind the `Engine` seam: kernel lambdas
/// actually run in parallel on the worker pool, chunks are claimed
/// dynamically (oversubscribed slots via `ThreadPool::run_tasks`, so a
/// straggler chunk never idles the other workers), `launch_balanced`
/// partitions *work* rather than items across the slots, and the native
/// time metric is measured wall clock instead of the C2050 model.
///
/// The class adds no state — backend behaviour lives in `Device`'s launch
/// paths, keyed off `Engine::backend()` — it is the named, documented way
/// to construct a host engine:
///
/// ```
/// auto engine = std::make_shared<device::HostParallelEngine>(8);
/// device::Device stream(engine);   // launches now run on 8 real threads
/// ```
class HostParallelEngine : public Engine {
 public:
  explicit HostParallelEngine(unsigned num_threads = 0,
                              ExecMode mode = ExecMode::kConcurrent)
      : Engine(EngineDescriptor{.backend = Backend::kHost,
                                .mode = mode,
                                .threads = num_threads}) {}
  explicit HostParallelEngine(EngineDescriptor descriptor) : Engine([&] {
          descriptor.backend = Backend::kHost;
          return descriptor;
        }()) {}
};

/// A CUDA-style bulk-synchronous execution stream on host threads.
///
/// `launch(n, kernel)` models one kernel launch over a grid of `n` logical
/// threads: `kernel(i)` runs for every `i` in `[0, n)`, concurrently and in
/// no particular order; the call returns only after all of them finish
/// (stream-order barrier).  Logical threads are statically partitioned
/// into contiguous chunks over the engine's workers, mirroring how the
/// paper maps columns/rows to CUDA threads.
///
/// A `Device` is a *stream* over a shared `Engine`: it owns its launch
/// counter and modeled-time accumulator but borrows the engine's worker
/// pool, so N streams can run N jobs concurrently without corrupting each
/// other's stats — the host-thread analogue of CUDA streams.  The
/// single-argument constructor keeps the original one-device-one-engine
/// behaviour for code that needs no cross-job concurrency.
///
/// `launch_chunked` exposes the partition itself — kernels like
/// G-PR-SHRKRNL need per-physical-thread counting followed by a prefix sum
/// over the thread-private counts (paper §III-C2).  The `worker` argument
/// is the chunk slot, unique within the launch.
///
/// Streams count launches: the paper's global-relabeling policies are
/// expressed in units of push-kernel executions, and the experiment
/// harnesses report launch totals.
class Device {
 public:
  /// A device with its own private engine (the pre-stream behaviour).
  /// `options.backend` selects the sim engine or a `HostParallelEngine`.
  explicit Device(DeviceOptions options = {})
      : engine_(options.backend == Backend::kHost
                    ? std::make_shared<HostParallelEngine>(options.num_threads,
                                                           options.mode)
                    : std::make_shared<Engine>(
                          EngineDescriptor{.backend = options.backend,
                                           .mode = options.mode,
                                           .threads = options.num_threads})),
        model_(options.model) {
    engine_->note_stream_opened();
  }

  /// A stream on `engine`: borrowed workers, own stats.
  explicit Device(std::shared_ptr<Engine> engine, DeviceModel model = {})
      : engine_(std::move(engine)), model_(model) {
    engine_->note_stream_opened();
  }

  /// Streams are movable but not copyable: each one's counters retire
  /// into the engine's lifetime stats exactly once, on destruction.
  Device(Device&&) noexcept = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  Device& operator=(Device&&) = delete;

  ~Device() {
    if (engine_)
      engine_->retire_stream(launches_, modeled_us_, native_us());
  }

  [[nodiscard]] const std::shared_ptr<Engine>& engine() const {
    return engine_;
  }
  [[nodiscard]] ExecMode mode() const { return engine_->mode(); }
  [[nodiscard]] Backend backend() const { return engine_->backend(); }
  [[nodiscard]] unsigned num_workers() const { return engine_->num_workers(); }
  [[nodiscard]] std::uint64_t launches() const { return launches_; }
  void reset_launch_count() { launches_ = 0; }

  /// Optional trace collector.  When set *and enabled*, every launch
  /// records a span annotated with the backend and its grid/work shape
  /// (the sim adds the straggler-lane tally); when null or disabled the
  /// entire cost is one pointer check per launch.  The tracer must
  /// outlive the stream; streams propagate it to whatever they spawn
  /// (the sharded driver hands it to each per-shard stream).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Timeline row for this stream's launch spans.  Defaults to the
  /// recording thread's own row; the sharded driver pins each shard
  /// stream to `tid == shard id` so launches line up under their shard.
  void set_trace_tid(std::uint32_t tid) { trace_tid_ = tid; }

  /// The stream's timing model — read-only; drivers that pre-split work
  /// host-side (the intra-item min-combine) size their fragments from
  /// `model().lanes` so the split matches what the model charges.
  [[nodiscard]] const DeviceModel& model() const { return model_; }

  /// Modeled device time accumulated on this stream (see DeviceModel).
  /// Kernels that report their work via `launch_accounted` contribute
  /// their work term; plain launches contribute latency + per-item cost
  /// only.  Always 0 on the host backend, whose launches are measured,
  /// not modeled — consumers that fall back to wall time when the model
  /// reads 0 (`bench::device_seconds`) do the right thing automatically.
  [[nodiscard]] double modeled_ms() const { return modeled_us_ / 1e3; }
  void reset_modeled_time() { modeled_us_ = 0.0; }

  /// The backend's native time metric for this stream: measured in-kernel
  /// wall time on the host backend, modeled device time on the sim — the
  /// number each backend itself claims a launch cost.
  [[nodiscard]] double native_ms() const { return native_us() / 1e3; }

  /// Adds work units to the model without a launch — for kernels whose
  /// work is easier to tally host-side (e.g. the shrink compaction's two
  /// resolve passes).  No-op on the host backend (measured, not modeled).
  void charge_work(std::int64_t work) {
    if (host()) return;
    modeled_us_ += static_cast<double>(work) * model_.ns_per_work * 1e-3;
  }

  /// One kernel launch: `kernel(i)` for all i in [0, n).
  template <typename Kernel>
  void launch(std::int64_t n, Kernel&& kernel) {
    auto sp = launch_span("launch", n);
    if (host()) {
      host_launch(n, kernel);
      return;
    }
    note_launch();
    account(n, 0);
    if (n <= 0) return;
    if (mode() == ExecMode::kSequential || num_workers() == 1) {
      for (std::int64_t i = 0; i < n; ++i) kernel(i);
      return;
    }
    const auto workers = static_cast<std::int64_t>(num_workers());
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const auto [begin, end] = chunk(n, workers, w);
      for (std::int64_t i = begin; i < end; ++i) kernel(i);
    };
    engine_->pool()->run_tasks(num_workers(), job);
  }

  /// Like `launch`, but the kernel returns its work units (e.g. adjacency
  /// entries scanned), which feed the device time model.  The model maps
  /// logical threads onto `DeviceModel::lanes` lanes in contiguous
  /// equal-*item* chunks — one thread per item, the paper's
  /// column-parallel grid — so a skewed work distribution is charged its
  /// straggler lane (see DeviceModel).  The lane tally is a deterministic
  /// function of the kernel's per-item work, identical in both execution
  /// modes and at any worker count.
  template <typename Kernel>
  void launch_accounted(std::int64_t n, Kernel&& kernel) {
    auto sp = launch_span("launch_accounted", n);
    if (host()) {
      // The host backend measures instead of modeling, so the kernel's
      // reported work units are not tallied — no lane bookkeeping, no
      // per-chunk partial merges, just the launch itself.
      host_launch(n, [&](std::int64_t i) { (void)kernel(i); });
      return;
    }
    note_launch();
    if (n <= 0) {
      account(n, 0);
      return;
    }
    if (worker_parts(n) == 1) {
      // Allocation-free path for the sequential/1-worker case: items
      // stream in lane order (the equal-item lane layout is arithmetic),
      // so total and busiest-lane work are two scalars.  Matters because
      // launch-latency-dominated runs issue thousands of tiny launches.
      const std::int64_t lanes = lane_parts(n);
      const std::int64_t per = n / lanes;
      const std::int64_t extra = n % lanes;
      std::int64_t work = 0, max_lane = 0, i = 0;
      for (std::int64_t lane = 0; lane < lanes; ++lane) {
        std::int64_t sum = 0;
        const std::int64_t size = per + (lane < extra ? 1 : 0);
        for (std::int64_t e = 0; e < size; ++e) sum += kernel(i++);
        work += sum;
        max_lane = std::max(max_lane, sum);
      }
      annotate_lanes(sp, work, max_lane);
      account(n, critical_work(work, max_lane));
      return;
    }
    const auto [work, max_lane] =
        run_lane_accounted(chunk_bounds(n, worker_parts(n)),
                           chunk_bounds(n, lane_parts(n)), kernel);
    annotate_lanes(sp, work, max_lane);
    account(n, critical_work(work, max_lane));
  }

  /// One kernel launch over the items of an edge-balanced plan (the
  /// workload-balanced push of Hsieh et al., arXiv:2404.00270).
  ///
  /// `offsets` is the exclusive prefix sum of the per-item work estimates
  /// (degrees) with the grand total appended — size n+1, `offsets[0] ==
  /// 0`; build it with `device::balanced_offsets` (device/scan.hpp),
  /// which runs the scan on this device.  Items are partitioned into
  /// per-worker chunks of near-equal *work* rather than near-equal item
  /// count, each boundary located by binary search in `offsets`
  /// (`balanced_partition`), so one high-degree item can no longer
  /// serialize a chunk that also holds an equal share of everything else.
  /// `kernel(i)` runs once per item in [0, n) and returns its actual work
  /// units, exactly like `launch_accounted`.
  ///
  /// Launch accounting models the balanced grid: the model lanes are
  /// edge-balanced by the same partition, so the charged critical path is
  /// skew-free up to one item's work — contrast `launch_accounted`, whose
  /// contiguous-item lanes pay for degree skew in full.
  template <typename Kernel>
  void launch_balanced(std::span<const std::int64_t> offsets,
                       Kernel&& kernel) {
    auto sp =
        launch_span("launch_balanced",
                    static_cast<std::int64_t>(offsets.size()) - 1);
    if (sp && !offsets.empty()) sp.arg("work_total", offsets.back());
    if (host()) {
      host_launch_balanced(offsets, kernel);
      return;
    }
    note_launch();
    const auto n = static_cast<std::int64_t>(offsets.size()) - 1;
    if (n <= 0) {
      account(std::max<std::int64_t>(n, 0), 0);
      return;
    }
    const auto [work, max_lane] =
        run_lane_accounted(balanced_partition(offsets, worker_parts(n)),
                           balanced_partition(offsets, lane_parts(n)), kernel);
    annotate_lanes(sp, work, max_lane);
    account(n, critical_work(work, max_lane));
  }

  /// One kernel launch with the worker partition exposed:
  /// `kernel(worker_id, begin, end)` where the `[begin, end)` ranges
  /// partition `[0, n)`.  Also counts as a single launch.
  template <typename Kernel>
  void launch_chunked(std::int64_t n, Kernel&& kernel) {
    auto sp = launch_span("launch_chunked", n);
    note_launch();
    if (n <= 0) return;
    if (host()) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::int64_t grain =
          std::max<std::int64_t>(engine_->descriptor().host_grain, 1);
      // One chunk per worker is part of the contract (callers size
      // per-worker scratch by `num_workers()` and index it by the slot
      // id), so the host path keeps the sim's static partition and only
      // applies the serial cutoff: a grid below the grain runs inline as
      // worker 0, the remaining slots simply see empty ranges.
      if (mode() == ExecMode::kSequential || num_workers() == 1 ||
          n < grain) {
        kernel(0u, std::int64_t{0}, n);
      } else {
        const auto workers = static_cast<std::int64_t>(num_workers());
        const std::function<void(unsigned)> job = [&](unsigned w) {
          const auto [begin, end] = chunk(n, workers, w);
          kernel(w, begin, end);
        };
        engine_->pool()->run_tasks(num_workers(), job);
      }
      native_us_ += elapsed_us(t0);
      return;
    }
    if (mode() == ExecMode::kSequential || num_workers() == 1) {
      kernel(0u, std::int64_t{0}, n);
      return;
    }
    const auto workers = static_cast<std::int64_t>(num_workers());
    const std::function<void(unsigned)> job = [&](unsigned w) {
      const auto [begin, end] = chunk(n, workers, w);
      kernel(w, begin, end);
    };
    engine_->pool()->run_tasks(num_workers(), job);
  }

 private:
  [[nodiscard]] bool host() const {
    return engine_->backend() == Backend::kHost;
  }

  /// One launch on this stream: the per-stream counter plus the always-on
  /// process-wide `device.launches.<backend>` registry counter (striped
  /// relaxed add — cheap enough for the thousands-of-tiny-launches runs).
  void note_launch() {
    ++launches_;
    launch_counter().inc();
  }

  [[nodiscard]] obs::Counter& launch_counter() {
    if (launch_counter_ == nullptr)
      launch_counter_ = &obs::Registry::global().counter(
          std::string("device.launches.") +
          std::string(backend_name(backend())));
    return *launch_counter_;
  }

  /// Span for one launch (inert when no tracer is attached or tracing is
  /// off), pre-annotated with the backend and grid size.
  [[nodiscard]] obs::Span launch_span(std::string_view name, std::int64_t n) {
    auto sp = obs::span(tracer_, name, "device", trace_tid_);
    if (sp) {
      sp.arg("backend", backend_name(backend()));
      sp.arg("n", n);
    }
    return sp;
  }

  /// The sim's straggler tally on a finished accounted/balanced launch:
  /// total work, the busiest model lane, and the lane count charged.
  void annotate_lanes(obs::Span& sp, std::int64_t work,
                      std::int64_t max_lane) const {
    if (!sp) return;
    sp.arg("work", work);
    sp.arg("lane_max", max_lane);
    sp.arg("lanes", model_.lanes);
  }

  /// What this stream retires as its native time: the measured wall
  /// accumulator on the host backend, the model accumulator on the sim.
  [[nodiscard]] double native_us() const {
    return host() ? native_us_ : modeled_us_;
  }

  static double elapsed_us(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  /// Pool slots a host launch of `n` units (items or work) fans out to.
  /// 1 below twice the grain — the serial cutoff that keeps the
  /// thousands of tiny launches a push-relabel run issues off the pool's
  /// fork-join path — otherwise one slot per grain, oversubscribed up to
  /// 8× the workers so `run_tasks`'s dynamic claiming absorbs straggler
  /// chunks.
  [[nodiscard]] std::int64_t host_slots(std::int64_t n) const {
    if (mode() == ExecMode::kSequential || num_workers() == 1) return 1;
    const std::int64_t grain =
        std::max<std::int64_t>(engine_->descriptor().host_grain, 1);
    if (n < 2 * grain) return 1;
    const auto workers = static_cast<std::int64_t>(num_workers());
    return std::clamp<std::int64_t>(n / grain, 1, workers * 8);
  }

  /// The host backend's `launch`: dynamic equal-item chunks over
  /// `host_slots` slots, measured wall time, no model bookkeeping.
  template <typename Kernel>
  void host_launch(std::int64_t n, Kernel&& kernel) {
    note_launch();
    if (n <= 0) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t slots = host_slots(n);
    if (slots <= 1) {
      for (std::int64_t i = 0; i < n; ++i) kernel(i);
    } else {
      const std::function<void(unsigned)> job = [&](unsigned s) {
        const auto [begin, end] = chunk(n, slots, s);
        for (std::int64_t i = begin; i < end; ++i) kernel(i);
      };
      engine_->pool()->run_tasks(static_cast<unsigned>(slots), job);
    }
    native_us_ += elapsed_us(t0);
  }

  /// The host backend's `launch_balanced`: chunk count sized by total
  /// *work* (`offsets.back()`), boundaries from the same
  /// `balanced_partition` the sim models — here they bound what each
  /// pool slot actually executes.
  template <typename Kernel>
  void host_launch_balanced(std::span<const std::int64_t> offsets,
                            Kernel&& kernel) {
    note_launch();
    const auto n = static_cast<std::int64_t>(offsets.size()) - 1;
    if (n <= 0) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t total = offsets.back();
    const std::int64_t slots =
        std::min<std::int64_t>(host_slots(std::max(total, n)), n);
    if (slots <= 1) {
      for (std::int64_t i = 0; i < n; ++i) (void)kernel(i);
    } else {
      const auto bounds = balanced_partition(offsets, slots);
      const std::function<void(unsigned)> job = [&](unsigned s) {
        for (std::int64_t i = bounds[s]; i < bounds[s + 1]; ++i)
          (void)kernel(i);
      };
      engine_->pool()->run_tasks(static_cast<unsigned>(slots), job);
    }
    native_us_ += elapsed_us(t0);
  }

  void account(std::int64_t items, std::int64_t work) {
    modeled_us_ += model_.launch_latency_us +
                   (static_cast<double>(std::max<std::int64_t>(items, 0)) *
                        model_.ns_per_item +
                    static_cast<double>(work) * model_.ns_per_work) *
                       1e-3;
  }

  /// The work units to charge given the total and the busiest model lane:
  /// the slower of device-wide throughput and the straggler critical path
  /// (`lanes · max_lane_work`; see DeviceModel).
  [[nodiscard]] std::int64_t critical_work(std::int64_t work,
                                           std::int64_t max_lane) const {
    if (model_.lanes <= 0) return work;
    return std::max(work, max_lane * static_cast<std::int64_t>(model_.lanes));
  }

  /// Physical chunk count of an accounted launch: one per pool worker.
  [[nodiscard]] std::int64_t worker_parts(std::int64_t n) const {
    if (mode() == ExecMode::kSequential || num_workers() == 1) return 1;
    return std::min<std::int64_t>(num_workers(), n);
  }

  /// Model lane count: `DeviceModel::lanes` capped at the grid size (a
  /// grid smaller than the device leaves lanes idle), at least 1 so the
  /// tally stays well-defined when the straggler model is off.
  [[nodiscard]] std::int64_t lane_parts(std::int64_t n) const {
    if (model_.lanes <= 0) return 1;
    return std::min<std::int64_t>(model_.lanes, n);
  }

  /// Equal-item chunk boundaries — `parts + 1` indices partitioning
  /// `[0, n)` with the same layout `chunk` produces.
  static std::vector<std::int64_t> chunk_bounds(std::int64_t n,
                                                std::int64_t parts) {
    std::vector<std::int64_t> bounds(static_cast<std::size_t>(parts) + 1, 0);
    const std::int64_t per = n / parts;
    const std::int64_t extra = n % parts;
    for (std::int64_t p = 0; p <= parts; ++p)
      bounds[static_cast<std::size_t>(p)] = p * per + std::min(p, extra);
    return bounds;
  }

  /// Runs `kernel(i)` for every item of every `[chunk_bounds[c],
  /// chunk_bounds[c+1])` range — one run_tasks slot per chunk — while
  /// tallying the kernel's returned work per model lane (`lane_bounds`,
  /// also item boundaries).  Chunk and lane boundaries need not align; a
  /// lane split across chunks is summed at the host-side merge after the
  /// launch barrier.  Returns {total work, max lane work}.
  template <typename Kernel>
  std::pair<std::int64_t, std::int64_t> run_lane_accounted(
      const std::vector<std::int64_t>& chunks,
      const std::vector<std::int64_t>& lane_bounds, Kernel&& kernel) {
    const auto num_chunks = static_cast<unsigned>(chunks.size() - 1);
    if (num_chunks == 1) {
      // Single chunk: stream lane by lane, no per-chunk partials needed.
      std::int64_t work = 0, max_lane = 0;
      for (std::size_t lane = 0; lane + 1 < lane_bounds.size(); ++lane) {
        std::int64_t sum = 0;
        for (std::int64_t i = lane_bounds[lane]; i < lane_bounds[lane + 1];
             ++i)
          sum += kernel(i);
        work += sum;
        max_lane = std::max(max_lane, sum);
      }
      return {work, max_lane};
    }
    std::vector<PaddedLaneTally> partials(num_chunks);
    const auto run_chunk = [&](unsigned c) {
      const std::int64_t begin = chunks[c];
      const std::int64_t end = chunks[c + 1];
      if (begin >= end) return;
      // Lane holding `begin`: the last boundary <= begin (duplicates from
      // empty lanes resolve to the one whose end exceeds begin).
      std::size_t lane = static_cast<std::size_t>(
          std::upper_bound(lane_bounds.begin(), lane_bounds.end(), begin) -
          lane_bounds.begin() - 1);
      std::int64_t lane_end = lane_bounds[lane + 1];
      std::int64_t sum = 0;
      for (std::int64_t i = begin; i < end; ++i) {
        if (i >= lane_end) {
          partials[c].entries.emplace_back(static_cast<std::int64_t>(lane),
                                           sum);
          sum = 0;
          while (i >= lane_bounds[lane + 1]) ++lane;
          lane_end = lane_bounds[lane + 1];
        }
        sum += kernel(i);
      }
      partials[c].entries.emplace_back(static_cast<std::int64_t>(lane), sum);
    };
    const std::function<void(unsigned)> job = run_chunk;
    engine_->pool()->run_tasks(num_chunks, job);
    std::vector<std::int64_t> lane_work(lane_bounds.size() - 1, 0);
    for (const PaddedLaneTally& tally : partials)
      for (const auto& [lane, sum] : tally.entries)
        lane_work[static_cast<std::size_t>(lane)] += sum;
    std::int64_t work = 0, max_lane = 0;
    for (const std::int64_t w : lane_work) {
      work += w;
      max_lane = std::max(max_lane, w);
    }
    return {work, max_lane};
  }

  static std::pair<std::int64_t, std::int64_t> chunk(std::int64_t n,
                                                     std::int64_t workers,
                                                     unsigned w) {
    const std::int64_t per = n / workers;
    const std::int64_t extra = n % workers;
    const auto wi = static_cast<std::int64_t>(w);
    const std::int64_t begin = wi * per + std::min(wi, extra);
    const std::int64_t end = begin + per + (wi < extra ? 1 : 0);
    return {begin, end};
  }

  std::shared_ptr<Engine> engine_;
  DeviceModel model_;
  std::uint64_t launches_ = 0;
  double modeled_us_ = 0.0;
  double native_us_ = 0.0;  ///< host backend: measured in-kernel wall time
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_tid_ = obs::Tracer::kSelfTid;
  obs::Counter* launch_counter_ = nullptr;  ///< lazy, process-wide registry
};

}  // namespace bpm::device
