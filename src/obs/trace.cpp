#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace bpm::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

std::string number_json(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

std::string arg_json(std::string_view key, std::string_view value) {
  return quoted(key) + ':' + quoted(value);
}

std::string arg_json(std::string_view key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  return quoted(key) + ':' + buf;
}

std::string arg_json(std::string_view key, double value) {
  return quoted(key) + ':' + number_json(value);
}

Tracer::Tracer(std::size_t per_thread_capacity)
    : id_(next_tracer_id()),
      capacity_(std::max<std::size_t>(per_thread_capacity, 16)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::Ring& Tracer::local_ring() {
  // One-entry cache: repeated records from the same thread skip the
  // registry lock entirely.  Keyed by the process-unique tracer id, not
  // the pointer, so a recycled allocation can never hit a stale entry.
  thread_local struct {
    std::uint64_t tracer_id = 0;
    Ring* ring = nullptr;
  } cache;
  if (cache.tracer_id == id_ && cache.ring != nullptr) return *cache.ring;
  std::lock_guard lock(mutex_);
  Ring*& slot = thread_index_[std::this_thread::get_id()];
  if (slot == nullptr) {
    auto ring = std::make_unique<Ring>();
    ring->tid = kThreadTidBase + static_cast<std::uint32_t>(rings_.size());
    ring->events.reserve(std::min<std::size_t>(capacity_, 1024));
    slot = ring.get();
    rings_.push_back(std::move(ring));
  }
  cache.tracer_id = id_;
  cache.ring = slot;
  return *slot;
}

std::uint32_t Tracer::thread_tid() { return local_ring().tid; }

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  if (ev.tid == kSelfTid) ev.tid = ring.tid;
  std::lock_guard lock(ring.mutex);
  if (ring.events.size() >= capacity_) {
    ++ring.dropped;
    return;
  }
  ring.events.push_back(std::move(ev));
}

void Tracer::instant(std::string name, std::string cat, std::string args,
                     std::uint32_t tid) {
  if (!enabled()) return;
  record(TraceEvent{.name = std::move(name), .cat = std::move(cat), .ph = 'i',
                    .ts_us = now_us(), .dur_us = 0, .tid = tid,
                    .args = std::move(args)});
}

void Tracer::complete(std::string name, std::string cat, std::uint64_t ts_us,
                      std::uint64_t dur_us, std::string args,
                      std::uint32_t tid) {
  if (!enabled()) return;
  record(TraceEvent{.name = std::move(name), .cat = std::move(cat), .ph = 'X',
                    .ts_us = ts_us, .dur_us = dur_us, .tid = tid,
                    .args = std::move(args)});
}

void Tracer::name_tid(std::uint32_t tid, std::string name) {
  std::lock_guard lock(mutex_);
  tid_names_[tid] = std::move(name);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard lock(mutex_);
    for (const auto& ring : rings_) {
      std::lock_guard ring_lock(ring->mutex);
      all.insert(all.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.name < b.name;
            });
  return all;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::map<std::string, double> Tracer::totals_ms(std::string_view cat) const {
  std::map<std::string, double> totals;
  for (const TraceEvent& ev : events())
    if (ev.ph == 'X' && ev.cat == cat)
      totals[ev.name] += static_cast<double>(ev.dur_us) / 1e3;
  return totals;
}

std::string Tracer::json() const {
  const std::vector<TraceEvent> all = events();
  std::map<std::uint32_t, std::string> names;
  std::uint64_t drops = 0;
  {
    std::lock_guard lock(mutex_);
    names = tid_names_;
    for (const auto& ring : rings_) {
      std::lock_guard ring_lock(ring->mutex);
      drops += ring->dropped;
    }
  }
  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"bpm\"}}");
  for (const auto& [tid, name] : names) {
    std::string line = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    line += std::to_string(tid);
    line += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    line += quoted(name);
    line += "}}";
    emit(line);
  }
  for (const TraceEvent& ev : all) {
    std::string line = "{\"name\":";
    line += quoted(ev.name);
    line += ",\"cat\":";
    line += quoted(ev.cat.empty() ? std::string_view("bpm")
                                  : std::string_view(ev.cat));
    line += ",\"ph\":\"";
    line += ev.ph;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(ev.tid);
    line += ",\"ts\":";
    line += std::to_string(ev.ts_us);
    if (ev.ph == 'X') {
      line += ",\"dur\":";
      line += std::to_string(ev.dur_us);
    }
    if (ev.ph == 'i') line += ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      line += ",\"args\":{";
      line += ev.args;
      line += '}';
    }
    line += '}';
    emit(line);
  }
  if (drops > 0) {
    std::string line =
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"trace_dropped_events\","
        "\"args\":{\"count\":";
    line += std::to_string(drops);
    line += "}}";
    emit(line);
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << json();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    ring->events.clear();
    ring->dropped = 0;
  }
}

}  // namespace bpm::obs
