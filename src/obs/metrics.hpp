#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace bpm::obs {

/// Monotonic counter striped across cache-line-padded atomic cells: each
/// thread increments the cell its id hashes to (relaxed), so concurrent
/// hot-path increments from the worker pool never ping-pong one line.
/// `value()` sums the stripes — exact once writers quiesce, a consistent
/// floor while they run.  Cheap enough to leave on in per-launch paths.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t stripe() noexcept;

  std::array<Cell, kStripes> cells_{};
};

/// Last-write-wins instantaneous value (queue depth, per-engine load).
/// `add` exists for callers that track a level by deltas.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the sorted inclusive upper bounds
/// of the first `bounds.size()` buckets, with an implicit +inf overflow
/// bucket at the end.  `observe` is two relaxed atomic adds plus a binary
/// search over an immutable bounds array — safe and cheap from any number
/// of threads concurrently.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  /// A point-in-time copy.  `counts.size() == bounds.size() + 1` (the
  /// last entry is the overflow bucket).
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Percentile estimate by linear interpolation inside the bucket the
    /// rank falls in (the overflow bucket reports its lower bound — the
    /// histogram cannot see past its last boundary).  Mirrors the
    /// `bpm::percentile` contract on degenerate inputs: 0 when empty,
    /// and `pct` is clamped to [0, 100].
    [[nodiscard]] double percentile(double pct) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// `count` upper bounds growing geometrically from `start` by `factor`
  /// — the usual latency-bucket ladder.
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double start, double factor, std::size_t count);
  /// 0.05 ms … ~52 s in ×2 steps: covers a cache hit through a massive
  /// sharded solve.
  [[nodiscard]] static std::vector<double> default_latency_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide metrics registry: named counters, gauges, histograms, and
/// static info strings.  Registration (`counter()` et al.) takes a mutex
/// and returns a stable reference — hot paths register once and hold the
/// reference, so steady-state updates never touch the registry lock.
/// Metric objects live as long as the registry.
///
/// `snapshot_json()` is deterministic for a fixed set of values: names
/// are emitted in sorted order (std::map) with fixed number formatting,
/// so two snapshots of equal state are byte-identical.
class Registry {
 public:
  /// The process-wide instance every production path publishes into.
  /// Tests wanting isolation construct their own `Registry`.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers (or fetches) a histogram; `bounds` is used only on first
  /// registration (empty = `default_latency_bounds_ms`).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});
  /// Static string facts (backend names, descriptor summaries).
  void set_info(const std::string& name, std::string value);

  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot snapshot;
  };

  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;
  [[nodiscard]] std::map<std::string, double> gauge_values() const;
  [[nodiscard]] std::vector<HistogramEntry> histogram_snapshots() const;
  [[nodiscard]] std::map<std::string, std::string> info_values() const;

  /// `{"counters":{...},"gauges":{...},"histograms":{...},"info":{...}}`
  /// with sorted keys; histograms embed count/sum/mean, p50/p90/p99, and
  /// the per-bucket `{"le":bound,"count":n}` ladder.
  [[nodiscard]] std::string snapshot_json() const;

  /// Writes `snapshot_json()` to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> info_;
};

}  // namespace bpm::obs
