#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

namespace bpm::obs {

/// One trace event in the chrome://tracing JSON model.  `ph` is the event
/// phase: 'X' = complete (has `dur_us`), 'i' = instant marker.  `args` is
/// the pre-rendered body of the JSON `args` object (`"key":value` pairs
/// joined by commas, no braces) so the hot path never builds a DOM.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  std::uint64_t ts_us = 0;   ///< start, µs since the tracer's epoch
  std::uint64_t dur_us = 0;  ///< complete events only
  std::uint32_t tid = 0;     ///< timeline row (thread, shard, or engine id)
  std::string args;
};

/// Render helpers for `TraceEvent::args` / `Span::arg`.  Strings are
/// escaped and quoted; numbers print in a fixed locale-independent form.
[[nodiscard]] std::string arg_json(std::string_view key, std::string_view value);
[[nodiscard]] std::string arg_json(std::string_view key, std::int64_t value);
[[nodiscard]] std::string arg_json(std::string_view key, double value);

/// Thread-safe trace collector emitting chrome://tracing-format JSON
/// (load the file at chrome://tracing or https://ui.perfetto.dev).
///
/// Each recording thread appends into its own bounded ring (registered on
/// first use), so concurrent spans from the shard fleet, the service
/// workers, and the device pool never contend on one buffer; a full ring
/// drops the newest events and counts the drops instead of blocking the
/// solve.  Rows (`tid`) default to a per-thread id handed out in
/// registration order (starting at `kThreadTidBase`), but callers that own
/// a logical timeline — shard k, engine e — pass an explicit small tid so
/// the trace shows the *fleet* layout rather than the pool's.
///
/// The disabled path is the whole design: `obs::span(tracer, ...)` is one
/// null/flag check when tracing is off (or the tracer absent), so the
/// instrumentation can stay compiled into every hot loop.
class Tracer {
 public:
  static constexpr std::uint32_t kThreadTidBase = 100;

  explicit Tracer(std::size_t per_thread_capacity = 1u << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Microseconds since this tracer's construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// The calling thread's default timeline row, registering it if new.
  [[nodiscard]] std::uint32_t thread_tid();

  /// Appends `ev` to the calling thread's ring (drops when full; no-op
  /// when disabled).  `ev.tid == kSelfTid` resolves to `thread_tid()`.
  static constexpr std::uint32_t kSelfTid = 0xffffffffu;
  void record(TraceEvent ev);

  /// Instant marker (ph='i') at `now_us()`.
  void instant(std::string name, std::string cat, std::string args = {},
               std::uint32_t tid = kSelfTid);

  /// Complete event with explicit timestamps — for spans reconstructed
  /// after the fact (the service emits a ticket's queue/service spans at
  /// completion time from its measured latencies).
  void complete(std::string name, std::string cat, std::uint64_t ts_us,
                std::uint64_t dur_us, std::string args = {},
                std::uint32_t tid = kSelfTid);

  /// Names a timeline row ("shard 0 (engine 1)"); emitted as chrome
  /// thread_name metadata so Perfetto labels the fleet rows.
  void name_tid(std::uint32_t tid, std::string name);

  /// All recorded events merged across rings, sorted by (ts, tid, -dur,
  /// name) — a deterministic order in which an enclosing span precedes
  /// the spans it contains.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events dropped ring-full across all threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Summed `dur_us` (as ms) per event name over complete events whose
  /// category is `cat` — cumulative, so per-run breakdowns diff two calls.
  [[nodiscard]] std::map<std::string, double> totals_ms(
      std::string_view cat) const;

  /// The chrome://tracing JSON document (deterministic for a fixed event
  /// set: sorted events, sorted row names, fixed number formatting).
  [[nodiscard]] std::string json() const;

  /// Writes `json()` to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

  /// Discards all recorded events and drop counts (rings stay registered).
  void clear();

 private:
  struct Ring {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };

  Ring& local_ring();

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  ///< guards rings_/thread_index_/tid_names_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<std::thread::id, Ring*> thread_index_;
  std::map<std::uint32_t, std::string> tid_names_;
};

/// RAII span: records one complete event from construction to `end()` (or
/// destruction).  A default-constructed or disabled span is inert — the
/// null check is the entire disabled-path cost.  Move-only so a span can
/// be returned from the `obs::span` helper and closed early.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name, std::string cat,
       std::uint32_t tid = Tracer::kSelfTid)
      : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)),
        tid_(tid), start_us_(tracer ? tracer->now_us() : 0) {}

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      name_ = std::move(other.name_);
      cat_ = std::move(other.cat_);
      args_ = std::move(other.args_);
      tid_ = other.tid_;
      start_us_ = other.start_us_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { end(); }

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }
  explicit operator bool() const { return active(); }

  /// Attaches one `"key":value` pair to the event's args.  Integral
  /// values (including bool) render as integers, floating as numbers,
  /// anything string-convertible as an escaped JSON string.
  template <typename V>
  void arg(std::string_view key, const V& value) {
    if (!tracer_) return;
    if (!args_.empty()) args_ += ',';
    if constexpr (std::is_integral_v<V>)
      args_ += arg_json(key, static_cast<std::int64_t>(value));
    else if constexpr (std::is_floating_point_v<V>)
      args_ += arg_json(key, static_cast<double>(value));
    else
      args_ += arg_json(key, std::string_view(value));
  }

  void end() {
    if (!tracer_) return;
    const std::uint64_t now = tracer_->now_us();
    tracer_->complete(std::move(name_), std::move(cat_), start_us_,
                      now - start_us_, std::move(args_), tid_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  std::string args_;
  std::uint32_t tid_ = Tracer::kSelfTid;
  std::uint64_t start_us_ = 0;
};

/// The instrumentation entry point: an active span when `tracer` is
/// non-null and enabled, an inert one otherwise.
inline Span span(Tracer* tracer, std::string_view name, std::string_view cat,
                 std::uint32_t tid = Tracer::kSelfTid) {
  if (tracer == nullptr || !tracer->enabled()) return {};
  return Span(tracer, std::string(name), std::string(cat), tid);
}

}  // namespace bpm::obs
