#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

namespace bpm::obs {

namespace {

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string number_json(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

std::size_t Counter::stripe() noexcept {
  thread_local const std::size_t s =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return s;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += snap.counts[i];
  }
  // Re-derive the total from the buckets rather than `count_`: under
  // concurrent observes the two can momentarily disagree, and the
  // percentile walk below must agree with its own cumulative sums.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::percentile(double pct) const {
  if (count == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Overflow bucket: no upper bound to interpolate toward.
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double hi = bounds[b];
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double within =
          std::clamp((target - static_cast<double>(cum)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + (hi - lo) * within;
    }
    cum += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  return exponential_bounds(0.05, 2.0, 21);  // 0.05 ms .. ~52.4 s
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_ms();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

void Registry::set_info(const std::string& name, std::string value) {
  std::lock_guard lock(mutex_);
  info_[name] = std::move(value);
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> values;
  for (const auto& [name, c] : counters_) values[name] = c->value();
  return values;
}

std::map<std::string, double> Registry::gauge_values() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, double> values;
  for (const auto& [name, g] : gauges_) values[name] = g->value();
  return values;
}

std::vector<Registry::HistogramEntry> Registry::histogram_snapshots() const {
  std::lock_guard lock(mutex_);
  std::vector<HistogramEntry> entries;
  entries.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    entries.push_back({name, h->snapshot()});
  return entries;
}

std::map<std::string, std::string> Registry::info_values() const {
  std::lock_guard lock(mutex_);
  return info_;
}

std::string Registry::snapshot_json() const {
  const auto counters = counter_values();
  const auto gauges = gauge_values();
  const auto histograms = histogram_snapshots();
  const auto info = info_values();

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quoted(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quoted(name) + ": " + number_json(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& entry : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    const auto& snap = entry.snapshot;
    out += "    " + quoted(entry.name) + ": {\"count\": " +
           std::to_string(snap.count) + ", \"sum\": " + number_json(snap.sum) +
           ", \"mean\": " + number_json(snap.mean()) +
           ", \"p50\": " + number_json(snap.percentile(50)) +
           ", \"p90\": " + number_json(snap.percentile(90)) +
           ", \"p99\": " + number_json(snap.percentile(99)) + ", \"buckets\": [";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": ";
      out += b < snap.bounds.size() ? number_json(snap.bounds[b]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(snap.counts[b]) + '}';
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"info\": {";
  first = true;
  for (const auto& [name, value] : info) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quoted(name) + ": " + quoted(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Registry::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << snapshot_json();
  return static_cast<bool>(out);
}

}  // namespace bpm::obs
