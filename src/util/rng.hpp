#pragma once

#include <cstdint>
#include <limits>

namespace bpm {

/// SplitMix64 — used to expand a single user seed into the state of the
/// main generator, and as a cheap stateless hash for edge sampling.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Xoshiro256** — the repository's deterministic pseudo-random generator.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can drive the
/// standard distributions and `std::shuffle`.  Every generator in
/// `graph/generators.cpp` takes a seed and derives one of these, which makes
/// all synthetic instances reproducible bit-for-bit across runs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x42ULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in `[0, bound)`.  `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection-free mapping (the tiny modulo
  /// bias is irrelevant for graph generation).
  std::uint64_t below(std::uint64_t bound) {
    __extension__ using uint128 = unsigned __int128;
    const auto x = operator()();
    return static_cast<std::uint64_t>((static_cast<uint128>(x) * bound) >> 64);
  }

  /// Uniform integer in `[lo, hi]` inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in `[0, 1)`.
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace bpm
