#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace bpm {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  entries_[name] = Entry{help, "false", /*is_flag=*/true, /*flag_set=*/false};
  order_.push_back(name);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  entries_[name] = Entry{help, default_value, /*is_flag=*/false,
                         /*flag_set=*/false};
  order_.push_back(name);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = entries_.find(name);
    if (it == entries_.end())
      throw std::invalid_argument(program_ + ": unknown flag --" + name);
    Entry& e = it->second;
    if (e.is_flag) {
      if (inline_value)
        throw std::invalid_argument(program_ + ": flag --" + name +
                                    " does not take a value");
      e.value = "true";
      e.flag_set = true;
    } else if (inline_value) {
      e.value = *inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument(program_ + ": flag --" + name +
                                    " expects a value");
      e.value = argv[++i];
    }
  }
}

const CliParser::Entry& CliParser::find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument(program_ + ": flag --" + name +
                                " was never registered");
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  const Entry& e = find(name);
  return e.value == "true";
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Entry& e = find(name);
  try {
    std::size_t pos = 0;
    auto v = std::stoll(e.value, &pos);
    if (pos != e.value.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + "=" + e.value +
                                " is not an integer");
  }
}

double CliParser::get_double(const std::string& name) const {
  const Entry& e = find(name);
  try {
    std::size_t pos = 0;
    double v = std::stod(e.value, &pos);
    if (pos != e.value.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + "=" + e.value +
                                " is not a number");
  }
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name;
    if (!e.is_flag) os << " <value>  (default: " << e.value << ")";
    os << "\n      " << e.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace bpm
