#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/solver.hpp"

namespace bpm {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  entries_[name] = Entry{help, "false", /*is_flag=*/true, /*flag_set=*/false};
  order_.push_back(name);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  entries_[name] = Entry{help, default_value, /*is_flag=*/false,
                         /*flag_set=*/false};
  order_.push_back(name);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = entries_.find(name);
    if (it == entries_.end())
      throw std::invalid_argument(program_ + ": unknown flag --" + name);
    Entry& e = it->second;
    if (e.is_flag) {
      if (inline_value)
        throw std::invalid_argument(program_ + ": flag --" + name +
                                    " does not take a value");
      e.value = "true";
      e.flag_set = true;
    } else if (inline_value) {
      e.value = *inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument(program_ + ": flag --" + name +
                                    " expects a value");
      e.value = argv[++i];
    }
  }
}

const CliParser::Entry& CliParser::find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::invalid_argument(program_ + ": flag --" + name +
                                " was never registered");
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  const Entry& e = find(name);
  return e.value == "true";
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Entry& e = find(name);
  try {
    std::size_t pos = 0;
    auto v = std::stoll(e.value, &pos);
    if (pos != e.value.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + "=" + e.value +
                                " is not an integer");
  }
}

double CliParser::get_double(const std::string& name) const {
  const Entry& e = find(name);
  try {
    std::size_t pos = 0;
    double v = std::stod(e.value, &pos);
    if (pos != e.value.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(program_ + ": --" + name + "=" + e.value +
                                " is not a number");
  }
}

std::vector<std::string> CliParser::get_string_list(
    const std::string& name) const {
  const std::string& value = find(name).value;
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end > pos) out.push_back(value.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void add_algo_flag(CliParser& cli, const std::string& default_value) {
  cli.add_option("algo",
                 "comma-separated solver specs, name[:key=val,key=val] — "
                 "e.g. g-pr-shr:k=1.5,hk (names: " +
                     SolverRegistry::instance().names_csv() + ")",
                 default_value);
  cli.add_flag("list-algos",
               "print the registered solvers with their capabilities and "
               "exit");
}

std::vector<SolverSpec> solver_specs_from_cli(const CliParser& cli) {
  std::vector<SolverSpec> specs =
      SolverSpec::parse_list(cli.get_string("algo"));
  if (specs.empty())
    throw std::invalid_argument("--algo needs at least one solver spec (" +
                                SolverRegistry::instance().names_csv() + ")");
  // Validate names and options now — a typo should fail before the harness
  // spends minutes building its instance suite.
  for (const SolverSpec& spec : specs) (void)spec.instantiate();
  return specs;
}

void exit_if_list_algos(const CliParser& cli) {
  if (!cli.has("list-algos") || !cli.get_flag("list-algos")) return;
  const SolverRegistry& registry = SolverRegistry::instance();
  std::cout
      << "name         device  multicore  deterministic  exact  balanced\n";
  for (const std::string& name : registry.names()) {
    const SolverCaps caps = registry.create(name)->caps();
    const auto yn = [](bool b) { return b ? "yes" : "no "; };
    std::cout << name << std::string(name.size() < 13 ? 13 - name.size() : 1, ' ')
              << yn(caps.needs_device) << "     " << yn(caps.multicore)
              << "        " << yn(caps.deterministic) << "            "
              << yn(caps.exact) << "    " << yn(caps.balanced) << "\n";
  }
  for (const auto& [alias, canonical] : registry.alias_list())
    std::cout << "alias: " << alias << " -> " << canonical << "\n";
  std::cout << "spec syntax: name[:key=val,key=val], e.g. g-pr-shr:k=1.5\n";
  std::exit(0);
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name;
    if (!e.is_flag) os << " <value>  (default: " << e.value << ")";
    os << "\n      " << e.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace bpm
