#pragma once

#include <chrono>
#include <cstdint>

namespace bpm {

/// Monotonic wall-clock stopwatch.
///
/// The timer starts running on construction; `restart()` rewinds it and
/// `elapsed_*()` reads it without stopping.  All benchmarks in `bench/`
/// and the per-phase breakdowns in `core/stats.hpp` use this clock.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  /// Rewind the stopwatch to zero.
  void restart() { start_ = clock::now(); }

  /// Seconds since construction or the last `restart()`.
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last `restart()`.
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

  /// Microseconds since construction or the last `restart()`.
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  clock::time_point start_;
};

}  // namespace bpm
