#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bpm {

/// Geometric mean of a set of positive values.
///
/// This is the aggregate the paper reports in Figure 1 and in the bottom
/// row of Table I.  Non-positive entries are clamped to `floor_value`
/// (runtimes are never zero, but guard against a 0 ms measurement on tiny
/// instances).
[[nodiscard]] double geometric_mean(std::span<const double> values,
                                    double floor_value = 1e-9);

/// Arithmetic mean.
[[nodiscard]] double arithmetic_mean(std::span<const double> values);

/// One point of a speedup profile (paper Figure 2):
/// `fraction` = P(speedup >= x) over the instance set.
struct ProfilePoint {
  double x = 0.0;
  double fraction = 0.0;
};

/// Speedup profile: for each requested abscissa `x`, the fraction of
/// instances on which `speedups[i] >= x`.
[[nodiscard]] std::vector<ProfilePoint> speedup_profile(
    std::span<const double> speedups, std::span<const double> xs);

/// Performance profile (paper Figure 3, Dolan–Moré).
///
/// `times[a][i]` is the runtime of algorithm `a` on instance `i`.
/// The result, per algorithm, gives for each abscissa `x` the fraction of
/// instances where `times[a][i] <= x * min_a'(times[a'][i])`.
struct PerformanceProfile {
  std::string name;
  std::vector<ProfilePoint> points;
};

[[nodiscard]] std::vector<PerformanceProfile> performance_profiles(
    std::span<const std::string> names,
    std::span<const std::vector<double>> times, std::span<const double> xs);

/// Percentile by linear interpolation between order statistics: `pct` is
/// the percentile in [0, 100], so `percentile(lat, 99)` is the p99.  Used
/// by the serving load harness for latency distributions.
///
/// Contract (tested in tests/test_util.cpp):
///  * empty input → 0.0 (the only case where the result is not drawn
///    from the data; callers with "no samples ≠ 0 ms" semantics must
///    check `values.empty()` themselves);
///  * single element → that element, for every `pct`;
///  * `pct` outside [0, 100] is clamped (−5 behaves as 0, 250 as 100),
///    never thrown on;
///  * `pct = 0` → the minimum, `pct = 100` → the maximum; between order
///    statistics the result interpolates linearly (rank
///    `pct/100 · (n−1)`), so it is monotone in `pct` and always within
///    [min, max] of the input.  The input need not be sorted; NaNs are
///    not handled.
[[nodiscard]] double percentile(std::span<const double> values, double pct);

/// Small descriptive summary used by test helpers and bench reports.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double geomean = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

}  // namespace bpm
