#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bpm {

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), precision_(double_precision) {
  if (headers_.empty())
    throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell) const {
  std::ostringstream os;
  if (std::holds_alternative<std::string>(cell)) {
    os << std::get<std::string>(cell);
  } else if (std::holds_alternative<std::int64_t>(cell)) {
    os << std::get<std::int64_t>(cell);
  } else {
    os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      r.push_back(render(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rendered) emit(r);
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(render(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bpm
