#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace bpm {

/// Aligned-text / CSV table writer used by every bench harness to print the
/// paper-shaped tables (Figure 1 grid, Table I, profile series).
///
/// Cells are strings, integers, or doubles; doubles render with a fixed
/// per-table precision.  Columns are right-aligned except the first, which
/// is left-aligned (matches how the paper typesets Table I).
class Table {
 public:
  using Cell = std::variant<std::string, std::int64_t, double>;

  explicit Table(std::vector<std::string> headers, int double_precision = 2);

  void add_row(std::vector<Cell> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Pretty-print with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Comma-separated values (header row first).
  [[nodiscard]] std::string to_csv() const;

 private:
  [[nodiscard]] std::string render(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace bpm
