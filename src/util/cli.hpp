#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bpm {

/// Minimal GNU-style command line parser shared by the bench harnesses and
/// example binaries.
///
/// Supported syntax: `--name value`, `--name=value`, and boolean `--flag`.
/// Unknown flags raise `std::invalid_argument` so that typos in experiment
/// sweeps fail loudly instead of silently running the default configuration.
///
/// ```
/// CliParser cli("fig1_gr_strategies", "Reproduces paper Figure 1");
/// cli.add_flag("verbose", "print per-instance rows");
/// cli.add_option("scale", "instance scale multiplier", "1.0");
/// cli.parse(argc, argv);
/// double scale = cli.get_double("scale");
/// ```
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Register a valued option with a default.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv.  Calls `std::exit(0)` after printing usage if `--help` is
  /// present.  Throws `std::invalid_argument` on unknown or malformed flags.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  /// The option's value split on commas, empty tokens dropped
  /// ("a,b,c" → {"a", "b", "c"}).
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& name) const;

  /// True if a flag or option with this name was registered.
  [[nodiscard]] bool has(const std::string& name) const {
    return entries_.contains(name);
  }

  /// Positional arguments, in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Entry {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  const Entry& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

// Forward declaration (core/solver.hpp); cli.cpp provides the definitions.
struct SolverSpec;

/// Registers `--algo <spec,spec,...>` selecting solvers by `SolverSpec`
/// grammar — registry names with optional tuning options, e.g.
/// `g-pr-shr:k=1.5,hk` — plus the `--list-algos` flag that prints every
/// registered solver with its capabilities and exits.
void add_algo_flag(CliParser& cli, const std::string& default_value);

/// The parsed `--algo` spec list, validated against the registry — an
/// unknown name, unknown option, or malformed spec throws
/// `std::invalid_argument` naming the valid choices.
[[nodiscard]] std::vector<SolverSpec> solver_specs_from_cli(
    const CliParser& cli);

/// If `--list-algos` was registered (see `add_algo_flag`) and passed,
/// prints the registry — names, `SolverCaps` columns, aliases — and exits
/// with status 0.  Call right after `parse`.
void exit_if_list_algos(const CliParser& cli);

}  // namespace bpm
