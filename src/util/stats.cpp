#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bpm {

double geometric_mean(std::span<const double> values, double floor_value) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, floor_value));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<ProfilePoint> speedup_profile(std::span<const double> speedups,
                                          std::span<const double> xs) {
  std::vector<ProfilePoint> out;
  out.reserve(xs.size());
  const auto n = static_cast<double>(speedups.size());
  for (double x : xs) {
    std::size_t hits = 0;
    for (double s : speedups)
      if (s >= x) ++hits;
    out.push_back({x, n > 0 ? static_cast<double>(hits) / n : 0.0});
  }
  return out;
}

std::vector<PerformanceProfile> performance_profiles(
    std::span<const std::string> names,
    std::span<const std::vector<double>> times, std::span<const double> xs) {
  if (names.size() != times.size())
    throw std::invalid_argument(
        "performance_profiles: names/times size mismatch");
  const std::size_t num_algos = times.size();
  if (num_algos == 0) return {};
  const std::size_t num_instances = times[0].size();
  for (const auto& row : times)
    if (row.size() != num_instances)
      throw std::invalid_argument(
          "performance_profiles: ragged time matrix");

  // Best runtime per instance across all algorithms.
  std::vector<double> best(num_instances,
                           std::numeric_limits<double>::infinity());
  for (const auto& row : times)
    for (std::size_t i = 0; i < num_instances; ++i)
      best[i] = std::min(best[i], row[i]);

  std::vector<PerformanceProfile> out;
  out.reserve(num_algos);
  for (std::size_t a = 0; a < num_algos; ++a) {
    PerformanceProfile p;
    p.name = names[a];
    p.points.reserve(xs.size());
    for (double x : xs) {
      std::size_t hits = 0;
      for (std::size_t i = 0; i < num_instances; ++i)
        if (times[a][i] <= x * best[i]) ++hits;
      p.points.push_back(
          {x, num_instances > 0
                  ? static_cast<double>(hits) / static_cast<double>(num_instances)
                  : 0.0});
    }
    out.push_back(std::move(p));
  }
  return out;
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(pct, 0.0), 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = arithmetic_mean(values);
  s.geomean = geometric_mean(values);
  return s;
}

}  // namespace bpm
