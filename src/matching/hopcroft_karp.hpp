#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

struct HkStats {
  std::int64_t phases = 0;         ///< BFS+DFS rounds
  std::int64_t augmentations = 0;  ///< paths applied
};

/// Hopcroft–Karp: repeated phases of (a) BFS building the layered graph of
/// shortest alternating paths from unmatched columns, stopped at the first
/// layer containing unmatched rows, and (b) a maximal set of vertex-
/// disjoint shortest augmenting paths found by iterative DFS inside the
/// layers.  O(τ√(n+m)) worst case — the best known bound, and the basis of
/// the paper's G-HK / G-HKDW comparators.
[[nodiscard]] Matching hopcroft_karp(const BipartiteGraph& g, Matching init,
                                     HkStats* stats = nullptr);

}  // namespace bpm::matching
