#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

/// Options for the sequential push-relabel matcher.
struct SeqPrOptions {
  /// Global relabel every `global_relabel_k * (m + n)` pushes.  The paper
  /// tried several values for its PR baseline and settled on k = 0.5
  /// (Section IV); `bench/ablation_seqpr` sweeps this.
  double global_relabel_k = 0.5;

  /// Gap relabeling (abstract of the paper; standard PR heuristic): when a
  /// column label value becomes unpopulated, every column above the gap is
  /// unreachable and is retired on its next activation.
  bool gap_relabeling = true;

  /// Run one global relabel before the main loop (exact initial distances).
  bool initial_global_relabel = true;
};

/// Operation counters for analysis benches and tests.
struct SeqPrStats {
  std::int64_t pushes = 0;            ///< single + double pushes
  std::int64_t scanned_edges = 0;     ///< Γ(v) entries inspected
  std::int64_t global_relabels = 0;
  std::int64_t gap_retired = 0;       ///< columns retired by the gap heuristic
};

/// Sequential push-relabel bipartite matching (the paper's Algorithm 1,
/// PR), processing active columns in FIFO order with periodic global
/// relabeling (Algorithm 2) — the configuration the paper benchmarks
/// against (Kaya et al.'s implementation).
///
/// `init` is the starting matching (the paper always uses
/// `cheap_matching`); it must be valid for `g`.  Returns a maximum
/// cardinality matching with all kUnmatchable markers normalised to
/// kUnmatched.
[[nodiscard]] Matching seq_push_relabel(const BipartiteGraph& g, Matching init,
                                        const SeqPrOptions& options = {},
                                        SeqPrStats* stats = nullptr);

}  // namespace bpm::matching
