#include "matching/verify.hpp"

#include <queue>
#include <vector>

namespace bpm::matching {

bool is_maximum(const BipartiteGraph& g, const Matching& m) {
  // BFS over alternating paths: start from every unmatched column, cross
  // any edge column→row, and return row→column only along matched edges.
  // Reaching an unmatched row exhibits an augmenting path.
  std::vector<char> row_seen(static_cast<std::size_t>(g.num_rows()), 0);
  std::vector<char> col_seen(static_cast<std::size_t>(g.num_cols()), 0);
  std::queue<index_t> frontier;  // column vertices
  for (index_t v = 0; v < g.num_cols(); ++v) {
    if (m.col_match[static_cast<std::size_t>(v)] < 0) {
      col_seen[static_cast<std::size_t>(v)] = 1;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const index_t v = frontier.front();
    frontier.pop();
    for (index_t u : g.col_neighbors(v)) {
      if (row_seen[static_cast<std::size_t>(u)]) continue;
      row_seen[static_cast<std::size_t>(u)] = 1;
      const index_t w = m.row_match[static_cast<std::size_t>(u)];
      if (w == kUnmatched) return false;  // augmenting path found
      if (!col_seen[static_cast<std::size_t>(w)]) {
        col_seen[static_cast<std::size_t>(w)] = 1;
        frontier.push(w);
      }
    }
  }
  return true;
}

index_t reference_maximum_cardinality(const BipartiteGraph& g) {
  // Deliberately simple: repeated BFS, one augmentation per search.
  // O(V·E) worst case, fine for test-sized graphs.
  const auto nrows = static_cast<std::size_t>(g.num_rows());
  const auto ncols = static_cast<std::size_t>(g.num_cols());
  std::vector<index_t> row_match(nrows, kUnmatched);
  std::vector<index_t> col_match(ncols, kUnmatched);
  std::vector<index_t> parent_row(nrows);  // column we arrived from
  std::vector<char> col_visited(ncols);
  index_t cardinality = 0;

  for (index_t start = 0; start < g.num_cols(); ++start) {
    if (col_match[static_cast<std::size_t>(start)] != kUnmatched) continue;
    std::fill(col_visited.begin(), col_visited.end(), 0);
    std::fill(parent_row.begin(), parent_row.end(), kUnmatched);
    std::queue<index_t> frontier;
    frontier.push(start);
    col_visited[static_cast<std::size_t>(start)] = 1;
    index_t end_row = kUnmatched;
    while (!frontier.empty() && end_row == kUnmatched) {
      const index_t v = frontier.front();
      frontier.pop();
      for (index_t u : g.col_neighbors(v)) {
        if (parent_row[static_cast<std::size_t>(u)] != kUnmatched) continue;
        parent_row[static_cast<std::size_t>(u)] = v;
        const index_t w = row_match[static_cast<std::size_t>(u)];
        if (w == kUnmatched) {
          end_row = u;
          break;
        }
        if (!col_visited[static_cast<std::size_t>(w)]) {
          col_visited[static_cast<std::size_t>(w)] = 1;
          frontier.push(w);
        }
      }
    }
    if (end_row == kUnmatched) continue;
    // Flip the path backwards to the start column.
    index_t u = end_row;
    while (true) {
      const index_t v = parent_row[static_cast<std::size_t>(u)];
      const index_t prev_u = col_match[static_cast<std::size_t>(v)];
      row_match[static_cast<std::size_t>(u)] = v;
      col_match[static_cast<std::size_t>(v)] = u;
      if (prev_u == kUnmatched) break;
      u = prev_u;
    }
    ++cardinality;
  }
  return cardinality;
}

index_t deficiency(const BipartiteGraph& g, const Matching& m) {
  return reference_maximum_cardinality(g) - m.cardinality();
}

}  // namespace bpm::matching
