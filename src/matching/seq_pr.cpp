#include "matching/seq_pr.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace bpm::matching {

namespace {

/// Shared state of one solver run.
struct PrState {
  const BipartiteGraph& g;
  Matching m;
  std::vector<index_t> psi_row;
  std::vector<index_t> psi_col;
  std::deque<index_t> active;          // FIFO of active columns
  std::vector<index_t> label_count;    // columns per label (gap heuristic)
  index_t gap_threshold;               // labels >= this are unreachable
  index_t psi_inf;

  explicit PrState(const BipartiteGraph& graph, Matching init)
      : g(graph),
        m(std::move(init)),
        psi_row(static_cast<std::size_t>(graph.num_rows()), 0),
        psi_col(static_cast<std::size_t>(graph.num_cols()), 1),
        label_count(static_cast<std::size_t>(graph.psi_infinity()) + 3, 0),
        gap_threshold(std::numeric_limits<index_t>::max()),
        psi_inf(graph.psi_infinity()) {}

  void rebuild_label_counts() {
    std::fill(label_count.begin(), label_count.end(), 0);
    for (index_t v = 0; v < g.num_cols(); ++v) {
      const index_t l = psi_col[static_cast<std::size_t>(v)];
      if (l < psi_inf) ++label_count[static_cast<std::size_t>(l)];
    }
    gap_threshold = std::numeric_limits<index_t>::max();
  }

  /// Move column v from label `from` to label `to`, detecting gaps.
  void move_label(index_t v, index_t from, index_t to, SeqPrStats* stats) {
    psi_col[static_cast<std::size_t>(v)] = to;
    if (from < psi_inf) {
      auto& cnt = label_count[static_cast<std::size_t>(from)];
      if (--cnt == 0 && from < gap_threshold) gap_threshold = from;
    }
    if (to < psi_inf) ++label_count[static_cast<std::size_t>(to)];
    (void)stats;
  }

  /// Algorithm 2 (GR): exact distances via BFS from all unmatched rows.
  /// Runs over the *row* adjacency.  Unreached vertices get ψ = m + n.
  void global_relabel() {
    std::fill(psi_col.begin(), psi_col.end(), psi_inf);
    std::deque<index_t> queue;  // row vertices
    for (index_t u = 0; u < g.num_rows(); ++u) {
      if (m.row_match[static_cast<std::size_t>(u)] == kUnmatched) {
        psi_row[static_cast<std::size_t>(u)] = 0;
        queue.push_back(u);
      } else {
        psi_row[static_cast<std::size_t>(u)] = psi_inf;
      }
    }
    while (!queue.empty()) {
      const index_t u = queue.front();
      queue.pop_front();
      const index_t du = psi_row[static_cast<std::size_t>(u)];
      for (index_t v : g.row_neighbors(u)) {
        if (psi_col[static_cast<std::size_t>(v)] != psi_inf) continue;
        psi_col[static_cast<std::size_t>(v)] = du + 1;
        const index_t w = m.col_match[static_cast<std::size_t>(v)];
        if (w >= 0 && psi_row[static_cast<std::size_t>(w)] == psi_inf) {
          psi_row[static_cast<std::size_t>(w)] = du + 2;
          queue.push_back(w);
        }
      }
    }
    rebuild_label_counts();
  }

  /// Rebuild the FIFO from unmatched columns; drop the ones GR proved
  /// unreachable.
  void rebuild_active() {
    active.clear();
    for (index_t v = 0; v < g.num_cols(); ++v) {
      if (m.col_match[static_cast<std::size_t>(v)] != kUnmatched) continue;
      if (psi_col[static_cast<std::size_t>(v)] >= psi_inf)
        m.col_match[static_cast<std::size_t>(v)] = kUnmatchable;
      else
        active.push_back(v);
    }
  }
};

}  // namespace

Matching seq_push_relabel(const BipartiteGraph& g, Matching init,
                          const SeqPrOptions& options, SeqPrStats* stats) {
  if (!init.is_valid(g))
    throw std::invalid_argument("seq_push_relabel: invalid initial matching: " +
                                init.first_violation(g));
  SeqPrStats local{};
  if (!stats) stats = &local;

  PrState st(g, std::move(init));
  const index_t psi_inf = st.psi_inf;

  const auto gr_interval = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(options.global_relabel_k *
                                   static_cast<double>(psi_inf)));

  if (options.initial_global_relabel) {
    st.global_relabel();
    ++stats->global_relabels;
  } else {
    st.rebuild_label_counts();
  }
  st.rebuild_active();

  std::int64_t pushes_since_gr = 0;
  while (!st.active.empty()) {
    const index_t v = st.active.front();
    st.active.pop_front();
    if (st.m.col_match[static_cast<std::size_t>(v)] != kUnmatched)
      continue;  // matched meanwhile (re-queued stale entry)

    const index_t psi_v = st.psi_col[static_cast<std::size_t>(v)];
    if (options.gap_relabeling && psi_v > st.gap_threshold) {
      // Unreachable: a label below ψ(v) has no columns, so no alternating
      // path can descend past the gap.
      st.m.col_match[static_cast<std::size_t>(v)] = kUnmatchable;
      st.move_label(v, psi_v, psi_inf, stats);
      ++stats->gap_retired;
      continue;
    }

    // Find u ∈ Γ(v) minimizing ψ(u); ψ(v) − 1 is the infimum, so stop early.
    index_t psi_min = psi_inf;
    index_t u_min = kUnmatched;
    for (index_t u : g.col_neighbors(v)) {
      ++stats->scanned_edges;
      const index_t pu = st.psi_row[static_cast<std::size_t>(u)];
      if (pu < psi_min) {
        psi_min = pu;
        u_min = u;
        if (psi_min == psi_v - 1) break;
      }
    }

    if (psi_min >= psi_inf) {
      st.m.col_match[static_cast<std::size_t>(v)] = kUnmatchable;
      st.move_label(v, psi_v, psi_inf, stats);
      continue;
    }

    // Push: steal u_min from its current match (double push) or take it
    // free (single push).  A matched row never becomes unmatched again.
    const index_t w = st.m.row_match[static_cast<std::size_t>(u_min)];
    if (w != kUnmatched) {
      st.m.col_match[static_cast<std::size_t>(w)] = kUnmatched;
      st.active.push_back(w);
    }
    st.m.row_match[static_cast<std::size_t>(u_min)] = v;
    st.m.col_match[static_cast<std::size_t>(v)] = u_min;
    st.move_label(v, psi_v, psi_min + 1, stats);
    st.psi_row[static_cast<std::size_t>(u_min)] = psi_min + 2;
    ++stats->pushes;
    ++pushes_since_gr;

    if (pushes_since_gr >= gr_interval) {
      pushes_since_gr = 0;
      st.global_relabel();
      ++stats->global_relabels;
      st.rebuild_active();
    }
  }

  // Normalise: expose kUnmatchable columns as plain unmatched.
  for (auto& cm : st.m.col_match)
    if (cm == kUnmatchable) cm = kUnmatched;
  return std::move(st.m);
}

}  // namespace bpm::matching
