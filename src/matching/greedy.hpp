#pragma once

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

/// The "cheap matching" greedy heuristic the paper uses to initialise
/// *every* algorithm before timing begins (Section IV): scan columns in
/// order and match each to its first free neighbor.  O(|E|).
[[nodiscard]] Matching cheap_matching(const BipartiteGraph& g);

/// Karp–Sipser-style heuristic: repeatedly match degree-1 vertices first
/// (their pendant edge is always in some maximum matching), then fall back
/// to an arbitrary edge.  Produces larger initial matchings than
/// `cheap_matching` on sparse graphs; provided for the initialization
/// ablation (bench/ablation_initial_gr) and for library users.
[[nodiscard]] Matching karp_sipser(const BipartiteGraph& g);

}  // namespace bpm::matching
