#include "matching/pothen_fan.hpp"

#include <stdexcept>

#include "matching/detail/augment_dfs.hpp"

namespace bpm::matching {

Matching pothen_fan(const BipartiteGraph& g, Matching init, PfStats* stats) {
  if (!init.is_valid(g))
    throw std::invalid_argument("pothen_fan: invalid initial matching");
  PfStats local{};
  if (!stats) stats = &local;

  Matching m = std::move(init);
  detail::DfsWorkspace ws(g);
  while (true) {
    const index_t augmented = detail::dfs_augment_phase(g, m, ws);
    ++stats->phases;
    stats->augmentations += augmented;
    if (augmented == 0) break;  // no path in a full disjoint phase: maximum
  }
  return m;
}

}  // namespace bpm::matching
