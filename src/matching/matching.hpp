#pragma once

#include <string>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace bpm::matching {

using graph::BipartiteGraph;
using graph::index_t;

/// Sentinel values in the µ arrays, following the paper's convention.
inline constexpr index_t kUnmatched = -1;     ///< µ(x) = −1
inline constexpr index_t kUnmatchable = -2;   ///< µ(v) = −2 (inactive column)

/// A (partial) matching M of a bipartite graph, stored as the paper's µ
/// arrays: `row_match[u]` is the column matched to row u (or −1), and
/// `col_match[v]` the row matched to column v (−1 unmatched, −2 proven
/// unmatchable).
///
/// A *consistent* matching has `row_match[col_match[v]] == v` for every
/// matched column and vice versa.  GPU kernels temporarily violate this on
/// the column side (the paper's benign inconsistencies); `Matching` is the
/// repaired, consistent form handed back to callers.
struct Matching {
  std::vector<index_t> row_match;
  std::vector<index_t> col_match;

  Matching() = default;

  /// An empty matching of the right shape for `g`.
  explicit Matching(const BipartiteGraph& g)
      : row_match(static_cast<std::size_t>(g.num_rows()), kUnmatched),
        col_match(static_cast<std::size_t>(g.num_cols()), kUnmatched) {}

  /// |M|: number of matched pairs.  Rows are authoritative.
  [[nodiscard]] index_t cardinality() const;

  /// True if every matched pair is an edge of `g` and the two µ arrays
  /// mutually agree.  O(|M| log d).
  [[nodiscard]] bool is_valid(const BipartiteGraph& g) const;

  /// Human-readable reason for the first validity violation, or "" if valid.
  [[nodiscard]] std::string first_violation(const BipartiteGraph& g) const;

  /// Adds edge {u, v}; both endpoints must be free.
  void match(index_t u, index_t v);
};

}  // namespace bpm::matching
