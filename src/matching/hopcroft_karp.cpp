#include "matching/hopcroft_karp.hpp"

#include <stdexcept>

#include "matching/detail/hk_phase.hpp"

namespace bpm::matching {

Matching hopcroft_karp(const BipartiteGraph& g, Matching init, HkStats* stats) {
  if (!init.is_valid(g))
    throw std::invalid_argument("hopcroft_karp: invalid initial matching");
  HkStats local{};
  if (!stats) stats = &local;

  Matching m = std::move(init);
  detail::HkWorkspace ws(g);
  index_t augmentations = 0;
  while (detail::hk_phase(g, m, ws, &augmentations)) ++stats->phases;
  stats->augmentations = augmentations;
  return m;
}

}  // namespace bpm::matching
