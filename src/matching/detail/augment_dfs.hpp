#pragma once

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching::detail {

using graph::offset_t;

/// Scratch buffers for repeated DFS augmentation phases.  The lookahead
/// cursors persist across phases: a row, once matched, never becomes
/// unmatched in augmenting-path algorithms, so each adjacency slot needs
/// to be *looked ahead at* at most once over the whole run (amortised
/// O(|E|) total lookahead work — the "PF+" trick).
struct DfsWorkspace {
  std::vector<index_t> row_mark;    ///< phase id of last row visit
  std::vector<offset_t> it;         ///< per-column DFS cursor (reset per phase)
  std::vector<offset_t> lookahead;  ///< per-column lookahead cursor (persistent)
  std::vector<index_t> col_stack;
  std::vector<index_t> row_stack;
  index_t phase_id = 0;

  explicit DfsWorkspace(const BipartiteGraph& g)
      : row_mark(static_cast<std::size_t>(g.num_rows()), -1),
        it(static_cast<std::size_t>(g.num_cols()), 0),
        lookahead(static_cast<std::size_t>(g.num_cols()), 0) {}
};

/// One phase of DFS-with-lookahead augmentation (Pothen–Fan): for every
/// unmatched column, search for an augmenting path along rows not yet
/// visited this phase; paths found within a phase are vertex-disjoint.
/// Returns the number of augmentations applied to `m`.
///
/// This is also the Duff–Wiberg extra pass that HKDW runs after each
/// layered Hopcroft–Karp phase.
inline index_t dfs_augment_phase(const BipartiteGraph& g, Matching& m,
                                 DfsWorkspace& ws) {
  ++ws.phase_id;
  std::fill(ws.it.begin(), ws.it.end(), 0);
  const auto& col_ptr = g.col_ptr();
  const auto& col_adj = g.col_adj();
  index_t augmentations = 0;

  // Lookahead: return an unmatched neighbor row of v, advancing the
  // persistent cursor.  kUnmatched if the remaining slots hold none.
  auto look_ahead = [&](index_t v) {
    const auto vz = static_cast<std::size_t>(v);
    const offset_t deg = col_ptr[vz + 1] - col_ptr[vz];
    while (ws.lookahead[vz] < deg) {
      const index_t u = col_adj[static_cast<std::size_t>(
          col_ptr[vz] + ws.lookahead[vz])];
      ++ws.lookahead[vz];
      if (m.row_match[static_cast<std::size_t>(u)] == kUnmatched) return u;
    }
    return kUnmatched;
  };

  for (index_t start = 0; start < g.num_cols(); ++start) {
    if (m.col_match[static_cast<std::size_t>(start)] != kUnmatched) continue;
    ws.col_stack.assign(1, start);
    ws.row_stack.clear();
    index_t free_row = kUnmatched;

    while (!ws.col_stack.empty() && free_row == kUnmatched) {
      const index_t v = ws.col_stack.back();
      const auto vz = static_cast<std::size_t>(v);

      // Cheap exit: any directly unmatched neighbor ends the path here.
      const index_t direct = look_ahead(v);
      if (direct != kUnmatched &&
          ws.row_mark[static_cast<std::size_t>(direct)] != ws.phase_id) {
        ws.row_mark[static_cast<std::size_t>(direct)] = ws.phase_id;
        free_row = direct;
        break;
      }

      bool descended = false;
      const offset_t deg = col_ptr[vz + 1] - col_ptr[vz];
      while (ws.it[vz] < deg) {
        const index_t u =
            col_adj[static_cast<std::size_t>(col_ptr[vz] + ws.it[vz])];
        ++ws.it[vz];
        const auto uz = static_cast<std::size_t>(u);
        if (ws.row_mark[uz] == ws.phase_id) continue;
        const index_t w = m.row_match[uz];
        if (w == kUnmatched) {
          ws.row_mark[uz] = ws.phase_id;
          free_row = u;
          descended = true;
          break;
        }
        ws.row_mark[uz] = ws.phase_id;
        ws.row_stack.push_back(u);
        ws.col_stack.push_back(w);
        descended = true;
        break;
      }
      if (!descended) {
        ws.col_stack.pop_back();
        if (!ws.row_stack.empty()) ws.row_stack.pop_back();
      }
    }
    if (free_row == kUnmatched) continue;

    index_t carry_row = free_row;
    for (std::size_t i = ws.col_stack.size(); i-- > 0;) {
      const index_t v = ws.col_stack[i];
      m.row_match[static_cast<std::size_t>(carry_row)] = v;
      m.col_match[static_cast<std::size_t>(v)] = carry_row;
      if (i > 0) carry_row = ws.row_stack[i - 1];
    }
    ++augmentations;
  }
  return augmentations;
}

}  // namespace bpm::matching::detail
