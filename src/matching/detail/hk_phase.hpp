#pragma once

#include <deque>
#include <limits>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching::detail {

using graph::offset_t;

/// Scratch buffers for Hopcroft–Karp phases, shared by `hopcroft_karp`
/// and `hkdw`.
struct HkWorkspace {
  std::vector<index_t> dist;      ///< BFS layer per column
  std::vector<index_t> row_mark;  ///< phase id of last row visit
  std::vector<offset_t> it;       ///< per-column DFS cursor
  std::vector<index_t> col_stack;
  std::vector<index_t> row_stack;
  index_t phase_id = 0;

  explicit HkWorkspace(const BipartiteGraph& g)
      : dist(static_cast<std::size_t>(g.num_cols())),
        row_mark(static_cast<std::size_t>(g.num_rows()), -1),
        it(static_cast<std::size_t>(g.num_cols()), 0) {}
};

inline constexpr index_t kHkInf = std::numeric_limits<index_t>::max();

/// One Hopcroft–Karp phase: layer the graph by BFS from unmatched columns
/// (stopping at the first layer that reaches an unmatched row), then
/// augment along a maximal set of vertex-disjoint shortest paths by
/// iterative DFS within the layers.
///
/// Returns false — without touching `m` — when no augmenting path exists,
/// i.e. the matching is maximum (Berge).  Otherwise applies the
/// augmentations, adds their count to `*augmentations`, and returns true.
inline bool hk_phase(const BipartiteGraph& g, Matching& m, HkWorkspace& ws,
                     index_t* augmentations) {
  // ---- BFS ---------------------------------------------------------------
  std::fill(ws.dist.begin(), ws.dist.end(), kHkInf);
  std::deque<index_t> queue;
  for (index_t v = 0; v < g.num_cols(); ++v) {
    if (m.col_match[static_cast<std::size_t>(v)] == kUnmatched) {
      ws.dist[static_cast<std::size_t>(v)] = 0;
      queue.push_back(v);
    }
  }
  index_t found_level = kHkInf;
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop_front();
    const index_t dv = ws.dist[static_cast<std::size_t>(v)];
    if (dv >= found_level) break;  // all shortest paths already layered
    for (index_t u : g.col_neighbors(v)) {
      const index_t w = m.row_match[static_cast<std::size_t>(u)];
      if (w == kUnmatched) {
        found_level = std::min(found_level, dv);
      } else if (ws.dist[static_cast<std::size_t>(w)] == kHkInf) {
        ws.dist[static_cast<std::size_t>(w)] = dv + 1;
        queue.push_back(w);
      }
    }
  }
  if (found_level == kHkInf) return false;

  // ---- Layered DFS ---------------------------------------------------------
  ++ws.phase_id;
  std::fill(ws.it.begin(), ws.it.end(), 0);
  const auto& col_ptr = g.col_ptr();
  const auto& col_adj = g.col_adj();

  for (index_t start = 0; start < g.num_cols(); ++start) {
    if (m.col_match[static_cast<std::size_t>(start)] != kUnmatched) continue;
    ws.col_stack.assign(1, start);
    ws.row_stack.clear();
    index_t free_row = kUnmatched;

    while (!ws.col_stack.empty() && free_row == kUnmatched) {
      const index_t v = ws.col_stack.back();
      const auto vz = static_cast<std::size_t>(v);
      bool descended = false;
      const offset_t deg = col_ptr[vz + 1] - col_ptr[vz];
      while (ws.it[vz] < deg) {
        const index_t u =
            col_adj[static_cast<std::size_t>(col_ptr[vz] + ws.it[vz])];
        ++ws.it[vz];
        const auto uz = static_cast<std::size_t>(u);
        if (ws.row_mark[uz] == ws.phase_id) continue;
        const index_t w = m.row_match[uz];
        if (w == kUnmatched) {
          ws.row_mark[uz] = ws.phase_id;
          free_row = u;
          descended = true;
          break;
        }
        if (ws.dist[static_cast<std::size_t>(w)] ==
            ws.dist[vz] + 1) {
          ws.row_mark[uz] = ws.phase_id;
          ws.row_stack.push_back(u);
          ws.col_stack.push_back(w);
          descended = true;
          break;
        }
      }
      if (!descended) {
        ws.col_stack.pop_back();
        if (!ws.row_stack.empty()) ws.row_stack.pop_back();
      }
    }
    if (free_row == kUnmatched) continue;

    index_t carry_row = free_row;
    for (std::size_t i = ws.col_stack.size(); i-- > 0;) {
      const index_t v = ws.col_stack[i];
      m.row_match[static_cast<std::size_t>(carry_row)] = v;
      m.col_match[static_cast<std::size_t>(v)] = carry_row;
      if (i > 0) carry_row = ws.row_stack[i - 1];
    }
    ++*augmentations;
  }
  return true;
}

}  // namespace bpm::matching::detail
