#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

struct HkdwStats {
  std::int64_t phases = 0;
  std::int64_t hk_augmentations = 0;   ///< paths found by the layered DFS
  std::int64_t dw_augmentations = 0;   ///< paths found by the extra DFS pass
};

/// HKDW: Hopcroft–Karp with the Duff–Wiberg extension.  After each layered
/// phase, an extra *unrestricted* DFS-with-lookahead pass augments from
/// the columns the layered DFS left unmatched, trading extra per-phase
/// work for fewer phases.  Same O(τ√(n+m)) worst case as HK; usually
/// faster in practice — this is the algorithm behind the paper's G-HKDW
/// GPU comparator.
[[nodiscard]] Matching hkdw(const BipartiteGraph& g, Matching init,
                            HkdwStats* stats = nullptr);

}  // namespace bpm::matching
