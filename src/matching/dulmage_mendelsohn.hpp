#pragma once

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

/// The coarse Dulmage–Mendelsohn decomposition — the sparse-direct-solver
/// application the paper's introduction cites ("employed routinely in
/// sparse linear solvers to see if the associated coefficient matrix is
/// reducible; if so, substantial savings … can be achieved").
///
/// Given a maximum matching M of the bipartite row–column graph of a
/// matrix, every vertex falls into exactly one of three blocks:
///
///  * HORIZONTAL (underdetermined): vertices reachable from some
///    *unmatched column* by an M-alternating path;
///  * VERTICAL (overdetermined): vertices reachable from some *unmatched
///    row* by an M-alternating path;
///  * SQUARE (well-determined): everything else — this block carries a
///    perfect matching.
///
/// The two reachable sets are disjoint when M is maximum (an alternating
/// path from an unmatched column to an unmatched row would be augmenting,
/// contradicting maximality); permuting rows and columns by block yields
/// the block-triangular form that solvers exploit.
struct DulmageMendelsohn {
  enum class Block { kHorizontal, kSquare, kVertical };

  std::vector<Block> row_block;
  std::vector<Block> col_block;

  // Block sizes, for convenience.
  graph::index_t horizontal_rows = 0, horizontal_cols = 0;
  graph::index_t square_rows = 0, square_cols = 0;
  graph::index_t vertical_rows = 0, vertical_cols = 0;

  /// True iff the whole matrix is one square block with a perfect
  /// matching (structurally nonsingular and not decomposable by the
  /// coarse DM split).
  [[nodiscard]] bool is_square_only() const {
    return horizontal_rows == 0 && horizontal_cols == 0 &&
           vertical_rows == 0 && vertical_cols == 0;
  }
};

/// Computes the coarse decomposition from a *maximum* matching.
/// Throws `std::invalid_argument` if `m` is invalid; the caller is
/// responsible for maximality (use `is_maximum` / any matcher in this
/// library) — a non-maximum matching yields overlapping reachable sets,
/// which is reported via `std::logic_error`.
[[nodiscard]] DulmageMendelsohn dulmage_mendelsohn(const BipartiteGraph& g,
                                                   const Matching& m);

/// Minimum vertex cover by König's theorem, certified by the matching:
/// |cover| == |M| when M is maximum.  The cover consists of the rows that
/// ARE reachable from unmatched columns by alternating paths, plus the
/// (matched) columns that are NOT.
struct VertexCover {
  std::vector<char> row_in_cover;
  std::vector<char> col_in_cover;

  [[nodiscard]] graph::index_t size() const {
    graph::index_t s = 0;
    for (char c : row_in_cover) s += c;
    for (char c : col_in_cover) s += c;
    return s;
  }
};

[[nodiscard]] VertexCover minimum_vertex_cover(const BipartiteGraph& g,
                                               const Matching& m);

/// The fine Dulmage–Mendelsohn stage: the square (well-determined) block
/// decomposes further into strongly connected components of the digraph
/// whose vertices are the matched (row, column) pairs, with an arc
/// j → k whenever the matrix has a structural entry (row of pair j,
/// column of pair k).  The SCCs are the diagonal blocks of the
/// block-triangular form (BTF) sparse direct solvers factorise
/// independently — this is precisely what the paper's introduction means
/// by checking whether "the associated coefficient matrix is reducible;
/// if so, substantial savings in computational requirements can be
/// achieved".
struct FineDecomposition {
  /// Diagonal-block id per matched pair, in a valid block-triangular
  /// order (every structural entry (j, k) has block[j] >= block[k]).
  /// Indexed by row id; −1 for rows outside the square block.
  std::vector<graph::index_t> block_of_row;
  graph::index_t num_blocks = 0;

  /// True iff the square block is a single SCC — the matrix part is
  /// irreducible and BTF cannot split it.
  [[nodiscard]] bool is_irreducible() const { return num_blocks <= 1; }
};

/// Computes the fine decomposition of the square block.  `m` must be
/// maximum (same contract as `dulmage_mendelsohn`); `dm` must be the
/// coarse decomposition of (g, m).
[[nodiscard]] FineDecomposition fine_decomposition(const BipartiteGraph& g,
                                                   const Matching& m,
                                                   const DulmageMendelsohn& dm);

}  // namespace bpm::matching
