#include "matching/dulmage_mendelsohn.hpp"

#include <deque>
#include <stdexcept>

namespace bpm::matching {

namespace {

using graph::index_t;

/// Marks all vertices reachable from unmatched columns by alternating
/// paths (column → any edge → row → matched edge → column).
void reach_from_unmatched_cols(const BipartiteGraph& g, const Matching& m,
                               std::vector<char>& row_reached,
                               std::vector<char>& col_reached) {
  std::deque<index_t> queue;  // columns
  for (index_t v = 0; v < g.num_cols(); ++v) {
    if (m.col_match[static_cast<std::size_t>(v)] < 0) {
      col_reached[static_cast<std::size_t>(v)] = 1;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop_front();
    for (index_t u : g.col_neighbors(v)) {
      if (row_reached[static_cast<std::size_t>(u)]) continue;
      row_reached[static_cast<std::size_t>(u)] = 1;
      const index_t w = m.row_match[static_cast<std::size_t>(u)];
      if (w >= 0 && !col_reached[static_cast<std::size_t>(w)]) {
        col_reached[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }
}

/// Symmetric: reachable from unmatched rows (row → any edge → column →
/// matched edge → row).
void reach_from_unmatched_rows(const BipartiteGraph& g, const Matching& m,
                               std::vector<char>& row_reached,
                               std::vector<char>& col_reached) {
  std::deque<index_t> queue;  // rows
  for (index_t u = 0; u < g.num_rows(); ++u) {
    if (m.row_match[static_cast<std::size_t>(u)] < 0) {
      row_reached[static_cast<std::size_t>(u)] = 1;
      queue.push_back(u);
    }
  }
  while (!queue.empty()) {
    const index_t u = queue.front();
    queue.pop_front();
    for (index_t v : g.row_neighbors(u)) {
      if (col_reached[static_cast<std::size_t>(v)]) continue;
      col_reached[static_cast<std::size_t>(v)] = 1;
      const index_t w = m.col_match[static_cast<std::size_t>(v)];
      if (w >= 0 && !row_reached[static_cast<std::size_t>(w)]) {
        row_reached[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace

DulmageMendelsohn dulmage_mendelsohn(const BipartiteGraph& g,
                                     const Matching& m) {
  if (!m.is_valid(g))
    throw std::invalid_argument("dulmage_mendelsohn: invalid matching: " +
                                m.first_violation(g));
  const auto nrows = static_cast<std::size_t>(g.num_rows());
  const auto ncols = static_cast<std::size_t>(g.num_cols());

  std::vector<char> h_row(nrows, 0), h_col(ncols, 0);  // from unmatched cols
  std::vector<char> v_row(nrows, 0), v_col(ncols, 0);  // from unmatched rows
  reach_from_unmatched_cols(g, m, h_row, h_col);
  reach_from_unmatched_rows(g, m, v_row, v_col);

  DulmageMendelsohn dm;
  dm.row_block.resize(nrows);
  dm.col_block.resize(ncols);
  for (std::size_t i = 0; i < nrows; ++i) {
    if (h_row[i] && v_row[i])
      throw std::logic_error(
          "dulmage_mendelsohn: alternating reach sets overlap — the given "
          "matching is not maximum (an augmenting path exists)");
    dm.row_block[i] = h_row[i]   ? DulmageMendelsohn::Block::kHorizontal
                      : v_row[i] ? DulmageMendelsohn::Block::kVertical
                                 : DulmageMendelsohn::Block::kSquare;
    switch (dm.row_block[i]) {
      case DulmageMendelsohn::Block::kHorizontal: ++dm.horizontal_rows; break;
      case DulmageMendelsohn::Block::kSquare: ++dm.square_rows; break;
      case DulmageMendelsohn::Block::kVertical: ++dm.vertical_rows; break;
    }
  }
  for (std::size_t j = 0; j < ncols; ++j) {
    if (h_col[j] && v_col[j])
      throw std::logic_error(
          "dulmage_mendelsohn: alternating reach sets overlap — the given "
          "matching is not maximum (an augmenting path exists)");
    dm.col_block[j] = h_col[j]   ? DulmageMendelsohn::Block::kHorizontal
                      : v_col[j] ? DulmageMendelsohn::Block::kVertical
                                 : DulmageMendelsohn::Block::kSquare;
    switch (dm.col_block[j]) {
      case DulmageMendelsohn::Block::kHorizontal: ++dm.horizontal_cols; break;
      case DulmageMendelsohn::Block::kSquare: ++dm.square_cols; break;
      case DulmageMendelsohn::Block::kVertical: ++dm.vertical_cols; break;
    }
  }
  return dm;
}

FineDecomposition fine_decomposition(const BipartiteGraph& g,
                                     const Matching& m,
                                     const DulmageMendelsohn& dm) {
  if (!m.is_valid(g))
    throw std::invalid_argument("fine_decomposition: invalid matching");
  const auto nrows = static_cast<std::size_t>(g.num_rows());

  FineDecomposition fine;
  fine.block_of_row.assign(nrows, -1);

  // Digraph nodes are the square block's matched pairs, identified by
  // their row.  Arc u -> u' whenever (u, col of pair u') is an entry,
  // i.e. for every v in Γ(u) in the square block, u -> col_match[v].
  // Iterative Tarjan SCC; components are emitted in reverse topological
  // order, which is exactly a valid block-triangular numbering.
  std::vector<index_t> order_index(nrows, -1);  // Tarjan index
  std::vector<index_t> low_link(nrows, 0);
  std::vector<char> on_stack(nrows, 0);
  std::vector<index_t> scc_stack;
  index_t next_index = 0;

  struct Frame {
    index_t u;
    std::size_t next_neighbor;
  };
  std::vector<Frame> dfs;

  auto is_square_row = [&](index_t u) {
    return dm.row_block[static_cast<std::size_t>(u)] ==
               DulmageMendelsohn::Block::kSquare &&
           m.row_match[static_cast<std::size_t>(u)] >= 0;
  };
  auto arc_target = [&](index_t u, std::size_t slot) -> index_t {
    // The slot-th neighbor of u if it stays inside the square block, or
    // -1 for columns outside it (square rows can touch vertical-block
    // columns; those arcs leave the BTF region and are dropped).
    const index_t v = g.row_neighbors(u)[slot];
    if (dm.col_block[static_cast<std::size_t>(v)] !=
        DulmageMendelsohn::Block::kSquare)
      return -1;
    return m.col_match[static_cast<std::size_t>(v)];
  };

  for (index_t root = 0; root < g.num_rows(); ++root) {
    if (!is_square_row(root) ||
        order_index[static_cast<std::size_t>(root)] != -1)
      continue;
    dfs.push_back({root, 0});
    order_index[static_cast<std::size_t>(root)] = next_index;
    low_link[static_cast<std::size_t>(root)] = next_index;
    ++next_index;
    scc_stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const auto uz = static_cast<std::size_t>(frame.u);
      const auto degree = g.row_neighbors(frame.u).size();
      bool descended = false;
      while (frame.next_neighbor < degree) {
        const index_t w = arc_target(frame.u, frame.next_neighbor);
        ++frame.next_neighbor;
        if (w < 0) continue;
        const auto wz = static_cast<std::size_t>(w);
        if (order_index[wz] == -1) {
          order_index[wz] = next_index;
          low_link[wz] = next_index;
          ++next_index;
          scc_stack.push_back(w);
          on_stack[wz] = 1;
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wz])
          low_link[uz] = std::min(low_link[uz], order_index[wz]);
      }
      if (descended) continue;

      if (low_link[uz] == order_index[uz]) {
        // frame.u roots an SCC: pop it as the next diagonal block.
        while (true) {
          const index_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          fine.block_of_row[static_cast<std::size_t>(w)] = fine.num_blocks;
          if (w == frame.u) break;
        }
        ++fine.num_blocks;
      }
      const index_t u_low = low_link[uz];
      dfs.pop_back();
      if (!dfs.empty()) {
        const auto pz = static_cast<std::size_t>(dfs.back().u);
        low_link[pz] = std::min(low_link[pz], u_low);
      }
    }
  }
  return fine;
}

VertexCover minimum_vertex_cover(const BipartiteGraph& g, const Matching& m) {
  if (!m.is_valid(g))
    throw std::invalid_argument("minimum_vertex_cover: invalid matching");
  const auto nrows = static_cast<std::size_t>(g.num_rows());
  const auto ncols = static_cast<std::size_t>(g.num_cols());

  // König with columns as the "free" side: Z = vertices reachable from
  // unmatched columns by alternating paths; the cover is
  // (rows ∩ Z) ∪ (columns \ Z).  Every column outside Z is matched (all
  // unmatched columns are Z sources), and |cover| = |M|.
  std::vector<char> row_reached(nrows, 0), col_reached(ncols, 0);
  reach_from_unmatched_cols(g, m, row_reached, col_reached);

  VertexCover cover;
  cover.row_in_cover.assign(nrows, 0);
  cover.col_in_cover.assign(ncols, 0);
  for (std::size_t i = 0; i < nrows; ++i)
    cover.row_in_cover[i] = row_reached[i] ? 1 : 0;
  for (std::size_t j = 0; j < ncols; ++j) {
    const index_t u = m.col_match[j];
    cover.col_in_cover[j] = (u >= 0 && !col_reached[j]) ? 1 : 0;
  }
  return cover;
}

}  // namespace bpm::matching
