#include "matching/matching.hpp"

#include <sstream>
#include <stdexcept>

namespace bpm::matching {

index_t Matching::cardinality() const {
  index_t count = 0;
  for (index_t v : row_match)
    if (v >= 0) ++count;
  return count;
}

bool Matching::is_valid(const BipartiteGraph& g) const {
  return first_violation(g).empty();
}

std::string Matching::first_violation(const BipartiteGraph& g) const {
  std::ostringstream os;
  if (row_match.size() != static_cast<std::size_t>(g.num_rows()) ||
      col_match.size() != static_cast<std::size_t>(g.num_cols())) {
    os << "shape mismatch: " << row_match.size() << "x" << col_match.size()
       << " vs graph " << g.num_rows() << "x" << g.num_cols();
    return os.str();
  }
  for (index_t u = 0; u < g.num_rows(); ++u) {
    const index_t v = row_match[static_cast<std::size_t>(u)];
    if (v == kUnmatched) continue;
    if (v < 0 || v >= g.num_cols()) {
      os << "row " << u << " matched to out-of-range column " << v;
      return os.str();
    }
    if (col_match[static_cast<std::size_t>(v)] != u) {
      os << "row " << u << " claims column " << v << " but column claims "
         << col_match[static_cast<std::size_t>(v)];
      return os.str();
    }
    if (!g.has_edge(u, v)) {
      os << "matched pair (" << u << ", " << v << ") is not an edge";
      return os.str();
    }
  }
  for (index_t v = 0; v < g.num_cols(); ++v) {
    const index_t u = col_match[static_cast<std::size_t>(v)];
    if (u == kUnmatched || u == kUnmatchable) continue;
    if (u < 0 || u >= g.num_rows()) {
      os << "column " << v << " matched to out-of-range row " << u;
      return os.str();
    }
    if (row_match[static_cast<std::size_t>(u)] != v) {
      os << "column " << v << " claims row " << u << " but row claims "
         << row_match[static_cast<std::size_t>(u)];
      return os.str();
    }
  }
  return {};
}

void Matching::match(index_t u, index_t v) {
  if (row_match[static_cast<std::size_t>(u)] != kUnmatched ||
      col_match[static_cast<std::size_t>(v)] != kUnmatched)
    throw std::logic_error("Matching::match: endpoint already matched");
  row_match[static_cast<std::size_t>(u)] = v;
  col_match[static_cast<std::size_t>(v)] = u;
}

}  // namespace bpm::matching
