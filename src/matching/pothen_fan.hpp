#pragma once

#include <cstdint>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

struct PfStats {
  std::int64_t phases = 0;
  std::int64_t augmentations = 0;
};

/// Pothen–Fan with lookahead ("PF+"): repeated phases of vertex-disjoint
/// DFS augmentation, where each column first probes its remaining
/// adjacency for a directly-unmatched row before descending (amortised
/// O(|E|) lookahead over the whole run).  One of the three sequential
/// algorithms the paper uses to filter its instance set ("graphs where all
/// sequential algorithms finish under one second are dropped").
[[nodiscard]] Matching pothen_fan(const BipartiteGraph& g, Matching init,
                                  PfStats* stats = nullptr);

}  // namespace bpm::matching
