#pragma once

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace bpm::matching {

/// Independent maximality certificate, used by every algorithm test.
///
/// By Berge's theorem (the paper's Theorem 1), M is maximum iff no
/// M-augmenting path exists.  `is_maximum` runs one BFS over alternating
/// paths from all unmatched columns; if it reaches an unmatched row, M is
/// not maximum.  O(m + n + |E|) — cheap enough to run after every
/// experiment, and entirely separate from the algorithms under test.
[[nodiscard]] bool is_maximum(const BipartiteGraph& g, const Matching& m);

/// Cardinality of a maximum matching, computed by an internal
/// Hopcroft–Karp-style reference (repeated disjoint augmentation).  Used
/// by tests as ground truth; intentionally written independently from
/// `matching/hopcroft_karp.cpp` (simple BFS+single augment, no phases) so
/// the reference and the production code cannot share a bug.
[[nodiscard]] index_t reference_maximum_cardinality(const BipartiteGraph& g);

/// Deficiency of M: max-cardinality minus |M| (paper Theorem 2 counts this
/// many vertex-disjoint augmenting paths).
[[nodiscard]] index_t deficiency(const BipartiteGraph& g, const Matching& m);

}  // namespace bpm::matching
