#include "matching/hkdw.hpp"

#include <stdexcept>

#include "matching/detail/augment_dfs.hpp"
#include "matching/detail/hk_phase.hpp"

namespace bpm::matching {

Matching hkdw(const BipartiteGraph& g, Matching init, HkdwStats* stats) {
  if (!init.is_valid(g))
    throw std::invalid_argument("hkdw: invalid initial matching");
  HkdwStats local{};
  if (!stats) stats = &local;

  Matching m = std::move(init);
  detail::HkWorkspace hk_ws(g);
  detail::DfsWorkspace dfs_ws(g);
  while (true) {
    index_t hk_augmented = 0;
    if (!detail::hk_phase(g, m, hk_ws, &hk_augmented)) break;
    ++stats->phases;
    stats->hk_augmentations += hk_augmented;
    // Duff–Wiberg: sweep up longer paths before paying for another BFS.
    stats->dw_augmentations += detail::dfs_augment_phase(g, m, dfs_ws);
  }
  return m;
}

}  // namespace bpm::matching
