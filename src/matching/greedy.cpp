#include "matching/greedy.hpp"

#include <deque>
#include <vector>

namespace bpm::matching {

Matching cheap_matching(const BipartiteGraph& g) {
  Matching m(g);
  for (index_t v = 0; v < g.num_cols(); ++v) {
    for (index_t u : g.col_neighbors(v)) {
      if (m.row_match[static_cast<std::size_t>(u)] == kUnmatched) {
        m.row_match[static_cast<std::size_t>(u)] = v;
        m.col_match[static_cast<std::size_t>(v)] = u;
        break;
      }
    }
  }
  return m;
}

Matching karp_sipser(const BipartiteGraph& g) {
  Matching m(g);
  const auto nrows = static_cast<std::size_t>(g.num_rows());
  const auto ncols = static_cast<std::size_t>(g.num_cols());

  // Residual degrees; a vertex leaves the pool when matched.
  std::vector<index_t> row_deg(nrows), col_deg(ncols);
  for (index_t u = 0; u < g.num_rows(); ++u)
    row_deg[static_cast<std::size_t>(u)] = g.row_degree(u);
  for (index_t v = 0; v < g.num_cols(); ++v)
    col_deg[static_cast<std::size_t>(v)] = g.col_degree(v);

  // Queue of degree-1 vertices; rows encoded as u, columns as nrows+v.
  std::deque<index_t> pendant;
  for (index_t u = 0; u < g.num_rows(); ++u)
    if (row_deg[static_cast<std::size_t>(u)] == 1) pendant.push_back(u);
  for (index_t v = 0; v < g.num_cols(); ++v)
    if (col_deg[static_cast<std::size_t>(v)] == 1)
      pendant.push_back(g.num_rows() + v);

  auto matched_row = [&](index_t u) {
    return m.row_match[static_cast<std::size_t>(u)] != kUnmatched;
  };
  auto matched_col = [&](index_t v) {
    return m.col_match[static_cast<std::size_t>(v)] != kUnmatched;
  };

  auto take_edge = [&](index_t u, index_t v) {
    m.row_match[static_cast<std::size_t>(u)] = v;
    m.col_match[static_cast<std::size_t>(v)] = u;
    for (index_t w : g.row_neighbors(u)) {
      if (--col_deg[static_cast<std::size_t>(w)] == 1 && !matched_col(w))
        pendant.push_back(g.num_rows() + w);
    }
    for (index_t w : g.col_neighbors(v)) {
      if (--row_deg[static_cast<std::size_t>(w)] == 1 && !matched_row(w))
        pendant.push_back(w);
    }
  };

  auto drain_pendants = [&] {
    while (!pendant.empty()) {
      const index_t x = pendant.front();
      pendant.pop_front();
      if (x < g.num_rows()) {
        const index_t u = x;
        if (matched_row(u)) continue;
        for (index_t v : g.row_neighbors(u)) {
          if (!matched_col(v)) {
            take_edge(u, v);
            break;
          }
        }
      } else {
        const index_t v = x - g.num_rows();
        if (matched_col(v)) continue;
        for (index_t u : g.col_neighbors(v)) {
          if (!matched_row(u)) {
            take_edge(u, v);
            break;
          }
        }
      }
    }
  };

  drain_pendants();
  // Phase 2: arbitrary edges, re-draining pendants after each pick.
  for (index_t v = 0; v < g.num_cols(); ++v) {
    if (matched_col(v)) continue;
    for (index_t u : g.col_neighbors(v)) {
      if (!matched_row(u)) {
        take_edge(u, v);
        drain_pendants();
        break;
      }
    }
  }
  return m;
}

}  // namespace bpm::matching
