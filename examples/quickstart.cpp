// Quickstart: build a small bipartite graph, run the GPU push-relabel
// matcher through the solver registry, and print the matching.
//
//   $ ./quickstart
//
// This walks through the full public API surface in ~60 lines:
// graph construction, greedy initialisation, registry-dispatched solving,
// and independent verification.

#include <iostream>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/builder.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

int main() {
  using namespace bpm;

  // A tiny assignment problem: 4 rows (say, workers) x 4 columns (tasks).
  // Task 3 is only doable by worker 0, who is also the only one for task 0
  // — so a greedy pass can trap itself and an augmenting algorithm is
  // needed to reach the maximum.
  const graph::index_t num_rows = 4, num_cols = 4;
  const std::vector<graph::Edge> edges = {
      {0, 0}, {0, 3}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2},
  };
  const graph::BipartiteGraph g = graph::build_from_edges(num_rows, num_cols, edges);
  std::cout << "graph: " << g.describe() << "\n";

  // Every matcher in this library starts from an explicit initial matching;
  // the paper uses the "cheap" greedy heuristic.
  const matching::Matching init = matching::cheap_matching(g);
  std::cout << "greedy initial matching: " << init.cardinality() << " pairs\n";

  // Every algorithm is a named entry in the solver registry; "g-pr-shr" is
  // G-PR with the paper's best configuration (active-list variant with
  // shrinking, (adaptive, 0.7) global relabeling).
  std::cout << "registered solvers: "
            << SolverRegistry::instance().names_csv() << "\n";

  // The device is the CUDA-style execution engine (concurrent by default);
  // the context hands it to whichever solver needs one.
  device::Device dev;
  const SolveContext ctx{.device = &dev};
  const SolveResult result = solve("g-pr-shr", ctx, g, init);

  std::cout << "maximum matching: " << result.matching.cardinality()
            << " pairs\n";
  for (graph::index_t u = 0; u < num_rows; ++u) {
    const graph::index_t v = result.matching.row_match[static_cast<std::size_t>(u)];
    if (v != matching::kUnmatched)
      std::cout << "  row " << u << "  <->  col " << v << "\n";
  }

  std::cout << "wall " << result.stats.wall_ms << " ms, modeled device "
            << result.stats.modeled_ms << " ms, "
            << result.stats.device_launches << " kernel launches ("
            << result.stats.detail << ")\n";

  // Independent certificate: no augmenting path exists (Berge's theorem).
  const bool maximum = matching::is_maximum(g, result.matching);
  std::cout << "verified maximum: " << (maximum ? "yes" : "NO") << "\n";
  return maximum ? 0 : 1;
}
