// Structural analysis of a sparse matrix via maximum bipartite matching —
// the sparse-direct-solver use case from the paper's introduction:
// "maximum cardinality bipartite matching is employed routinely in sparse
// linear solvers to see if the associated coefficient matrix is reducible".
//
// A maximum matching of the bipartite row-column graph gives:
//   * the structural (sprank) rank of the matrix;
//   * structural nonsingularity (sprank == n): a permutation to a
//     zero-free diagonal exists, the precondition for LU-style
//     factorisations and for the Dulmage–Mendelsohn decomposition;
//   * the column permutation itself, printed on request.
//
// Usage:
//   sparse_matrix_analysis [matrix.mtx] [solver-spec]
//
// Without an argument a demonstration matrix (a structurally singular
// arrowhead variant) is analysed.  The matching comes from any registered
// solver (default g-pr-shr) through the uniform `SolverRegistry` seam —
// this example needs the matching itself (for the permutation and the
// Dulmage–Mendelsohn decomposition), so it uses `SolverSpec`/`solve`
// rather than the batched pipeline.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/builder.hpp"
#include "graph/matrix_market.hpp"
#include "matching/dulmage_mendelsohn.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace {

bpm::graph::BipartiteGraph demo_matrix() {
  // A 6x6 "broken arrowhead": rows 4 and 5 have entries only in column 0,
  // and columns 4 and 5 only in row 0.  Any diagonal assignment can use
  // column 0 for one of rows {4, 5} and row 0 for one of columns {4, 5},
  // so the structural rank is 5 — no zero-free diagonal exists.
  std::vector<bpm::graph::Edge> entries;
  for (bpm::graph::index_t i = 0; i < 6; ++i) {
    entries.push_back({0, i});
    entries.push_back({i, 0});
  }
  for (bpm::graph::index_t i = 1; i <= 3; ++i) entries.push_back({i, i});
  return bpm::graph::build_from_edges(6, 6, entries);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace bpm;

  // "-" (or an empty path) selects the demo matrix, so a solver spec can
  // be passed without a file: sparse_matrix_analysis - hk
  graph::BipartiteGraph g;
  if (argc > 1 && argv[1][0] != '\0' && std::string(argv[1]) != "-") {
    std::cout << "reading " << argv[1] << "\n";
    g = graph::read_matrix_market_file(argv[1]);
  } else {
    std::cout << "no file given; using the built-in demonstration matrix\n";
    g = demo_matrix();
  }
  std::cout << "matrix: " << g.describe() << "\n";

  // Any *exact* registry solver works (sprank is the maximum cardinality,
  // so a heuristic's under-estimate would print false singularity claims).
  const SolverSpec spec =
      SolverSpec::parse(argc > 2 ? argv[2] : "g-pr-shr");
  const auto solver = spec.instantiate();
  if (!solver->caps().exact) {
    std::cerr << "error: '" << spec.canonical()
              << "' is a heuristic (inexact); the structural rank needs an "
                 "exact solver\n";
    return 1;
  }
  device::Device dev;
  const SolveContext ctx{.device = &dev};
  const matching::Matching init = matching::cheap_matching(g);
  const SolveResult result = solver->run(ctx, g, init);
  const graph::index_t sprank = result.matching.cardinality();
  std::cout << "solver: " << spec.canonical() << "\n";

  const graph::index_t n = std::min(g.num_rows(), g.num_cols());
  std::cout << "structural rank (sprank): " << sprank << " of " << n << "\n";
  if (g.num_rows() == g.num_cols() && sprank == g.num_rows()) {
    std::cout << "matrix is structurally NONSINGULAR: a row permutation "
                 "yields a zero-free diagonal.\n";
  } else {
    std::cout << "matrix is structurally singular or rectangular; "
              << (n - sprank)
              << " diagonal entries cannot be made nonzero.\n";
  }

  // The permutation: row u takes the slot of its matched column, giving
  // A(perm, :) a zero-free diagonal on the matched block.
  if (g.num_rows() <= 32) {
    std::cout << "row -> column assignment:\n";
    for (graph::index_t u = 0; u < g.num_rows(); ++u) {
      const graph::index_t v =
          result.matching.row_match[static_cast<std::size_t>(u)];
      std::cout << "  row " << u << " -> "
                << (v == matching::kUnmatched ? std::string("(unmatched)")
                                              : "col " + std::to_string(v))
                << "\n";
    }
  }

  if (!matching::is_maximum(g, result.matching)) {
    std::cerr << "internal error: certificate says matching is not maximum\n";
    return 1;
  }
  std::cout << "certificate: no augmenting path exists (Berge) — sprank is "
               "exact.\n";

  // Dulmage-Mendelsohn: the reducibility analysis the paper's intro
  // motivates.  Coarse: under/over-determined parts.  Fine: the diagonal
  // blocks of the block-triangular form a direct solver factorises
  // independently.
  const auto dm = matching::dulmage_mendelsohn(g, result.matching);
  std::cout << "\nDulmage-Mendelsohn coarse decomposition:\n"
            << "  underdetermined (horizontal): " << dm.horizontal_rows
            << " rows x " << dm.horizontal_cols << " cols\n"
            << "  well-determined (square):     " << dm.square_rows
            << " rows x " << dm.square_cols << " cols\n"
            << "  overdetermined (vertical):    " << dm.vertical_rows
            << " rows x " << dm.vertical_cols << " cols\n";
  const auto fine = matching::fine_decomposition(g, result.matching, dm);
  if (dm.square_rows > 0) {
    std::cout << "block-triangular form of the square part: "
              << fine.num_blocks << " diagonal block(s) — the matrix is "
              << (fine.is_irreducible()
                      ? "IRREDUCIBLE (no savings from BTF)"
                      : "REDUCIBLE (factor each block independently)")
              << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
