// mtx_matcher — the production command line tool: compute a maximum
// cardinality matching of a Matrix Market file (or a named synthetic
// instance) with any solver — or set of solvers — in the registry, via
// the batched matching pipeline.
//
//   mtx_matcher --algo g-pr-shr matrix.mtx
//   mtx_matcher --instance kron_g500-logn20 --scale 0.01 --algo seq-pr
//   mtx_matcher --algo g-pr-shr,hk,p-dbfs --init karp-sipser matrix.mtx
//
// Prints per-solver cardinality, timing and algorithm statistics; every
// result is verified (edge-validity plus maximality against a reference).

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/solver.hpp"
#include "graph/instances.hpp"
#include "graph/matrix_market.hpp"
#include "matching/greedy.hpp"
#include "util/cli.hpp"

namespace {

using namespace bpm;

graph::BipartiteGraph load_graph(const CliParser& cli) {
  const std::string instance = cli.get_string("instance");
  if (!instance.empty()) {
    for (const auto& inst : graph::paper_instances())
      if (inst.name == instance)
        return inst.build(cli.get_double("scale"),
                          static_cast<std::uint64_t>(cli.get_int("seed")));
    throw std::invalid_argument("unknown instance '" + instance +
                                "' (see graph/instances.cpp for names)");
  }
  if (cli.positional().empty())
    throw std::invalid_argument(
        "need a .mtx file or --instance <name>; try --help");
  return graph::read_matrix_market_file(cli.positional().front());
}

PipelineOptions pipeline_options(const CliParser& cli) {
  PipelineOptions opt;
  opt.device_backend = device::parse_backend(cli.get_string("backend"));
  opt.device_threads = static_cast<unsigned>(cli.get_int("threads"));
  opt.solver_threads = opt.device_threads;
  opt.max_concurrent_jobs = static_cast<unsigned>(cli.get_int("jobs"));
  const std::string init = cli.get_string("init");
  if (init == "cheap") {
    // Default init_builder.
  } else if (init == "karp-sipser") {
    opt.init_builder = matching::karp_sipser;
  } else if (init == "none") {
    opt.share_init = false;
  } else {
    throw std::invalid_argument("unknown --init '" + init +
                                "' (cheap | karp-sipser | none)");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("mtx_matcher",
                "maximum cardinality bipartite matching of a MatrixMarket "
                "file or synthetic instance");
  add_algo_flag(cli, "g-pr-shr");
  cli.add_option("init", "initial matching: cheap | karp-sipser | none",
                 "cheap");
  cli.add_option("instance", "synthetic Table I instance name instead of a file",
                 "");
  cli.add_option("scale", "scale for --instance", "0.015625");
  cli.add_option("seed", "seed for --instance", "1");
  cli.add_option("threads", "device/multicore threads (0 = hardware)", "0");
  cli.add_option("backend",
                 "device backend: sim (modeled C2050) | host (real "
                 "multicore executor)",
                 "sim");
  cli.add_option("jobs", "concurrent (instance x solver) jobs, one device "
                 "stream each (0 = hardware)", "0");
  cli.add_option("k",
                 "global-relabel frequency parameter (empty = each solver's "
                 "own default)",
                 "");
  cli.add_flag("quiet", "print only the cardinality");

  try {
    cli.parse(argc, argv);
    exit_if_list_algos(cli);
    const bool quiet = cli.get_flag("quiet");
    const std::vector<SolverSpec> specs = solver_specs_from_cli(cli);

    MatchingPipeline pipeline(pipeline_options(cli));
    const std::string name = cli.positional().empty()
                                 ? cli.get_string("instance")
                                 : cli.positional().front();
    pipeline.add_instance(name, load_graph(cli));
    const PipelineInstance& inst = pipeline.instances().front();
    if (!quiet)
      std::cout << "graph: " << inst.graph.describe() << "\n"
                << "initial matching (" << cli.get_string("init")
                << "): " << inst.initial_cardinality << "\n";

    // An explicit --k applies to every selected solver that understands it
    // (set_option returns false on the rest); left empty, each solver
    // keeps its own spec or paper-tuned default.  Per-solver tuning goes
    // in the spec itself: --algo g-pr-shr:k=1.5,hk.
    std::vector<std::unique_ptr<Solver>> solvers;
    for (const SolverSpec& spec : specs) {
      solvers.push_back(spec.instantiate());
      if (!cli.get_string("k").empty())
        solvers.back()->set_option("k", cli.get_string("k"));
    }
    const PipelineReport report = pipeline.run_with(solvers);

    for (const PipelineJob& job : report.jobs) {
      if (quiet) {
        std::cout << job.stats.cardinality << "\n";
        continue;
      }
      std::cout << job.solver << ": " << job.stats.cardinality;
      if (job.cached)
        std::cout << " (cached)";
      else
        std::cout << " in " << job.stats.wall_ms << " ms";
      if (job.stats.modeled_ms > 0.0)
        std::cout << " (modeled " << job.stats.modeled_ms
                  << " ms on a C2050-class GPU)";
      std::cout << "\n";
      if (!job.stats.detail.empty())
        std::cout << "  stats: " << job.stats.detail << "\n";
      if (!job.ok) std::cout << "  FAILED: " << job.error << "\n";
    }

    if (!report.all_ok()) {
      std::cerr << "VERIFICATION FAILED (" << report.totals.failed << " of "
                << report.totals.jobs << " jobs)\n";
      return 2;
    }
    if (!quiet) {
      // batch_wall_ms is the caller's wait; wall_ms sums the per-job
      // solver costs — with concurrent jobs or cache hits they differ.
      std::cout << "verified: " << report.totals.jobs
                << " job(s) valid and maximum (Berge/reference)\n"
                << "batch: " << report.totals.batch_wall_ms << " ms wall ("
                << report.totals.wall_ms << " ms of solver time, "
                << report.totals.cache_hits << " cache hit(s))\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
