// mtx_matcher — the production command line tool: compute a maximum
// cardinality matching of a Matrix Market file (or a named synthetic
// instance) with any algorithm in the library.
//
//   mtx_matcher --algorithm g-pr matrix.mtx
//   mtx_matcher --instance kron_g500-logn20 --scale 0.01 --algorithm pr
//   mtx_matcher --algorithm g-pr-first --init karp-sipser matrix.mtx
//
// Prints the matching cardinality, timing, algorithm-specific statistics,
// and verifies the result with the independent Berge certificate.

#include <iostream>
#include <string>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "device/device.hpp"
#include "graph/instances.hpp"
#include "graph/matrix_market.hpp"
#include "matching/greedy.hpp"
#include "matching/hkdw.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/seq_pr.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace bpm;

graph::BipartiteGraph load_graph(const CliParser& cli) {
  const std::string instance = cli.get_string("instance");
  if (!instance.empty()) {
    for (const auto& inst : graph::paper_instances())
      if (inst.name == instance)
        return inst.build(cli.get_double("scale"),
                          static_cast<std::uint64_t>(cli.get_int("seed")));
    throw std::invalid_argument("unknown instance '" + instance +
                                "' (see graph/instances.cpp for names)");
  }
  if (cli.positional().empty())
    throw std::invalid_argument(
        "need a .mtx file or --instance <name>; try --help");
  return graph::read_matrix_market_file(cli.positional().front());
}

matching::Matching initial_matching(const CliParser& cli,
                                    const graph::BipartiteGraph& g) {
  const std::string init = cli.get_string("init");
  if (init == "cheap") return matching::cheap_matching(g);
  if (init == "karp-sipser") return matching::karp_sipser(g);
  if (init == "none") return matching::Matching(g);
  throw std::invalid_argument("unknown --init '" + init +
                              "' (cheap | karp-sipser | none)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("mtx_matcher",
                "maximum cardinality bipartite matching of a MatrixMarket "
                "file or synthetic instance");
  cli.add_option("algorithm",
                 "g-pr | g-pr-noshr | g-pr-first | g-hk | g-hkdw | p-dbfs | "
                 "pr | hk | hkdw | pf",
                 "g-pr");
  cli.add_option("init", "initial matching: cheap | karp-sipser | none",
                 "cheap");
  cli.add_option("instance", "synthetic Table I instance name instead of a file",
                 "");
  cli.add_option("scale", "scale for --instance", "0.015625");
  cli.add_option("seed", "seed for --instance", "1");
  cli.add_option("threads", "device/multicore threads (0 = hardware)", "0");
  cli.add_option("k", "global-relabel frequency parameter", "0.7");
  cli.add_flag("quiet", "print only the cardinality");

  try {
    cli.parse(argc, argv);
    const graph::BipartiteGraph g = load_graph(cli);
    const bool quiet = cli.get_flag("quiet");
    if (!quiet) std::cout << "graph: " << g.describe() << "\n";

    Timer init_timer;
    const matching::Matching init = initial_matching(cli, g);
    if (!quiet)
      std::cout << "initial matching (" << cli.get_string("init")
                << "): " << init.cardinality() << " in "
                << init_timer.elapsed_ms() << " ms\n";

    const std::string algo = cli.get_string("algorithm");
    const auto threads = static_cast<unsigned>(cli.get_int("threads"));
    device::Device dev({.mode = device::ExecMode::kConcurrent,
                        .num_threads = threads});

    Timer timer;
    matching::Matching m;
    std::string extra;
    if (algo == "g-pr" || algo == "g-pr-noshr" || algo == "g-pr-first") {
      gpu::GprOptions opt;
      opt.k = cli.get_double("k");
      opt.variant = algo == "g-pr"         ? gpu::GprVariant::kShrink
                    : algo == "g-pr-noshr" ? gpu::GprVariant::kNoShrink
                                           : gpu::GprVariant::kFirst;
      auto r = gpu::g_pr(dev, g, init, opt);
      m = std::move(r.matching);
      extra = std::to_string(r.stats.loops) + " loops, " +
              std::to_string(r.stats.global_relabels) + " global relabels, " +
              std::to_string(r.stats.device_launches) + " launches, modeled " +
              std::to_string(r.stats.modeled_ms) + " ms on a C2050-class GPU";
    } else if (algo == "g-hk" || algo == "g-hkdw") {
      auto r = gpu::g_hk(dev, g, init, {.duff_wiberg = algo == "g-hkdw"});
      m = std::move(r.matching);
      extra = std::to_string(r.stats.phases) + " phases, " +
              std::to_string(r.stats.bfs_level_kernels) + " BFS kernels";
    } else if (algo == "p-dbfs") {
      auto r = mc::p_dbfs(g, init, {.num_threads = threads});
      m = std::move(r.matching);
      extra = std::to_string(r.stats.rounds) + " rounds, " +
              std::to_string(r.stats.blocked_searches) + " blocked searches";
    } else if (algo == "pr") {
      matching::SeqPrStats stats;
      m = matching::seq_push_relabel(g, init, {}, &stats);
      extra = std::to_string(stats.pushes) + " pushes, " +
              std::to_string(stats.global_relabels) + " global relabels, " +
              std::to_string(stats.gap_retired) + " gap-retired";
    } else if (algo == "hk") {
      matching::HkStats stats;
      m = matching::hopcroft_karp(g, init, &stats);
      extra = std::to_string(stats.phases) + " phases";
    } else if (algo == "hkdw") {
      matching::HkdwStats stats;
      m = matching::hkdw(g, init, &stats);
      extra = std::to_string(stats.phases) + " phases";
    } else if (algo == "pf") {
      matching::PfStats stats;
      m = matching::pothen_fan(g, init, &stats);
      extra = std::to_string(stats.phases) + " phases";
    } else {
      throw std::invalid_argument("unknown --algorithm '" + algo + "'");
    }
    const double ms = timer.elapsed_ms();

    if (quiet) {
      std::cout << m.cardinality() << "\n";
    } else {
      std::cout << "maximum matching: " << m.cardinality() << " in " << ms
                << " ms (" << algo << ")\n";
      if (!extra.empty()) std::cout << "stats: " << extra << "\n";
    }
    if (!m.is_valid(g) || !matching::is_maximum(g, m)) {
      std::cerr << "VERIFICATION FAILED\n";
      return 2;
    }
    if (!quiet) std::cout << "verified: valid and maximum (Berge)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
