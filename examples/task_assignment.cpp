// Task assignment — the scheduling application from the paper's
// introduction.  A compute cluster has machines with capability tags and a
// queue of jobs, each runnable only on machines holding its tag.  Maximum
// cardinality matching assigns as many jobs as possible to distinct
// machines; the example also shows how far plain greedy assignment falls
// short of the optimum found by the push-relabel matcher.
//
// Usage:
//   task_assignment [num_machines] [num_jobs] [seed]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/g_pr.hpp"
#include "device/device.hpp"
#include "graph/builder.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace bpm;

  const graph::index_t num_machines =
      argc > 1 ? static_cast<graph::index_t>(std::atoi(argv[1])) : 2000;
  const graph::index_t num_jobs =
      argc > 2 ? static_cast<graph::index_t>(std::atoi(argv[2])) : 2400;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  // Capabilities: a few common tags plus a long tail of rare ones —
  // queues look Zipfian in practice, which is exactly where greedy
  // assignment traps itself.
  constexpr int kTags = 24;
  Rng rng(seed);
  std::vector<std::vector<graph::index_t>> machines_with_tag(kTags);
  for (graph::index_t m = 0; m < num_machines; ++m) {
    const int ntags = 1 + static_cast<int>(rng.below(3));
    for (int t = 0; t < ntags; ++t) {
      const auto tag = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(kTags)));
      machines_with_tag[tag].push_back(m);
    }
  }
  std::vector<graph::Edge> eligible;
  for (graph::index_t j = 0; j < num_jobs; ++j) {
    // Zipf-ish tag choice: tag k with weight ~ 1/(k+1).
    std::size_t tag = 0;
    double mass = rng.uniform() * 3.8;  // ~ H(24)
    while (tag + 1 < kTags && (mass -= 1.0 / static_cast<double>(tag + 1)) > 0)
      ++tag;
    for (graph::index_t m : machines_with_tag[tag])
      eligible.push_back({m, j});
  }

  const graph::BipartiteGraph g =
      graph::build_from_edges(num_machines, num_jobs, eligible);
  std::cout << "cluster: " << num_machines << " machines, " << num_jobs
            << " jobs, " << g.num_edges() << " eligible (machine, job) pairs\n";

  // Greedy dispatch (what a naive scheduler does).
  const matching::Matching greedy = matching::cheap_matching(g);
  std::cout << "greedy dispatch assigns:   " << greedy.cardinality()
            << " jobs\n";

  // Maximum assignment via GPU push-relabel, starting from the greedy one.
  device::Device dev;
  const gpu::GprResult result = gpu::g_pr(dev, g, greedy);
  std::cout << "push-relabel assigns:      " << result.matching.cardinality()
            << " jobs ("
            << result.matching.cardinality() - greedy.cardinality()
            << " recovered by augmentation)\n";

  const graph::index_t unassigned =
      num_jobs - result.matching.cardinality();
  std::cout << "provably unassignable:     " << unassigned
            << " jobs (no eligible machine remains under ANY assignment)\n";

  if (!matching::is_maximum(g, result.matching)) {
    std::cerr << "internal error: assignment is not maximum\n";
    return 1;
  }
  std::cout << "solver stats: " << result.stats.loops << " loops, "
            << result.stats.global_relabels << " global relabels, "
            << result.stats.device_launches << " kernel launches\n";
  return 0;
}
