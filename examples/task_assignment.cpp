// Task assignment — the scheduling application from the paper's
// introduction.  A compute cluster has machines with capability tags and a
// queue of jobs, each runnable only on machines holding its tag.  Maximum
// cardinality matching assigns as many jobs as possible to distinct
// machines; the example also shows how far plain greedy assignment falls
// short of the optimum found by the selected solver — any name in the
// `SolverRegistry`, dispatched through the batched `MatchingPipeline`
// (which builds the greedy init once and verifies the result).
//
// Usage:
//   task_assignment [num_machines] [num_jobs] [seed] [solver-spec]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace bpm;

  const graph::index_t num_machines =
      argc > 1 ? static_cast<graph::index_t>(std::atoi(argv[1])) : 2000;
  const graph::index_t num_jobs =
      argc > 2 ? static_cast<graph::index_t>(std::atoi(argv[2])) : 2400;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;
  const std::string solver_spec = argc > 4 ? argv[4] : "g-pr-shr";

  // Capabilities: a few common tags plus a long tail of rare ones —
  // queues look Zipfian in practice, which is exactly where greedy
  // assignment traps itself.
  constexpr int kTags = 24;
  Rng rng(seed);
  std::vector<std::vector<graph::index_t>> machines_with_tag(kTags);
  for (graph::index_t m = 0; m < num_machines; ++m) {
    const int ntags = 1 + static_cast<int>(rng.below(3));
    for (int t = 0; t < ntags; ++t) {
      const auto tag = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(kTags)));
      machines_with_tag[tag].push_back(m);
    }
  }
  std::vector<graph::Edge> eligible;
  for (graph::index_t j = 0; j < num_jobs; ++j) {
    // Zipf-ish tag choice: tag k with weight ~ 1/(k+1).
    std::size_t tag = 0;
    double mass = rng.uniform() * 3.8;  // ~ H(24)
    while (tag + 1 < kTags && (mass -= 1.0 / static_cast<double>(tag + 1)) > 0)
      ++tag;
    for (graph::index_t m : machines_with_tag[tag])
      eligible.push_back({m, j});
  }

  const graph::BipartiteGraph g =
      graph::build_from_edges(num_machines, num_jobs, eligible);
  std::cout << "cluster: " << num_machines << " machines, " << num_jobs
            << " jobs, " << g.num_edges() << " eligible (machine, job) pairs\n";

  // One pipeline instance: the shared greedy init is exactly the naive
  // scheduler's dispatch, and every job is verified (Berge / reference
  // cardinality) before it is reported.
  MatchingPipeline pipeline;
  pipeline.add_instance("cluster", g);
  const PipelineInstance& inst = pipeline.instances().front();
  std::cout << "greedy dispatch assigns:   " << inst.initial_cardinality
            << " jobs\n";

  const PipelineReport report = pipeline.run({solver_spec});
  const PipelineJob& job = report.jobs.front();
  if (!job.ok) {
    std::cerr << "solver failed: " << job.error << "\n";
    return 1;
  }
  std::cout << job.solver << " assigns:      " << job.stats.cardinality
            << " jobs (" << job.stats.cardinality - inst.initial_cardinality
            << " recovered by augmentation)\n";

  // Against the reference maximum, not the selected solver's result — a
  // heuristic's shortfall is not proof of unassignability.
  const graph::index_t unassigned = num_jobs - inst.maximum_cardinality;
  std::cout << "provably unassignable:     " << unassigned
            << " jobs (no eligible machine remains under ANY assignment)\n";
  if (job.stats.cardinality == inst.maximum_cardinality)
    std::cout << "verified: assignment is maximum (Berge certificate and "
                 "reference cardinality)\n";
  else  // a heuristic spec (greedy, karp-sipser) was selected
    std::cout << "note: " << job.solver << " is a heuristic; the maximum is "
              << inst.maximum_cardinality << " jobs\n";
  if (!job.stats.detail.empty())
    std::cout << "solver stats: " << job.stats.detail << "\n";
  if (job.stats.device_launches > 0)
    std::cout << "device: " << job.stats.device_launches
              << " kernel launches, modeled " << job.stats.modeled_ms
              << " ms on a C2050-class GPU\n";
  return 0;
} catch (const std::exception& e) {
  // e.g. an unknown or malformed solver spec in argv[4]
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
