// bpm_serve — a long-running matching service behind a line-delimited
// request protocol, driven from a script file (--script) or stdin.  The
// service owns a pool of --engines device engines for its whole lifetime
// (dispatches routed by --routing: round-robin, least-loaded, or
// instance affinity), dedups registered graphs by structural fingerprint,
// schedules requests from a bounded priority queue — coalescing
// same-instance queued requests into one dispatch batch unless
// --no-coalesce — and (with --cache-bytes > 0) serves repeated
// (instance, solver spec) requests from a persistent result cache that
// can be snapshotted to disk and reloaded on restart.
//
//   bpm_serve --script examples/serve_smoke.req
//   bpm_serve --engines 4 --routing affinity < requests.txt
//   bpm_serve --cache-load warm.cache --cache-save warm.cache < requests.txt
//
// Protocol (one command per line; '#' starts a comment):
//   load <name> <file.mtx>             register a Matrix Market graph
//   gen <name> uniform <rows> <cols> <edges> <seed>
//   gen <name> planted <n> <extra_degree> <seed>
//   gen <name> chung-lu <rows> <cols> <avg_degree> <gamma> <seed>
//   gen <name> instance <paper-name> <scale> <seed>
//   gen <name> huge <rows> <cols> <avg_degree> <hub_fraction> <hub_every> <seed>
//   submit <instance> <spec> [prio=<n>] [deadline=<ms>]   -> ticket <id>
//   poll <ticket>                      non-blocking status check
//   wait <ticket>                      block until the result line
//   drain                              block until the queue is empty
//   stats                              service + cache + engine counters
//   metrics                            global metrics registry as JSON
//                                      (queue depth, per-engine load, cache
//                                      hit rate, latency percentiles)
//   trace-start <path>                 start recording a chrome://tracing
//                                      timeline of every served request
//   trace-dump                         write the timeline to the path given
//                                      at trace-start (recording continues)
//   save-cache <path> | load-cache <path>
//   shutdown                           stop accepting, drain, exit

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/instances.hpp"
#include "graph/matrix_market.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace {

using namespace bpm;

void print_response(const serve::Response& r) {
  std::cout << "result ticket=" << r.ticket << " instance=" << r.instance_name
            << " solver=" << r.solver << " ok=" << (r.ok ? 1 : 0)
            << " cached=" << (r.cached ? 1 : 0)
            << " cardinality=" << r.stats.cardinality
            << " queue_ms=" << r.queue_ms << " service_ms=" << r.service_ms
            << " total_ms=" << r.total_ms;
  if (!r.error.empty()) std::cout << " error=\"" << r.error << "\"";
  std::cout << "\n";
}

graph::BipartiteGraph generate(const std::vector<std::string>& args) {
  // args: <kind> <params...> (the command name and instance name are gone).
  const auto want = [&](std::size_t n, const char* usage) {
    if (args.size() != n + 1)
      throw std::invalid_argument(std::string("gen ") + usage);
  };
  const auto arg_i = [&](std::size_t i) {
    return static_cast<graph::index_t>(std::stol(args[i]));
  };
  const auto arg_u = [&](std::size_t i) {
    return static_cast<std::uint64_t>(std::stoull(args[i]));
  };
  const std::string& kind = args[0];
  if (kind == "uniform") {
    want(4, "<name> uniform <rows> <cols> <edges> <seed>");
    return graph::gen::random_uniform(
        arg_i(1), arg_i(2), static_cast<graph::offset_t>(std::stoll(args[3])),
        arg_u(4));
  }
  if (kind == "planted") {
    want(3, "<name> planted <n> <extra_degree> <seed>");
    return graph::gen::planted_perfect(arg_i(1), std::stod(args[2]), arg_u(3));
  }
  if (kind == "chung-lu") {
    want(5, "<name> chung-lu <rows> <cols> <avg_degree> <gamma> <seed>");
    return graph::gen::chung_lu(arg_i(1), arg_i(2), std::stod(args[3]),
                                std::stod(args[4]), arg_u(5));
  }
  if (kind == "instance") {
    want(3, "<name> instance <paper-name> <scale> <seed>");
    for (const auto& inst : graph::paper_instances())
      if (inst.name == args[1]) return inst.build(std::stod(args[2]), arg_u(3));
    throw std::invalid_argument("unknown paper instance '" + args[1] + "'");
  }
  if (kind == "huge") {
    // Streamed CSR generation: peak memory is the final graph, so the
    // service can register instances far past what an edge-list generator
    // would fit — the shape `g-pr-sh:shards=K` serving is for.
    want(6,
         "<name> huge <rows> <cols> <avg_degree> <hub_fraction> <hub_every> "
         "<seed>");
    return graph::gen::huge_bipartite(arg_i(1), arg_i(2), std::stod(args[3]),
                                      std::stod(args[4]), arg_i(5), arg_u(6));
  }
  throw std::invalid_argument(
      "unknown generator '" + kind +
      "' (uniform | planted | chung-lu | instance | huge)");
}

/// The process's trace recorder behind `trace-start` / `trace-dump`:
/// constructed idle; `trace-start` enables it and attaches it to the
/// service so every subsequent request records its lifecycle.
struct TraceState {
  obs::Tracer tracer;
  std::string path;  ///< where `trace-dump` writes; set by trace-start
};

/// Executes one protocol line; returns false on `shutdown`.
bool execute(serve::MatchingService& service, TraceState& trace,
             const std::string& line, bool echo) {
  std::istringstream is(line);
  std::vector<std::string> tok;
  for (std::string t; is >> t;) tok.push_back(t);
  if (tok.empty() || tok.front().starts_with('#')) return true;
  if (echo) std::cout << "> " << line << "\n";
  const std::string& cmd = tok.front();

  if (cmd == "shutdown") {
    service.shutdown();
    return false;
  }
  if (cmd == "drain") {
    service.drain();
    std::cout << "drained\n";
    return true;
  }
  if (cmd == "stats") {
    const serve::ServiceStats s = service.stats();
    std::cout << "stats submitted=" << s.submitted
              << " accepted=" << s.accepted << " rejected=" << s.rejected
              << " completed=" << s.completed << " failed=" << s.failed
              << " expired=" << s.expired << " cache_hits=" << s.cache_hits
              << " fanout_hits=" << s.fanout_hits
              << " dispatches=" << s.dispatches
              << " coalesced=" << s.coalesced << " queued=" << s.queued
              << " in_flight=" << s.in_flight
              << " tickets_retained=" << s.tickets_retained
              << " evicted_tickets=" << s.evicted_tickets
              << " instances=" << service.instances().size() << "\n";
    if (service.cache()) {
      const serve::CacheStats c = service.cache()->stats();
      std::cout << "cache entries=" << c.entries << " bytes=" << c.bytes
                << " hits=" << c.hits << " misses=" << c.misses
                << " insertions=" << c.insertions
                << " evictions=" << c.evictions << "\n";
    }
    // Per-engine line: what the engine IS (the full EngineDescriptor
    // summary — backend, lanes/workers, NUMA pin) right next to what it
    // is DOING (its in-flight load and lifetime odometers).
    for (const serve::EngineGroupEngineStats& e :
         service.engine_group().stats())
      std::cout << "engine " << e.index << " descriptor="
                << e.descriptor.summary() << (e.retired ? " retired" : "")
                << " load=" << e.load << " dispatches=" << e.dispatches
                << " streams_opened=" << e.device.streams_opened
                << " streams_retired=" << e.device.streams_retired
                << " launches=" << e.device.launches
                << " modeled_ms=" << e.device.modeled_ms
                << " native_ms=" << e.device.native_ms << "\n";
    return true;
  }
  if (cmd == "metrics") {
    // Live registry snapshot: the service's streamed counters/histograms
    // plus the point-in-time gauges published right now (queue depth,
    // per-engine load, cache hit rate).
    service.publish_metrics(obs::Registry::global());
    if (service.cache()) {
      const serve::CacheStats c = service.cache()->stats();
      obs::Registry::global()
          .gauge("serve.cache_bytes")
          .set(static_cast<double>(c.bytes));
      obs::Registry::global()
          .gauge("serve.cache_entries")
          .set(static_cast<double>(c.entries));
    }
    std::cout << obs::Registry::global().snapshot_json() << "\n";
    return true;
  }
  if (cmd == "trace-start") {
    if (tok.size() != 2) throw std::invalid_argument("trace-start <path>");
    trace.path = tok[1];
    trace.tracer.enable();
    service.set_tracer(&trace.tracer);
    std::cout << "tracing started (dump target " << trace.path << ")\n";
    return true;
  }
  if (cmd == "trace-dump") {
    if (trace.path.empty())
      throw std::invalid_argument("trace-dump before trace-start");
    if (!trace.tracer.write_file(trace.path))
      throw std::runtime_error("cannot write trace to '" + trace.path + "'");
    std::cout << "trace written to " << trace.path << " ("
              << trace.tracer.events().size() << " events, "
              << trace.tracer.dropped() << " dropped)\n";
    return true;
  }
  if (cmd == "load" || cmd == "gen") {
    if (tok.size() < 3)
      throw std::invalid_argument(cmd + " <name> <source...>");
    graph::BipartiteGraph g =
        cmd == "load" ? graph::read_matrix_market_file(tok[2])
                      : generate({tok.begin() + 2, tok.end()});
    const auto added = service.add_instance(tok[1], std::move(g));
    const auto& inst = service.instances().get(added.handle);
    std::cout << "instance " << tok[1] << " handle=" << added.handle
              << (added.deduplicated ? " (deduplicated)" : "") << " "
              << inst.graph.describe() << " max=" << inst.maximum_cardinality
              << "\n";
    return true;
  }
  if (cmd == "submit") {
    if (tok.size() < 3)
      throw std::invalid_argument(
          "submit <instance> <spec> [prio=<n>] [deadline=<ms>]");
    serve::Request req;
    const auto handle = service.instances().find(tok[1]);
    if (!handle)
      throw std::invalid_argument("unknown instance '" + tok[1] + "'");
    req.instance = *handle;
    req.spec = SolverSpec::parse(tok[2]);
    for (std::size_t i = 3; i < tok.size(); ++i) {
      if (tok[i].starts_with("prio="))
        req.priority = std::stoi(tok[i].substr(5));
      else if (tok[i].starts_with("deadline="))
        req.deadline_ms = std::stod(tok[i].substr(9));
      else
        throw std::invalid_argument("unknown submit argument '" + tok[i] +
                                    "'");
    }
    const serve::Submission sub = service.submit(std::move(req));
    if (sub.accepted)
      std::cout << "ticket " << sub.ticket << "\n";
    else
      std::cout << "rejected reason=\"" << sub.reason << "\"\n";
    return true;
  }
  if (cmd == "poll" || cmd == "wait") {
    if (tok.size() != 2) throw std::invalid_argument(cmd + " <ticket>");
    const auto ticket = static_cast<std::uint64_t>(std::stoull(tok[1]));
    if (cmd == "wait") {
      print_response(service.wait(ticket));
    } else if (const auto r = service.poll(ticket)) {
      print_response(*r);
    } else {
      std::cout << "pending ticket=" << ticket << "\n";
    }
    return true;
  }
  if (cmd == "save-cache" || cmd == "load-cache") {
    if (tok.size() != 2) throw std::invalid_argument(cmd + " <path>");
    if (!service.cache())
      throw std::invalid_argument("service runs without a cache");
    if (cmd == "save-cache") {
      if (!service.cache()->save_file(tok[1]))
        throw std::runtime_error("cannot write '" + tok[1] + "'");
      std::cout << "cache saved to " << tok[1] << "\n";
    } else {
      std::cout << "cache loaded " << service.cache()->load_file(tok[1])
                << " entries from " << tok[1] << "\n";
    }
    return true;
  }
  throw std::invalid_argument("unknown command '" + cmd + "' (try --help)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bpm_serve",
                "long-running matching service driven by a line-delimited "
                "request protocol (script file or stdin)");
  cli.add_option("script", "request script (empty = read stdin)", "");
  cli.add_option("workers", "concurrent dispatches, one device stream each",
                 "2");
  cli.add_option("device-threads",
                 "per-engine pool workers (0 = hardware)", "0");
  cli.add_option("backend",
                 "engine backend: sim (modeled C2050) | host (real "
                 "multicore executor)",
                 "sim");
  cli.add_option("queue-depth", "admission queue bound", "256");
  cli.add_option("engines", "device engines behind the service", "1");
  cli.add_option("routing",
                 "engine routing policy (round-robin | least-loaded | "
                 "affinity | backend-fit)",
                 "least-loaded");
  cli.add_flag("numa",
               "spread the engines' numa_node hints across the machine's "
               "NUMA nodes (each engine's pool and arenas stay node-local)");
  cli.add_flag("no-coalesce",
               "serve every request as its own dispatch instead of "
               "batching same-instance queued requests");
  cli.add_option("coalesce-limit",
                 "max requests per coalesced dispatch (0 = unbounded)",
                 "16");
  cli.add_option("retention",
                 "completed tickets kept for poll/wait before eviction "
                 "(0 = keep all)",
                 "65536");
  cli.add_option("cache-bytes", "result cache budget in bytes (0 = no cache)",
                 std::to_string(std::size_t{64} << 20));
  cli.add_option("cache-shards", "result cache shard count", "8");
  cli.add_option("cache-load", "warm the cache from this snapshot on start",
                 "");
  cli.add_option("cache-save", "snapshot the cache here on shutdown", "");
  cli.add_flag("no-verify", "skip per-request verification");
  cli.add_flag("echo", "echo every protocol command before its reply");

  try {
    cli.parse(argc, argv);

    serve::ServiceOptions opt;
    opt.workers = static_cast<unsigned>(cli.get_int("workers"));
    opt.backend = device::parse_backend(cli.get_string("backend"));
    opt.device_threads = static_cast<unsigned>(cli.get_int("device-threads"));
    opt.queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth"));
    opt.verify = !cli.get_flag("no-verify");
    opt.engines = static_cast<unsigned>(cli.get_int("engines"));
    opt.routing = serve::parse_routing(cli.get_string("routing"));
    if (cli.get_flag("numa")) {
      // Explicit descriptors: engine e pinned to NUMA node e % nodes, so a
      // sharded solve's shard-local arenas land on the engine's socket.
      const std::vector<std::vector<int>> nodes = device::numa_topology();
      for (unsigned e = 0; e < opt.engines; ++e)
        opt.engine_descriptors.push_back(device::EngineDescriptor{
            .backend = opt.backend,
            .mode = opt.device_mode,
            .threads = opt.device_threads,
            .numa_node = static_cast<int>(e % nodes.size())});
    }
    opt.coalesce = !cli.get_flag("no-coalesce");
    opt.coalesce_limit =
        static_cast<std::size_t>(cli.get_int("coalesce-limit"));
    opt.completed_ticket_retention =
        static_cast<std::size_t>(cli.get_int("retention"));
    const auto cache_bytes =
        static_cast<std::size_t>(cli.get_int("cache-bytes"));
    if (cache_bytes > 0)
      opt.cache = std::make_shared<serve::ResultCache>(serve::CacheOptions{
          .byte_budget = cache_bytes,
          .shards = static_cast<unsigned>(cli.get_int("cache-shards"))});

    // Declared before the service: once trace-start attaches the tracer,
    // the service holds a pointer into it, so it must destruct last.
    TraceState trace;
    serve::MatchingService service(opt);
    if (!cli.get_string("cache-load").empty() && service.cache()) {
      const std::size_t n =
          service.cache()->load_file(cli.get_string("cache-load"));
      std::cout << "cache warmed with " << n << " entries from "
                << cli.get_string("cache-load") << "\n";
    }

    std::ifstream script;
    const bool from_file = !cli.get_string("script").empty();
    if (from_file) {
      script.open(cli.get_string("script"));
      if (!script)
        throw std::runtime_error("cannot read script '" +
                                 cli.get_string("script") + "'");
    }
    std::istream& in = from_file ? script : std::cin;
    const bool echo = cli.get_flag("echo") || from_file;

    bool failed = false;
    for (std::string line; std::getline(in, line);) {
      try {
        if (!execute(service, trace, line, echo)) break;
      } catch (const std::exception& e) {
        // A bad command must not take the service down — report and go on
        // (the process still exits nonzero so scripted runs fail loudly).
        std::cout << "error: " << e.what() << "\n";
        failed = true;
      }
    }
    service.shutdown();
    if (!cli.get_string("cache-save").empty() && service.cache()) {
      if (!service.cache()->save_file(cli.get_string("cache-save")))
        throw std::runtime_error("cannot write cache snapshot '" +
                                 cli.get_string("cache-save") + "'");
      std::cout << "cache snapshot written to " << cli.get_string("cache-save")
                << "\n";
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
