// bpm_serve — a long-running matching service behind a line-delimited
// request protocol, driven from a script file (--script), stdin, or a
// TCP socket (--listen).  The service owns a pool of --engines device
// engines for its whole lifetime (dispatches routed by --routing:
// round-robin, least-loaded, or instance affinity), dedups registered
// graphs by structural fingerprint, schedules requests from a bounded
// priority queue — coalescing same-instance queued requests into one
// dispatch batch unless --no-coalesce — and (with --cache-bytes > 0)
// serves repeated (instance, solver spec) requests from a persistent
// result cache that can be snapshotted to disk and reloaded on restart.
//
//   bpm_serve --script examples/serve_smoke.req
//   bpm_serve --engines 4 --routing affinity < requests.txt
//   bpm_serve --listen 7471 --quota 1000 --auth-token s3cret
//   bpm_serve --cache-load warm.cache --cache-save warm.cache < requests.txt
//
// Protocol (one command per line; '#' starts a comment):
//   auth <token>                       authenticate (only if the server
//                                      runs with --auth-token)
//   load <name> <file.mtx>             register a Matrix Market graph
//   gen <name> uniform <rows> <cols> <edges> <seed>
//   gen <name> planted <n> <extra_degree> <seed>
//   gen <name> chung-lu <rows> <cols> <avg_degree> <gamma> <seed>
//   gen <name> instance <paper-name> <scale> <seed>
//   gen <name> huge <rows> <cols> <avg_degree> <hub_fraction> <hub_every> <seed>
//   submit <instance> <spec> [prio=<n>] [deadline=<ms>]   -> ticket <id>
//                                      <spec> may be `auto` (recommended
//                                      default: the policy engine picks the
//                                      cheapest solver for the instance's
//                                      features and refines from observed
//                                      wall times; `auto:explore=0.05` keeps
//                                      re-measuring non-favourites).  The
//                                      result line carries the concrete
//                                      choice as resolved_from=<spec>.
//   poll <ticket>                      non-blocking status check
//   wait <ticket>                      block until the result line
//   drain                              block until the queue is empty
//   stats                              service + cache + engine counters,
//                                      plus one `solver ...` wall-time line
//                                      (count / mean / p90 ms) per solved
//                                      spec (over --listen: plus one
//                                      `client ...` accounting line per
//                                      connection and a final
//                                      `transport ...` summary)
//   policy                             adaptive-selection state: model
//                                      bucket count plus one
//                                      `policy-online ...` line per live
//                                      (bucket, spec) online estimate
//   metrics                            global metrics registry as JSON
//                                      (queue depth, per-engine load, cache
//                                      hit rate, latency percentiles)
//   trace-start <path>                 start recording a chrome://tracing
//                                      timeline of every served request
//   trace-dump                         write the timeline to the path given
//                                      at trace-start (recording continues)
//   save-cache <path> | load-cache <path>
//   shutdown                           stop accepting, drain, exit
//
// Every request is decoded against the typed schema in serve/proto:
// numbers are parsed checked (full-token, range-validated — never a raw
// stoi), dimensions/degrees are bounds-checked before a generator runs,
// and any malformed line answers a single machine-readable
//   error code=<kebab-name> msg="<detail>"
// line instead of terminating the process.  In script/stdin mode errors
// also fail the final exit code unless --tolerate-errors; over --listen
// they only count against the offending client.  With --quota N each
// connection may execute at most N commands (then `error
// code=quota-exceeded`); with --auth-token T every connection must `auth
// T` first.  Lines longer than --max-line end the offending session.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace bpm;

  CliParser cli("bpm_serve",
                "long-running matching service driven by a line-delimited "
                "request protocol (script file, stdin, or TCP socket)");
  cli.add_option("script", "request script (empty = read stdin)", "");
  cli.add_option("workers", "concurrent dispatches, one device stream each",
                 "2");
  cli.add_option("device-threads",
                 "per-engine pool workers (0 = hardware)", "0");
  cli.add_option("backend",
                 "engine backend: sim (modeled C2050) | host (real "
                 "multicore executor)",
                 "sim");
  cli.add_option("queue-depth", "admission queue bound", "256");
  cli.add_option("engines", "device engines behind the service", "1");
  cli.add_option("routing",
                 "engine routing policy (round-robin | least-loaded | "
                 "affinity | backend-fit)",
                 "least-loaded");
  cli.add_flag("numa",
               "spread the engines' numa_node hints across the machine's "
               "NUMA nodes (each engine's pool and arenas stay node-local)");
  cli.add_flag("no-coalesce",
               "serve every request as its own dispatch instead of "
               "batching same-instance queued requests");
  cli.add_option("coalesce-limit",
                 "max requests per coalesced dispatch (0 = unbounded)",
                 "16");
  cli.add_option("retention",
                 "completed tickets kept for poll/wait before eviction "
                 "(0 = keep all)",
                 "65536");
  cli.add_option("cache-bytes", "result cache budget in bytes (0 = no cache)",
                 std::to_string(std::size_t{64} << 20));
  cli.add_option("cache-shards", "result cache shard count", "8");
  cli.add_option("cache-load", "warm the cache from this snapshot on start",
                 "");
  cli.add_option("cache-save", "snapshot the cache here on shutdown", "");
  cli.add_flag("no-verify", "skip per-request verification");
  cli.add_flag("echo", "echo every protocol command before its reply");
  cli.add_option("listen",
                 "after the script/stdin phase, serve a TCP socket on this "
                 "port until a client sends `shutdown` (0 = ephemeral port; "
                 "empty = no socket)",
                 "");
  cli.add_option("auth-token",
                 "socket clients must `auth <token>` first (empty = off)",
                 "");
  cli.add_option("quota",
                 "max commands per socket connection (0 = unlimited)", "0");
  cli.add_option("max-line", "per-connection line budget in bytes", "65536");
  cli.add_option("max-clients", "concurrent socket connections", "64");
  cli.add_option("transport-executors",
                 "socket command executor threads (0 = 4)", "0");
  cli.add_flag("tolerate-errors",
               "script/stdin `error ...` responses do not fail the exit "
               "code (malformed-input smoke runs)");

  try {
    cli.parse(argc, argv);

    serve::ServiceOptions opt;
    opt.workers = static_cast<unsigned>(cli.get_int("workers"));
    opt.backend = device::parse_backend(cli.get_string("backend"));
    opt.device_threads = static_cast<unsigned>(cli.get_int("device-threads"));
    opt.queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth"));
    opt.verify = !cli.get_flag("no-verify");
    opt.engines = static_cast<unsigned>(cli.get_int("engines"));
    opt.routing = serve::parse_routing(cli.get_string("routing"));
    if (cli.get_flag("numa")) {
      // Explicit descriptors: engine e pinned to NUMA node e % nodes, so a
      // sharded solve's shard-local arenas land on the engine's socket.
      const std::vector<std::vector<int>> nodes = device::numa_topology();
      for (unsigned e = 0; e < opt.engines; ++e)
        opt.engine_descriptors.push_back(device::EngineDescriptor{
            .backend = opt.backend,
            .mode = opt.device_mode,
            .threads = opt.device_threads,
            .numa_node = static_cast<int>(e % nodes.size())});
    }
    opt.coalesce = !cli.get_flag("no-coalesce");
    opt.coalesce_limit =
        static_cast<std::size_t>(cli.get_int("coalesce-limit"));
    opt.completed_ticket_retention =
        static_cast<std::size_t>(cli.get_int("retention"));
    const auto cache_bytes =
        static_cast<std::size_t>(cli.get_int("cache-bytes"));
    if (cache_bytes > 0)
      opt.cache = std::make_shared<serve::ResultCache>(serve::CacheOptions{
          .byte_budget = cache_bytes,
          .shards = static_cast<unsigned>(cli.get_int("cache-shards"))});

    serve::MatchingService service(opt);
    // Shared by the local session and every socket session; holds the
    // tracer the service points into, so it outlives all of them.
    serve::SessionContext context(service);
    if (!cli.get_string("cache-load").empty() && service.cache()) {
      const std::size_t n =
          service.cache()->load_file(cli.get_string("cache-load"));
      std::cout << "cache warmed with " << n << " entries from "
                << cli.get_string("cache-load") << "\n";
    }

    serve::Session::Options local_options;
    local_options.limits.max_line_bytes =
        static_cast<std::size_t>(cli.get_int("max-line"));

    std::ifstream script;
    const bool from_file = !cli.get_string("script").empty();
    if (from_file) {
      script.open(cli.get_string("script"));
      if (!script)
        throw std::runtime_error("cannot read script '" +
                                 cli.get_string("script") + "'");
    }
    const bool echo = cli.get_flag("echo") || from_file;
    const bool listen = !cli.get_string("listen").empty();

    // Phase 1: the local script/stdin session.  With --listen and no
    // --script, stdin is skipped entirely (the socket is the interface).
    bool shutdown_seen = false;
    std::uint64_t local_errors = 0;
    if (from_file || !listen) {
      serve::Session session(context, local_options);
      std::istream& in = from_file ? script : std::cin;
      for (std::string line; std::getline(in, line);) {
        if (echo) std::cout << "> " << line << "\n";
        const serve::Session::Outcome out = session.execute(line);
        for (const std::string& l : out.lines) std::cout << l << "\n";
        if (out.shutdown) {
          shutdown_seen = true;
          break;
        }
        if (out.close) break;  // oversized line: framing is suspect
      }
      local_errors = session.errors();
    }

    // Phase 2: the socket transport, until a client sends `shutdown`.
    if (listen && !shutdown_seen) {
      serve::TransportOptions topt;
      topt.port = static_cast<std::uint16_t>(cli.get_int("listen"));
      topt.max_clients =
          static_cast<std::size_t>(cli.get_int("max-clients"));
      topt.executors =
          static_cast<unsigned>(cli.get_int("transport-executors"));
      topt.session.auth_token = cli.get_string("auth-token");
      topt.session.quota =
          static_cast<std::uint64_t>(cli.get_int("quota"));
      topt.session.limits = local_options.limits;
      serve::SocketTransport transport(context, topt);
      std::cout << "listening on " << transport.port() << std::endl;
      transport.wait_shutdown();
      transport.stop();
      const serve::TransportStats ts = transport.stats();
      std::cout << "transport served accepted=" << ts.accepted
                << " refused=" << ts.refused << " closed=" << ts.closed
                << " lines=" << ts.lines << " errors=" << ts.errors << "\n";
    }

    service.shutdown();
    if (!cli.get_string("cache-save").empty() && service.cache()) {
      if (!service.cache()->save_file(cli.get_string("cache-save")))
        throw std::runtime_error("cannot write cache snapshot '" +
                                 cli.get_string("cache-save") + "'");
      std::cout << "cache snapshot written to " << cli.get_string("cache-save")
                << "\n";
    }
    const bool failed = local_errors > 0 && !cli.get_flag("tolerate-errors");
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
