// Ablation A1 (paper §III-C2): the shrink threshold.  The paper enables
// G-PR-SHRKRNL only while |Ac| >= 512, arguing the compaction stops paying
// for itself below that.  This sweep measures G-PR-Shr geomean runtime for
// thresholds {1 (always shrink), 128, 512, 2048, never} plus G-PR-NoShr as
// the reference point.

#include <iostream>
#include <limits>
#include <vector>

#include "core/g_pr.hpp"
#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("ablation_shrink",
                "Shrink-threshold sweep for G-PR-Shr (paper uses 512)");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Ablation — active-list shrink threshold", opt, suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);

  struct Config {
    std::string label;
    gpu::GprVariant variant;
    graph::index_t threshold;
  };
  const std::vector<Config> configs = {
      {"always (1)", gpu::GprVariant::kShrink, 1},
      {"128", gpu::GprVariant::kShrink, 128},
      {"512 (paper)", gpu::GprVariant::kShrink, 512},
      {"2048", gpu::GprVariant::kShrink, 2048},
      {"never (NoShr)", gpu::GprVariant::kNoShrink,
       std::numeric_limits<graph::index_t>::max()},
  };

  bool all_ok = true;
  Table table({"threshold", "modeled geomean (s)", "wall geomean (s)",
               "total shrinks"},
              4);
  for (const auto& cfg : configs) {
    std::vector<double> modeled, wall;
    std::int64_t shrinks = 0;
    for (const auto& bi : suite) {
      gpu::GprOptions gpr;
      gpr.variant = cfg.variant;
      gpr.shrink_threshold = cfg.threshold;
      // Re-run g_pr directly to collect stats alongside the timing.
      Timer t;
      const auto result = gpu::g_pr(dev, bi.g, bi.init, gpr);
      const double secs = t.elapsed_s();
      all_ok &= result.matching.cardinality() == bi.maximum_cardinality;
      modeled.push_back(result.stats.modeled_ms / 1e3);
      wall.push_back(secs);
      shrinks += result.stats.shrinks;
      if (opt.verbose)
        std::cout << "  " << cfg.label << " " << bi.meta.name << ": "
                  << result.stats.modeled_ms / 1e3 << " s modeled, " << secs
                  << " s wall, " << result.stats.shrinks << " shrinks\n";
    }
    table.add_row({cfg.label, geometric_mean(modeled), geometric_mean(wall),
                   shrinks});
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout << "\nExpected shape: a shallow optimum at a moderate threshold "
               "— shrinking always adds overhead on short lists, never "
               "shrinking keeps long stale lists (paper reports 2-8% gain "
               "for 512 over NoShr).\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
