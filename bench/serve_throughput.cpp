// Serving load test: how many matching requests per second does
// `serve::MatchingService` sustain, and what does a client wait?
//
// Closed loop (always): for each --inflight level L, L client threads
// submit-and-wait over a fixed request mix (suite instances × --algo
// specs, round-robin).  Reports wall time, requests/s, speedup vs the
// serialized L=1 baseline, and latency percentiles.  Every response is
// checked against a sequential `MatchingPipeline` reference run of the
// same jobs — concurrency must never change a result.
//
// Cache phase (--cache-bytes > 0): replays the mix on a cache-backed
// service (cold pass, then warm pass = 100% hits), snapshots the cache,
// and replays once more on a *fresh* service warmed from the snapshot —
// the restart story of a long-running deployment.
//
// Duplicate-heavy burst (--dup > 0): every mix job submitted --dup times
// in one shuffled, unpaced burst against a cache-less service — the
// workload where request coalescing (--coalesce) collapses duplicate
// same-instance requests into shared dispatch batches.  Per-engine
// dispatch stats show how --engines N --routing spread the work.
//
// Open loop (--open-rate > 0): one thread submits at the target rate
// against a bounded queue; completion latency percentiles and rejected
// (backpressure) counts show the overload behaviour.
//
// Socket phase (--socket-clients > 0): N concurrent line-protocol
// clients drive the full serve stack — schema decode, per-connection
// session, quota accounting, socket transport — over real TCP.  Each
// client runs submit/wait rounds against planted-perfect instances
// (known maximum = n, so every result line is reference-checked), one
// client probes with malformed lines (every probe must answer `error
// ...`, never drop the connection's service), and the final `stats`
// shows per-client quota accounting.  By default the phase spins up an
// in-process `SocketTransport`; with --connect PORT it drives an
// external `bpm_serve --listen PORT` instead (add --socket-shutdown to
// send `shutdown` at the end so that server exits).
//
//   serve_throughput --scale 0.002 --inflight 1,2,4,8 --requests 96
//   serve_throughput --scale 0.002 --engines 4 --coalesce --dup 6
//   serve_throughput --scale 0.002 --open-rate 200 --queue-depth 16
//   serve_throughput --socket-clients 4 --socket-requests 6
//   serve_throughput --socket-clients 4 --connect 7471 --socket-shutdown

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness_common.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bpm;
using namespace bpm::bench;

struct Reference {
  graph::index_t cardinality = 0;
  bool ok = false;
};

struct Mix {
  std::vector<std::size_t> handles;  ///< service handle per suite instance
  std::vector<SolverSpec> specs;
  [[nodiscard]] std::size_t instance_of(std::size_t i) const {
    return i % handles.size();
  }
  [[nodiscard]] const SolverSpec& spec_of(std::size_t i) const {
    return specs[(i / handles.size()) % specs.size()];
  }
};

/// Engine-pool shape shared by every phase, straight from the CLI.
struct PoolConfig {
  unsigned engines = 1;
  serve::Routing routing = serve::Routing::kLeastLoaded;
  bool coalesce = false;
};

serve::ServiceOptions service_options(const SuiteOptions& opt,
                                      unsigned workers,
                                      std::size_t queue_depth,
                                      std::shared_ptr<serve::ResultCache> cache,
                                      const PoolConfig& pool) {
  serve::ServiceOptions s;
  s.workers = workers;
  s.backend = opt.backend;
  s.device_threads = opt.threads;
  s.solver_threads = opt.threads;
  s.queue_depth = queue_depth;
  s.cache = std::move(cache);
  s.engines = pool.engines;
  s.routing = pool.routing;
  s.coalesce = pool.coalesce;
  s.tracer = opt.tracer();
  return s;
}

void print_engine_stats(const serve::MatchingService& service) {
  // Backend kind + native (wall) time per engine: in a mixed pool this
  // is what makes a run attributable — a host engine's native_ms is
  // measured wall clock, a sim engine's is its modeled device time.
  for (const serve::EngineGroupEngineStats& e :
       service.engine_group().stats())
    std::cout << "  engine " << e.index << " ["
              << e.descriptor.summary() << "]"
              << (e.retired ? " (retired)" : "")
              << ": dispatches=" << e.dispatches
              << " work_dispatched=" << e.work_dispatched
              << " streams=" << e.device.streams_retired
              << " launches=" << e.device.launches
              << " modeled_ms=" << e.device.modeled_ms
              << " native_ms=" << e.device.native_ms << "\n";
}

Mix register_suite(serve::MatchingService& service,
                   const std::vector<BuiltInstance>& suite,
                   const SuiteOptions& opt) {
  Mix mix;
  // Precomputed admissions: each service level reuses the suite's init
  // and ground truth instead of redoing Hopcroft–Karp per registration.
  for (const BuiltInstance& bi : suite)
    mix.handles.push_back(
        service.add_instance(bench::to_pipeline_instance(bi)).handle);
  mix.specs = opt.algos;
  return mix;
}

/// Submits requests [0, n) closed-loop from `clients` threads; returns
/// completion latencies (ms).  `bad` counts responses that failed or
/// disagreed with the reference.
std::vector<double> closed_loop(serve::MatchingService& service,
                                const Mix& mix, std::size_t n,
                                unsigned clients,
                                const std::map<std::size_t, Reference>& want,
                                std::atomic<std::size_t>& bad) {
  // -1 marks "not served" (rejected) so such slots never pollute the
  // percentiles with phantom 0 ms samples.
  std::vector<double> latencies(n, -1.0);
  std::atomic<std::size_t> next{0};
  const auto client = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      serve::Submission sub =
          service.submit({.instance = mix.handles[mix.instance_of(i)],
                          .spec = mix.spec_of(i)});
      if (!sub.accepted) {  // closed loop never overruns a sane queue depth
        bad.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const serve::Response r = sub.future.get();
      latencies[i] = r.total_ms;
      const auto it = want.find(i % (mix.handles.size() * mix.specs.size()));
      if (!r.ok || it == want.end() || !it->second.ok ||
          r.stats.cardinality != it->second.cardinality)
        bad.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();
  std::erase_if(latencies, [](double l) { return l < 0.0; });
  return latencies;
}

/// `key=value` scrape out of a protocol response line (e.g. the
/// cardinality of a `result ...` line); empty when absent.
std::string response_field(const std::string& line, const std::string& key) {
  const std::string needle = " " + key + "=";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  return line.substr(begin, line.find(' ', begin) - begin);
}

/// One socket client's submit/wait rounds against planted instances
/// whose maximum matching is known by construction.  Returns the number
/// of wrong/failed responses.
std::size_t socket_client_rounds(const std::string& host, std::uint16_t port,
                                 std::size_t rounds,
                                 const std::vector<std::pair<std::string,
                                                             long>>& planted,
                                 std::atomic<std::size_t>& served) {
  static const char* kSpecs[] = {"g-pr-shr", "hk"};
  serve::LineClient client(host, port);
  std::size_t bad = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto& [name, n] = planted[r % planted.size()];
    client.send_line("submit " + name + " " + kSpecs[r % 2]);
    const auto ticket = client.recv_line();
    if (!ticket || !ticket->starts_with("ticket ")) {
      ++bad;
      continue;
    }
    client.send_line("wait " + ticket->substr(7));
    const auto result = client.recv_line();
    if (!result || !result->starts_with("result ") ||
        response_field(*result, "ok") != "1" ||
        response_field(*result, "cardinality") != std::to_string(n))
      ++bad;
    else
      served.fetch_add(1, std::memory_order_relaxed);
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serve_throughput",
                "open/closed-loop load test of serve::MatchingService: "
                "latency percentiles, throughput, and cache hit-rate vs "
                "in-flight requests");
  register_suite_flags(cli, /*default_stride=*/7,
                       /*default_algos=*/"g-pr-shr,hk,p-dbfs");
  cli.add_option("inflight", "closed-loop client counts (= service workers)",
                 "1,2,4,8");
  cli.add_option("requests", "requests per closed-loop level", "96");
  cli.add_option("cache-bytes",
                 "cache budget for the persistence phase (0 = skip)",
                 std::to_string(std::size_t{32} << 20));
  cli.add_option("open-rate", "open-loop arrival rate in requests/s (0 = "
                 "skip)", "0");
  cli.add_option("queue-depth", "admission queue bound for the open loop",
                 "256");
  cli.add_option("engines", "device engines behind the service", "1");
  cli.add_option("routing",
                 "engine routing policy (round-robin | least-loaded | "
                 "affinity | backend-fit)",
                 "least-loaded");
  cli.add_flag("coalesce",
               "coalesce same-instance queued requests into one dispatch "
               "batch");
  cli.add_option("dup",
                 "duplicate factor of the duplicate-heavy burst phase "
                 "(each mix job submitted this many times; 0 = skip)",
                 "4");
  cli.add_option("socket-clients",
                 "concurrent line-protocol clients of the socket phase "
                 "(0 = skip)",
                 "0");
  cli.add_option("socket-requests",
                 "submit/wait rounds per socket client", "6");
  cli.add_option("connect",
                 "drive an external bpm_serve --listen on this port "
                 "instead of an in-process transport (0 = in-process)",
                 "0");
  cli.add_flag("socket-shutdown",
               "send `shutdown` at the end of the socket phase (so an "
               "external --connect server exits)");
  SuiteOptions opt;
  PoolConfig pool;
  try {
    cli.parse(argc, argv);
    opt = suite_options_from_cli(cli);
    pool.engines = static_cast<unsigned>(cli.get_int("engines"));
    pool.routing = serve::parse_routing(cli.get_string("routing"));
    pool.coalesce = cli.get_flag("coalesce");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const auto suite = build_suite(opt);
  print_header("Serving throughput — MatchingService under load", opt,
               suite.size());
  const auto requests =
      static_cast<std::size_t>(cli.get_int("requests"));
  std::vector<unsigned> levels;
  for (const std::string& tok : cli.get_string_list("inflight"))
    levels.push_back(static_cast<unsigned>(std::stoul(tok)));
  // speedup_vs_serial is defined against the serialized (1 in-flight)
  // run, so that run must exist and come first.
  levels.erase(std::remove(levels.begin(), levels.end(), 1u), levels.end());
  levels.insert(levels.begin(), 1u);

  // The ground truth every response is compared against: a sequential
  // MatchingPipeline run of the identical (instance × spec) grid.
  SuiteOptions seq = opt;
  seq.jobs = 1;
  const PipelineReport reference = run_grid(suite, seq);
  std::map<std::size_t, Reference> want;  // mix index -> expected outcome
  for (std::size_t j = 0; j < reference.jobs.size(); ++j) {
    const PipelineJob& job = reference.jobs[j];
    // Pipeline order is instance-major; the mix is spec-major.
    const std::size_t mix_index =
        (j % opt.algos.size()) * suite.size() + job.instance;
    want[mix_index] = {job.stats.cardinality, job.ok};
  }
  std::cout << "# mix: " << suite.size() << " instances x "
            << opt.algos.size() << " specs, " << requests
            << " requests per level; engines=" << pool.engines
            << " routing=" << serve::routing_name(pool.routing)
            << " coalesce=" << (pool.coalesce ? "on" : "off")
            << "; reference " << (reference.all_ok() ? "ok" : "FAILED")
            << "\n\n";

  bool all_ok = reference.all_ok();

  // ---- closed loop: throughput and latency vs in-flight requests ----------
  Table table({"inflight", "wall_ms", "req_per_s", "speedup_vs_serial",
               "p50_ms", "p90_ms", "p99_ms", "bad"},
              2);
  double serial_wall = 0.0;
  for (const unsigned level : levels) {
    serve::MatchingService service(
        service_options(opt, level, requests + 1, nullptr, pool));
    const Mix mix = register_suite(service, suite, opt);
    std::atomic<std::size_t> bad{0};
    Timer timer;
    const std::vector<double> lat =
        closed_loop(service, mix, requests, level, want, bad);
    const double wall = timer.elapsed_ms();
    if (serial_wall == 0.0) serial_wall = wall;
    all_ok &= bad.load() == 0;
    table.add_row({static_cast<std::int64_t>(level), wall,
                   static_cast<double>(requests) / (wall / 1e3),
                   serial_wall / wall, percentile(lat, 50),
                   percentile(lat, 90), percentile(lat, 99),
                   static_cast<std::int64_t>(bad.load())});
  }
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout << "\nExpected shape: req_per_s grows with inflight until the "
               "engine saturates (needs > 1 hardware thread to show — the "
               "header prints the count); bad must be 0 at every level "
               "(responses are checked against the sequential pipeline "
               "reference).\n";

  // Registry cross-check: every completion above also streamed into the
  // process-wide `serve.latency_ms` histogram, so its interpolated
  // percentiles must track the exact per-request ones in the table
  // (bucketed, so approximate — same order of magnitude, same shape).
  {
    const obs::Histogram::Snapshot snap =
        obs::Registry::global().histogram("serve.latency_ms").snapshot();
    std::cout << "registry serve.latency_ms (all levels pooled): count="
              << snap.count << " mean=" << snap.mean() << " ms, p50="
              << snap.percentile(50) << " ms, p90=" << snap.percentile(90)
              << " ms, p99=" << snap.percentile(99) << " ms\n";
  }

  // ---- duplicate-heavy open-loop burst: the coalescing showcase ----------
  // Every mix job submitted --dup times in one shuffled, unpaced burst
  // against a cache-less service: with --coalesce the duplicate
  // same-instance requests collapse into shared dispatch batches (distinct
  // specs solved back to back on one routed stream, identical specs solved
  // once and fanned out), so requests/s must beat the same burst without
  // coalescing — the acceptance shape for `--engines N --coalesce`.
  const auto dup = static_cast<std::size_t>(cli.get_int("dup"));
  if (dup > 0) {
    const std::size_t grid = suite.size() * opt.algos.size();
    const std::size_t total = grid * dup;
    const unsigned workers = levels.empty() ? 4 : levels.back();
    serve::MatchingService service(
        service_options(opt, workers, total + 1, nullptr, pool));
    const Mix mix = register_suite(service, suite, opt);
    std::vector<std::size_t> order(total);
    for (std::size_t i = 0; i < total; ++i) order[i] = i % grid;
    Rng rng(7);
    std::shuffle(order.begin(), order.end(), rng);

    std::size_t bad = 0;
    std::vector<std::pair<std::size_t, serve::Submission>> subs;
    subs.reserve(total);
    Timer timer;
    for (const std::size_t i : order) {
      serve::Submission sub =
          service.submit({.instance = mix.handles[mix.instance_of(i)],
                          .spec = mix.spec_of(i)});
      if (sub.accepted)
        subs.emplace_back(i, std::move(sub));
      else
        ++bad;  // the queue is sized for the whole burst
    }
    for (auto& [i, sub] : subs) {
      const serve::Response r = sub.future.get();
      const auto it = want.find(i);
      if (!r.ok || it == want.end() || !it->second.ok ||
          r.stats.cardinality != it->second.cardinality)
        ++bad;
    }
    const double wall = timer.elapsed_ms();
    const serve::ServiceStats s = service.stats();
    all_ok &= bad == 0;
    std::cout << "\nduplicate-heavy burst (" << grid << " unique jobs x "
              << dup << " = " << total << " requests, " << workers
              << " workers, no cache):\n"
              << "  wall " << wall << " ms, "
              << static_cast<double>(total) / (wall / 1e3)
              << " req/s; dispatches=" << s.dispatches
              << " coalesced=" << s.coalesced
              << " fanout_hits=" << s.fanout_hits << " bad=" << bad << "\n";
    print_engine_stats(service);
  }

  // ---- cache persistence: warm pass + snapshot reload ---------------------
  const auto cache_bytes =
      static_cast<std::size_t>(cli.get_int("cache-bytes"));
  if (cache_bytes > 0) {
    const std::size_t grid = suite.size() * opt.algos.size();
    const unsigned workers = levels.empty() ? 4 : levels.back();
    const auto snapshot =
        std::filesystem::temp_directory_path() / "serve_throughput.cache";
    std::atomic<std::size_t> bad{0};
    double cold_ms = 0.0, warm_ms = 0.0, reload_ms = 0.0;
    std::uint64_t warm_hits = 0, reload_hits = 0;
    std::size_t entries = 0;
    {
      auto cache = std::make_shared<serve::ResultCache>(
          serve::CacheOptions{.byte_budget = cache_bytes});
      serve::MatchingService service(
          service_options(opt, workers, grid + 1, cache, pool));
      const Mix mix = register_suite(service, suite, opt);
      Timer timer;
      (void)closed_loop(service, mix, grid, workers, want, bad);
      cold_ms = timer.elapsed_ms();
      timer.restart();
      (void)closed_loop(service, mix, grid, workers, want, bad);
      warm_ms = timer.elapsed_ms();
      warm_hits = service.stats().cache_hits;
      entries = cache->stats().entries;
      if (!cache->save_file(snapshot.string())) {
        std::cerr << "cannot write " << snapshot << "\n";
        all_ok = false;
      }
    }
    {
      // A restarted service: fresh engine, fresh cache object, warmed
      // entirely from the snapshot — every request must hit.
      auto cache = std::make_shared<serve::ResultCache>(
          serve::CacheOptions{.byte_budget = cache_bytes});
      cache->load_file(snapshot.string());
      serve::MatchingService service(
          service_options(opt, workers, grid + 1, cache, pool));
      const Mix mix = register_suite(service, suite, opt);
      Timer timer;
      (void)closed_loop(service, mix, grid, workers, want, bad);
      reload_ms = timer.elapsed_ms();
      reload_hits = service.stats().cache_hits;
    }
    std::filesystem::remove(snapshot);
    all_ok &= bad.load() == 0 && warm_hits == grid && reload_hits == grid;
    std::cout << "\ncache persistence (" << grid << "-request mix, "
              << workers << " in flight):\n"
              << "  cold pass:        " << cold_ms << " ms (0 hits, "
              << entries << " entries cached)\n"
              << "  warm pass:        " << warm_ms << " ms (" << warm_hits
              << "/" << grid << " hits)\n"
              << "  snapshot reload:  " << reload_ms << " ms ("
              << reload_hits << "/" << grid
              << " hits on a restarted service)\n"
              << "  bad responses:    " << bad.load() << "\n";
  }

  // ---- open loop: fixed arrival rate against a bounded queue --------------
  const double open_rate = cli.get_double("open-rate");
  if (open_rate > 0.0) {
    serve::MatchingService service(service_options(
        opt, levels.empty() ? 4 : levels.back(),
        static_cast<std::size_t>(cli.get_int("queue-depth")), nullptr,
        pool));
    const Mix mix = register_suite(service, suite, opt);
    const auto interval =
        std::chrono::duration<double>(1.0 / open_rate);
    std::vector<serve::Submission> accepted;
    std::size_t rejected = 0;
    auto due = std::chrono::steady_clock::now();
    Timer timer;
    for (std::size_t i = 0; i < requests; ++i) {
      serve::Submission sub =
          service.submit({.instance = mix.handles[mix.instance_of(i)],
                          .spec = mix.spec_of(i)});
      if (sub.accepted)
        accepted.push_back(std::move(sub));
      else
        ++rejected;
      due += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          interval);
      std::this_thread::sleep_until(due);
    }
    std::vector<double> lat;
    lat.reserve(accepted.size());
    for (const serve::Submission& sub : accepted)
      lat.push_back(sub.future.get().total_ms);
    const double wall = timer.elapsed_ms();
    std::cout << "\nopen loop at " << open_rate << " req/s: "
              << accepted.size() << " served, " << rejected
              << " rejected (backpressure) in " << wall << " ms; latency p50 "
              << percentile(lat, 50) << " ms, p90 " << percentile(lat, 90)
              << " ms, p99 " << percentile(lat, 99) << " ms\n";
  }

  // ---- socket phase: concurrent clients over the real transport ----------
  const auto socket_clients =
      static_cast<std::size_t>(cli.get_int("socket-clients"));
  if (socket_clients > 0) {
    const auto rounds =
        static_cast<std::size_t>(cli.get_int("socket-requests"));
    const auto connect_port =
        static_cast<std::uint16_t>(cli.get_int("connect"));
    const std::string host = "127.0.0.1";

    // In-process stack when no --connect target: service + sessions +
    // transport, with a per-connection quota generous enough for the
    // rounds (2 lines each) plus the setup/stats/probe traffic — the
    // accounting shows up in the final `stats` lines.
    std::unique_ptr<serve::MatchingService> service;
    std::unique_ptr<serve::SessionContext> context;
    std::unique_ptr<serve::SocketTransport> transport;
    std::uint16_t port = connect_port;
    if (connect_port == 0) {
      serve::ServiceOptions sopt =
          service_options(opt, 4, 4096, nullptr, pool);
      service = std::make_unique<serve::MatchingService>(sopt);
      context = std::make_unique<serve::SessionContext>(*service);
      serve::TransportOptions topt;
      topt.max_clients = socket_clients + 4;
      topt.session.quota = 2 * rounds + 16;
      transport = std::make_unique<serve::SocketTransport>(*context, topt);
      port = transport->port();
    }

    // Planted-perfect instances: maximum matching = n by construction,
    // so result lines are checked without a reference solve — the same
    // check works against an external server.
    const std::vector<std::pair<std::string, long>> planted = {
        {"sockA", 400}, {"sockB", 650}};
    std::size_t bad = 0;
    {
      serve::LineClient setup(host, port);
      setup.send_line("gen sockA planted 400 2.0 7");
      setup.send_line("gen sockB planted 650 1.5 9");
      for (int i = 0; i < 2; ++i) {
        const auto line = setup.recv_line();
        if (!line || !line->starts_with("instance ")) ++bad;
      }
    }

    std::atomic<std::size_t> served{0};
    std::atomic<std::size_t> client_bad{0};
    Timer timer;
    {
      std::vector<std::thread> threads;
      threads.reserve(socket_clients);
      for (std::size_t c = 0; c < socket_clients; ++c)
        threads.emplace_back([&] {
          try {
            client_bad.fetch_add(
                socket_client_rounds(host, port, rounds, planted, served),
                std::memory_order_relaxed);
          } catch (const std::exception&) {
            client_bad.fetch_add(1, std::memory_order_relaxed);
          }
        });
      for (std::thread& t : threads) t.join();
    }
    const double wall = timer.elapsed_ms();
    bad += client_bad.load();

    // Malformed probes: every one must answer `error ...` — and the
    // connection must still serve a valid command afterwards.
    {
      static const char* kProbes[] = {
          "submit sockA g-pr prio=abc",
          "gen broken uniform -5 10 100 1",
          "gen broken planted 10 1e300 1",
          "poll 99999999999999999999",
          "wait not-a-ticket",
          "submit sockA",
          "bogus-command 1 2 3",
          "load broken /nonexistent/file.mtx",
      };
      serve::LineClient probe(host, port);
      for (const char* p : kProbes) {
        probe.send_line(p);
        const auto line = probe.recv_line();
        if (!line || !line->starts_with("error ")) ++bad;
      }
      probe.send_line("submit sockA hk");
      const auto ticket = probe.recv_line();
      if (!ticket || !ticket->starts_with("ticket ")) ++bad;
    }

    // Final stats: the transport appends one `client ...` accounting
    // line per connection and a `transport ...` summary last.
    std::string transport_line;
    {
      serve::LineClient stats(host, port);
      stats.send_line("stats");
      for (std::optional<std::string> line; (line = stats.recv_line());) {
        if (line->starts_with("client "))
          std::cout << "  " << *line << "\n";
        if (line->starts_with("transport ")) {
          transport_line = *line;
          break;
        }
      }
      if (transport_line.empty()) ++bad;
      if (cli.get_flag("socket-shutdown")) {
        stats.send_line("shutdown");
        const auto line = stats.recv_line();
        if (!line || !line->starts_with("ok shutdown")) ++bad;
      }
    }

    const std::size_t total = socket_clients * rounds;
    all_ok &= bad == 0 && served.load() == total;
    std::cout << "\nsocket phase (" << socket_clients << " clients x "
              << rounds << " submit/wait rounds over TCP"
              << (connect_port == 0
                      ? std::string(", in-process transport")
                      : " against --connect " +
                            std::to_string(connect_port))
              << "):\n"
              << "  wall " << wall << " ms, "
              << static_cast<double>(total) / (wall / 1e3)
              << " req/s; served=" << served.load() << "/" << total
              << " bad=" << bad << "\n"
              << "  " << transport_line << "\n";
    if (transport) transport->stop();
    if (service) service->shutdown();
  }

  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!all_ok) {
    std::cerr << "\nRESULT CHECK FAILED: see bad counts above\n";
    return 1;
  }
  return 0;
}
