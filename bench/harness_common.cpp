#include "harness_common.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"

namespace bpm::bench {

void register_suite_flags(CliParser& cli, int default_stride,
                          const std::string& default_algos, bool with_json) {
  cli.add_option("scale", "instance size relative to the paper's (Table I)",
                 "0.015625");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("stride", "use every stride-th instance of the 28",
                 std::to_string(default_stride));
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_option("backend",
                 "device backend: sim (modeled C2050) or host (real "
                 "multicore executor, measured wall time)",
                 "sim");
  cli.add_option("jobs",
                 "concurrent jobs for suite building and pipeline grids, one "
                 "device stream each (0 = hardware, 1 = sequential)",
                 "1");
  cli.add_flag("verbose", "per-instance rows in addition to aggregates");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_flag("no-model",
               "report raw simulator wall time for GPU algorithms instead "
               "of modeled C2050 device time");
  if (with_json)
    cli.add_option("json",
                   "write instance x algo results (time/launches/matched) as "
                   "JSON to this path (empty = off)",
                   "");
  register_observability_flags(cli);
  if (!default_algos.empty()) add_algo_flag(cli, default_algos);
}

void register_observability_flags(CliParser& cli) {
  cli.add_option("trace",
                 "record the run (solve phases, device launches, shard "
                 "rounds) as chrome://tracing JSON to this path (empty = "
                 "off)",
                 "");
  cli.add_option("metrics",
                 "snapshot the global metrics registry as JSON to this path "
                 "at exit (empty = off)",
                 "");
}

void observability_from_cli(const CliParser& cli, SuiteOptions& opt) {
  if (cli.has("trace")) opt.trace_path = cli.get_string("trace");
  if (cli.has("metrics")) opt.metrics_path = cli.get_string("metrics");
  if (!opt.trace_path.empty()) {
    opt.trace_sink = std::make_shared<obs::Tracer>();
    opt.trace_sink->enable();
  }
}

device::Device& attach_tracer(const SuiteOptions& opt, device::Device& dev) {
  if (opt.trace_sink != nullptr) dev.set_tracer(opt.trace_sink.get());
  return dev;
}

void write_observability(const SuiteOptions& opt) {
  if (!opt.trace_path.empty() && opt.trace_sink != nullptr) {
    if (!opt.trace_sink->write_file(opt.trace_path))
      throw std::runtime_error("cannot write trace to " + opt.trace_path);
    std::cout << "# trace written to " << opt.trace_path << " ("
              << opt.trace_sink->events().size() << " events";
    if (const std::uint64_t dropped = opt.trace_sink->dropped(); dropped > 0)
      std::cout << ", " << dropped << " dropped";
    std::cout << ")\n";
  }
  if (!opt.metrics_path.empty()) {
    if (!obs::Registry::global().write_file(opt.metrics_path))
      throw std::runtime_error("cannot write metrics to " + opt.metrics_path);
    std::cout << "# metrics written to " << opt.metrics_path << '\n';
  }
}

SuiteOptions suite_options_from_cli(const CliParser& cli) {
  exit_if_list_algos(cli);
  SuiteOptions opt;
  opt.scale = cli.get_double("scale");
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opt.stride = static_cast<int>(cli.get_int("stride"));
  opt.threads = static_cast<unsigned>(cli.get_int("threads"));
  if (cli.has("backend"))
    opt.backend = device::parse_backend(cli.get_string("backend"));
  opt.jobs = static_cast<unsigned>(cli.get_int("jobs"));
  opt.verbose = cli.get_flag("verbose");
  opt.csv = cli.get_flag("csv");
  opt.no_model = cli.get_flag("no-model");
  if (cli.has("json")) opt.json_path = cli.get_string("json");
  if (cli.has("algo")) opt.algos = solver_specs_from_cli(cli);
  observability_from_cli(cli, opt);
  return opt;
}

void compute_instance_features(BuiltInstance& bi) {
  bi.features = policy::compute_features(bi.g, bi.initial_cardinality);
}

BuiltInstance build_instance(const graph::Instance& meta,
                             const SuiteOptions& opt) {
  BuiltInstance bi{meta, meta.build(opt.scale, opt.seed + static_cast<std::uint64_t>(meta.id)),
                   {}, 0, 0, {}};
  bi.init = matching::cheap_matching(bi.g);
  bi.initial_cardinality = bi.init.cardinality();
  // Ground truth via Hopcroft–Karp (thoroughly tested against the O(V·E)
  // reference in tests/); the quadratic reference would dominate harness
  // time at bench scales.
  bi.maximum_cardinality = matching::hopcroft_karp(bi.g, bi.init).cardinality();
  compute_instance_features(bi);
  return bi;
}

std::vector<BuiltInstance> build_massive_suite(const SuiteOptions& opt) {
  // ~10x the realised edge count of the largest Table I analogue at the
  // default 1/64 scale (~1.4M edges): both instances land near 13M edges
  // at scale 1.0.  Rows < cols keeps them deficient, so push-relabel
  // stays busy past the greedy init instead of retiring immediately.
  const auto sized = [&](double v) {
    return std::max<graph::index_t>(
        64, static_cast<graph::index_t>(v * opt.scale));
  };
  struct Massive {
    int id;
    const char* name;
    graph::BipartiteGraph g;
  };
  std::vector<Massive> metas;
  // Hubby shape: a hub column every 500 columns (~0.4% of rows each) over
  // a sparse background — the straggler shape intra-item min-combine and
  // the edge-balanced shard cut exist for.
  metas.push_back({101, "massive_hubs",
                   graph::gen::huge_bipartite(sized(920e3), sized(1e6), 6.0,
                                              0.004, 500, opt.seed + 101)});
  // Uniform control: same scale, no hubs — shard scaling with nothing for
  // balancing to fix.
  metas.push_back({102, "massive_uniform",
                   graph::gen::huge_bipartite(sized(960e3), sized(1e6), 13.0,
                                              0.0, 0, opt.seed + 102)});
  std::vector<BuiltInstance> out;
  out.reserve(metas.size());
  for (Massive& m : metas) {
    BuiltInstance bi;
    bi.meta.id = m.id;
    bi.meta.name = m.name;
    bi.meta.cls = graph::InstanceClass::kCombinat;
    bi.meta.paper.rows = m.g.num_rows();
    bi.meta.paper.cols = m.g.num_cols();
    bi.meta.paper.edges = m.g.num_edges();
    bi.g = std::move(m.g);
    bi.init = matching::cheap_matching(bi.g);
    bi.initial_cardinality = bi.init.cardinality();
    bi.maximum_cardinality =
        matching::hopcroft_karp(bi.g, bi.init).cardinality();
    compute_instance_features(bi);
    out.push_back(std::move(bi));
  }
  return out;
}

std::vector<PolicyInstance> build_policy_suite(graph::index_t n,
                                               double massive_scale,
                                               std::uint64_t seed,
                                               double structured_scale) {
  namespace gen = graph::gen;
  using graph::index_t;
  const auto frac = [](index_t base, double f) {
    return std::max<index_t>(1, static_cast<index_t>(f * base));
  };
  struct Spec {
    const char* name;
    const char* suite;
    std::function<graph::BipartiteGraph()> make;
  };
  // Mirrors balance_skew's instance_set: a uniform control group and a
  // degree-skewed group, so the policy is calibrated across both regimes
  // the balanced/vertex-parallel split distinguishes.
  const std::vector<Spec> specs{
      {"uniform_random", "uniform",
       [n, seed] {
         return gen::random_uniform(n, n, 5 * static_cast<graph::offset_t>(n),
                                    seed);
       }},
      {"uniform_deficient", "uniform",
       [n, seed, frac] {
         return gen::random_uniform(frac(n, 0.95), n,
                                    5 * static_cast<graph::offset_t>(n), seed);
       }},
      {"planted", "uniform",
       [n, seed] { return gen::planted_perfect(n, 2.0, seed); }},
      {"hub_block", "skew",
       [n, seed, frac] {
         return gen::skewed_hubs(frac(n, 0.9), n, std::max<index_t>(8, n / 16),
                                 0.016, 2.5, seed, /*scatter=*/false);
       }},
      {"hub_block_sparse", "skew",
       [n, seed, frac] {
         return gen::skewed_hubs(frac(n, 0.88), n,
                                 std::max<index_t>(8, n / 12), 0.012, 2.5,
                                 seed, /*scatter=*/false);
       }},
      {"power_law", "skew",
       [n, seed, frac] {
         return gen::chung_lu(frac(n, 0.9), n, 6.0, 2.2, seed);
       }},
  };
  std::vector<PolicyInstance> out;
  out.reserve(specs.size() + 2);
  for (const Spec& s : specs) {
    BuiltInstance bi;
    bi.meta.name = s.name;
    bi.g = s.make();
    bi.init = matching::cheap_matching(bi.g);
    bi.initial_cardinality = bi.init.cardinality();
    bi.maximum_cardinality =
        matching::hopcroft_karp(bi.g, bi.init).cardinality();
    compute_instance_features(bi);
    out.push_back({s.suite, std::move(bi)});
  }
  if (structured_scale > 0.0) {
    // Table I shapes with near-perfect greedy inits (meshes, traces,
    // co-author graphs): short augmenting paths make the augmenting-path
    // family (pf, hk, p-dbfs) beat push-relabel here, often severalfold —
    // the heterogeneity that makes per-instance selection worth having.
    const char* const structured[] = {"coPapersDBLP", "hugetrace-00020",
                                      "hugebubbles-00000"};
    SuiteOptions so;
    so.scale = structured_scale;
    so.seed = seed;
    for (const char* name : structured) {
      const graph::Instance* meta = nullptr;
      for (const auto& inst : graph::paper_instances())
        if (inst.name == name) meta = &inst;
      if (meta == nullptr)
        throw std::logic_error(std::string("policy suite lost instance ") +
                               name);
      out.push_back({"structured", build_instance(*meta, so)});
    }
  }
  if (massive_scale > 0.0) {
    SuiteOptions massive;
    massive.scale = massive_scale;
    massive.seed = seed;
    for (BuiltInstance& bi : build_massive_suite(massive))
      out.push_back({"massive", std::move(bi)});
  }
  return out;
}

std::vector<BuiltInstance> build_suite(const SuiteOptions& opt) {
  const std::vector<graph::Instance> metas =
      graph::select_instances(opt.stride);
  std::vector<BuiltInstance> out(metas.size());
  unsigned jobs = opt.jobs ? opt.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = std::min<unsigned>(jobs, static_cast<unsigned>(metas.size()));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < metas.size(); ++i)
      out[i] = build_instance(metas[i], opt);
    return out;
  }
  // Builds are independent and deterministic in (meta, opt), so a static
  // claim order changes nothing but the wall time.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= metas.size()) return;
      out[i] = build_instance(metas[i], opt);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (unsigned t = 0; t + 1 < jobs; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  return out;
}

PipelineInstance to_pipeline_instance(const BuiltInstance& bi) {
  PipelineInstance inst;
  inst.name = bi.meta.name;
  inst.graph = bi.g;
  inst.init = bi.init;
  inst.initial_cardinality = bi.initial_cardinality;
  inst.maximum_cardinality = bi.maximum_cardinality;
  inst.fingerprint = graph::structural_fingerprint(bi.g);
  // Carry (or fill) the policy features so a service admitting this
  // instance resolves `auto` requests without recomputing them.
  inst.features = bi.features.edges > 0
                      ? bi.features
                      : policy::compute_features(bi.g, bi.initial_cardinality);
  inst.degree_skew = inst.features.degree_skew;
  return inst;
}

PipelineReport run_grid(const std::vector<BuiltInstance>& suite,
                        const SuiteOptions& opt) {
  MatchingPipeline pipe({.device_backend = opt.backend,
                         .device_threads = opt.threads,
                         .solver_threads = opt.threads,
                         .max_concurrent_jobs = opt.jobs,
                         .tracer = opt.tracer()});
  for (const BuiltInstance& bi : suite)
    pipe.add_instance(to_pipeline_instance(bi));
  return pipe.run_specs(opt.algos);
}

AlgoResult run_solver(const Solver& solver, device::Device& dev,
                      const BuiltInstance& bi, unsigned threads) {
  return run_solver(solver, SolveContext{.device = &dev, .threads = threads},
                    bi);
}

AlgoResult run_solver(const Solver& solver, const SolveContext& ctx,
                      const BuiltInstance& bi) {
  // Phase attribution: the tracer's per-phase totals are cumulative, so
  // this run's breakdown is the difference across the solve.
  obs::Tracer* const tracer =
      ctx.tracer != nullptr
          ? ctx.tracer
          : ctx.device != nullptr ? ctx.device->tracer() : nullptr;
  const bool tracing = tracer != nullptr && tracer->enabled();
  std::map<std::string, double> before;
  if (tracing) before = tracer->totals_ms("phase");
  const SolveResult result = solver.run(ctx, bi.g, bi.init);
  AlgoResult r;
  if (tracing) {
    for (const auto& [phase, ms] : tracer->totals_ms("phase")) {
      const auto it = before.find(phase);
      const double delta = ms - (it != before.end() ? it->second : 0.0);
      if (delta > 0.0) r.phases[phase] = delta;
    }
  }
  r.seconds = result.stats.wall_ms / 1e3;
  r.modeled_seconds = result.stats.modeled_ms / 1e3;
  r.cardinality = result.stats.cardinality;
  r.launches = result.stats.device_launches;
  const bool maximum = solver.caps().exact
                           ? r.cardinality == bi.maximum_cardinality
                           : r.cardinality <= bi.maximum_cardinality;
  r.ok = result.matching.is_valid(bi.g) && maximum;
  if (!r.ok)
    std::cerr << "RESULT CHECK FAILED for " << solver.name() << " on "
              << bi.meta.name << ": got " << r.cardinality << ", want "
              << bi.maximum_cardinality
              << (result.matching.is_valid(bi.g) ? "" : " (invalid matching)")
              << '\n';
  return r;
}

AlgoResult run_solver(const std::string& name, device::Device& dev,
                      const BuiltInstance& bi, unsigned threads) {
  return run_solver(*SolverRegistry::instance().create(name), dev, bi,
                    threads);
}

// ---- machine-readable results (`--json`) -----------------------------------

namespace {

/// JSON string escaping for the few metacharacters our labels can contain.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles with enough digits to round-trip (max_digits10 = 17).
std::string json_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

JsonRecord to_json_record(const std::string& instance,
                          const std::string& suite, const std::string& algo,
                          const AlgoResult& r, device::Backend backend,
                          const policy::InstanceFeatures* features) {
  JsonRecord rec{instance,   suite,         algo, r.seconds, r.modeled_seconds,
                 r.launches, r.cardinality, r.ok,
                 std::string(device::backend_name(backend)), r.phases, {}};
  if (features != nullptr) {
    rec.features = {{"n", static_cast<double>(features->rows)},
                    {"m", static_cast<double>(features->cols)},
                    {"density", features->density},
                    {"skew", features->degree_skew},
                    {"hub_mass", features->hub_mass},
                    {"deficiency_est", features->deficiency_est}};
  }
  return rec;
}

void write_json(const std::string& path, const std::string& bench,
                const std::vector<JsonRecord>& records,
                const std::vector<std::pair<std::string, double>>& summary) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json: cannot open " + path);
  out << "{\n  \"bench\": \"" << json_escape(bench) << "\",\n"
      << "  \"schema\": 2,\n"
      << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "    {\"instance\": \"" << json_escape(r.instance)
        << "\", \"suite\": \"" << json_escape(r.suite) << "\", \"algo\": \""
        << json_escape(r.algo) << "\", \"wall_s\": " << json_number(r.wall_s)
        << ", \"modeled_s\": " << json_number(r.modeled_s)
        << ", \"launches\": " << r.launches << ", \"matched\": " << r.matched
        << ", \"ok\": " << (r.ok ? "true" : "false") << ", \"backend\": \""
        << json_escape(r.backend) << "\"";
    if (!r.phases.empty()) {
      out << ", \"phases\": {";
      bool sep = false;
      for (const auto& [phase, ms] : r.phases) {
        out << (sep ? ", " : "") << "\"" << json_escape(phase)
            << "\": " << json_number(ms);
        sep = true;
      }
      out << "}";
    }
    if (!r.features.empty()) {
      out << ", \"features\": {";
      bool sep = false;
      for (const auto& [name, value] : r.features) {
        out << (sep ? ", " : "") << "\"" << json_escape(name)
            << "\": " << json_number(value);
        sep = true;
      }
      out << "}";
    }
    out << "}" << (i + 1 < records.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"summary\": {";
  for (std::size_t i = 0; i < summary.size(); ++i)
    out << (i ? ", " : "") << "\"" << json_escape(summary[i].first)
        << "\": " << json_number(summary[i].second);
  out << "}\n}\n";
  if (!out.good()) throw std::runtime_error("write_json: write failed: " + path);
}

void print_header(const std::string& title, const SuiteOptions& opt,
                  std::size_t num_instances) {
  std::cout << "# " << title << '\n'
            << "# instances: " << num_instances << " (stride " << opt.stride
            << "), scale " << opt.scale << " of Table I sizes, seed "
            << opt.seed << '\n'
            << "# hardware: " << std::thread::hardware_concurrency()
            << " hardware threads; backend = "
            << (opt.backend == device::Backend::kHost
                    ? "host multicore executor (measured wall time)"
                    : "CPU-simulated bulk-synchronous engine (see DESIGN.md)")
            << '\n'
            << "# note: GPU algorithms report modeled C2050 device time by"
               " default (DESIGN.md D9); pass --no-model for raw simulator"
               " wall time.  CPU algorithms always report wall time.\n";
}

}  // namespace bpm::bench
