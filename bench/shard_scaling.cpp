// Shard-scaling grid: `g-pr-sh` across shard counts x engine fleets x
// backends on the `massive` suite (streamed `gen::huge_bipartite`
// instances ~10x the Table I analogues) plus a degree-skewed control
// suite.
//
// Two time axes per cell:
//  * wall(s)  — measured host wall of the whole sharded solve.  On a box
//    with fewer cores than engines the shards time-share the CPU, so wall
//    stays flat with K: it answers "what did THIS machine pay".
//  * fleet(s) — the K-engine-fleet critical path
//    (`GprStats::shard_critical_ms`: per-round max over shard streams
//    plus the coordinator's relabels; the sim backend's modeled time is
//    the same quantity under the C2050 model).  It answers "what would a
//    one-engine-per-shard deployment pay", which is the number shard
//    scaling is about.
//
// `--json <path>` records the full grid; the summary carries per-K
// geomean speedups vs K=1 on both axes, per suite and backend — the
// acceptance numbers BENCH_shard_scaling.json is committed with.

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/generators.hpp"
#include "harness_common.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bpm;
using graph::index_t;
namespace gen = graph::gen;

/// One grid cell: K shards over E engines of one backend.
struct Cell {
  int shards;
  int engines;
  device::Backend backend;

  [[nodiscard]] std::string label() const {
    return std::string(device::backend_name(backend)) + ":K" +
           std::to_string(shards) + "E" + std::to_string(engines);
  }
};

std::vector<std::shared_ptr<device::Engine>> build_fleet(
    const Cell& cell, unsigned threads) {
  std::vector<std::shared_ptr<device::Engine>> fleet;
  fleet.reserve(static_cast<std::size_t>(cell.engines));
  for (int e = 0; e < cell.engines; ++e)
    fleet.push_back(std::make_shared<device::Engine>(device::EngineDescriptor{
        .backend = cell.backend,
        .mode = device::ExecMode::kConcurrent,
        .threads = threads}));
  return fleet;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bpm::bench;

  CliParser cli("shard_scaling",
                "g-pr-sh across shards x engines x backends on the massive "
                "and skew suites");
  cli.add_option("scale",
                 "massive-suite size multiplier (1.0 = ~13M edges/instance)",
                 "1.0");
  cli.add_option("skew-n", "column count of the skew-suite instances",
                 "30000");
  cli.add_option("reps",
                 "timed repetitions per (instance, cell); best wall wins",
                 "1");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("threads", "workers per engine (0 = hardware)", "0");
  cli.add_flag("verbose", "per-instance build info");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_flag("skip-massive", "skew suite only (quick smoke)");
  cli.add_option("json",
                 "write the cell grid (wall/fleet/launches/matched) as JSON "
                 "to this path (empty = off)",
                 "");
  register_observability_flags(cli);
  SuiteOptions opt;
  index_t skew_n = 0;
  int reps = 1;
  bool skip_massive = false;
  try {
    cli.parse(argc, argv);
    opt.scale = cli.get_double("scale");
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<unsigned>(cli.get_int("threads"));
    opt.verbose = cli.get_flag("verbose");
    opt.csv = cli.get_flag("csv");
    opt.json_path = cli.get_string("json");
    skew_n = static_cast<index_t>(cli.get_int("skew-n"));
    reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    skip_massive = cli.get_flag("skip-massive");
    observability_from_cli(cli, opt);
    if (opt.scale <= 0.0) throw std::invalid_argument("--scale must be > 0");
    if (skew_n < 64) throw std::invalid_argument("--skew-n must be >= 64");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  // The grid: host cells sweep K with a matching fleet (the shard-scaling
  // story); sim cells anchor the modeled device at the endpoints.
  const std::vector<Cell> cells{
      {1, 1, device::Backend::kHost}, {2, 2, device::Backend::kHost},
      {4, 4, device::Backend::kHost}, {1, 1, device::Backend::kSim},
      {4, 4, device::Backend::kSim},
  };

  // Suites: massive (the point of sharding) + a smaller degree-skewed
  // control where the hub straggler, not memory, is the enemy.
  struct Labeled {
    std::string suite;
    BuiltInstance bi;
  };
  std::vector<Labeled> instances;
  if (!skip_massive)
    for (BuiltInstance& bi : build_massive_suite(opt))
      instances.push_back({"massive", std::move(bi)});
  {
    const auto rows = static_cast<index_t>(0.9 * static_cast<double>(skew_n));
    struct SkewSpec {
      const char* name;
      graph::BipartiteGraph g;
    };
    std::vector<SkewSpec> skews;
    skews.push_back(
        {"skew_hub_block",
         gen::skewed_hubs(rows, skew_n, std::max<index_t>(8, skew_n / 8),
                          0.008, 3.0, opt.seed, /*scatter=*/false)});
    skews.push_back({"skew_huge_hubs",
                     gen::huge_bipartite(rows, skew_n, 4.0, 0.01,
                                         std::max<index_t>(1, skew_n / 64),
                                         opt.seed + 7)});
    for (SkewSpec& s : skews) {
      BuiltInstance bi;
      bi.meta.name = s.name;
      bi.g = std::move(s.g);
      bi.init = matching::cheap_matching(bi.g);
      bi.initial_cardinality = bi.init.cardinality();
      bi.maximum_cardinality =
          matching::hopcroft_karp(bi.g, bi.init).cardinality();
      compute_instance_features(bi);
      instances.push_back({"skew", std::move(bi)});
    }
  }

  std::cout << "# shard_scaling — g-pr-sh across shards x engines x "
               "backends\n# instances: "
            << instances.size() << ", cells: " << cells.size() << ", seed "
            << opt.seed << ", reps " << reps << '\n';

  std::vector<std::string> headers{"instance", "suite", "MM"};
  for (const Cell& cell : cells) {
    headers.push_back(cell.label() + " wall(s)");
    headers.push_back(cell.label() + " fleet(s)");
  }
  Table table(std::move(headers), 4);

  // Per (suite, cell) series for the geomean summaries.
  struct Series {
    std::vector<double> wall, fleet;
  };
  std::vector<std::vector<Series>> series(
      2, std::vector<Series>(cells.size()));
  const auto group_of = [](const std::string& s) {
    return s == "massive" ? 0 : 1;
  };

  bool all_ok = true;
  std::vector<JsonRecord> records;
  for (const Labeled& inst : instances) {
    if (opt.verbose)
      std::cout << "  " << inst.bi.meta.name << ": "
                << inst.bi.g.describe() << '\n';
    std::vector<Table::Cell> row{
        inst.bi.meta.name, inst.suite,
        static_cast<std::int64_t>(inst.bi.maximum_cardinality)};
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const Cell& cell = cells[c];
      const auto fleet = build_fleet(cell, opt.threads);
      device::Device dev(fleet.front());
      attach_tracer(opt, dev);
      SolveContext ctx{.device = &dev,
                       .threads = opt.threads,
                       .engines = fleet,
                       .tracer = opt.tracer()};
      const auto solver = SolverRegistry::instance().create("g-pr-sh");
      if (!solver->set_option("shards", std::to_string(cell.shards)))
        throw std::logic_error("g-pr-sh lost its shards option");
      AlgoResult best;
      for (int rep = 0; rep < reps; ++rep) {
        const AlgoResult r = run_solver(*solver, ctx, inst.bi);
        all_ok &= r.ok;
        if (rep == 0 || r.seconds < best.seconds) best = r;
      }
      row.emplace_back(best.seconds);
      row.emplace_back(best.modeled_seconds);
      series[group_of(inst.suite)][c].wall.push_back(best.seconds);
      series[group_of(inst.suite)][c].fleet.push_back(
          best.modeled_seconds > 0.0 ? best.modeled_seconds : best.seconds);
      records.push_back(to_json_record(inst.bi.meta.name, inst.suite,
                                       "g-pr-sh:" + cell.label(), best,
                                       cell.backend, &inst.bi.features));
    }
    table.add_row(std::move(row));
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  // Geomean speedups of every cell over its backend's K=1 anchor, per
  // suite, on both axes.  Fleet is the shard-scaling number; wall is
  // reported next to it so a core-starved box's flat wall is visible
  // rather than hidden.
  std::vector<std::pair<std::string, double>> summary;
  const char* group_names[2] = {"massive", "skew"};
  std::cout << '\n';
  for (int grp = 0; grp < 2; ++grp) {
    if (series[grp][0].wall.empty()) continue;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      // Anchor: the K=1 cell of the same backend.
      std::size_t anchor = c;
      for (std::size_t a = 0; a < cells.size(); ++a)
        if (cells[a].backend == cells[c].backend && cells[a].shards == 1)
          anchor = a;
      if (anchor == c) continue;
      const double wall_speedup =
          geometric_mean(series[grp][anchor].wall) /
          geometric_mean(series[grp][c].wall);
      const double fleet_speedup =
          geometric_mean(series[grp][anchor].fleet) /
          geometric_mean(series[grp][c].fleet);
      const std::string label =
          std::string(group_names[grp]) + ":" + cells[c].label();
      summary.emplace_back("wall_speedup:" + label, wall_speedup);
      summary.emplace_back("fleet_speedup:" + label, fleet_speedup);
      std::cout << label << ": geomean wall speedup " << wall_speedup
                << "x, fleet critical-path speedup " << fleet_speedup
                << "x (vs " << cells[anchor].label() << ")\n";
    }
  }
  try {
    write_json(opt.json_path, "shard_scaling", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "\nExpected shape: fleet critical path drops with K (each "
               "round costs the max shard, not the sum); wall follows only "
               "when the box has cores for every engine.\n";
  return all_ok ? 0 : 1;
}
