// Microbenchmarks (google-benchmark) of the algorithm-level kernels on a
// representative mid-size instance: the global relabel (G-GR, one BFS
// level per launch), the full G-PR variants, the G-HKDW comparator, and
// the cheap-matching initialisation that every algorithm shares.

#include <benchmark/benchmark.h>

#include "core/g_gr.hpp"
#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"

namespace {

using namespace bpm;
using device::Device;
using device::ExecMode;

const graph::BipartiteGraph& test_graph() {
  static const graph::BipartiteGraph g =
      graph::gen::chung_lu(50000, 50000, 6.0, 2.4, 42);
  return g;
}

const matching::Matching& test_init() {
  static const matching::Matching m = matching::cheap_matching(test_graph());
  return m;
}

void BM_CheapMatching(benchmark::State& state) {
  const auto& g = test_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(matching::cheap_matching(g).cardinality());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_CheapMatching);

void BM_GlobalRelabel(benchmark::State& state) {
  const auto& g = test_graph();
  const auto& init = test_init();
  Device dev({.mode = ExecMode::kConcurrent});
  gpu::DeviceState st(g.num_rows(), g.num_cols());
  st.mu_row.assign_from(init.row_match);
  st.mu_col.assign_from(init.col_match);
  for (auto _ : state) {
    const auto r = gpu::g_gr(dev, g, st);
    benchmark::DoNotOptimize(r.max_level);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_GlobalRelabel);

void BM_GprVariant(benchmark::State& state) {
  const auto& g = test_graph();
  const auto& init = test_init();
  Device dev({.mode = ExecMode::kConcurrent});
  gpu::GprOptions opt;
  opt.variant = static_cast<gpu::GprVariant>(state.range(0));
  for (auto _ : state) {
    const auto r = gpu::g_pr(dev, g, init, opt);
    benchmark::DoNotOptimize(r.matching.cardinality());
  }
  switch (opt.variant) {
    case gpu::GprVariant::kFirst: state.SetLabel("First"); break;
    case gpu::GprVariant::kNoShrink: state.SetLabel("NoShr"); break;
    case gpu::GprVariant::kShrink: state.SetLabel("Shr"); break;
  }
}
BENCHMARK(BM_GprVariant)
    ->Arg(static_cast<int>(gpu::GprVariant::kFirst))
    ->Arg(static_cast<int>(gpu::GprVariant::kNoShrink))
    ->Arg(static_cast<int>(gpu::GprVariant::kShrink))
    ->Unit(benchmark::kMillisecond);

void BM_GHkdw(benchmark::State& state) {
  const auto& g = test_graph();
  const auto& init = test_init();
  Device dev({.mode = ExecMode::kConcurrent});
  for (auto _ : state) {
    const auto r = gpu::g_hk(dev, g, init);
    benchmark::DoNotOptimize(r.matching.cardinality());
  }
  state.SetLabel("G-HKDW");
}
BENCHMARK(BM_GHkdw)->Unit(benchmark::kMillisecond);

}  // namespace
