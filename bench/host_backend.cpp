// Backend comparison (BENCH_host_backend.json): the same solver specs on
// the same instances, once per execution backend — the modeled-C2050 sim
// against the real multicore host executor (`device::HostParallelEngine`).
//
// Both backends run every launch's kernel lambda on the same worker pool
// size (--threads); what differs is what surrounds the kernel.  The sim
// charges the analytic device model per launch — lane tallies, straggler
// accounting, a balanced partition per edge-balanced launch — because its
// *product* is the modeled time.  The host backend's product is the wall
// time itself: it skips all model bookkeeping, applies a serial cutoff to
// small grids (`EngineDescriptor::host_grain`), and claims oversubscribed
// chunks dynamically.  The per-suite `host_wall_speedup` geomeans report
// how much wall time that buys on identical matching work; every run is
// verified against the Hopcroft–Karp ground truth first.
//
// `--json <path>` records the instance x algo x backend grid plus the
// summaries — the artifact committed as BENCH_host_backend.json and
// uploaded by CI.

#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "harness_common.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bpm;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

struct BenchInstance {
  std::string name;
  std::string suite;  ///< "uniform" or "skew"
  std::function<BipartiteGraph(index_t n, std::uint64_t seed)> make;
};

// The balance_skew suites: a uniform control group and a degree-skewed
// group whose hub blocks are where balanced launches (and the straggler
// model) matter.  Comparing backends on the same shapes keeps the two
// benchmark artifacts directly relatable.
std::vector<BenchInstance> instance_set() {
  const auto frac = [](index_t n, double f) {
    return std::max<index_t>(1, static_cast<index_t>(f * n));
  };
  return {
      {"uniform_random", "uniform",
       [](index_t n, std::uint64_t s) {
         return gen::random_uniform(n, n, 5 * static_cast<graph::offset_t>(n),
                                    s);
       }},
      {"uniform_deficient", "uniform",
       [frac](index_t n, std::uint64_t s) {
         return gen::random_uniform(frac(n, 0.95), n,
                                    5 * static_cast<graph::offset_t>(n), s);
       }},
      {"planted", "uniform",
       [](index_t n, std::uint64_t s) {
         return gen::planted_perfect(n, 2.0, s);
       }},
      {"hub_block", "skew",
       [frac](index_t n, std::uint64_t s) {
         return gen::skewed_hubs(frac(n, 0.9), n, std::max<index_t>(8, n / 8),
                                 0.008, 3.0, s, /*scatter=*/false);
       }},
      {"hub_block_sparse", "skew",
       [frac](index_t n, std::uint64_t s) {
         return gen::skewed_hubs(frac(n, 0.88), n,
                                 std::max<index_t>(8, n / 12), 0.012, 2.5, s,
                                 /*scatter=*/false);
       }},
      {"power_law", "skew",
       [frac](index_t n, std::uint64_t s) {
         return gen::chung_lu(frac(n, 0.9), n, 6.0, 2.2, s);
       }},
  };
}

constexpr device::Backend kBackends[2] = {device::Backend::kSim,
                                          device::Backend::kHost};

}  // namespace

int main(int argc, char** argv) {
  using namespace bpm::bench;

  CliParser cli("host_backend",
                "sim vs host backend wall time for the same solver specs on "
                "uniform and degree-skewed suites");
  cli.add_option("n", "base column count of the generated instances", "6000");
  cli.add_option("reps",
                 "timed repetitions per (instance, algo, backend); best wall "
                 "wins",
                 "3");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("threads",
                 "worker threads for BOTH backends (0 = hardware)", "8");
  cli.add_flag("verbose", "per-instance build info");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_option("json",
                 "write instance x algo x backend results as JSON to this "
                 "path (empty = off)",
                 "");
  add_algo_flag(cli, "g-pr-shr,g-pr-wb");
  register_observability_flags(cli);
  SuiteOptions opt;
  index_t n = 0;
  int reps = 1;
  try {
    cli.parse(argc, argv);
    exit_if_list_algos(cli);
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<unsigned>(cli.get_int("threads"));
    opt.verbose = cli.get_flag("verbose");
    opt.csv = cli.get_flag("csv");
    opt.json_path = cli.get_string("json");
    opt.algos = solver_specs_from_cli(cli);
    observability_from_cli(cli, opt);
    n = static_cast<index_t>(cli.get_int("n"));
    reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    if (n < 64) throw std::invalid_argument("--n must be at least 64");
    if (opt.algos.empty()) throw std::invalid_argument("--algo must be set");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const auto set = instance_set();
  std::cout << "# host_backend — sim vs host executor on identical work\n"
            << "# instances: " << set.size() << " (n = " << n << "), seed "
            << opt.seed << ", reps " << reps << ", threads " << opt.threads
            << " on both backends\n";

  // One device per backend, same worker count: the comparison isolates
  // what the backend *does around* the kernels, not how many threads run.
  std::vector<std::unique_ptr<device::Device>> devices;
  for (const device::Backend backend : kBackends)
    devices.push_back(std::make_unique<device::Device>(
        device::DeviceOptions{.backend = backend,
                              .mode = device::ExecMode::kConcurrent,
                              .num_threads = opt.threads}));
  for (const auto& dev : devices) attach_tracer(opt, *dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  std::vector<std::string> headers{"instance", "suite", "algo", "MM",
                                   "sim wall(s)", "sim model(s)",
                                   "host wall(s)", "host speedup"};
  Table table(std::move(headers), 4);

  // Per (suite group, algo) wall-time series for the geomean summaries.
  struct Series {
    std::vector<double> wall[2];  ///< indexed like kBackends
  };
  std::vector<std::vector<Series>> series(
      2, std::vector<Series>(solvers.size()));
  const auto group_of = [](const std::string& s) {
    return s == "skew" ? 1 : 0;
  };

  bool all_ok = true;
  std::vector<JsonRecord> records;
  for (const auto& inst : set) {
    BuiltInstance bi;
    bi.meta.name = inst.name;
    bi.g = inst.make(n, opt.seed);
    bi.init = matching::cheap_matching(bi.g);
    bi.initial_cardinality = bi.init.cardinality();
    bi.maximum_cardinality =
        matching::hopcroft_karp(bi.g, bi.init).cardinality();
    compute_instance_features(bi);
    if (opt.verbose)
      std::cout << "  built " << inst.name << ": " << bi.g.describe() << '\n';

    for (std::size_t a = 0; a < solvers.size(); ++a) {
      AlgoResult best[2];
      // Backends interleave within each rep so slow machine drift (CPU
      // frequency, noisy neighbours) cannot bias one backend's block.
      for (int rep = 0; rep < reps; ++rep) {
        for (int b = 0; b < 2; ++b) {
          const AlgoResult r =
              run_solver(*solvers[a], *devices[b], bi, opt.threads);
          all_ok &= r.ok;
          if (rep == 0 || r.seconds < best[b].seconds) best[b] = r;
        }
      }
      for (int b = 0; b < 2; ++b) {
        series[group_of(inst.suite)][a].wall[b].push_back(best[b].seconds);
        records.push_back(to_json_record(inst.name, inst.suite,
                                         opt.algos[a].canonical(), best[b],
                                         kBackends[b], &bi.features));
      }
      table.add_row({inst.name, inst.suite, opt.algos[a].canonical(),
                     static_cast<std::int64_t>(bi.maximum_cardinality),
                     best[0].seconds, best[0].modeled_seconds,
                     best[1].seconds, best[0].seconds / best[1].seconds});
    }
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  // Geomean host-over-sim wall speedup per (suite group, algo) — the
  // numbers the acceptance story reads from BENCH_host_backend.json.
  std::vector<std::pair<std::string, double>> summary;
  const char* group_names[2] = {"uniform", "skew"};
  std::cout << '\n';
  for (int grp = 0; grp < 2; ++grp) {
    std::vector<double> suite_wall[2];  ///< all algos pooled, per backend
    for (std::size_t a = 0; a < solvers.size(); ++a) {
      const double sim_wall = geometric_mean(series[grp][a].wall[0]);
      const double host_wall = geometric_mean(series[grp][a].wall[1]);
      const double speedup = sim_wall / host_wall;
      const std::string label = std::string(group_names[grp]) + ":" +
                                opt.algos[a].canonical();
      summary.emplace_back("host_wall_speedup:" + label, speedup);
      std::cout << label << ": geomean host wall speedup " << speedup
                << "x (sim " << sim_wall << "s -> host " << host_wall
                << "s)\n";
      for (int b = 0; b < 2; ++b)
        suite_wall[b].insert(suite_wall[b].end(),
                             series[grp][a].wall[b].begin(),
                             series[grp][a].wall[b].end());
    }
    // The headline per-suite number: one geomean over every (instance,
    // algo) pair of the group.
    const double suite_speedup = geometric_mean(suite_wall[0]) /
                                 geometric_mean(suite_wall[1]);
    summary.emplace_back(
        std::string("host_wall_speedup:") + group_names[grp] + ":all",
        suite_speedup);
    std::cout << group_names[grp] << " suite: geomean host wall speedup "
              << suite_speedup << "x\n";
  }
  try {
    write_json(opt.json_path, "host_backend", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "\nExpected shape: the host backend wins wall time everywhere "
               "— it runs the same kernels without the sim's per-launch "
               "model accounting — and wins biggest on the skew suite, "
               "where the sim also pays lane tallies and a balanced "
               "partition per edge-balanced launch.\n";
  return all_ok ? 0 : 1;
}
