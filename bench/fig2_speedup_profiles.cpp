// Reproduces paper Figure 2: speedup profiles of the parallel algorithms
// (G-PR, G-HKDW, P-DBFS) relative to sequential PR.  A point (x, y) means:
// with probability y, the algorithm achieves speedup at least x over PR on
// a random instance of the suite.
//
// Paper shape: G-PR dominates — P(speedup >= 5) is 39% for G-PR vs 21%
// (G-HKDW) and 14% (P-DBFS); G-PR beats PR on 82% of graphs.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("fig2_speedup_profiles",
                "Figure 2: speedup profiles of G-PR, G-HKDW, P-DBFS vs "
                "sequential PR");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Figure 2 — speedup profiles vs sequential PR", opt,
               suite.size());

  device::Device dev(
      {.mode = device::ExecMode::kConcurrent, .num_threads = opt.threads});

  bool all_ok = true;
  std::vector<double> spd_gpr, spd_ghkdw, spd_pdbfs;
  for (const auto& bi : suite) {
    const AlgoResult pr = run_seq_pr(bi);
    const AlgoResult gpr = run_g_pr(dev, bi, gpu::GprOptions{});
    const AlgoResult ghkdw = run_g_hkdw(dev, bi);
    const AlgoResult pdbfs = run_p_dbfs(bi, opt.threads);
    all_ok &= pr.ok && gpr.ok && ghkdw.ok && pdbfs.ok;
    spd_gpr.push_back(pr.seconds / device_seconds(gpr, opt));
    spd_ghkdw.push_back(pr.seconds / device_seconds(ghkdw, opt));
    spd_pdbfs.push_back(pr.seconds / pdbfs.seconds);
    if (opt.verbose)
      std::cout << "  " << bi.meta.name << ": PR=" << pr.seconds
                << "s  G-PR x" << spd_gpr.back() << "  G-HKDW x"
                << spd_ghkdw.back() << "  P-DBFS x" << spd_pdbfs.back()
                << '\n';
  }

  std::vector<double> xs;
  for (double x = 0.0; x <= 10.0; x += 0.5) xs.push_back(x);

  Table table({"x (speedup)", "G-PR", "G-HKDW", "P-DBFS"}, 3);
  const auto p_gpr = speedup_profile(spd_gpr, xs);
  const auto p_ghkdw = speedup_profile(spd_ghkdw, xs);
  const auto p_pdbfs = speedup_profile(spd_pdbfs, xs);
  for (std::size_t i = 0; i < xs.size(); ++i)
    table.add_row({xs[i], p_gpr[i].fraction, p_ghkdw[i].fraction,
                   p_pdbfs[i].fraction});

  std::cout << "\nP(speedup >= x) over the suite (paper Figure 2):\n";
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  auto frac_at = [&](const std::vector<ProfilePoint>& p, double x) {
    for (const auto& pt : p)
      if (pt.x == x) return pt.fraction;
    return 0.0;
  };
  std::cout << "\nKey paper numbers: P(>=5) was 0.39 / 0.21 / 0.14 and "
               "P(>=1) for G-PR was 0.82.\n"
            << "Measured:          P(>=5) = " << frac_at(p_gpr, 5.0) << " / "
            << frac_at(p_ghkdw, 5.0) << " / " << frac_at(p_pdbfs, 5.0)
            << "; P(>=1) for G-PR = " << frac_at(p_gpr, 1.0) << "\n";
  return all_ok ? 0 : 1;
}
