// Reproduces paper Figure 2: speedup profiles of the parallel algorithms
// (default G-PR, G-HKDW, P-DBFS; any --algo set works) relative to
// sequential PR.  A point (x, y) means: with probability y, the algorithm
// achieves speedup at least x over PR on a random instance of the suite.
//
// Paper shape: G-PR dominates — P(speedup >= 5) is 39% for G-PR vs 21%
// (G-HKDW) and 14% (P-DBFS); G-PR beats PR on 82% of graphs.

#include <iostream>
#include <memory>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("fig2_speedup_profiles",
                "Figure 2: speedup profiles of the selected solvers vs "
                "sequential PR");
  register_suite_flags(cli, /*default_stride=*/1,
                       /*default_algos=*/"g-pr-shr,g-hkdw,p-dbfs",
                       /*with_json=*/true);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Figure 2 — speedup profiles vs sequential PR", opt,
               suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  const auto baseline = SolverRegistry::instance().create("seq-pr");
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  bool all_ok = true;
  std::vector<std::vector<double>> speedups(solvers.size());
  std::vector<JsonRecord> records;
  for (const auto& bi : suite) {
    const AlgoResult pr = run_solver(*baseline, dev, bi, opt.threads);
    all_ok &= pr.ok;
    records.push_back(
        to_json_record(bi.meta.name, to_string(bi.meta.cls), "seq-pr", pr,
                       opt.backend, &bi.features));
    if (opt.verbose)
      std::cout << "  " << bi.meta.name << ": PR=" << pr.seconds << "s";
    for (std::size_t i = 0; i < solvers.size(); ++i) {
      const AlgoResult r = run_solver(*solvers[i], dev, bi, opt.threads);
      all_ok &= r.ok;
      speedups[i].push_back(pr.seconds / device_seconds(r, opt));
      records.push_back(to_json_record(bi.meta.name, to_string(bi.meta.cls),
                                       opt.algos[i].canonical(), r,
                                       opt.backend, &bi.features));
      if (opt.verbose)
        std::cout << "  " << opt.algos[i].canonical() << " x"
                  << speedups[i].back();
    }
    if (opt.verbose) std::cout << '\n';
  }

  std::vector<double> xs;
  for (double x = 0.0; x <= 10.0; x += 0.5) xs.push_back(x);

  std::vector<std::string> headers{"x (speedup)"};
  for (const auto& spec : opt.algos) headers.push_back(spec.canonical());
  Table table(std::move(headers), 3);
  std::vector<std::vector<ProfilePoint>> profiles;
  for (const auto& spd : speedups) profiles.push_back(speedup_profile(spd, xs));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<Table::Cell> row{xs[i]};
    for (const auto& p : profiles) row.push_back(p[i].fraction);
    table.add_row(std::move(row));
  }

  std::cout << "\nP(speedup >= x) over the suite (paper Figure 2):\n";
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  auto frac_at = [&](const std::vector<ProfilePoint>& p, double x) {
    for (const auto& pt : p)
      if (pt.x == x) return pt.fraction;
    return 0.0;
  };
  std::cout << "\nKey paper numbers (G-PR / G-HKDW / P-DBFS): P(>=5) was "
               "0.39 / 0.21 / 0.14 and P(>=1) for G-PR was 0.82.\nMeasured:";
  std::vector<std::pair<std::string, double>> summary;
  for (std::size_t i = 0; i < solvers.size(); ++i) {
    std::cout << "  " << opt.algos[i].canonical()
              << " P(>=5)=" << frac_at(profiles[i], 5.0)
              << " P(>=1)=" << frac_at(profiles[i], 1.0);
    summary.emplace_back("p_speedup_ge5:" + opt.algos[i].canonical(),
                         frac_at(profiles[i], 5.0));
    summary.emplace_back("p_speedup_ge1:" + opt.algos[i].canonical(),
                         frac_at(profiles[i], 1.0));
  }
  std::cout << "\n";
  try {
    write_json(opt.json_path, "fig2_speedup_profiles", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
