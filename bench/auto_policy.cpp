// The adaptive-policy headline (BENCH_auto_policy.json): `auto` against
// every fixed solver of the pool and against the per-instance oracle on
// the shared policy suite (uniform + skew + massive).
//
// For each instance, every fixed spec runs --reps times (best wall wins);
// the oracle is the per-instance minimum over the fixed pool — the time a
// clairvoyant dispatcher would get.  `auto` runs the same way through the
// registry's AutoSolver (its wall time INCLUDES feature extraction and
// resolution, so the comparison charges the policy its own overhead), and
// its own runs feed the engine's online estimates as they would in the
// service.  The summary reports geomean(auto/oracle) — how far adaptive
// selection is from clairvoyance — and geomean(auto/fixed) per fixed spec,
// where < 1.0 means auto beats committing to that solver across the whole
// heterogeneous union.
//
// The committed artifact runs `--backend host` so ratios compare measured
// execution, with the embedded calibrated model (same machine class).

#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness_common.hpp"
#include "policy/auto_solver.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("auto_policy",
                "policy::AutoSolver vs fixed solvers vs per-instance "
                "oracle on the shared policy suite");
  cli.add_option("n", "base column count of the uniform/skew instances",
                 "20000");
  cli.add_option("massive-scale",
                 "scale of the massive group (0 = skip massive)", "0.4");
  cli.add_option("structured-scale",
                 "Table I scale of the structured group (0 = skip)", "0.03");
  cli.add_option("reps",
                 "timed repetitions per (instance, spec); best wall wins",
                 "2");
  cli.add_option("seed",
                 "generator seed (the default differs from "
                 "policy_calibrate's, so the headline measures bucket "
                 "transfer, not memorised instances)",
                 "2");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_option("backend",
                 "device backend: host (measured wall time) or sim", "host");
  cli.add_option("explore",
                 "epsilon-greedy exploration probability for auto", "0");
  cli.add_option("model",
                 "cost model JSON for auto (empty = embedded default)", "");
  cli.add_option("json",
                 "write the comparison (fixed pool + auto + summary "
                 "ratios) as JSON to this path (empty = off)",
                 "");
  cli.add_flag("smoke", "tiny sweep (n=2000, no massive, 1 rep) for CI");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  add_algo_flag(cli, "g-pr-wb,g-pr-shr,hk,hkdw,pf,p-dbfs,seq-pr");
  register_observability_flags(cli);

  SuiteOptions opt;
  graph::index_t n = 0;
  double massive_scale = 0.0, structured_scale = 0.0, explore = 0.0;
  int reps = 1;
  std::string model_path;
  try {
    cli.parse(argc, argv);
    exit_if_list_algos(cli);
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<unsigned>(cli.get_int("threads"));
    opt.backend = device::parse_backend(cli.get_string("backend"));
    opt.csv = cli.get_flag("csv");
    opt.json_path = cli.get_string("json");
    opt.algos = solver_specs_from_cli(cli);
    observability_from_cli(cli, opt);
    n = static_cast<graph::index_t>(cli.get_int("n"));
    massive_scale = cli.get_double("massive-scale");
    structured_scale = cli.get_double("structured-scale");
    explore = cli.get_double("explore");
    reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    model_path = cli.get_string("model");
    if (cli.get_flag("smoke")) {
      n = 2000;
      massive_scale = 0.0;
      structured_scale = 0.0;
      reps = 1;
    }
    if (n < 64) throw std::invalid_argument("--n must be at least 64");
    if (opt.algos.empty()) throw std::invalid_argument("--algo must be set");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  // The auto spec under test, tuned like a client would tune it.
  SolverSpec auto_spec = SolverSpec::parse("auto");
  if (!model_path.empty()) auto_spec.options.emplace_back("model", model_path);
  if (explore > 0.0)
    auto_spec.options.emplace_back("explore", std::to_string(explore));
  const std::unique_ptr<Solver> auto_solver = auto_spec.instantiate();

  const std::vector<PolicyInstance> suite =
      build_policy_suite(n, massive_scale, opt.seed, structured_scale);
  std::cout << "# auto_policy — adaptive selection vs fixed pool vs oracle\n"
            << "# instances: " << suite.size() << " (n = " << n
            << ", massive-scale " << massive_scale << ", structured-scale "
            << structured_scale << "), seed " << opt.seed
            << ", reps " << reps << ", backend "
            << device::backend_name(opt.backend) << ", model "
            << (model_path.empty() ? "embedded" : model_path) << '\n';

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  std::vector<std::string> headers{"instance", "suite", "oracle spec",
                                   "oracle(s)", "auto(s)", "auto/oracle"};
  for (const auto& spec : opt.algos) headers.push_back(spec.canonical());
  Table table(std::move(headers), 4);

  std::vector<double> auto_s, oracle_s;
  std::map<std::string, std::vector<double>> fixed_s;  // spec -> walls
  std::map<std::string, std::vector<double>> suite_auto, suite_oracle;
  std::vector<JsonRecord> records;
  bool all_ok = true;
  for (const PolicyInstance& inst : suite) {
    std::vector<double> wall(solvers.size(), 0.0);
    double oracle = 0.0;
    std::size_t oracle_a = 0;
    for (std::size_t a = 0; a < solvers.size(); ++a) {
      AlgoResult best;
      for (int rep = 0; rep < reps; ++rep) {
        const AlgoResult r = run_solver(*solvers[a], dev, inst.bi,
                                        opt.threads);
        all_ok &= r.ok;
        if (rep == 0 || r.seconds < best.seconds) best = r;
      }
      wall[a] = best.seconds;
      fixed_s[opt.algos[a].canonical()].push_back(best.seconds);
      if (a == 0 || best.seconds < oracle) {
        oracle = best.seconds;
        oracle_a = a;
      }
      records.push_back(to_json_record(inst.bi.meta.name, inst.suite,
                                       opt.algos[a].canonical(), best,
                                       opt.backend, &inst.bi.features));
    }
    AlgoResult auto_best;
    for (int rep = 0; rep < reps; ++rep) {
      const AlgoResult r =
          run_solver(*auto_solver, dev, inst.bi, opt.threads);
      all_ok &= r.ok;
      if (rep == 0 || r.seconds < auto_best.seconds) auto_best = r;
    }
    records.push_back(to_json_record(inst.bi.meta.name, inst.suite, "auto",
                                     auto_best, opt.backend,
                                     &inst.bi.features));
    auto_s.push_back(auto_best.seconds);
    oracle_s.push_back(oracle);
    suite_auto[inst.suite].push_back(auto_best.seconds);
    suite_oracle[inst.suite].push_back(oracle);

    std::vector<Table::Cell> row{inst.bi.meta.name, inst.suite,
                                 opt.algos[oracle_a].canonical(), oracle,
                                 auto_best.seconds,
                                 auto_best.seconds / oracle};
    for (const double w : wall) row.emplace_back(w);
    table.add_row(std::move(row));
  }
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  // Ratio geomeans: per-instance auto/oracle, and auto/fixed per spec —
  // the two numbers the acceptance gate reads.
  std::vector<double> vs_oracle;
  for (std::size_t i = 0; i < auto_s.size(); ++i)
    vs_oracle.push_back(auto_s[i] / oracle_s[i]);
  const double auto_vs_oracle = geometric_mean(vs_oracle);

  std::vector<std::pair<std::string, double>> summary;
  summary.emplace_back("auto_vs_oracle_geomean", auto_vs_oracle);
  for (const auto& [suite_name, autos] : suite_auto) {
    std::vector<double> ratios;
    const std::vector<double>& oracles = suite_oracle[suite_name];
    for (std::size_t i = 0; i < autos.size(); ++i)
      ratios.push_back(autos[i] / oracles[i]);
    summary.emplace_back("auto_vs_oracle_" + suite_name,
                         geometric_mean(ratios));
  }
  double worst_fixed_ratio = 0.0;
  std::string best_fixed;
  for (const auto& [spec, walls] : fixed_s) {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < walls.size(); ++i)
      ratios.push_back(auto_s[i] / walls[i]);
    const double r = geometric_mean(ratios);
    summary.emplace_back("auto_vs_" + spec + "_geomean", r);
    if (best_fixed.empty() || r > worst_fixed_ratio) {
      worst_fixed_ratio = r;
      best_fixed = spec;
    }
  }
  summary.emplace_back("auto_vs_best_fixed_geomean", worst_fixed_ratio);
  summary.emplace_back("ok", all_ok ? 1.0 : 0.0);

  std::cout << "\n# auto vs oracle geomean:      " << auto_vs_oracle
            << (auto_vs_oracle <= 1.10 ? "  (within 10%)" : "  (OVER 10%)")
            << "\n# auto vs best fixed (" << best_fixed
            << "): " << worst_fixed_ratio
            << (worst_fixed_ratio < 1.0 ? "  (auto faster)"
                                        : "  (fixed faster)")
            << '\n';

  write_json(opt.json_path, "auto_policy", records, summary);
  if (!opt.json_path.empty())
    std::cout << "# json written to " << opt.json_path << '\n';
  write_observability(opt);
  return all_ok ? 0 : 1;
}
