// Ablation A5 — the paper's Section V future work, implemented and
// measured: overlapped ("second stream") global relabeling vs the default
// synchronous one.
//
// The overlapped relabel interleaves one shadow-BFS level kernel per main
// loop and publishes only snapshots that no push invalidated
// (apply-if-clean — see AsyncGlobalRelabel for why wholesale import is
// unsound).  On a real device the win is hidden launch latency; the
// modeled column credits overlapped level kernels with latency hiding,
// the counters show the algorithmic price (discarded snapshots, extra
// loops on stale labels).

#include <iostream>
#include <vector>

#include "core/g_pr.hpp"
#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("ablation_async_gr",
                "Synchronous vs stream-overlapped global relabeling");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Ablation — concurrent global relabeling (paper §V)", opt,
               suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  const double launch_us = device::DeviceModel{}.launch_latency_us;

  bool all_ok = true;
  Table table({"mode", "modeled geomean (s)", "overlap-credit (s)", "loops",
               "applied", "discarded"},
              4);
  for (const bool async : {false, true}) {
    std::vector<double> modeled, credited;
    std::int64_t loops = 0, applied = 0, discarded = 0;
    for (const auto& bi : suite) {
      gpu::GprOptions gpr;
      gpr.concurrent_global_relabel = async;
      Timer t;
      const auto result = gpu::g_pr(dev, bi.g, bi.init, gpr);
      all_ok &= result.matching.cardinality() == bi.maximum_cardinality;
      loops += result.stats.loops;
      applied += result.stats.global_relabels;
      discarded += result.stats.async_discarded;
      modeled.push_back(result.stats.modeled_ms / 1e3);
      // Credit: overlapped level kernels launch alongside push kernels,
      // hiding their launch latency (the dominant term on deep-BFS
      // instances).
      const double credit =
          async ? result.stats.modeled_ms / 1e3 -
                      static_cast<double>(result.stats.gr_level_kernels) *
                          launch_us * 1e-6
                : result.stats.modeled_ms / 1e3;
      credited.push_back(std::max(credit, 1e-9));
      if (opt.verbose)
        std::cout << "  " << bi.meta.name << (async ? " async" : " sync")
                  << ": modeled " << result.stats.modeled_ms / 1e3
                  << " s, loops " << result.stats.loops << ", discarded "
                  << result.stats.async_discarded << "\n";
    }
    table.add_row({std::string(async ? "overlapped (async)" : "synchronous"),
                   geometric_mean(modeled), geometric_mean(credited), loops,
                   applied, discarded});
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout
      << "\nReading: 'modeled' charges every kernel sequentially (no overlap"
         " benefit, so async shows its pure algorithmic cost: stale labels ->"
         " more loops, dirty snapshots discarded).  'overlap-credit' removes"
         " the launch latency of overlapped level kernels — the upper bound"
         " of what dual-stream execution can hide (paper §V).\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
