// Workload-balance comparison (BENCH_gpr_balance.json): vertex-parallel
// G-PR against the edge-balanced g-pr-wb on a uniform-degree suite and a
// degree-skewed suite.
//
// The skewed instances are where one logical thread per active column
// serializes the push launch on a hub column (the straggler problem of
// Hsieh et al., arXiv:2404.00270); the uniform suite is the control where
// edge balancing must stay within noise.  The first --algo spec is the
// baseline every other spec's speedup is measured against; each
// (instance, algo) pair runs --reps times and the best wall time is
// reported (the algorithms are racy, so wall time fluctuates; modeled
// device time comes from the same best run).  Every run is verified
// against the Hopcroft–Karp ground truth before its time is reported.
//
// `--json <path>` records the instance x algo grid plus per-suite geomean
// speedup summaries — this is the artifact committed as
// BENCH_gpr_balance.json and uploaded by CI.

#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "harness_common.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bpm;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

struct BenchInstance {
  std::string name;
  std::string suite;  ///< "uniform" or "skew"
  std::function<BipartiteGraph(index_t n, std::uint64_t seed)> make;
};

std::vector<BenchInstance> instance_set() {
  const auto frac = [](index_t n, double f) {
    return std::max<index_t>(1, static_cast<index_t>(f * n));
  };
  return {
      // Uniform control group: no degree skew, edge balancing must not hurt.
      {"uniform_random", "uniform",
       [](index_t n, std::uint64_t s) {
         return gen::random_uniform(n, n, 5 * static_cast<graph::offset_t>(n),
                                    s);
       }},
      {"uniform_deficient", "uniform",
       [frac](index_t n, std::uint64_t s) {
         // Same deficiency regime as the skewed instances, minus the skew —
         // separates the frontier-compaction effect from the balancing one.
         return gen::random_uniform(frac(n, 0.95), n,
                                    5 * static_cast<graph::offset_t>(n), s);
       }},
      {"planted", "uniform",
       [](index_t n, std::uint64_t s) {
         return gen::planted_perfect(n, 2.0, s);
       }},
      // Skewed group: hub columns and heavy-tailed degrees.  The hub-block
      // instances keep their hubs as a contiguous crawl-ordered id block
      // (scatter = false): a static equal-column partition hands one chunk
      // the whole block, the straggler case edge balancing removes.
      {"hub_block", "skew",
       [frac](index_t n, std::uint64_t s) {
         return gen::skewed_hubs(frac(n, 0.9), n, std::max<index_t>(8, n / 8),
                                 0.008, 3.0, s, /*scatter=*/false);
       }},
      {"hub_block_sparse", "skew",
       [frac](index_t n, std::uint64_t s) {
         return gen::skewed_hubs(frac(n, 0.88), n,
                                 std::max<index_t>(8, n / 12), 0.012, 2.5, s,
                                 /*scatter=*/false);
       }},
      {"power_law", "skew",
       [frac](index_t n, std::uint64_t s) {
         // Deficient power law: the heavy tail stays in the active set.
         return gen::chung_lu(frac(n, 0.9), n, 6.0, 2.2, s);
       }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bpm::bench;

  // This harness sizes its synthetic instances from --n, not the Table I
  // --scale/--stride machinery, so it registers only the shared flags it
  // actually honours — an ignored flag must be an error, not a no-op.
  CliParser cli("balance_skew",
                "Edge-balanced vs vertex-parallel G-PR on uniform and "
                "degree-skewed suites (first --algo spec is the baseline)");
  cli.add_option("n", "base column count of the generated instances", "30000");
  cli.add_option("reps",
                 "timed repetitions per (instance, algo); best wall wins",
                 "3");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_flag("verbose", "per-instance build info");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_option("json",
                 "write instance x algo results (time/launches/matched) as "
                 "JSON to this path (empty = off)",
                 "");
  add_algo_flag(cli, "g-pr-shr,g-pr-wb");
  register_observability_flags(cli);
  SuiteOptions opt;
  index_t n = 0;
  int reps = 1;
  try {
    cli.parse(argc, argv);
    exit_if_list_algos(cli);
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<unsigned>(cli.get_int("threads"));
    opt.verbose = cli.get_flag("verbose");
    opt.csv = cli.get_flag("csv");
    opt.json_path = cli.get_string("json");
    opt.algos = solver_specs_from_cli(cli);
    observability_from_cli(cli, opt);
    n = static_cast<index_t>(cli.get_int("n"));
    reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    if (n < 64) throw std::invalid_argument("--n must be at least 64");
    if (opt.algos.empty()) throw std::invalid_argument("--algo must be set");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const auto set = instance_set();
  std::cout << "# balance_skew — workload-balanced vs vertex-parallel G-PR\n"
            << "# instances: " << set.size() << " (n = " << n << "), seed "
            << opt.seed << ", reps " << reps << "; baseline: "
            << opt.algos.front().canonical() << '\n';

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  std::vector<std::string> headers{"instance", "suite", "MM"};
  for (const auto& spec : opt.algos) {
    headers.push_back(spec.canonical() + " wall(s)");
    headers.push_back(spec.canonical() + " model(s)");
  }
  for (std::size_t a = 1; a < opt.algos.size(); ++a)
    headers.push_back("speedup(" + opt.algos[a].canonical() + ")");
  Table table(std::move(headers), 4);

  // Per (suite group, algo) time series for the geomean summaries.
  struct Series {
    std::vector<double> wall, modeled;
  };
  std::vector<std::vector<Series>> series(2,
                                          std::vector<Series>(solvers.size()));
  const auto group_of = [](const std::string& s) { return s == "skew" ? 1 : 0; };

  bool all_ok = true;
  std::vector<JsonRecord> records;
  for (const auto& inst : set) {
    BuiltInstance bi;
    bi.meta.name = inst.name;
    bi.g = inst.make(n, opt.seed);
    bi.init = matching::cheap_matching(bi.g);
    bi.initial_cardinality = bi.init.cardinality();
    bi.maximum_cardinality =
        matching::hopcroft_karp(bi.g, bi.init).cardinality();
    compute_instance_features(bi);

    std::vector<Table::Cell> row{
        inst.name, inst.suite,
        static_cast<std::int64_t>(bi.maximum_cardinality)};
    std::vector<double> wall(solvers.size(), 0.0);
    for (std::size_t a = 0; a < solvers.size(); ++a) {
      AlgoResult best;
      for (int rep = 0; rep < reps; ++rep) {
        const AlgoResult r = run_solver(*solvers[a], dev, bi, opt.threads);
        all_ok &= r.ok;
        if (rep == 0 || r.seconds < best.seconds) best = r;
      }
      wall[a] = best.seconds;
      row.emplace_back(best.seconds);
      row.emplace_back(best.modeled_seconds);
      series[group_of(inst.suite)][a].wall.push_back(best.seconds);
      series[group_of(inst.suite)][a].modeled.push_back(best.modeled_seconds);
      records.push_back(to_json_record(inst.name, inst.suite,
                                       opt.algos[a].canonical(), best,
                                       opt.backend, &bi.features));
    }
    for (std::size_t a = 1; a < solvers.size(); ++a)
      row.emplace_back(wall[0] / wall[a]);
    table.add_row(std::move(row));
    if (opt.verbose)
      std::cout << "  built " << inst.name << ": " << bi.g.describe() << '\n';
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  // Geomean speedups of every non-baseline spec over the baseline, per
  // suite group, in wall and modeled time — the numbers the acceptance
  // story reads from BENCH_gpr_balance.json.
  std::vector<std::pair<std::string, double>> summary;
  const char* group_names[2] = {"uniform", "skew"};
  std::cout << '\n';
  for (int grp = 0; grp < 2; ++grp) {
    const double base_wall = geometric_mean(series[grp][0].wall);
    const double base_model = geometric_mean(series[grp][0].modeled);
    for (std::size_t a = 1; a < solvers.size(); ++a) {
      const double wall_speedup =
          base_wall / geometric_mean(series[grp][a].wall);
      const double model_speedup =
          base_model / geometric_mean(series[grp][a].modeled);
      const std::string label = std::string(group_names[grp]) + ":" +
                                opt.algos[a].canonical();
      summary.emplace_back("wall_speedup:" + label, wall_speedup);
      summary.emplace_back("modeled_speedup:" + label, model_speedup);
      std::cout << label << ": geomean wall speedup " << wall_speedup
                << "x, modeled speedup " << model_speedup << "x\n";
    }
  }
  try {
    write_json(opt.json_path, "balance_skew", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "\nExpected shape: the edge-balanced path wins on the skew "
               "suite (hub columns stop serializing their launch chunk) and "
               "stays within noise on the uniform control.\n";
  return all_ok ? 0 : 1;
}
