// Reproduces paper Table I: for every graph — its shape (#rows, #cols,
// #edges), the initial (IM) and maximum (MM) matching cardinalities, and
// the runtimes of G-PR, G-HKDW, P-DBFS and sequential PR — plus the
// geometric means of the four runtime columns (paper: 0.70 / 0.92 / 1.99 /
// 2.15 seconds).
//
// Every algorithm's result is validated against the Hopcroft–Karp ground
// truth before its time is reported.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("table1_runtimes",
                "Table I: instance statistics and runtimes of all four "
                "algorithms");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Table I — per-graph runtimes of G-PR / G-HKDW / P-DBFS / PR",
               opt, suite.size());

  device::Device dev(
      {.mode = device::ExecMode::kConcurrent, .num_threads = opt.threads});

  bool all_ok = true;
  Table table({"id", "graph", "rows", "cols", "edges", "IM", "MM",
               "G-PR", "G-HKDW", "P-DBFS", "PR"},
              3);
  std::vector<double> t_gpr, t_ghkdw, t_pdbfs, t_pr;
  for (const auto& bi : suite) {
    const AlgoResult gpr = run_g_pr(dev, bi, gpu::GprOptions{});
    const AlgoResult ghkdw = run_g_hkdw(dev, bi);
    const AlgoResult pdbfs = run_p_dbfs(bi, opt.threads);
    const AlgoResult pr = run_seq_pr(bi);
    all_ok &= gpr.ok && ghkdw.ok && pdbfs.ok && pr.ok;
    t_gpr.push_back(device_seconds(gpr, opt));
    t_ghkdw.push_back(device_seconds(ghkdw, opt));
    t_pdbfs.push_back(pdbfs.seconds);
    t_pr.push_back(pr.seconds);
    table.add_row({static_cast<std::int64_t>(bi.meta.id), bi.meta.name,
                   static_cast<std::int64_t>(bi.g.num_rows()),
                   static_cast<std::int64_t>(bi.g.num_cols()),
                   static_cast<std::int64_t>(bi.g.num_edges()),
                   static_cast<std::int64_t>(bi.initial_cardinality),
                   static_cast<std::int64_t>(bi.maximum_cardinality),
                   t_gpr.back(), t_ghkdw.back(), pdbfs.seconds, pr.seconds});
  }
  table.add_row({std::int64_t{0}, std::string("GEOMEAN"), std::int64_t{0},
                 std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
                 std::int64_t{0}, geometric_mean(t_gpr),
                 geometric_mean(t_ghkdw), geometric_mean(t_pdbfs),
                 geometric_mean(t_pr)});

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  std::cout << "\nPaper geometric means (seconds, Tesla C2050 / 8-thread "
               "Xeon): G-PR 0.70, G-HKDW 0.92, P-DBFS 1.99, PR 2.15.\n"
            << "Measured geomeans: G-PR " << geometric_mean(t_gpr)
            << ", G-HKDW " << geometric_mean(t_ghkdw) << ", P-DBFS "
            << geometric_mean(t_pdbfs) << ", PR " << geometric_mean(t_pr)
            << ".\nShape check: G-PR should have the smallest geomean and "
               "PR/P-DBFS the largest two.\n";
  return all_ok ? 0 : 1;
}
