// Reproduces paper Table I: for every graph — its shape (#rows, #cols,
// #edges), the initial (IM) and maximum (MM) matching cardinalities, and
// the runtimes of the selected solvers (default: G-PR, G-HKDW, P-DBFS and
// sequential PR, the paper's four) — plus the geometric means of the
// runtime columns (paper: 0.70 / 0.92 / 1.99 / 2.15 seconds).
//
// Any registry solver set works: `table1_runtimes --algo g-pr-shr,hk,pf`.
// Every result is validated against the Hopcroft–Karp ground truth before
// its time is reported.

#include <iostream>
#include <memory>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("table1_runtimes",
                "Table I: instance statistics and per-solver runtimes");
  register_suite_flags(cli, /*default_stride=*/1,
                       /*default_algos=*/"g-pr-shr,g-hkdw,p-dbfs,seq-pr",
                       /*with_json=*/true);
  SuiteOptions opt;
  try {
    cli.parse(argc, argv);
    opt = suite_options_from_cli(cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const auto suite = build_suite(opt);
  print_header("Table I — per-graph solver runtimes", opt, suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  bool all_ok = true;
  std::vector<std::string> headers{"id", "graph", "rows", "cols", "edges",
                                   "IM", "MM"};
  for (const auto& spec : opt.algos) headers.push_back(spec.canonical());
  Table table(std::move(headers), 3);

  std::vector<std::vector<double>> times(solvers.size());
  std::vector<JsonRecord> records;
  for (const auto& bi : suite) {
    std::vector<Table::Cell> row{
        static_cast<std::int64_t>(bi.meta.id), bi.meta.name,
        static_cast<std::int64_t>(bi.g.num_rows()),
        static_cast<std::int64_t>(bi.g.num_cols()),
        static_cast<std::int64_t>(bi.g.num_edges()),
        static_cast<std::int64_t>(bi.initial_cardinality),
        static_cast<std::int64_t>(bi.maximum_cardinality)};
    for (std::size_t i = 0; i < solvers.size(); ++i) {
      const AlgoResult r = run_solver(*solvers[i], dev, bi, opt.threads);
      all_ok &= r.ok;
      times[i].push_back(device_seconds(r, opt));
      row.push_back(times[i].back());
      records.push_back(to_json_record(bi.meta.name, to_string(bi.meta.cls),
                                       opt.algos[i].canonical(), r,
                                       opt.backend, &bi.features));
    }
    table.add_row(std::move(row));
  }
  std::vector<Table::Cell> geo{std::int64_t{0}, std::string("GEOMEAN"),
                               std::int64_t{0}, std::int64_t{0},
                               std::int64_t{0}, std::int64_t{0},
                               std::int64_t{0}};
  for (const auto& t : times) geo.push_back(geometric_mean(t));
  table.add_row(std::move(geo));

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  std::vector<std::pair<std::string, double>> summary;
  for (std::size_t i = 0; i < opt.algos.size(); ++i)
    summary.emplace_back("geomean_s:" + opt.algos[i].canonical(),
                         geometric_mean(times[i]));
  try {
    write_json(opt.json_path, "table1_runtimes", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "\nPaper geometric means (seconds, Tesla C2050 / 8-thread "
               "Xeon): G-PR 0.70, G-HKDW 0.92, P-DBFS 1.99, PR 2.15.\n"
               "Shape check (default solver set): G-PR should have the "
               "smallest geomean and PR/P-DBFS the largest two.\n";
  return all_ok ? 0 : 1;
}
