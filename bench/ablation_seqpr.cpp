// Ablation A4 (paper §II-C and §IV): the sequential PR baseline's own
// knobs.  The paper tried several global-relabel frequencies k·(m+n) and
// settled on k = 0.5 for its experiments; gap relabeling is credited in
// the abstract.  This harness sweeps k x {gap on, off} and reports
// geomeans, plus operation counters for insight.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "matching/seq_pr.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("ablation_seqpr",
                "Sequential PR: global-relabel frequency x gap relabeling");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Ablation — sequential PR configuration", opt, suite.size());

  bool all_ok = true;
  Table table({"k", "gap", "geomean (s)", "pushes/edge", "GRs", "gap retired"},
              4);
  for (const double k : {0.25, 0.5, 1.0, 2.0}) {
    for (const bool gap : {true, false}) {
      std::vector<double> times;
      std::int64_t pushes = 0, edges = 0, grs = 0, retired = 0;
      for (const auto& bi : suite) {
        matching::SeqPrOptions pr_opt;
        pr_opt.global_relabel_k = k;
        pr_opt.gap_relabeling = gap;
        matching::SeqPrStats stats;
        Timer t;
        const auto m =
            matching::seq_push_relabel(bi.g, bi.init, pr_opt, &stats);
        times.push_back(t.elapsed_s());
        all_ok &= m.cardinality() == bi.maximum_cardinality;
        pushes += stats.pushes;
        edges += bi.g.num_edges();
        grs += stats.global_relabels;
        retired += stats.gap_retired;
      }
      table.add_row({k, std::string(gap ? "on" : "off"),
                     geometric_mean(times),
                     static_cast<double>(pushes) / static_cast<double>(edges),
                     grs, retired});
    }
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout << "\nPaper: k = 0.5 was slightly better than the other tried "
               "values on their 28-graph set.\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
