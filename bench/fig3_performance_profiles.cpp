// Reproduces paper Figure 3: performance profiles (Dolan–Moré) of the
// parallel algorithms.  A point (x, y) means: with probability y, the
// algorithm is at most x times slower than the best algorithm on a random
// suite instance.
//
// Paper shape: clear separation with G-PR on top — within 1.5x of best on
// 75% of cases (G-HKDW 46%, P-DBFS 14%); G-PR is outright best on 61%.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("fig3_performance_profiles",
                "Figure 3: performance profiles of G-PR, G-HKDW, P-DBFS");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Figure 3 — performance profiles of the parallel algorithms",
               opt, suite.size());

  device::Device dev(
      {.mode = device::ExecMode::kConcurrent, .num_threads = opt.threads});

  bool all_ok = true;
  const std::vector<std::string> names{"G-PR", "G-HKDW", "P-DBFS"};
  std::vector<std::vector<double>> times(3);
  std::size_t best_gpr = 0;
  for (const auto& bi : suite) {
    const AlgoResult gpr = run_g_pr(dev, bi, gpu::GprOptions{});
    const AlgoResult ghkdw = run_g_hkdw(dev, bi);
    const AlgoResult pdbfs = run_p_dbfs(bi, opt.threads);
    all_ok &= gpr.ok && ghkdw.ok && pdbfs.ok;
    const double t_gpr = device_seconds(gpr, opt);
    const double t_ghkdw = device_seconds(ghkdw, opt);
    times[0].push_back(t_gpr);
    times[1].push_back(t_ghkdw);
    times[2].push_back(pdbfs.seconds);
    if (t_gpr <= t_ghkdw && t_gpr <= pdbfs.seconds) ++best_gpr;
    if (opt.verbose)
      std::cout << "  " << bi.meta.name << ": G-PR=" << t_gpr
                << "s G-HKDW=" << t_ghkdw << "s P-DBFS="
                << pdbfs.seconds << "s\n";
  }

  std::vector<double> xs;
  for (double x = 1.0; x <= 5.0; x += 0.25) xs.push_back(x);
  const auto profiles = performance_profiles(names, times, xs);

  Table table({"x (times worse than best)", "G-PR", "G-HKDW", "P-DBFS"}, 3);
  for (std::size_t i = 0; i < xs.size(); ++i)
    table.add_row({xs[i], profiles[0].points[i].fraction,
                   profiles[1].points[i].fraction,
                   profiles[2].points[i].fraction});

  std::cout << "\nP(time <= x * best) over the suite (paper Figure 3):\n";
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  auto frac_at = [&](std::size_t a, double x) {
    for (const auto& pt : profiles[a].points)
      if (pt.x == x) return pt.fraction;
    return 0.0;
  };
  std::cout << "\nKey paper numbers: within 1.5x of best — 0.75 / 0.46 / "
               "0.14; G-PR outright best on 61%.\n"
            << "Measured:          within 1.5x of best — " << frac_at(0, 1.5)
            << " / " << frac_at(1, 1.5) << " / " << frac_at(2, 1.5)
            << "; G-PR best on "
            << static_cast<double>(best_gpr) /
                   static_cast<double>(suite.size())
            << "\n";
  return all_ok ? 0 : 1;
}
