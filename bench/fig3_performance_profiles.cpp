// Reproduces paper Figure 3: performance profiles (Dolan–Moré) of the
// parallel algorithms (default G-PR, G-HKDW, P-DBFS; any --algo set
// works).  A point (x, y) means: with probability y, the algorithm is at
// most x times slower than the best algorithm on a random suite instance.
//
// Paper shape: clear separation with G-PR on top — within 1.5x of best on
// 75% of cases (G-HKDW 46%, P-DBFS 14%); G-PR is outright best on 61%.

#include <iostream>
#include <memory>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("fig3_performance_profiles",
                "Figure 3: performance profiles of the selected solvers");
  register_suite_flags(cli, /*default_stride=*/1,
                       /*default_algos=*/"g-pr-shr,g-hkdw,p-dbfs",
                       /*with_json=*/true);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Figure 3 — performance profiles of the selected solvers",
               opt, suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  std::vector<std::string> names;
  for (const auto& spec : opt.algos) {
    solvers.push_back(spec.instantiate());
    names.push_back(spec.canonical());
  }

  bool all_ok = true;
  std::vector<std::vector<double>> times(solvers.size());
  std::vector<JsonRecord> records;
  std::size_t first_best = 0;  // instances where the first solver is best
  for (const auto& bi : suite) {
    double best = 0.0, first = 0.0;
    for (std::size_t i = 0; i < solvers.size(); ++i) {
      const AlgoResult r = run_solver(*solvers[i], dev, bi, opt.threads);
      all_ok &= r.ok;
      records.push_back(
          to_json_record(bi.meta.name, to_string(bi.meta.cls), names[i], r,
                         opt.backend, &bi.features));
      const double t = device_seconds(r, opt);
      times[i].push_back(t);
      if (i == 0) first = t;
      best = i == 0 ? t : std::min(best, t);
      if (opt.verbose)
        std::cout << "  " << bi.meta.name << " " << names[i] << "=" << t
                  << "s\n";
    }
    if (first <= best) ++first_best;
  }

  std::vector<double> xs;
  for (double x = 1.0; x <= 5.0; x += 0.25) xs.push_back(x);
  const auto profiles = performance_profiles(names, times, xs);

  std::vector<std::string> headers{"x (times worse than best)"};
  for (const auto& n : names) headers.push_back(n);
  Table table(std::move(headers), 3);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<Table::Cell> row{xs[i]};
    for (const auto& p : profiles) row.push_back(p.points[i].fraction);
    table.add_row(std::move(row));
  }

  std::cout << "\nP(time <= x * best) over the suite (paper Figure 3):\n";
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  auto frac_at = [&](std::size_t a, double x) {
    for (const auto& pt : profiles[a].points)
      if (pt.x == x) return pt.fraction;
    return 0.0;
  };
  std::cout << "\nKey paper numbers (G-PR / G-HKDW / P-DBFS): within 1.5x "
               "of best — 0.75 / 0.46 / 0.14; G-PR outright best on 61%.\n"
            << "Measured: within 1.5x of best —";
  for (std::size_t a = 0; a < profiles.size(); ++a)
    std::cout << " " << names[a] << "=" << frac_at(a, 1.5);
  std::cout << "; " << names.front() << " best on "
            << static_cast<double>(first_best) /
                   static_cast<double>(suite.size())
            << "\n";
  std::vector<std::pair<std::string, double>> summary;
  for (std::size_t a = 0; a < profiles.size(); ++a)
    summary.emplace_back("p_within_1.5x:" + names[a], frac_at(a, 1.5));
  summary.emplace_back("first_solver_best_fraction",
                       static_cast<double>(first_best) /
                           static_cast<double>(suite.size()));
  try {
    write_json(opt.json_path, "fig3_performance_profiles", records, summary);
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
