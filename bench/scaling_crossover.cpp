// Scaling study: where does the G-PR vs sequential-PR crossover fall as
// instances grow?
//
// The paper's Figure 4 shows G-PR losing on huge-diameter meshes and
// winning on power-law graphs.  Both effects are scale-dependent: the
// global relabel costs (BFS depth) x (launch latency + row scan), so the
// modeled-GPU advantage grows with width and shrinks with diameter.  This
// harness sweeps one representative instance per class over increasing
// scales and prints the speedup trajectory — the "where crossovers fall"
// artifact.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("scaling_crossover",
                "G-PR vs PR speedup as a function of instance scale");
  register_suite_flags(cli);
  cli.add_option("scales", "comma-separated scale list",
                 "0.002,0.004,0.008,0.016,0.031");
  cli.parse(argc, argv);
  SuiteOptions opt = suite_options_from_cli(cli);

  std::vector<double> scales;
  for (const std::string& tok : cli.get_string_list("scales"))
    scales.push_back(std::stod(tok));

  // One representative per structurally distinct class.
  const std::vector<int> ids = {4 /*flickr: social*/, 7 /*kron*/,
                                8 /*roadNet-PA*/, 20 /*hugetrace*/,
                                24 /*delaunay_n23*/};
  std::cout << "# Scaling crossover: G-PR (modeled C2050) speedup over "
               "sequential PR by instance scale\n"
            << "# paper full-scale speedups: flickr 7.6x, kron_logn20 3.3x, "
               "roadNet-PA 1.8x, hugetrace-00000 0.31x, delaunay_n23 10.9x\n";

  std::vector<std::string> headers{"scale"};
  for (int id : ids) headers.push_back(graph::paper_instances()[static_cast<std::size_t>(id - 1)].name);
  Table table(std::move(headers), 3);

  bool all_ok = true;
  for (double scale : scales) {
    std::vector<Table::Cell> row{scale};
    for (int id : ids) {
      SuiteOptions one = opt;
      one.scale = scale;
      const BuiltInstance bi = build_instance(
          graph::paper_instances()[static_cast<std::size_t>(id - 1)], one);
      device::Device dev({.mode = device::ExecMode::kConcurrent,
                          .num_threads = opt.threads});
      attach_tracer(opt, dev);
      const AlgoResult pr = run_solver("seq-pr", dev, bi);
      const AlgoResult gpr = run_solver("g-pr-shr", dev, bi);
      all_ok &= pr.ok && gpr.ok;
      row.push_back(pr.seconds / device_seconds(gpr, one));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: power-law/kron/delaunay speedups grow with"
               " scale toward the paper's full-scale numbers; the trace-mesh"
               " column stays at or below ~1 (launch-latency bound, diameter"
               " grows with sqrt scale).\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
