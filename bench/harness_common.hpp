#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/solver.hpp"
#include "device/device.hpp"
#include "graph/instances.hpp"
#include "matching/matching.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "policy/features.hpp"
#include "util/cli.hpp"

namespace bpm::bench {

/// Options common to all paper-artifact harnesses.
struct SuiteOptions {
  double scale = 1.0 / 64.0;  ///< instance size relative to the paper's
  std::uint64_t seed = 1;
  int stride = 1;             ///< take every stride-th instance
  unsigned threads = 0;       ///< device / multicore workers, 0 = hw
  /// `--backend sim|host`: which `device::Backend` the harness's devices
  /// and pipelines run on.  `sim` models the paper's C2050; `host`
  /// executes kernels on real threads and reports measured wall time as
  /// its native metric.
  device::Backend backend = device::Backend::kSim;
  /// Concurrent jobs (`--jobs`, every harness): suite building and any
  /// `run_grid`/`MatchingPipeline` work schedule up to this many jobs at
  /// once, each on its own device stream (0 = hardware).  Defaults to 1 —
  /// the sequential schedule — because the paper harnesses report per-run
  /// times, which overlapping jobs on one host would skew.
  unsigned jobs = 1;
  bool verbose = false;
  bool csv = false;
  /// Cross-architecture artifacts (Fig 2-4, Table I) use the modeled
  /// C2050 device time for GPU algorithms by default (DESIGN.md D9);
  /// --no-model switches them to raw host wall time of the simulator.
  bool no_model = false;
  /// Solvers selected with --algo (parsed specs, possibly with tuning
  /// options, e.g. `g-pr-shr:k=1.5`), when the harness registered the
  /// flag.  Instantiate with `spec.instantiate()`; label columns with
  /// `spec.canonical()` so tuned runs are distinguishable.
  std::vector<SolverSpec> algos;
  /// `--json <path>`: write the (instance × algo) results as a
  /// machine-readable JSON document next to the human tables (see
  /// `write_json`).  Empty = off.  This is how BENCH_*.json perf
  /// trajectories are recorded.
  std::string json_path;
  /// `--trace <path>`: record the whole harness run — solve phases,
  /// device launches, shard fleet rounds — into a chrome://tracing JSON
  /// written by `write_observability`.  Empty = tracing off (the hot
  /// paths see a single disabled-tracer check).
  std::string trace_path;
  /// `--metrics <path>`: snapshot `obs::Registry::global()` to JSON at
  /// harness end (`write_observability`).  Empty = off.
  std::string metrics_path;
  /// The trace sink backing `--trace`, created enabled by
  /// `observability_from_cli`; null when tracing is off.  Attach it to
  /// harness streams with `attach_tracer` / `SolveContext::tracer`.
  std::shared_ptr<obs::Tracer> trace_sink;

  [[nodiscard]] obs::Tracer* tracer() const { return trace_sink.get(); }
};

/// Registers the shared flags on `cli`; call `cli.parse` afterwards and
/// then `suite_options_from_cli`.  `default_stride` lets expensive sweeps
/// (Figure 1 runs 21 configurations) default to a subset of the 28.
/// A non-empty `default_algos` additionally registers --algo, letting the
/// harness run any set of registry solvers without code changes.
/// `with_json` registers `--json <path>` — only harnesses that actually
/// call `write_json` pass true, so the flag fails loudly (unknown-flag
/// error) instead of being silently ignored elsewhere.
void register_suite_flags(CliParser& cli, int default_stride = 1,
                          const std::string& default_algos = "",
                          bool with_json = false);
[[nodiscard]] SuiteOptions suite_options_from_cli(const CliParser& cli);

/// Registers `--trace` / `--metrics` alone — for harnesses with a
/// hand-rolled flag set (`register_suite_flags` already includes them).
void register_observability_flags(CliParser& cli);
/// Reads `--trace` / `--metrics` into `opt` and creates the enabled trace
/// sink when `--trace` is set.  `suite_options_from_cli` calls this;
/// hand-rolled harnesses call it after `cli.parse`.
void observability_from_cli(const CliParser& cli, SuiteOptions& opt);
/// Attaches the suite's trace sink (if any) to a device stream so its
/// launches are recorded; returns `dev` for inline use.
device::Device& attach_tracer(const SuiteOptions& opt, device::Device& dev);
/// Writes the `--trace` / `--metrics` artifacts; no-op for empty paths,
/// so every harness calls it unconditionally before exiting.  Throws
/// `std::runtime_error` on I/O failure.
void write_observability(const SuiteOptions& opt);

/// One generated instance with its cheap-matching initialisation.
/// The paper times all algorithms *after* the common greedy init, so the
/// init is built once here and handed to every algorithm.
struct BuiltInstance {
  graph::Instance meta;
  graph::BipartiteGraph g;
  matching::Matching init;
  graph::index_t initial_cardinality = 0;
  graph::index_t maximum_cardinality = 0;  ///< reference ground truth
  /// Policy features of the instance (size, density, skew, deficiency) —
  /// the same `policy::compute_features` vector the serving layer caches
  /// at admission, recorded into every `--json` record so offline tooling
  /// can correlate timings with instance shape.  Filled by
  /// `build_instance` / `build_massive_suite`; harnesses that hand-build
  /// a BuiltInstance call `compute_instance_features` after filling
  /// `g`/`init`.
  policy::InstanceFeatures features;
};

/// Fills `bi.features` from its graph and init (cheap, O(cols)).
void compute_instance_features(BuiltInstance& bi);

/// Generates the (strided) instance suite at the requested scale and
/// computes the reference maximum cardinality for result checking.
/// Builds `opt.jobs` instances concurrently (generation, init, and the
/// Hopcroft–Karp ground truth dominate harness start-up); the returned
/// order and contents are identical at any concurrency.
[[nodiscard]] std::vector<BuiltInstance> build_suite(const SuiteOptions& opt);

/// Builds a single instance by Table I id (1–28).
[[nodiscard]] BuiltInstance build_instance(const graph::Instance& meta,
                                           const SuiteOptions& opt);

/// The shard-scaling `massive` suite: instances ~10x the edge count of
/// the largest Table I analogue at default scale, built with the
/// streamed `gen::huge_bipartite` (no intermediate edge list, so peak
/// memory is the final CSR).  `opt.scale` multiplies the default-size
/// vertex counts relative to 1.0 (NOT the 1/64 Table I convention —
/// massive instances are already sized absolutely); `opt.seed` feeds the
/// generator.  Ground truth is computed like every other suite's, so
/// shard-scaling results stay oracle-verified.
[[nodiscard]] std::vector<BuiltInstance> build_massive_suite(
    const SuiteOptions& opt);

/// One member of the policy calibration/evaluation suite.
struct PolicyInstance {
  std::string suite;  ///< "uniform" | "skew" | "massive" | "structured"
  BuiltInstance bi;
};

/// The shared instance suite behind `policy_calibrate` and `auto_policy`:
/// the uniform and skew groups of `balance_skew` (same generators and
/// parameters, sized by `n`), a structured group of Table I shapes
/// (meshes, road networks, co-author graphs — near-perfect greedy inits
/// where the augmenting-path family beats push-relabel, at
/// `structured_scale` of the paper sizes; 0 skips the group), plus —
/// when `massive_scale > 0` — the shard-scaling massive suite at that
/// scale.  Calibration and evaluation MUST agree on this suite: the
/// committed cost model's buckets are only meaningful for the shapes they
/// were measured on, and the headline auto-vs-oracle comparison
/// re-generates the same shapes (different seeds still land in the same
/// buckets).
[[nodiscard]] std::vector<PolicyInstance> build_policy_suite(
    graph::index_t n, double massive_scale, std::uint64_t seed,
    double structured_scale = 0.0);

/// Result of timing one algorithm on one instance.  Every runner verifies
/// the returned matching is valid and maximum against the reference
/// cardinality, so benchmark numbers are backed by checked results;
/// `ok == false` flags a mismatch (and makes the harness exit nonzero).
struct AlgoResult {
  double seconds = 0.0;          ///< host wall time of the run
  double modeled_seconds = 0.0;  ///< device-model time; 0 for CPU algorithms
  graph::index_t cardinality = 0;
  std::int64_t launches = 0;     ///< device kernel launches; 0 for CPU
  bool ok = false;
  /// Per-phase wall ms of this run ("push", "global-relabel",
  /// "frontier-compaction", ...), diffed from the suite tracer around the
  /// solve.  Empty when tracing is off or the solver records no phases.
  std::map<std::string, double> phases;
};

/// The time to report for a device algorithm in cross-architecture
/// comparisons: modeled C2050 time unless --no-model.
[[nodiscard]] inline double device_seconds(const AlgoResult& r,
                                           const SuiteOptions& opt) {
  return opt.no_model || r.modeled_seconds == 0.0 ? r.seconds
                                                  : r.modeled_seconds;
}

/// Runs a configured solver instance on `bi` through the uniform interface
/// and verifies the result — the one dispatch path every harness uses.
[[nodiscard]] AlgoResult run_solver(const Solver& solver, device::Device& dev,
                                    const BuiltInstance& bi,
                                    unsigned threads = 0);

/// Full-context variant: the caller builds the `SolveContext` (device,
/// threads, engine fleet) — how `shard_scaling` hands sharded solvers a
/// multi-engine fleet.
[[nodiscard]] AlgoResult run_solver(const Solver& solver,
                                    const SolveContext& ctx,
                                    const BuiltInstance& bi);

/// Registry-name convenience: `run_solver(*registry.create(name), ...)`.
[[nodiscard]] AlgoResult run_solver(const std::string& name,
                                    device::Device& dev,
                                    const BuiltInstance& bi,
                                    unsigned threads = 0);

/// The suite instance as a pipeline/serving admission — init and ground
/// truth carried over, not recomputed (only the cheap structural
/// fingerprint is added).
[[nodiscard]] PipelineInstance to_pipeline_instance(const BuiltInstance& bi);

/// Runs the full (instance × `opt.algos`) grid through a
/// `MatchingPipeline` scheduled at `opt.jobs` concurrent jobs — the
/// one-call way for a harness to exercise the concurrent scheduler.  The
/// suite's precomputed init/ground truth are reused, every job is
/// verified, and the report is in deterministic instance-major order
/// regardless of `opt.jobs`.
[[nodiscard]] PipelineReport run_grid(const std::vector<BuiltInstance>& suite,
                                      const SuiteOptions& opt);

/// Prints the standard harness header (instance count, scale, hardware).
void print_header(const std::string& title, const SuiteOptions& opt,
                  std::size_t num_instances);

// ---- machine-readable results (`--json`) -----------------------------------

/// One (instance × algo) measurement of a harness run.  `suite` tags the
/// instance group ("uniform", "skew", a Table I class, ...) so downstream
/// tooling can aggregate without parsing instance names.
struct JsonRecord {
  std::string instance;
  std::string suite;
  std::string algo;  ///< canonical solver spec (`SolverSpec::canonical`)
  double wall_s = 0.0;
  double modeled_s = 0.0;
  std::int64_t launches = 0;
  graph::index_t matched = 0;
  bool ok = false;
  /// Which `device::Backend` produced the measurement ("sim" | "host") —
  /// per-backend perf-trajectory lines aggregate on this field.
  std::string backend = "sim";
  /// Per-phase ms (`AlgoResult::phases`); emitted as an optional
  /// `"phases"` sub-object when non-empty, so records stay byte-identical
  /// to pre-tracing ones when tracing is off.
  std::map<std::string, double> phases;
  /// Policy features of the instance (n, m, density, skew, hub_mass,
  /// deficiency_est) — a `"features"` sub-object on every record since
  /// schema 2, so downstream tooling can correlate timings with instance
  /// shape without regenerating the graphs.
  std::map<std::string, double> features;
};

/// An `AlgoResult` as a record, labels supplied by the caller.  Pass the
/// instance's `BuiltInstance::features` so the record carries the schema-2
/// `"features"` sub-object.
[[nodiscard]] JsonRecord to_json_record(
    const std::string& instance, const std::string& suite,
    const std::string& algo, const AlgoResult& r,
    device::Backend backend = device::Backend::kSim,
    const policy::InstanceFeatures* features = nullptr);

/// Writes `{"bench": ..., "schema": 2, "records": [...], "summary":
/// {...}}` with a stable field order, records in input order, and summary
/// metrics sorted by the caller's order.  Schema 2 adds the per-record
/// `"features"` sub-object (schema 1 documents were unversioned).  Throws
/// `std::runtime_error` if the file cannot be written.  No-op when `path`
/// is empty, so harnesses can pass `opt.json_path` unconditionally.
void write_json(const std::string& path, const std::string& bench,
                const std::vector<JsonRecord>& records,
                const std::vector<std::pair<std::string, double>>& summary);

}  // namespace bpm::bench
