// Ablation A3 (DESIGN.md D1): what the benign-race design buys.
//
// Part 1 — memory primitive: throughput of relaxed vs sequentially-
// consistent stores/loads in a kernel-shaped loop.  Relaxed compiles to
// plain moves; seq_cst stores need fences/locked instructions.  The gap is
// the per-access cost the paper avoids by tolerating races instead of
// ordering them.
//
// Part 2 — whole algorithm: G-PR on the concurrent device vs the
// sequential device (same kernels, no concurrency), showing how much of
// the runtime is genuinely parallel work.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "device/mem.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bpm;

double time_relaxed_stores(device::Device& dev,
                           device::relaxed_vector<int32_t>& cells, int reps) {
  // One pseudo-random read + write per logical thread, kernel-shaped.
  Timer t;
  for (int r = 0; r < reps; ++r) {
    dev.launch(static_cast<std::int64_t>(cells.size()), [&](std::int64_t i) {
      const auto j = static_cast<std::size_t>(
          (i * 2654435761LL) % static_cast<std::int64_t>(cells.size()));
      (void)cells.load(j);
      cells.store(j, static_cast<int32_t>(i));
    });
  }
  return t.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bpm::bench;

  CliParser cli("ablation_race",
                "Cost of ordering: relaxed vs seq_cst cells; sequential vs "
                "concurrent device");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  std::cout << "# Ablation — benign races vs enforced ordering\n";

  // ---- Part 1: primitive cost --------------------------------------------
  {
    device::Device dev({.mode = device::ExecMode::kConcurrent,
                        .num_threads = opt.threads});
    constexpr std::size_t kCells = 1 << 20;
    constexpr int kReps = 20;

    device::relaxed_vector<int32_t> relaxed_cells(kCells, 0);
    const double relaxed_s = time_relaxed_stores(dev, relaxed_cells, kReps);

    // Direct seq_cst loop for comparison (relaxed_cell exposes both).
    std::vector<device::relaxed_cell<int32_t>> cells(kCells);
    Timer t;
    for (int r = 0; r < kReps; ++r) {
      dev.launch(static_cast<std::int64_t>(kCells), [&](std::int64_t i) {
        const auto j = static_cast<std::size_t>(
            (i * 2654435761LL) % static_cast<std::int64_t>(kCells));
        (void)cells[j].load_seq_cst();
        cells[j].store_seq_cst(static_cast<int32_t>(i));
      });
    }
    const double seq_cst_s = t.elapsed_s();

    Table table({"memory order", "time (s)", "relative"}, 3);
    table.add_row({std::string("relaxed (paper)"), relaxed_s, 1.0});
    table.add_row({std::string("seq_cst"), seq_cst_s, seq_cst_s / relaxed_s});
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- Part 2: whole-algorithm concurrency -------------------------------
  SuiteOptions small = opt;
  small.stride = std::max(small.stride, 4);  // a representative subset
  const auto suite = build_suite(small);
  print_header("G-PR on sequential vs concurrent device", small, suite.size());

  bool all_ok = true;
  std::vector<double> seq_times, conc_times;
  for (const auto& bi : suite) {
    device::Device seq_dev({.mode = device::ExecMode::kSequential});
    attach_tracer(opt, seq_dev);
    device::Device conc_dev({.mode = device::ExecMode::kConcurrent,
                             .num_threads = opt.threads});
    const AlgoResult rs = run_solver("g-pr-shr", seq_dev, bi);
    const AlgoResult rc = run_solver("g-pr-shr", conc_dev, bi);
    all_ok &= rs.ok && rc.ok;
    seq_times.push_back(rs.seconds);
    conc_times.push_back(rc.seconds);
    if (opt.verbose)
      std::cout << "  " << bi.meta.name << ": seq " << rs.seconds
                << " s, conc " << rc.seconds << " s\n";
  }
  Table table({"device", "geomean (s)"}, 4);
  table.add_row({std::string("sequential (1 worker)"),
                 geometric_mean(seq_times)});
  table.add_row({std::string("concurrent"), geometric_mean(conc_times)});
  table.print(std::cout);
  std::cout << "\nNote: both devices run identical kernels; the concurrent "
               "one additionally absorbs races.  Identical results (checked) "
               "with different schedules is the paper's core claim.\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
