// Ablation A2 (paper §III-A): the forced global relabel at loop 0.  The
// paper: "applying a global relabeling at the beginning of the main while
// loop of G-PR leads [to] significant performance improvements".  This
// harness runs G-PR-Shr with and without the initial relabel and reports
// per-class and overall geomeans.

#include <iostream>
#include <map>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("ablation_initial_gr",
                "Initial global relabel on/off for G-PR-Shr");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Ablation — initial global relabel", opt, suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);

  bool all_ok = true;
  std::map<std::string, std::vector<double>> with_gr, without_gr;
  std::vector<double> all_with, all_without;
  for (const auto& bi : suite) {
    const std::string cls = graph::to_string(bi.meta.cls);
    for (const bool initial : {true, false}) {
      const auto solver = SolverRegistry::instance().create("g-pr-shr");
      solver->set_option("initial-gr", initial ? "1" : "0");
      const AlgoResult r = run_solver(*solver, dev, bi);
      all_ok &= r.ok;
      const double t = device_seconds(r, opt);
      (initial ? with_gr : without_gr)[cls].push_back(t);
      (initial ? all_with : all_without).push_back(t);
      if (opt.verbose)
        std::cout << "  " << bi.meta.name << (initial ? " with" : " without")
                  << " initial GR: " << t << " s\n";
    }
  }

  Table table({"class", "with initial GR (s)", "without (s)", "ratio"}, 4);
  for (const auto& [cls, times] : with_gr) {
    const double a = geometric_mean(times);
    const double b = geometric_mean(without_gr[cls]);
    table.add_row({cls, a, b, b / a});
  }
  const double ga = geometric_mean(all_with);
  const double gb = geometric_mean(all_without);
  table.add_row({std::string("ALL"), ga, gb, gb / ga});

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout << "\nExpected shape: ratio > 1 overall (initial GR helps), "
               "with the biggest effect where the greedy init leaves many "
               "unmatchable columns (power-law classes).\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
