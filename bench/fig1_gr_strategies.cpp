// Reproduces paper Figure 1: geometric-mean runtime of the three G-PR
// variants (First / NoShr / Shr) under seven global-relabeling strategies —
// (adaptive, k) for k in {0.3, 0.7, 1, 1.5, 2} and (fix, k) for k in
// {10, 50} — over the instance suite.
//
// Paper shape to look for: the active-list variants beat G-PR-First on
// every strategy (14–84% in the paper); shrinking adds another 2–8%;
// adaptive beats fixed nearly everywhere; (adaptive, 0.7) is the winner
// for G-PR-Shr.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bpm;
using namespace bpm::bench;

struct Strategy {
  std::string strategy;  ///< solver option value: "adaptive" | "fix"
  std::string k;
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig1_gr_strategies",
                "Figure 1: G-PR variants x global-relabeling strategies "
                "(geometric mean runtimes)");
  register_suite_flags(cli, /*default_stride=*/2);
  cli.parse(argc, argv);
  SuiteOptions opt = suite_options_from_cli(cli);

  const std::vector<Strategy> strategies = {
      {"adaptive", "0.3", "adaptive,0.3"}, {"adaptive", "0.7", "adaptive,0.7"},
      {"adaptive", "1.0", "adaptive,1"},   {"adaptive", "1.5", "adaptive,1.5"},
      {"adaptive", "2.0", "adaptive,2"},   {"fix", "10", "fix,10"},
      {"fix", "50", "fix,50"},
  };
  // The three G-PR variants, by their registry names.
  const std::vector<std::string> variants = {"g-pr-first", "g-pr-noshr",
                                             "g-pr-shr"};

  const auto suite = build_suite(opt);
  print_header("Figure 1 — global-relabeling strategy comparison", opt,
               suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);

  bool all_ok = true;
  std::vector<std::string> headers{"variant"};
  for (const auto& s : strategies) headers.push_back(s.label);
  Table modeled_table(headers, 4);
  Table wall_table(headers, 4);

  for (const auto& variant : variants) {
    std::vector<Table::Cell> modeled_row{variant};
    std::vector<Table::Cell> wall_row{variant};
    for (const auto& s : strategies) {
      const auto solver = SolverRegistry::instance().create(variant);
      solver->set_option("strategy", s.strategy);
      solver->set_option("k", s.k);
      std::vector<double> modeled, wall;
      for (const auto& bi : suite) {
        const AlgoResult r = run_solver(*solver, dev, bi);
        all_ok &= r.ok;
        modeled.push_back(r.modeled_seconds);
        wall.push_back(r.seconds);
        if (opt.verbose)
          std::cout << "  " << variant << " (" << s.label << ") "
                    << bi.meta.name << ": " << r.modeled_seconds
                    << " s modeled, " << r.seconds << " s wall\n";
      }
      modeled_row.push_back(geometric_mean(modeled));
      wall_row.push_back(geometric_mean(wall));
    }
    modeled_table.add_row(std::move(modeled_row));
    wall_table.add_row(std::move(wall_row));
  }

  std::cout << "\nGeometric-mean MODELED C2050 runtime in seconds (paper "
               "Figure 1 measured 0.70-1.69 s at full scale; the model "
               "charges each kernel its launch latency + counted work, so "
               "the variant/strategy economics of the paper apply):\n";
  if (opt.csv)
    std::cout << modeled_table.to_csv();
  else
    modeled_table.print(std::cout);
  std::cout << "\nSimulator host wall time for reference (2-core substrate; "
               "does not express GPU dead-thread costs):\n";
  if (opt.csv)
    std::cout << wall_table.to_csv();
  else
    wall_table.print(std::cout);
  std::cout << "\nExpected shape (modeled table): NoShr/Shr < First on "
               "every column; Shr <= NoShr; best at adaptive,0.3 or "
               "adaptive,0.7.\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
