// Reproduces paper Figure 1: geometric-mean runtime of the three G-PR
// variants (First / NoShr / Shr) under seven global-relabeling strategies —
// (adaptive, k) for k in {0.3, 0.7, 1, 1.5, 2} and (fix, k) for k in
// {10, 50} — over the instance suite.
//
// Paper shape to look for: the active-list variants beat G-PR-First on
// every strategy (14–84% in the paper); shrinking adds another 2–8%;
// adaptive beats fixed nearly everywhere; (adaptive, 0.7) is the winner
// for G-PR-Shr.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bpm;
using namespace bpm::bench;

struct Strategy {
  gpu::RelabelStrategy strategy;
  double k;
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig1_gr_strategies",
                "Figure 1: G-PR variants x global-relabeling strategies "
                "(geometric mean runtimes)");
  register_suite_flags(cli, /*default_stride=*/2);
  cli.parse(argc, argv);
  SuiteOptions opt = suite_options_from_cli(cli);

  const std::vector<Strategy> strategies = {
      {gpu::RelabelStrategy::kAdaptive, 0.3, "adaptive,0.3"},
      {gpu::RelabelStrategy::kAdaptive, 0.7, "adaptive,0.7"},
      {gpu::RelabelStrategy::kAdaptive, 1.0, "adaptive,1"},
      {gpu::RelabelStrategy::kAdaptive, 1.5, "adaptive,1.5"},
      {gpu::RelabelStrategy::kAdaptive, 2.0, "adaptive,2"},
      {gpu::RelabelStrategy::kFixed, 10.0, "fix,10"},
      {gpu::RelabelStrategy::kFixed, 50.0, "fix,50"},
  };
  const std::vector<std::pair<gpu::GprVariant, std::string>> variants = {
      {gpu::GprVariant::kFirst, "G-PR-First"},
      {gpu::GprVariant::kNoShrink, "G-PR-NoShr"},
      {gpu::GprVariant::kShrink, "G-PR-Shr"},
  };

  const auto suite = build_suite(opt);
  print_header("Figure 1 — global-relabeling strategy comparison", opt,
               suite.size());

  device::Device dev(
      {.mode = device::ExecMode::kConcurrent, .num_threads = opt.threads});

  bool all_ok = true;
  std::vector<std::string> headers{"variant"};
  for (const auto& s : strategies) headers.push_back(s.label);
  Table modeled_table(headers, 4);
  Table wall_table(headers, 4);

  for (const auto& [variant, vname] : variants) {
    std::vector<Table::Cell> modeled_row{vname};
    std::vector<Table::Cell> wall_row{vname};
    for (const auto& s : strategies) {
      std::vector<double> modeled, wall;
      for (const auto& bi : suite) {
        gpu::GprOptions gpr;
        gpr.variant = variant;
        gpr.strategy = s.strategy;
        gpr.k = s.k;
        const AlgoResult r = run_g_pr(dev, bi, gpr);
        all_ok &= r.ok;
        modeled.push_back(r.modeled_seconds);
        wall.push_back(r.seconds);
        if (opt.verbose)
          std::cout << "  " << vname << " (" << s.label << ") "
                    << bi.meta.name << ": " << r.modeled_seconds
                    << " s modeled, " << r.seconds << " s wall\n";
      }
      modeled_row.push_back(geometric_mean(modeled));
      wall_row.push_back(geometric_mean(wall));
    }
    modeled_table.add_row(std::move(modeled_row));
    wall_table.add_row(std::move(wall_row));
  }

  std::cout << "\nGeometric-mean MODELED C2050 runtime in seconds (paper "
               "Figure 1 measured 0.70-1.69 s at full scale; the model "
               "charges each kernel its launch latency + counted work, so "
               "the variant/strategy economics of the paper apply):\n";
  if (opt.csv)
    std::cout << modeled_table.to_csv();
  else
    modeled_table.print(std::cout);
  std::cout << "\nSimulator host wall time for reference (2-core substrate; "
               "does not express GPU dead-thread costs):\n";
  if (opt.csv)
    std::cout << wall_table.to_csv();
  else
    wall_table.print(std::cout);
  std::cout << "\nExpected shape (modeled table): NoShr/Shr < First on "
               "every column; Shr <= NoShr; best at adaptive,0.3 or "
               "adaptive,0.7.\n";
  return all_ok ? 0 : 1;
}
