// Microbenchmarks (google-benchmark) of the device execution engine: the
// substrate costs that shape every number in the paper-artifact harnesses.
//
//  * launch overhead — the fixed fork/join cost per kernel; the unit in
//    which global-relabel BFS depth hurts (one launch per level).
//  * scan/reduce throughput — the primitives behind G-PR-SHRKRNL.

#include <benchmark/benchmark.h>

#include <vector>

#include "device/device.hpp"
#include "device/mem.hpp"
#include "device/scan.hpp"

namespace {

using namespace bpm::device;

void BM_LaunchOverheadEmptyKernel(benchmark::State& state) {
  Device dev({.mode = static_cast<ExecMode>(state.range(0))});
  for (auto _ : state) dev.launch(1, [](std::int64_t) {});
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LaunchOverheadEmptyKernel)
    ->Arg(static_cast<int>(ExecMode::kSequential))
    ->Arg(static_cast<int>(ExecMode::kConcurrent));

void BM_LaunchThroughputTouchAll(benchmark::State& state) {
  Device dev({.mode = ExecMode::kConcurrent});
  const auto n = state.range(0);
  relaxed_vector<std::int32_t> data(static_cast<std::size_t>(n), 0);
  for (auto _ : state) {
    dev.launch(n, [&](std::int64_t i) {
      data.store(static_cast<std::size_t>(i),
                 static_cast<std::int32_t>(i & 0xff));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LaunchThroughputTouchAll)->Range(1 << 10, 1 << 22);

void BM_ExclusiveScan(benchmark::State& state) {
  Device dev({.mode = ExecMode::kConcurrent});
  const auto n = state.range(0);
  std::vector<std::int64_t> in(static_cast<std::size_t>(n), 1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exclusive_scan(dev, in, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ExclusiveScan)->Range(1 << 10, 1 << 22);

void BM_ReduceSum(benchmark::State& state) {
  Device dev({.mode = ExecMode::kConcurrent});
  const auto n = state.range(0);
  std::vector<std::int64_t> in(static_cast<std::size_t>(n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_sum(dev, in));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ReduceSum)->Range(1 << 10, 1 << 22);

void BM_RelaxedVsSeqCstStore(benchmark::State& state) {
  const bool seq_cst = state.range(0) != 0;
  std::vector<relaxed_cell<std::int32_t>> cells(1 << 16);
  std::int64_t i = 0;
  for (auto _ : state) {
    const auto j = static_cast<std::size_t>((i * 2654435761LL) & 0xffff);
    if (seq_cst)
      cells[j].store_seq_cst(static_cast<std::int32_t>(i));
    else
      cells[j].store(static_cast<std::int32_t>(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(seq_cst ? "seq_cst" : "relaxed");
}
BENCHMARK(BM_RelaxedVsSeqCstStore)->Arg(0)->Arg(1);

}  // namespace
