// Offline calibration of the adaptive-solver cost model
// (`policy::CostModel`): sweeps a solver pool over the shared policy
// suite (uniform + skew + massive — `build_policy_suite`), folds each
// best-of-reps wall time into the per-(feature bucket, spec)
// microseconds-per-edge table, and writes the model as deterministic JSON
// (`--model`).  `--emit-inc` additionally regenerates
// `src/policy/default_model.inc`, the table embedded in the library as
// `CostModel::embedded_default()` — the committed calibration every
// `auto` resolution starts from before online refinement.
//
// `--smoke` shrinks the sweep (small n, no massive group, one rep) so CI
// can exercise the whole calibrate→load→resolve path in seconds; a real
// recalibration runs the defaults on an idle machine with
// `--backend host`, where wall times are measured execution, not
// simulator overhead.

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness_common.hpp"
#include "policy/auto_solver.hpp"
#include "policy/cost_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("policy_calibrate",
                "Calibrate the policy::CostModel: solver pool x policy "
                "suite, bucketed us-per-edge");
  cli.add_option("n", "base column count of the uniform/skew instances",
                 "20000");
  cli.add_option("massive-scale",
                 "scale of the massive group (0 = skip massive)", "0.4");
  cli.add_option("structured-scale",
                 "Table I scale of the structured group (0 = skip)", "0.03");
  cli.add_option("reps",
                 "timed repetitions per (instance, spec); best wall wins",
                 "2");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_option("backend",
                 "device backend: host (measured wall time; use for real "
                 "calibrations) or sim",
                 "host");
  cli.add_option("model", "write the calibrated model JSON to this path",
                 "policy_model.json");
  cli.add_option("emit-inc",
                 "additionally regenerate the embedded default model "
                 "(src/policy/default_model.inc) at this path (empty = off)",
                 "");
  cli.add_option("json",
                 "write the raw instance x spec measurements as JSON to "
                 "this path (empty = off)",
                 "");
  cli.add_flag("smoke",
               "tiny sweep (n=2000, no massive, 1 rep) for CI path checks");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  add_algo_flag(cli, "g-pr-wb,g-pr-shr,hk,hkdw,pf,p-dbfs,seq-pr");
  register_observability_flags(cli);

  SuiteOptions opt;
  graph::index_t n = 0;
  double massive_scale = 0.0, structured_scale = 0.0;
  int reps = 1;
  std::string model_path, inc_path;
  try {
    cli.parse(argc, argv);
    exit_if_list_algos(cli);
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opt.threads = static_cast<unsigned>(cli.get_int("threads"));
    opt.backend = device::parse_backend(cli.get_string("backend"));
    opt.csv = cli.get_flag("csv");
    opt.json_path = cli.get_string("json");
    opt.algos = solver_specs_from_cli(cli);
    observability_from_cli(cli, opt);
    n = static_cast<graph::index_t>(cli.get_int("n"));
    massive_scale = cli.get_double("massive-scale");
    structured_scale = cli.get_double("structured-scale");
    reps = std::max(1, static_cast<int>(cli.get_int("reps")));
    model_path = cli.get_string("model");
    inc_path = cli.get_string("emit-inc");
    if (cli.get_flag("smoke")) {
      n = 2000;
      massive_scale = 0.0;
      structured_scale = 0.0;
      reps = 1;
    }
    if (n < 64) throw std::invalid_argument("--n must be at least 64");
    if (opt.algos.empty()) throw std::invalid_argument("--algo must be set");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  const std::vector<PolicyInstance> suite =
      build_policy_suite(n, massive_scale, opt.seed, structured_scale);
  std::cout << "# policy_calibrate — cost-model calibration sweep\n"
            << "# instances: " << suite.size() << " (n = " << n
            << ", massive-scale " << massive_scale << ", structured-scale "
            << structured_scale << "), seed " << opt.seed
            << ", reps " << reps << ", backend "
            << device::backend_name(opt.backend) << '\n';

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);
  std::vector<std::unique_ptr<Solver>> solvers;
  for (const auto& spec : opt.algos) solvers.push_back(spec.instantiate());

  std::vector<std::string> headers{"instance", "suite", "bucket"};
  for (const auto& spec : opt.algos)
    headers.push_back(spec.canonical() + " us/edge");
  Table table(std::move(headers), 4);

  policy::CostModel model;
  std::vector<JsonRecord> records;
  bool all_ok = true;
  for (const PolicyInstance& inst : suite) {
    const std::string bucket = policy::bucket_of(inst.bi.features).key();
    std::vector<Table::Cell> row{inst.bi.meta.name, inst.suite, bucket};
    for (std::size_t a = 0; a < solvers.size(); ++a) {
      AlgoResult best;
      for (int rep = 0; rep < reps; ++rep) {
        const AlgoResult r = run_solver(*solvers[a], dev, inst.bi,
                                        opt.threads);
        all_ok &= r.ok;
        if (rep == 0 || r.seconds < best.seconds) best = r;
      }
      const double us_per_edge =
          best.seconds * 1e6 /
          static_cast<double>(inst.bi.features.edges);
      model.record(bucket, opt.algos[a].canonical(), us_per_edge);
      row.emplace_back(us_per_edge);
      records.push_back(to_json_record(inst.bi.meta.name, inst.suite,
                                       opt.algos[a].canonical(), best,
                                       opt.backend, &inst.bi.features));
    }
    table.add_row(std::move(row));
  }
  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  model.save(model_path);
  std::cout << "# model written to " << model_path << " ("
            << model.bucket_count() << " buckets)\n";

  if (!inc_path.empty()) {
    std::ofstream inc(inc_path);
    if (!inc)
      throw std::runtime_error("cannot open " + inc_path);
    inc << "// Embedded default policy cost model — the committed offline\n"
           "// calibration `CostModel::embedded_default()` returns.\n"
           "// Regenerate with:\n"
           "//   policy_calibrate --backend host --emit-inc "
           "src/policy/default_model.inc\n"
           "// (never edit by hand; the table must stay byte-identical to\n"
           "// what CostModel::to_json emits so the round-trip test holds).\n"
           "R\"bpm_policy_model(" << model.to_json()
        << ")bpm_policy_model\"\n";
    if (!inc.good())
      throw std::runtime_error("write failed: " + inc_path);
    std::cout << "# embedded model written to " << inc_path << '\n';
  }

  // Sanity: everything the model will ever recommend came from a
  // verified run of this very sweep.
  write_json(opt.json_path, "policy_calibrate", records,
             {{"buckets", static_cast<double>(model.bucket_count())},
              {"instances", static_cast<double>(suite.size())},
              {"specs", static_cast<double>(opt.algos.size())},
              {"ok", all_ok ? 1.0 : 0.0}});
  if (!opt.json_path.empty())
    std::cout << "# json written to " << opt.json_path << '\n';
  write_observability(opt);
  return all_ok ? 0 : 1;
}
