// Pipeline scaling: how much batch wall time does cross-job concurrency
// buy?  Runs a batch of (instance × solver) jobs through MatchingPipeline
// at increasing `max_concurrent_jobs` and reports, per concurrency level,
// the batch wall time next to the summed per-job solver time — the gap
// between the two is exactly what the concurrent scheduler and the result
// cache recover.  The report signature (instance, solver, cardinality,
// ok) is checked to be identical across all levels: scheduling must never
// change results or their order.
//
//   pipeline_scaling --scale 0.004 --algo g-pr-shr,hk,p-dbfs \
//                    --concurrency 1,2,4,8
//
// One instance is deliberately admitted twice, so each level also shows
// the cache serving the duplicate jobs without re-solving.

#include <iostream>
#include <sstream>
#include <vector>

#include "core/pipeline.hpp"
#include "harness_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("pipeline_scaling",
                "batch wall time vs summed job time as max_concurrent_jobs "
                "grows");
  register_suite_flags(cli, /*default_stride=*/4,
                       /*default_algos=*/"g-pr-shr,hk,p-dbfs");
  cli.add_option("concurrency", "comma-separated max_concurrent_jobs values",
                 "1,2,4,0");
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  std::vector<unsigned> levels;
  for (const std::string& tok : cli.get_string_list("concurrency"))
    levels.push_back(static_cast<unsigned>(std::stoul(tok)));

  MatchingPipeline pipe({.device_threads = opt.threads,
                         .solver_threads = opt.threads,
                         .max_concurrent_jobs = 1,
                         .tracer = opt.tracer()});
  std::size_t duplicated = 0;
  for (const auto& meta : graph::select_instances(opt.stride)) {
    const BuiltInstance bi = build_instance(meta, opt);
    pipe.add_instance(meta.name, bi.g);
    if (duplicated++ == 0)  // one repeat: exercises the result cache
      pipe.add_instance(meta.name + "(repeat)", bi.g);
  }
  print_header("Pipeline scaling — concurrent jobs on device streams", opt,
               pipe.instances().size());
  std::cout << "# jobs: " << pipe.instances().size() << " instances x "
            << opt.algos.size() << " solvers\n";

  std::vector<std::string> specs;
  for (const auto& spec : opt.algos) specs.push_back(spec.canonical());

  const auto signature = [](const PipelineReport& rep) {
    std::ostringstream os;
    for (const PipelineJob& job : rep.jobs)
      os << job.instance << ':' << job.solver << ':' << job.stats.cardinality
         << ':' << job.ok << ':' << job.cached << ';';
    return os.str();
  };

  Table table({"max_concurrent_jobs", "batch_wall_ms", "sum_job_ms",
               "speedup_vs_seq", "cache_hits", "all_ok"},
              2);
  bool all_ok = true;
  std::string reference_signature;
  double sequential_wall = 0.0;
  for (const unsigned level : levels) {
    pipe.set_max_concurrent_jobs(level);
    const PipelineReport rep = pipe.run(specs);
    all_ok &= rep.all_ok();
    const std::string sig = signature(rep);
    if (reference_signature.empty()) {
      reference_signature = sig;
      sequential_wall = rep.totals.batch_wall_ms;
    } else if (sig != reference_signature) {
      std::cerr << "REPORT MISMATCH at max_concurrent_jobs=" << level
                << ": concurrent schedule changed the report\n";
      all_ok = false;
    }
    table.add_row({static_cast<std::int64_t>(level), rep.totals.batch_wall_ms,
                   rep.totals.wall_ms,
                   sequential_wall / rep.totals.batch_wall_ms,
                   static_cast<std::int64_t>(rep.totals.cache_hits),
                   std::string(rep.all_ok() ? "yes" : "NO")});
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);
  std::cout << "\nExpected shape: batch_wall_ms falls below sum_job_ms once "
               "max_concurrent_jobs > 1 (jobs overlap on device streams; 0 "
               "= hardware concurrency), while the report stays identical "
               "to the sequential schedule.\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
