// Reproduces paper Figure 4: the individual speedup of G-PR over
// sequential PR on each of the 28 graphs, ordered (as in Table I) by
// increasing number of rows.
//
// Paper shape: speedups from 0.31 (hugetrace-00000) to 12.60
// (delaunay_n24), average 3.05; G-PR wins on 23 of 28 graphs and loses on
// the huge-diameter mesh instances.

#include <iostream>
#include <vector>

#include "harness_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bpm;
  using namespace bpm::bench;

  CliParser cli("fig4_individual_speedups",
                "Figure 4: per-graph speedup of G-PR over sequential PR");
  register_suite_flags(cli);
  cli.parse(argc, argv);
  const SuiteOptions opt = suite_options_from_cli(cli);

  const auto suite = build_suite(opt);
  print_header("Figure 4 — individual G-PR speedups vs sequential PR", opt,
               suite.size());

  device::Device dev({.backend = opt.backend,
                      .mode = device::ExecMode::kConcurrent,
                      .num_threads = opt.threads});
  attach_tracer(opt, dev);

  bool all_ok = true;
  Table table({"id", "graph", "class", "PR (s)", "G-PR (s)", "speedup",
               "paper speedup"},
              3);
  std::vector<double> speedups;
  std::size_t wins = 0;
  for (const auto& bi : suite) {
    const AlgoResult pr = run_solver("seq-pr", dev, bi);
    const AlgoResult gpr = run_solver("g-pr-shr", dev, bi);
    all_ok &= pr.ok && gpr.ok;
    const double t_gpr = device_seconds(gpr, opt);
    const double speedup = pr.seconds / t_gpr;
    speedups.push_back(speedup);
    if (speedup > 1.0) ++wins;
    table.add_row({static_cast<std::int64_t>(bi.meta.id), bi.meta.name,
                   std::string(graph::to_string(bi.meta.cls)), pr.seconds,
                   t_gpr, speedup,
                   bi.meta.paper.pr_s / bi.meta.paper.g_pr_s});
  }

  if (opt.csv)
    std::cout << table.to_csv();
  else
    table.print(std::cout);

  const Summary s = summarize(speedups);
  std::cout << "\nSpeedup range " << s.min << " – " << s.max
            << ", arithmetic mean " << s.mean << " (paper: 0.31 – 12.60, "
            << "mean 3.05); G-PR faster than PR on " << wins << "/"
            << suite.size() << " graphs (paper: 23/28).\n";
  try {
    write_observability(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}
