#include <gtest/gtest.h>

#include "core/g_hk.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm::gpu {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

using Config = std::tuple<bool /*duff_wiberg*/, ExecMode>;

std::string config_name(const ::testing::TestParamInfo<Config>& param_info) {
  std::string name = std::get<0>(param_info.param) ? "GHKDW" : "GHK";
  name += std::get<1>(param_info.param) == ExecMode::kSequential ? "_Seq"
                                                                 : "_Conc";
  return name;
}

class GhkConfigs : public ::testing::TestWithParam<Config> {
 protected:
  void check(const BipartiteGraph& g) {
    const index_t want = matching::reference_maximum_cardinality(g);
    for (const bool greedy_start : {false, true}) {
      Device dev({.mode = std::get<1>(GetParam()), .num_threads = 4});
      const matching::Matching init =
          greedy_start ? matching::cheap_matching(g) : matching::Matching(g);
      const GhkResult r =
          g_hk(dev, g, init, {.duff_wiberg = std::get<0>(GetParam())});
      ASSERT_TRUE(r.matching.is_valid(g)) << r.matching.first_violation(g);
      EXPECT_EQ(r.matching.cardinality(), want);
      EXPECT_TRUE(matching::is_maximum(g, r.matching));
    }
  }
};

TEST_P(GhkConfigs, EmptyGraph) { check(gen::empty_graph(3, 3)); }

TEST_P(GhkConfigs, SingleEdge) {
  check(graph::build_from_edges(1, 1, std::vector<graph::Edge>{{0, 0}}));
}

TEST_P(GhkConfigs, Star) { check(gen::star(6)); }

TEST_P(GhkConfigs, CompleteSquare) { check(gen::complete_bipartite(7, 7)); }

TEST_P(GhkConfigs, Chains) {
  check(gen::chain(2));
  check(gen::chain(33));
  check(gen::chain(150));
}

TEST_P(GhkConfigs, RandomSparseManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    check(gen::random_uniform(70, 70, 220, seed));
}

TEST_P(GhkConfigs, RandomRectangular) {
  check(gen::random_uniform(50, 110, 300, 3));
  check(gen::random_uniform(110, 50, 300, 3));
}

TEST_P(GhkConfigs, PowerLaw) { check(gen::chung_lu(250, 250, 3.0, 2.3, 6)); }

TEST_P(GhkConfigs, TraceStrip) { check(gen::trace_mesh(80, 3, 0.05, 6)); }

TEST_P(GhkConfigs, PlantedPerfect) {
  check(gen::planted_perfect(90, 1.2, 8));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GhkConfigs,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(ExecMode::kSequential,
                                         ExecMode::kConcurrent)),
    config_name);

TEST(Ghk, StatsAccounting) {
  const BipartiteGraph g = gen::random_uniform(150, 150, 500, 5);
  Device dev({.mode = ExecMode::kSequential});
  const GhkResult r = g_hk(dev, g, matching::Matching(g));
  EXPECT_GT(r.stats.phases, 0);
  EXPECT_GT(r.stats.augmentations, 0);
  EXPECT_GT(r.stats.bfs_level_kernels, 0);
  // Sequential device: claims cannot collide, so no fallbacks.
  EXPECT_EQ(r.stats.sequential_fallbacks, 0);
}

TEST(Ghk, DuffWibergPassAugments) {
  const BipartiteGraph g = gen::chung_lu(400, 400, 4.0, 2.5, 12);
  Device dev({.mode = ExecMode::kSequential});
  const GhkResult dw = g_hk(dev, g, matching::Matching(g), {.duff_wiberg = true});
  Device dev2({.mode = ExecMode::kSequential});
  const GhkResult plain =
      g_hk(dev2, g, matching::Matching(g), {.duff_wiberg = false});
  EXPECT_EQ(dw.matching.cardinality(), plain.matching.cardinality());
  EXPECT_GT(dw.stats.dw_augmentations, 0);
  EXPECT_LE(dw.stats.phases, plain.stats.phases);
}

TEST(Ghk, RejectsInvalidInitialMatching) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  matching::Matching bad(g);
  bad.row_match[1] = 0;
  Device dev({.mode = ExecMode::kSequential});
  EXPECT_THROW((void)g_hk(dev, g, bad), std::invalid_argument);
}

}  // namespace
}  // namespace bpm::gpu
