// serve::proto + serve::Session (src/serve/): the crash-proof request
// schema.  The contract under attack: for ANY input line, parse_command
// returns a typed command or a typed ProtoError (never throws), and
// Session::execute answers `error ...` lines (never throws, never kills
// the service) — then keeps serving valid requests.  Plus auth gating,
// per-session quotas, and the checked numeric decode helpers themselves.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/proto.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"

namespace bpm::serve {
namespace {

// --- checked numeric decode --------------------------------------------------

TEST(ProtoDecode, I64) {
  EXPECT_EQ(proto::decode_i64("0"), 0);
  EXPECT_EQ(proto::decode_i64("-17"), -17);
  EXPECT_EQ(proto::decode_i64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE(proto::decode_i64(""));
  EXPECT_FALSE(proto::decode_i64("12x"));           // trailing junk
  EXPECT_FALSE(proto::decode_i64("x12"));
  EXPECT_FALSE(proto::decode_i64("1.5"));           // not an integer
  EXPECT_FALSE(proto::decode_i64(" 1"));            // no implicit trimming
  EXPECT_FALSE(proto::decode_i64("999999999999999999999999999999"));
}

TEST(ProtoDecode, U64) {
  EXPECT_EQ(proto::decode_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(proto::decode_u64("-1"));
  EXPECT_FALSE(proto::decode_u64(""));
  EXPECT_FALSE(proto::decode_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(proto::decode_u64("1e3"));
}

TEST(ProtoDecode, F64) {
  EXPECT_DOUBLE_EQ(*proto::decode_f64("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*proto::decode_f64("1e3"), 1000.0);
  EXPECT_FALSE(proto::decode_f64(""));
  EXPECT_FALSE(proto::decode_f64("abc"));
  EXPECT_FALSE(proto::decode_f64("1.5x"));
  EXPECT_FALSE(proto::decode_f64("nan"));  // non-finite never enters
  EXPECT_FALSE(proto::decode_f64("inf"));
  EXPECT_FALSE(proto::decode_f64("-inf"));
  EXPECT_FALSE(proto::decode_f64("1e999"));  // overflows to inf
}

// --- parse_command -----------------------------------------------------------

TEST(ProtoParse, HappyPaths) {
  using std::holds_alternative;
  auto cmd = [](std::string_view line) {
    proto::Parsed p = proto::parse_command(line);
    EXPECT_TRUE(p.command.has_value()) << line;
    return std::move(*p.command);
  };
  EXPECT_TRUE(holds_alternative<proto::AuthRequest>(cmd("auth s3cret")));
  EXPECT_TRUE(holds_alternative<proto::LoadRequest>(cmd("load a b.mtx")));
  EXPECT_TRUE(holds_alternative<proto::GenRequest>(
      cmd("gen a uniform 10 12 50 7")));
  EXPECT_TRUE(holds_alternative<proto::GenRequest>(
      cmd("gen a planted 100 1.5 7")));
  EXPECT_TRUE(holds_alternative<proto::GenRequest>(
      cmd("gen a chung-lu 50 60 3.0 2.5 1")));
  EXPECT_TRUE(holds_alternative<proto::GenRequest>(
      cmd("gen a instance rand-easy 0.5 3")));
  EXPECT_TRUE(holds_alternative<proto::GenRequest>(
      cmd("gen a huge 100 100 4.0 0.1 10 2")));
  EXPECT_TRUE(holds_alternative<proto::SubmitRequest>(cmd("submit a hk")));
  EXPECT_TRUE(holds_alternative<proto::SubmitRequest>(
      cmd("submit a g-pr-shr:k=1.5 prio=3 deadline=500")));
  EXPECT_TRUE(holds_alternative<proto::PollRequest>(cmd("poll 7")));
  EXPECT_TRUE(holds_alternative<proto::WaitRequest>(cmd("wait 7")));
  EXPECT_TRUE(holds_alternative<proto::DrainRequest>(cmd("drain")));
  EXPECT_TRUE(holds_alternative<proto::StatsRequest>(cmd("stats")));
  EXPECT_TRUE(holds_alternative<proto::MetricsRequest>(cmd("metrics")));
  EXPECT_TRUE(
      holds_alternative<proto::TraceStartRequest>(cmd("trace-start /tmp/t")));
  EXPECT_TRUE(holds_alternative<proto::TraceDumpRequest>(cmd("trace-dump")));
  EXPECT_TRUE(
      holds_alternative<proto::SaveCacheRequest>(cmd("save-cache /tmp/c")));
  EXPECT_TRUE(
      holds_alternative<proto::LoadCacheRequest>(cmd("load-cache /tmp/c")));
  EXPECT_TRUE(holds_alternative<proto::ShutdownRequest>(cmd("shutdown")));
}

TEST(ProtoParse, SubmitFields) {
  proto::Parsed p =
      proto::parse_command("submit demo g-pr-shr:k=1.5 prio=5 deadline=250");
  ASSERT_TRUE(p.command.has_value());
  const auto& r = std::get<proto::SubmitRequest>(*p.command);
  EXPECT_EQ(r.instance, "demo");
  EXPECT_EQ(r.spec, "g-pr-shr:k=1.5");
  EXPECT_EQ(r.priority, 5);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 250.0);
}

TEST(ProtoParse, IgnorableLines) {
  EXPECT_TRUE(proto::parse_command("").ignorable());
  EXPECT_TRUE(proto::parse_command("   ").ignorable());
  EXPECT_TRUE(proto::parse_command("# a comment").ignorable());
  EXPECT_TRUE(proto::parse_command("  # indented comment").ignorable());
}

TEST(ProtoParse, MalformedCorpus) {
  // Every entry must produce a typed error — and error_line must render
  // it as a protocol `error ...` response.
  const char* corpus[] = {
      "submit foo g-pr prio=abc",
      "submit foo g-pr deadline=nan",
      "submit foo g-pr bogus=1",
      "submit foo",
      "submit",
      "gen",
      "gen x",
      "gen x uniform",
      "gen x uniform 10",
      "gen x uniform ten 10 50 1",
      "gen x uniform -5 10 50 1",
      "gen x uniform 0 10 50 1",
      "gen x uniform 10 10 -3 1",
      "gen x uniform 99999999999999999999 10 50 1",
      "gen x planted 10 1e300 1",
      "gen x planted 10 -1 1",
      "gen x chung-lu 10 10 4.0 1.5 1",      // gamma must exceed 2
      "gen x chung-lu 10 10 1e300 2.5 1",
      "gen x huge 10 10 4.0 1.5 10 1",       // hub_fraction > 1
      "gen x huge 10 10 4.0 -0.5 10 1",
      "gen x nosuchkind 1 2 3",
      "gen x uniform 10 12 50 7 extra-token",
      "load x",
      "load x a.mtx extra",
      "poll",
      "poll abc",
      "poll -1",
      "poll 184467440737095516150",           // overflows uint64
      "wait xyz",
      "drain now",
      "stats verbose",
      "trace-start",
      "save-cache",
      "load-cache a b",
      "auth",
      "totally-unknown-command 1 2 3",
  };
  for (const char* line : corpus) {
    proto::Parsed p = proto::parse_command(line);
    EXPECT_FALSE(p.command.has_value()) << line;
    ASSERT_TRUE(p.error.has_value()) << line;
    EXPECT_FALSE(p.error->message.empty()) << line;
    const std::string rendered = proto::error_line(*p.error);
    EXPECT_TRUE(rendered.starts_with("error code=")) << rendered;
    EXPECT_NE(rendered.find("msg="), std::string::npos) << rendered;
  }
}

TEST(ProtoParse, GenBoundsComeFromLimits) {
  proto::Limits limits;
  limits.max_dimension = 100;
  proto::Parsed p = proto::parse_command("gen x uniform 101 10 50 1", limits);
  ASSERT_TRUE(p.error.has_value());
  EXPECT_EQ(p.error->code, proto::ErrorCode::kOutOfRange);
  // The same request passes under the default (generous) limits.
  EXPECT_TRUE(proto::parse_command("gen x uniform 101 10 50 1")
                  .command.has_value());
  // Implied edge volume (degree x dimension) is capped too.
  limits = {};
  limits.max_edges = 1000;
  p = proto::parse_command("gen x planted 1000 100 1", limits);
  ASSERT_TRUE(p.error.has_value());
  EXPECT_EQ(p.error->code, proto::ErrorCode::kOutOfRange);
}

TEST(ProtoParse, LineTooLong) {
  proto::Limits limits;
  limits.max_line_bytes = 64;
  const std::string line = "submit " + std::string(200, 'a') + " hk";
  proto::Parsed p = proto::parse_command(line, limits);
  ASSERT_TRUE(p.error.has_value());
  EXPECT_EQ(p.error->code, proto::ErrorCode::kLineTooLong);
}

TEST(ProtoParse, TokenFlood) {
  proto::Limits limits;
  std::string line = "submit a hk";
  for (std::size_t t = 0; t < limits.max_tokens + 8; ++t) line += " prio=1";
  proto::Parsed p = proto::parse_command(line, limits);
  ASSERT_TRUE(p.error.has_value());
}

// --- Session: execute never throws, service survives -------------------------

ServiceOptions tiny_service_options() {
  ServiceOptions opt;
  opt.workers = 2;
  opt.queue_depth = 64;
  return opt;
}

std::vector<std::string> run(Session& session, std::string_view line) {
  return session.execute(line).lines;
}

TEST(ServeSession, ValidFlow) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session session(context);
  auto lines = run(session, "gen a planted 50 1.0 3");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].starts_with("instance a handle="));
  lines = run(session, "submit a hk");
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_TRUE(lines[0].starts_with("ticket "));
  lines = run(session, "wait " + lines[0].substr(7));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].starts_with("result ticket="));
  EXPECT_NE(lines[0].find(" ok=1 "), std::string::npos);
  EXPECT_NE(lines[0].find(" cardinality=50 "), std::string::npos);
  EXPECT_EQ(session.errors(), 0u);
}

TEST(ServeSession, MalformedLinesAnswerErrorsAndServiceSurvives) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session session(context);
  const char* corpus[] = {
      "submit foo g-pr prio=abc",
      "gen broken uniform -5 10 100 1",
      "gen broken planted 10 1e300 1",
      "gen broken chung-lu 10 10 4.0 1.0 1",
      "poll 99999999999999999999",
      "wait not-a-ticket",
      "wait 424242",                       // never-issued ticket
      "submit nosuchinstance hk",
      "load broken /nonexistent/file.mtx",
      "trace-dump",                        // before trace-start
      "save-cache /nonexistent/dir/c",
      "unknown-command",
  };
  for (const char* line : corpus) {
    const auto lines = run(session, line);
    ASSERT_EQ(lines.size(), 1u) << line;
    EXPECT_TRUE(lines[0].starts_with("error code=")) << lines[0];
  }
  EXPECT_EQ(session.errors(), std::size(corpus));
  // The same session still serves valid requests.
  auto lines = run(session, "gen ok planted 40 0.5 9");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].starts_with("instance ok"));
  lines = run(session, "submit ok hk");
  ASSERT_TRUE(lines[0].starts_with("ticket "));
  lines = run(session, "wait " + lines[0].substr(7));
  EXPECT_NE(lines[0].find("cardinality=40"), std::string::npos);
}

TEST(ServeSession, FuzzedLinesNeverThrow) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session session(context);
  const std::string seeds[] = {
      "gen a uniform 40 42 200 5", "gen b planted 30 1.0 2",
      "submit a hk prio=2",        "submit a g-pr-shr deadline=100",
      "poll 1",                    "wait 1",
      "stats",                     "metrics",
      "drain",                     "load x file.mtx",
  };
  Rng rng(2013);
  for (int trial = 0; trial < 300; ++trial) {
    std::string line = seeds[rng.below(std::size(seeds))];
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.below(line.size()));
      line[pos] = static_cast<char>(' ' + static_cast<char>(rng.below(95)));
    }
    // The contract: execute returns lines, never throws.  (A mutated line
    // can still be valid — a changed seed digit — so no assertion on the
    // response kind, only on survival.)
    const Session::Outcome out = session.execute(line);
    for (const std::string& l : out.lines) EXPECT_FALSE(l.empty());
  }
  // Prove the service is still alive and correct after the storm.
  auto lines = run(session, "gen alive planted 25 0.0 1");
  ASSERT_TRUE(lines[0].starts_with("instance alive"));
  lines = run(session, "submit alive hk");
  ASSERT_TRUE(lines[0].starts_with("ticket "));
  lines = run(session, "wait " + lines[0].substr(7));
  EXPECT_NE(lines[0].find("cardinality=25"), std::string::npos);
}

TEST(ServeSession, QuotaExhaustionAnswersTypedError) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session::Options options;
  options.quota = 2;
  Session session(context, options);
  EXPECT_TRUE(run(session, "gen a planted 20 0.0 1")[0].starts_with(
      "instance a"));
  EXPECT_TRUE(run(session, "stats")[0].starts_with("stats "));
  const auto lines = run(session, "stats");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].starts_with("error code=quota-exceeded"));
  EXPECT_EQ(session.quota_rejections(), 1u);
  EXPECT_EQ(session.requests(), 2u);
}

TEST(ServeSession, AuthGate) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session::Options options;
  options.auth_token = "s3cret";
  Session session(context, options);
  // Anything before auth is refused.
  auto lines = run(session, "stats");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].starts_with("error code=unauthorized"));
  // A wrong token is refused and does not authenticate.
  lines = run(session, "auth wrong");
  EXPECT_TRUE(lines[0].starts_with("error code=unauthorized"));
  EXPECT_FALSE(session.authed());
  // The right token opens the session.
  lines = run(session, "auth s3cret");
  EXPECT_EQ(lines[0], "ok auth");
  EXPECT_TRUE(session.authed());
  lines = run(session, "stats");
  EXPECT_TRUE(lines[0].starts_with("stats "));
}

TEST(ServeSession, OversizedLineClosesSession) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session::Options options;
  options.limits.max_line_bytes = 64;
  Session session(context, options);
  const Session::Outcome out =
      session.execute("submit " + std::string(100, 'x') + " hk");
  ASSERT_EQ(out.lines.size(), 1u);
  EXPECT_TRUE(out.lines[0].starts_with("error code=line-too-long"));
  EXPECT_TRUE(out.close);
}

TEST(ServeSession, ShutdownOutcome) {
  MatchingService service(tiny_service_options());
  SessionContext context(service);
  Session session(context);
  const Session::Outcome out = session.execute("shutdown");
  ASSERT_EQ(out.lines.size(), 1u);
  EXPECT_EQ(out.lines[0], "ok shutdown");
  EXPECT_TRUE(out.shutdown);
}

}  // namespace
}  // namespace bpm::serve
