// serve::MatchingService + serve::InstanceStore (src/serve/): async
// submit/future and ticket-polling APIs, priority ordering, bounded-queue
// backpressure, deadlines, instance dedup, cache accounting across
// requests and batches (including pipeline sharing and snapshot reload).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"

namespace bpm::serve {
namespace {

namespace gen = graph::gen;

/// A registered test solver that sleeps: lets tests hold a worker busy for
/// a deterministic window (to fill queues, test priorities and deadlines).
class SleepSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "test-sleep"; }
  [[nodiscard]] SolverCaps caps() const override {
    return {.deterministic = true, .exact = false};
  }
  bool set_option(std::string_view key, std::string_view value) override {
    if (key != "ms") return false;
    ms_ = std::stoi(std::string(value));
    return true;
  }
  [[nodiscard]] SolveResult run(const SolveContext&,
                                const graph::BipartiteGraph&,
                                const matching::Matching& init) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    SolveResult out{init, {}};
    out.stats.cardinality = init.cardinality();
    return out;
  }

 private:
  int ms_ = 20;
};

[[maybe_unused]] const bool kRegistered = [] {
  SolverRegistry::instance().add("test-sleep",
                                 [] { return std::make_unique<SleepSolver>(); });
  return true;
}();

Request request(std::size_t instance, const std::string& spec,
                int priority = 0, double deadline_ms = 0.0) {
  return {.instance = instance,
          .spec = SolverSpec::parse(spec),
          .priority = priority,
          .deadline_ms = deadline_ms};
}

TEST(InstanceStore, DedupsByStructuralFingerprint) {
  InstanceStore store;
  const auto g = gen::random_uniform(200, 210, 900, 3);
  const auto a = store.add("original", g);
  const auto b = store.add("same-graph-new-name", g);
  const auto c = store.add("other", gen::planted_perfect(100, 2.0, 9));
  EXPECT_FALSE(a.deduplicated);
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(a.handle, b.handle);
  EXPECT_FALSE(c.deduplicated);
  EXPECT_NE(a.handle, c.handle);
  EXPECT_EQ(store.size(), 2u);
  // Both names resolve; the admitting registration's name is primary.
  EXPECT_EQ(store.find("original"), a.handle);
  EXPECT_EQ(store.find("same-graph-new-name"), a.handle);
  EXPECT_FALSE(store.find("nope").has_value());
  EXPECT_EQ(store.get(a.handle).name, "original");
  EXPECT_THROW((void)store.get(99), std::out_of_range);

  // Re-registering a *different* graph under a taken name re-points the
  // name — submits against "original" must hit the new graph, not the old.
  const auto d = store.add("original", gen::complete_bipartite(4, 4));
  EXPECT_FALSE(d.deduplicated);
  EXPECT_EQ(store.find("original"), d.handle);
  EXPECT_EQ(store.get(d.handle).graph.num_rows(), 4);
}

TEST(InstanceStore, PrebuiltInstancesAdmitWithoutRecomputation) {
  // The precomputed-admission seam: a PipelineInstance built elsewhere
  // (here with a deliberately wrong "ground truth") is stored verbatim —
  // proof the store reuses instead of recomputing — and still dedups.
  InstanceStore store;
  PipelineInstance inst;
  inst.name = "prebuilt";
  inst.graph = gen::complete_bipartite(6, 6);
  inst.init = matching::Matching(inst.graph);
  inst.maximum_cardinality = 123;  // sentinel: would be 6 if recomputed
  const auto a = store.add(inst);
  EXPECT_FALSE(a.deduplicated);
  EXPECT_EQ(store.get(a.handle).maximum_cardinality, 123);
  const auto b = store.add("same-structure", gen::complete_bipartite(6, 6));
  EXPECT_TRUE(b.deduplicated);
  EXPECT_EQ(b.handle, a.handle);
}

TEST(Service, SubmitFutureDeliversVerifiedResults) {
  MatchingService svc({.workers = 2});
  const auto g = gen::random_uniform(300, 310, 1500, 11);
  const auto handle = svc.add_instance("g", g).handle;

  // The expected outcome, from a sequential pipeline on the same graph.
  MatchingPipeline pipe({.max_concurrent_jobs = 1});
  pipe.add_instance("g", g);
  const PipelineReport ref = pipe.run({"g-pr-shr:k=1.5", "hk", "p-dbfs"});
  ASSERT_TRUE(ref.all_ok());

  std::vector<Submission> subs;
  for (const std::string spec : {"g-pr-shr:k=1.5", "hk", "p-dbfs"})
    subs.push_back(svc.submit(request(handle, spec)));
  for (std::size_t i = 0; i < subs.size(); ++i) {
    ASSERT_TRUE(subs[i].accepted) << subs[i].reason;
    const Response r = subs[i].future.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.solver, ref.jobs[i].solver);
    EXPECT_EQ(r.stats.cardinality, ref.jobs[i].stats.cardinality);
    EXPECT_EQ(r.instance_name, "g");
    EXPECT_GE(r.total_ms, r.service_ms);
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(Service, TicketPollingCompletesWithoutFutures) {
  MatchingService svc({.workers = 1});
  const auto handle =
      svc.add_instance("g", gen::chung_lu(250, 260, 4.0, 2.4, 7)).handle;
  const Submission sub = svc.submit(request(handle, "hk"));
  ASSERT_TRUE(sub.accepted);
  // Poll until done — no deadline needed, the solve is milliseconds.
  std::optional<Response> r;
  while (!(r = svc.poll(sub.ticket)))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(r->ok) << r->error;
  EXPECT_EQ(r->ticket, sub.ticket);
  // Polling again returns the same completed response.
  EXPECT_EQ(svc.poll(sub.ticket)->stats.cardinality, r->stats.cardinality);
  EXPECT_THROW((void)svc.poll(777), std::invalid_argument);
}

TEST(Service, RejectsBadRequestsWithReasons) {
  MatchingService svc({.workers = 1});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;

  const Submission unknown_instance = svc.submit(request(handle + 50, "hk"));
  EXPECT_FALSE(unknown_instance.accepted);
  EXPECT_NE(unknown_instance.reason.find("unknown instance"),
            std::string::npos);

  const Submission bad_spec = svc.submit(request(handle, "no-such-solver"));
  EXPECT_FALSE(bad_spec.accepted);
  EXPECT_FALSE(bad_spec.reason.empty());

  EXPECT_EQ(svc.stats().rejected, 2u);
  EXPECT_EQ(svc.stats().accepted, 0u);
}

TEST(Service, BoundedQueueRejectsWithBackpressure) {
  // One worker, queue depth 2: a sleeping request holds the worker, the
  // next two fill the queue, the fourth must bounce.
  MatchingService svc({.workers = 1, .queue_depth = 2});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;
  const Submission blocker =
      svc.submit(request(handle, "test-sleep:ms=300"));
  ASSERT_TRUE(blocker.accepted);
  // The blocker may still be queued or already running; either way two
  // more fit at most.
  std::size_t rejected = 0;
  std::vector<Submission> rest;
  for (int i = 0; i < 4; ++i) {
    Submission sub = svc.submit(request(handle, "hk"));
    if (!sub.accepted) {
      ++rejected;
      EXPECT_NE(sub.reason.find("admission queue full"), std::string::npos)
          << sub.reason;
    } else {
      rest.push_back(std::move(sub));
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(svc.stats().rejected, rejected);
  for (const Submission& sub : rest) EXPECT_TRUE(sub.future.get().ok);
  (void)blocker.future.get();
}

TEST(Service, HigherPriorityJumpsTheQueue) {
  MatchingService svc({.workers = 1});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;
  // Hold the single worker so the next submissions pile up in the queue.
  const Submission blocker =
      svc.submit(request(handle, "test-sleep:ms=150"));
  ASSERT_TRUE(blocker.accepted);
  const Submission low = svc.submit(request(handle, "hk", /*priority=*/0));
  const Submission high =
      svc.submit(request(handle, "pf", /*priority=*/10));
  ASSERT_TRUE(low.accepted);
  ASSERT_TRUE(high.accepted);
  // The worker serves the high-priority request first, so by the time the
  // low one completes, the high one must already be done.
  (void)low.future.get();
  ASSERT_TRUE(svc.poll(high.ticket).has_value());
  (void)blocker.future.get();
}

TEST(Service, DeadlineExpiresWhileQueued) {
  MatchingService svc({.workers = 1});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;
  const Submission blocker =
      svc.submit(request(handle, "test-sleep:ms=100"));
  ASSERT_TRUE(blocker.accepted);
  const Submission doomed =
      svc.submit(request(handle, "hk", 0, /*deadline_ms=*/1.0));
  ASSERT_TRUE(doomed.accepted);
  const Response r = doomed.future.get();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("deadline expired"), std::string::npos) << r.error;
  EXPECT_EQ(svc.stats().expired, 1u);
  (void)blocker.future.get();
}

TEST(Service, CacheServesRepeatsAndCountsHits) {
  auto cache = std::make_shared<ResultCache>();
  MatchingService svc({.workers = 2, .cache = cache});
  const auto g = gen::random_uniform(300, 310, 1500, 11);
  const auto handle = svc.add_instance("g", g).handle;

  const Response first = svc.submit(request(handle, "hk")).future.get();
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cached);

  const Response repeat = svc.submit(request(handle, "hk")).future.get();
  ASSERT_TRUE(repeat.ok);
  EXPECT_TRUE(repeat.cached);
  EXPECT_EQ(repeat.stats.cardinality, first.stats.cardinality);
  EXPECT_EQ(repeat.service_ms, 0.0);
  // Cost fields are not re-charged on hits (same convention as the
  // pipeline), so clients aggregating responses never double-count.
  EXPECT_EQ(repeat.stats.wall_ms, 0.0);
  EXPECT_EQ(repeat.stats.device_launches, 0);

  // A different tuning never shares an entry; two spellings of one do.
  const Response tuned =
      svc.submit(request(handle, "seq-pr:k=2")).future.get();
  EXPECT_FALSE(tuned.cached);
  const Response respelled =
      svc.submit(request(handle, "seq-pr:k=2")).future.get();
  EXPECT_TRUE(respelled.cached);

  // Dedup makes a re-registered graph hit the same entries.
  const auto again = svc.add_instance("g2", g);
  EXPECT_TRUE(again.deduplicated);
  const Response via_dedup =
      svc.submit(request(again.handle, "hk")).future.get();
  EXPECT_TRUE(via_dedup.cached);

  EXPECT_EQ(svc.stats().cache_hits, 3u);
  EXPECT_EQ(cache->stats().hits, 3u);
}

TEST(Service, PipelineAndServiceShareOneCacheAcrossBatches) {
  auto cache = std::make_shared<ResultCache>();
  const auto g = gen::random_uniform(300, 310, 1500, 11);
  const std::vector<std::string> specs = {"g-pr-shr:k=1.5", "hk"};

  // Batch 1 populates the cache.
  MatchingPipeline first({.shared_cache = cache});
  first.add_instance("g", g);
  const PipelineReport cold = first.run(specs);
  ASSERT_TRUE(cold.all_ok());
  EXPECT_EQ(cold.totals.cache_hits, 0u);
  EXPECT_EQ(cache->stats().entries, 2u);

  // A *different* pipeline (fresh engine, fresh instances) hits across
  // the batch boundary.
  MatchingPipeline second({.shared_cache = cache});
  second.add_instance("g-again", g);
  const PipelineReport warm = second.run(specs);
  ASSERT_TRUE(warm.all_ok());
  EXPECT_EQ(warm.totals.cache_hits, 2u);
  for (std::size_t i = 0; i < warm.jobs.size(); ++i) {
    EXPECT_TRUE(warm.jobs[i].cached);
    EXPECT_EQ(warm.jobs[i].stats.cardinality, cold.jobs[i].stats.cardinality);
    EXPECT_EQ(warm.jobs[i].stats.wall_ms, 0.0);  // cost is not re-charged
  }

  // The service sees the same entries...
  MatchingService svc({.workers = 1, .cache = cache});
  const auto handle = svc.add_instance("g", g).handle;
  const Response r = svc.submit(request(handle, "hk")).future.get();
  EXPECT_TRUE(r.cached);
  EXPECT_EQ(r.stats.cardinality, cold.jobs[1].stats.cardinality);

  // ...and a snapshot carries them into a restarted process: a fresh
  // cache object loaded from the snapshot serves a fresh pipeline.
  std::stringstream snapshot;
  cache->save(snapshot);
  auto reloaded = std::make_shared<ResultCache>();
  EXPECT_EQ(reloaded->load(snapshot), 2u);
  MatchingPipeline restarted({.shared_cache = reloaded});
  restarted.add_instance("g", g);
  const PipelineReport after = restarted.run(specs);
  ASSERT_TRUE(after.all_ok());
  EXPECT_EQ(after.totals.cache_hits, 2u);
  for (std::size_t i = 0; i < after.jobs.size(); ++i)
    EXPECT_EQ(after.jobs[i].stats.cardinality,
              cold.jobs[i].stats.cardinality);
}

TEST(Service, VerifyOffConsumersReadButNeverSeedTheSharedCache) {
  // Every cache entry must have passed verification when it was written;
  // a verify-off producer would poison later verifying consumers.
  auto cache = std::make_shared<ResultCache>();
  const auto g = gen::random_uniform(200, 210, 900, 3);

  MatchingPipeline unchecked({.shared_cache = cache, .verify = false});
  unchecked.add_instance("g", g);
  ASSERT_TRUE(unchecked.run({"hk"}).all_ok());
  EXPECT_EQ(cache->stats().entries, 0u);  // nothing published

  MatchingService svc({.workers = 1, .verify = false, .cache = cache});
  const auto handle = svc.add_instance("g", g).handle;
  ASSERT_TRUE(svc.submit(request(handle, "hk")).future.get().ok);
  EXPECT_EQ(cache->stats().entries, 0u);

  // Verified entries flow the other way: a verifying batch publishes,
  // and the verify-off consumer may serve the (trustworthy) hit.
  MatchingPipeline checked({.shared_cache = cache});
  checked.add_instance("g", g);
  ASSERT_TRUE(checked.run({"hk"}).all_ok());
  EXPECT_EQ(cache->stats().entries, 1u);
  const Response hit = svc.submit(request(handle, "hk")).future.get();
  EXPECT_TRUE(hit.cached);
}

TEST(Service, RunWithJobsStayOutOfTheSharedCache) {
  // Caller-configured solver objects have no stable cross-batch identity;
  // they must neither read nor write the shared cache.
  auto cache = std::make_shared<ResultCache>();
  MatchingPipeline pipe({.shared_cache = cache});
  pipe.add_instance("g", gen::random_uniform(200, 210, 900, 3));
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.push_back(SolverRegistry::instance().create("hk"));
  const PipelineReport rep = pipe.run_with(solvers);
  ASSERT_TRUE(rep.all_ok());
  EXPECT_EQ(cache->stats().entries, 0u);
}

TEST(Service, ManyClientThreadsManyRequestsAllVerify) {
  // The concurrency smoke: 4 client threads x 8 requests over 2 instances
  // x 2 specs against 4 workers, every response checked.
  auto cache = std::make_shared<ResultCache>();
  MatchingService svc({.workers = 4, .cache = cache});
  const auto a =
      svc.add_instance("a", gen::random_uniform(300, 310, 1500, 11)).handle;
  const auto b =
      svc.add_instance("b", gen::chung_lu(250, 260, 4.0, 2.4, 7)).handle;
  const graph::index_t max_a = svc.instances().get(a).maximum_cardinality;
  const graph::index_t max_b = svc.instances().get(b).maximum_cardinality;

  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 8; ++i) {
        const bool use_a = (c + i) % 2 == 0;
        Submission sub = svc.submit(
            request(use_a ? a : b, i % 4 < 2 ? "hk" : "g-pr-shr"));
        if (!sub.accepted) {
          ++bad;
          continue;
        }
        const Response r = sub.future.get();
        if (!r.ok || r.stats.cardinality != (use_a ? max_a : max_b)) ++bad;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 32u);
  EXPECT_EQ(s.failed, 0u);
  // 2 instances x 2 specs = 4 unique jobs; nearly everything else is
  // served without solving — from the shared cache or as in-batch
  // coalesced fan-out.  Racing clients may first-solve one key several
  // times concurrently (at most once per in-flight request), hence the
  // slack.
  EXPECT_GE(s.cache_hits + s.fanout_hits, 32u - 4u * 4u);
  EXPECT_LE(cache->stats().entries, 4u);
}

TEST(Service, ShutdownDrainsQueuedWorkAndRejectsNewSubmissions) {
  MatchingService svc({.workers = 1});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;
  std::vector<Submission> subs;
  for (int i = 0; i < 5; ++i) subs.push_back(svc.submit(request(handle, "hk")));
  svc.shutdown();
  for (const Submission& sub : subs) {
    ASSERT_TRUE(sub.accepted);
    EXPECT_TRUE(sub.future.get().ok);  // queued work completed, not dropped
  }
  const Submission late = svc.submit(request(handle, "hk"));
  EXPECT_FALSE(late.accepted);
  EXPECT_NE(late.reason.find("shutting down"), std::string::npos);
}

TEST(Service, DrainWaitsForIdle) {
  MatchingService svc({.workers = 2});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(8, 8)).handle;
  for (int i = 0; i < 4; ++i)
    (void)svc.submit(request(handle, "test-sleep:ms=10"));
  svc.drain();
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

TEST(Service, CompletedTicketLedgerIsBoundedAndEvictsOldTickets) {
  MatchingService svc({.workers = 2, .completed_ticket_retention = 24});
  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(6, 6)).handle;
  // A month-long-style submit loop through one service: the ledger must
  // hold below its bound the whole way, not only at the end.
  std::uint64_t first_ticket = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<Submission> subs;
    for (int i = 0; i < 20; ++i)
      subs.push_back(svc.submit(request(handle, "hk")));
    for (Submission& sub : subs) {
      ASSERT_TRUE(sub.accepted) << sub.reason;
      if (first_ticket == 0) first_ticket = sub.ticket;
      (void)sub.future.get();
    }
    const ServiceStats during = svc.stats();
    EXPECT_LE(during.tickets_retained,
              24u + during.queued + during.in_flight);
  }
  svc.drain();
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 200u);
  EXPECT_LE(s.tickets_retained, 24u);
  EXPECT_GE(s.evicted_tickets, 200u - 24u);

  // An evicted ticket is answered with a distinct "expired" response —
  // from poll and wait alike — never a throw, never a deadlock.
  const std::optional<Response> polled = svc.poll(first_ticket);
  ASSERT_TRUE(polled.has_value());
  EXPECT_FALSE(polled->ok);
  EXPECT_TRUE(polled->evicted);
  EXPECT_NE(polled->error.find("ledger"), std::string::npos) << polled->error;
  const Response waited = svc.wait(first_ticket);
  EXPECT_TRUE(waited.evicted);
  EXPECT_EQ(waited.ticket, first_ticket);

  // Retention 0 disables the GC entirely.
  MatchingService unbounded(
      {.workers = 1, .completed_ticket_retention = 0});
  const auto h2 =
      unbounded.add_instance("g", gen::complete_bipartite(4, 4)).handle;
  for (int i = 0; i < 30; ++i)
    (void)unbounded.submit(request(h2, "hk"));
  unbounded.drain();
  EXPECT_EQ(unbounded.stats().tickets_retained, 30u);
  EXPECT_EQ(unbounded.stats().evicted_tickets, 0u);
}

TEST(Service, NeverIssuedTicketsThrowOnPollAndWait) {
  MatchingService svc({.workers = 1});
  // Nothing issued yet: both surfaces must throw — wait in particular
  // must not block forever on a ticket that will never exist.
  EXPECT_THROW((void)svc.poll(1), std::invalid_argument);
  EXPECT_THROW((void)svc.wait(1), std::invalid_argument);
  EXPECT_THROW((void)svc.poll(0), std::invalid_argument);

  const auto handle =
      svc.add_instance("g", gen::complete_bipartite(4, 4)).handle;
  const Submission sub = svc.submit(request(handle, "hk"));
  ASSERT_TRUE(sub.accepted);
  (void)sub.future.get();
  EXPECT_TRUE(svc.poll(sub.ticket).has_value());
  EXPECT_THROW((void)svc.poll(sub.ticket + 1000), std::invalid_argument);
  EXPECT_THROW((void)svc.wait(sub.ticket + 1000), std::invalid_argument);
}

TEST(Service, EngineOdometerTracksSolvedRequestsLive) {
  // One stream per solved request, retired on completion: the odometer is
  // observable while the service keeps running — no shutdown needed.
  MatchingService svc({.workers = 2});
  const auto handle =
      svc.add_instance("g", gen::random_uniform(300, 310, 1500, 11)).handle;
  (void)svc.submit(request(handle, "g-pr-shr")).future.get();
  const device::EngineStats one = svc.engine_stats();
  EXPECT_EQ(one.streams_opened, 1u);
  EXPECT_EQ(one.streams_retired, 1u);
  EXPECT_GT(one.launches, 0u);  // the device solver's kernel launches
  // Sim charges the model; the host backend measures wall time instead.
  if (device::default_backend() == device::Backend::kHost)
    EXPECT_GT(one.native_ms, 0.0);
  else
    EXPECT_GT(one.modeled_ms, 0.0);

  (void)svc.submit(request(handle, "hk")).future.get();  // CPU solver
  const device::EngineStats two = svc.engine_stats();
  EXPECT_EQ(two.streams_retired, 2u);
  EXPECT_EQ(two.launches, one.launches);  // no device work on a CPU run
}

TEST(Service, ShardedSolverSpreadsOverTheServiceFleet) {
  // A sharded dispatch gets the whole live fleet (shard k on engine k)
  // and pins its coordinator on engine 0; the result is verified like any
  // other solver's.
  MatchingService svc({.workers = 1, .engines = 3});
  const auto g = gen::skewed_hubs(220, 260, 5, 0.3, 2.5, 23);
  const auto handle = svc.add_instance("hubs", g).handle;

  const Response r =
      svc.submit(request(handle, "g-pr-sh:shards=3")).future.get();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.stats.detail.find("3 shards"), std::string::npos)
      << r.stats.detail;
  // The coordinator lease landed shard-local: engine 0 took the dispatch.
  const auto stats = svc.engine_group().stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].dispatches, 1u);
}

}  // namespace
}  // namespace bpm::serve
