// Invariant tests: the two properties the paper's correctness argument
// rests on, checked at every kernel-launch barrier via the GprObserver
// hook.
//
//  * Neighborhood invariant (Section II-B): for every column v and every
//    neighbor u in Γ(v), ψ(u) >= ψ(v) − 1.  In sequential device mode the
//    execution is exactly a sequentialisation of the paper's pushes, so
//    the invariant must hold at every barrier.
//  * Matching invariant (Section III): rows are authoritative — whenever
//    µ(u) = v and µ(v) = u, the pair is a real edge; a matched row never
//    becomes unmatched; µ(v) = −2 columns never come back.

#include <gtest/gtest.h>

#include <vector>

#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm::gpu {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

/// Checks both invariants at every barrier and accumulates violations.
class InvariantObserver : public GprObserver {
 public:
  explicit InvariantObserver(const BipartiteGraph& g)
      : g_(g),
        was_matched_(static_cast<std::size_t>(g.num_rows()), 0),
        retired_(static_cast<std::size_t>(g.num_cols()), 0) {}

  void on_loop_end(std::int64_t loop, const DeviceState& st) override {
    ++loops_seen_;
    check_neighborhood(loop, st);
    check_matching(loop, st);
  }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::int64_t loops_seen() const { return loops_seen_; }

 private:
  void fail(std::int64_t loop, const std::string& what) {
    if (violations_.size() < 5)
      violations_.push_back("loop " + std::to_string(loop) + ": " + what);
  }

  void check_neighborhood(std::int64_t loop, const DeviceState& st) {
    for (index_t v = 0; v < g_.num_cols(); ++v) {
      const index_t psi_v = st.psi_col.load(static_cast<std::size_t>(v));
      for (index_t u : g_.col_neighbors(v)) {
        const index_t psi_u = st.psi_row.load(static_cast<std::size_t>(u));
        if (psi_u < psi_v - 1)
          fail(loop, "psi(u=" + std::to_string(u) + ")=" +
                         std::to_string(psi_u) + " < psi(v=" +
                         std::to_string(v) + ")-1=" + std::to_string(psi_v - 1));
      }
    }
  }

  void check_matching(std::int64_t loop, const DeviceState& st) {
    for (index_t u = 0; u < g_.num_rows(); ++u) {
      const auto uz = static_cast<std::size_t>(u);
      const index_t v = st.mu_row.load(uz);
      if (v == -1) {
        // Row-match monotonicity: once matched, never unmatched.
        if (was_matched_[uz])
          fail(loop, "row " + std::to_string(u) + " became unmatched");
        continue;
      }
      if (v < 0 || v >= g_.num_cols()) {
        fail(loop, "mu_row out of range");
        continue;
      }
      if (!g_.has_edge(u, v))
        fail(loop, "mu_row pairs non-edge (" + std::to_string(u) + "," +
                       std::to_string(v) + ")");
      was_matched_[uz] = 1;
    }
    // Retired columns stay retired.
    for (index_t v = 0; v < g_.num_cols(); ++v) {
      const auto vz = static_cast<std::size_t>(v);
      const bool retired = st.mu_col.load(vz) == -2;
      if (retired_[vz] && !retired)
        fail(loop, "column " + std::to_string(v) + " un-retired");
      if (retired) retired_[vz] = 1;
    }
  }

  const BipartiteGraph& g_;
  std::vector<std::string> violations_;
  std::vector<char> was_matched_;
  std::vector<char> retired_;
  std::int64_t loops_seen_ = 0;
};

class InvariantSweep : public ::testing::TestWithParam<GprVariant> {
 protected:
  void run(const BipartiteGraph& g, ExecMode mode) {
    // The empty start maximises active columns (and hence invariant
    // checking); the greedy start exercises the initialised path.
    std::int64_t loops_total = 0;
    for (const bool greedy : {false, true}) {
      Device dev({.mode = mode, .num_threads = 4});
      InvariantObserver obs(g);
      GprOptions opt;
      opt.variant = GetParam();
      opt.shrink_threshold = 4;
      const matching::Matching init =
          greedy ? matching::cheap_matching(g) : matching::Matching(g);
      const GprResult r = g_pr(dev, g, init, opt, &obs);
      loops_total += obs.loops_seen();
      for (const auto& v : obs.violations()) ADD_FAILURE() << v;
      EXPECT_EQ(r.matching.cardinality(),
                matching::reference_maximum_cardinality(g));
    }
    EXPECT_GT(loops_total, 0);
  }
};

TEST_P(InvariantSweep, SequentialChain) {
  run(gen::chain(40), ExecMode::kSequential);
}

TEST_P(InvariantSweep, SequentialRandom) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    run(gen::random_uniform(60, 60, 200, seed), ExecMode::kSequential);
}

TEST_P(InvariantSweep, SequentialPowerLaw) {
  run(gen::chung_lu(150, 150, 3.0, 2.4, 7), ExecMode::kSequential);
}

TEST_P(InvariantSweep, SequentialStarContention) {
  run(gen::complete_bipartite(1, 12), ExecMode::kSequential);
}

// In concurrent mode the matching invariants (row monotonicity, retirement
// permanence, edge validity) must still hold at every barrier; the
// neighborhood invariant holds for the values at barriers as well, since
// all racy writes have landed by then and each write was derived from a
// previously-held value (see DESIGN.md D1 discussion).
TEST_P(InvariantSweep, ConcurrentRandom) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    run(gen::random_uniform(40, 40, 160, seed), ExecMode::kConcurrent);
}

INSTANTIATE_TEST_SUITE_P(Variants, InvariantSweep,
                         ::testing::Values(GprVariant::kFirst,
                                           GprVariant::kNoShrink,
                                           GprVariant::kShrink),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case GprVariant::kFirst: return "First";
                             case GprVariant::kNoShrink: return "NoShr";
                             case GprVariant::kShrink: return "Shr";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace bpm::gpu
