#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "graph/generators.hpp"
#include "graph/instances.hpp"

namespace bpm::graph {
namespace {

using namespace bpm::graph::gen;

TEST(Generators, RandomUniformShapeAndDeterminism) {
  const BipartiteGraph a = random_uniform(100, 120, 500, 7);
  const BipartiteGraph b = random_uniform(100, 120, 500, 7);
  EXPECT_EQ(a.num_rows(), 100);
  EXPECT_EQ(a.num_cols(), 120);
  EXPECT_LE(a.num_edges(), 500);       // duplicates removed
  EXPECT_GT(a.num_edges(), 400);       // but only a few collide
  EXPECT_EQ(a.row_adj(), b.row_adj());  // deterministic per seed
  const BipartiteGraph c = random_uniform(100, 120, 500, 8);
  EXPECT_NE(a.row_adj(), c.row_adj());
}

TEST(Generators, RandomUniformRejectsImpossibleEdgeCount) {
  EXPECT_THROW(random_uniform(2, 2, 5, 1), std::invalid_argument);
  EXPECT_THROW(random_uniform(0, 2, 0, 1), std::invalid_argument);
}

TEST(Generators, PlantedPerfectAlwaysHasPerfectMatching) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const BipartiteGraph g = planted_perfect(50, 2.0, seed);
    EXPECT_EQ(g.num_rows(), 50);
    EXPECT_EQ(g.num_cols(), 50);
    // Every row has at least its planted partner.
    for (index_t u = 0; u < g.num_rows(); ++u)
      EXPECT_GE(g.row_degree(u), 1) << "row " << u;
  }
}

TEST(Generators, RejectsOverflowingImpliedEdgeCounts) {
  // Degrees whose edge count cannot fit offset_t must throw — the cast
  // of an out-of-range double to an integer is UB, not a big number.
  EXPECT_THROW(planted_perfect(1000, 1e18, 1), std::invalid_argument);
  EXPECT_THROW(planted_perfect(10, 1e300, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu(1000, 1000, 1e17, 2.5, 1), std::invalid_argument);
  EXPECT_THROW(rmat(10, 1e17, 1), std::invalid_argument);
  EXPECT_THROW(skewed_hubs(1000, 1000, 1, 0.5, 1e17, 1),
               std::invalid_argument);
  EXPECT_THROW(huge_bipartite(1000, 1000, 1e300, 0.0, 0, 1),
               std::invalid_argument);
}

TEST(Generators, RmatShapeAndSkew) {
  const BipartiteGraph g = rmat(10, 8.0, 3);
  EXPECT_EQ(g.num_rows(), 1024);
  EXPECT_EQ(g.num_cols(), 1024);
  EXPECT_GT(g.num_edges(), 4000);
  // R-MAT with a=0.57 concentrates edges at low ids: the first quarter of
  // rows must hold well over a quarter of the edges.
  offset_t first_quarter = 0;
  for (index_t u = 0; u < 256; ++u) first_quarter += g.row_degree(u);
  EXPECT_GT(static_cast<double>(first_quarter),
            0.4 * static_cast<double>(g.num_edges()));
}

TEST(Generators, RmatRejectsBadParameters) {
  EXPECT_THROW(rmat(0, 8.0, 1), std::invalid_argument);
  EXPECT_THROW(rmat(10, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(rmat(10, 8.0, 1, 0.5, 0.5, 0.2), std::invalid_argument);
}

TEST(Generators, ChungLuProducesSkewedDegrees) {
  const BipartiteGraph g = chung_lu(2000, 2000, 8.0, 2.3, 11);
  EXPECT_EQ(g.num_rows(), 2000);
  index_t max_deg = 0;
  index_t isolated = 0;
  for (index_t u = 0; u < g.num_rows(); ++u) {
    max_deg = std::max(max_deg, g.row_degree(u));
    if (g.row_degree(u) == 0) ++isolated;
  }
  // Power-law: hubs far above the mean, and isolated vertices exist.
  EXPECT_GT(max_deg, 40);
  EXPECT_GT(isolated, 0);
}

TEST(Generators, SkewedHubsIsDeterministicPerSeed) {
  const BipartiteGraph a = skewed_hubs(900, 1000, 6, 0.3, 3.0, 7);
  const BipartiteGraph b = skewed_hubs(900, 1000, 6, 0.3, 3.0, 7);
  EXPECT_EQ(a.num_rows(), 900);
  EXPECT_EQ(a.num_cols(), 1000);
  EXPECT_EQ(a.row_adj(), b.row_adj());
  EXPECT_EQ(a.col_adj(), b.col_adj());
  const BipartiteGraph c = skewed_hubs(900, 1000, 6, 0.3, 3.0, 8);
  EXPECT_NE(a.row_adj(), c.row_adj());
  a.validate();
}

TEST(Generators, SkewedHubsDegreeDistribution) {
  constexpr index_t kRows = 1500, kCols = 1600, kHubs = 8;
  constexpr double kHubFraction = 0.25, kBackground = 3.0;
  const BipartiteGraph g =
      skewed_hubs(kRows, kCols, kHubs, kHubFraction, kBackground, 11);
  std::vector<index_t> degrees(static_cast<std::size_t>(g.num_cols()));
  for (index_t v = 0; v < g.num_cols(); ++v)
    degrees[static_cast<std::size_t>(v)] = g.col_degree(v);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  // Exactly the hubs sit far above everything else: the top kHubs degrees
  // are near the hub target (duplicates shave a little off), while the
  // rest of the columns stay at background scale.
  const auto target = static_cast<index_t>(kHubFraction * kRows);
  for (index_t h = 0; h < kHubs; ++h) {
    EXPECT_GT(degrees[static_cast<std::size_t>(h)], target / 2) << "hub " << h;
    EXPECT_LE(degrees[static_cast<std::size_t>(h)], target) << "hub " << h;
  }
  EXPECT_LT(degrees[kHubs], 30);  // background columns: ~3 + hub spill
  // Hubs are scattered by the id permutation, not parked at low ids.
  index_t low_id_hubs = 0;
  for (index_t v = 0; v < kHubs; ++v)
    if (g.col_degree(v) > target / 2) ++low_id_hubs;
  EXPECT_LT(low_id_hubs, kHubs);
}

TEST(Generators, HugeBipartiteStreamedCsrIsValidAndDeterministic) {
  const BipartiteGraph a = huge_bipartite(900, 1000, 4.0, 0.2, 100, 5);
  const BipartiteGraph b = huge_bipartite(900, 1000, 4.0, 0.2, 100, 5);
  EXPECT_EQ(a.num_rows(), 900);
  EXPECT_EQ(a.num_cols(), 1000);
  EXPECT_EQ(a.col_adj(), b.col_adj());
  EXPECT_EQ(a.row_adj(), b.row_adj());
  a.validate();  // sorted, deduplicated, both CSR directions consistent
  EXPECT_NE(a.col_adj(), huge_bipartite(900, 1000, 4.0, 0.2, 100, 6).col_adj());
  // Hubs land every hub_every columns at ~hub_fraction * rows neighbours;
  // background columns stay near avg_degree.
  const auto hub_target = static_cast<index_t>(0.2 * 900);
  for (index_t v = 0; v < a.num_cols(); v += 100) {
    EXPECT_GT(a.col_degree(v), hub_target / 2) << "hub " << v;
    EXPECT_LE(a.col_degree(v), hub_target + 4) << "hub " << v;
  }
  EXPECT_LT(a.col_degree(1), 10);
  // The two CSR directions describe the same edge set.
  EXPECT_EQ(a.num_edges(), static_cast<graph::offset_t>(a.row_adj().size()));
}

TEST(Generators, HugeBipartiteNoHubsAndRejectsBadParameters) {
  const BipartiteGraph flat = huge_bipartite(500, 600, 5.0, 0.0, 0, 3);
  flat.validate();
  index_t max_deg = 0;
  for (index_t v = 0; v < flat.num_cols(); ++v)
    max_deg = std::max(max_deg, flat.col_degree(v));
  EXPECT_LE(max_deg, 5);
  EXPECT_THROW(huge_bipartite(0, 10, 1.0, 0.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(huge_bipartite(10, 10, -1.0, 0.0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(huge_bipartite(10, 10, 1.0, 1.5, 2, 1), std::invalid_argument);
  EXPECT_THROW(huge_bipartite(10, 10, 1.0, 0.5, -1, 1),
               std::invalid_argument);
}

TEST(Generators, SkewedHubsRejectsBadParameters) {
  EXPECT_THROW(skewed_hubs(0, 10, 1, 0.5, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(skewed_hubs(10, 10, 11, 0.5, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(skewed_hubs(10, 10, 1, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(skewed_hubs(10, 10, 1, 1.5, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(skewed_hubs(10, 10, 1, 0.5, -1.0, 1), std::invalid_argument);
}

TEST(Generators, RoadNetworkIsSymmetricAndSparse) {
  const BipartiteGraph g = road_network(20, 20, 0.9, 5);
  EXPECT_EQ(g.num_rows(), 400);
  // Adjacency-matrix symmetry: (i,j) present iff (j,i) present.
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u)) EXPECT_TRUE(g.has_edge(v, u));
  // Lattice degree bound (4 mesh + rare shortcuts).
  for (index_t u = 0; u < g.num_rows(); ++u) EXPECT_LE(g.row_degree(u), 8);
}

TEST(Generators, DelaunayMeshDegreeNearSix) {
  const BipartiteGraph g = delaunay_mesh(30, 30, 5);
  EXPECT_EQ(g.num_rows(), 900);
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_rows());
  EXPECT_GT(avg, 4.5);
  EXPECT_LT(avg, 7.5);
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u)) EXPECT_TRUE(g.has_edge(v, u));
}

TEST(Generators, TraceMeshIsThinAndSymmetric) {
  const BipartiteGraph g = trace_mesh(200, 4, 0.05, 5);
  EXPECT_EQ(g.num_rows(), 800);
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u)) EXPECT_TRUE(g.has_edge(v, u));
}

TEST(Generators, CopaperContainsCliques) {
  const BipartiteGraph g = copaper(500, 50, 8.0, 5);
  EXPECT_EQ(g.num_rows(), 500);
  EXPECT_GT(g.num_edges(), 0);
  for (index_t u = 0; u < g.num_rows(); ++u)
    for (index_t v : g.row_neighbors(u)) EXPECT_TRUE(g.has_edge(v, u));
}

TEST(Generators, CompleteBipartite) {
  const BipartiteGraph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12);
  for (index_t u = 0; u < 3; ++u) EXPECT_EQ(g.row_degree(u), 4);
}

TEST(Generators, EmptyGraph) {
  const BipartiteGraph g = empty_graph(5, 7);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.num_rows(), 5);
  EXPECT_EQ(g.num_cols(), 7);
}

TEST(Generators, StarShape) {
  const BipartiteGraph g = star(6);
  EXPECT_EQ(g.num_rows(), 1);
  EXPECT_EQ(g.num_cols(), 6);
  EXPECT_EQ(g.row_degree(0), 6);
}

TEST(Generators, ChainShape) {
  const BipartiteGraph g = chain(5);
  EXPECT_EQ(g.num_rows(), 5);
  EXPECT_EQ(g.num_cols(), 5);
  EXPECT_EQ(g.num_edges(), 9);
  // Endpoints have degree 1, middle vertices degree 2.
  EXPECT_EQ(g.col_degree(4), 1);
  EXPECT_EQ(g.row_degree(0), 1);
  EXPECT_EQ(g.row_degree(2), 2);
}

// ------------------------------------------------------------ instances ----

TEST(Instances, RegistryHas28EntriesInTableOrder) {
  const auto& all = paper_instances();
  ASSERT_EQ(all.size(), 28u);
  EXPECT_EQ(all.front().name, "amazon0505");
  EXPECT_EQ(all.back().name, "hugebubbles-00000");
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].id, static_cast<int>(i) + 1);
  // Table I is ordered by increasing #rows.
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LE(all[i - 1].paper.rows, all[i].paper.rows);
}

TEST(Instances, PaperNumbersMatchKnownGeomeans) {
  // Bottom row of Table I: geometric means 0.70 / 0.92 / 1.99 / 2.15.
  const auto& all = paper_instances();
  double lg_gpr = 0, lg_hkdw = 0, lg_pdbfs = 0, lg_pr = 0;
  for (const auto& inst : all) {
    lg_gpr += std::log(inst.paper.g_pr_s);
    lg_hkdw += std::log(inst.paper.g_hkdw_s);
    lg_pdbfs += std::log(inst.paper.p_dbfs_s);
    lg_pr += std::log(inst.paper.pr_s);
  }
  const double n = 28.0;
  EXPECT_NEAR(std::exp(lg_gpr / n), 0.70, 0.02);
  EXPECT_NEAR(std::exp(lg_hkdw / n), 0.92, 0.02);
  EXPECT_NEAR(std::exp(lg_pdbfs / n), 1.99, 0.02);
  EXPECT_NEAR(std::exp(lg_pr / n), 2.15, 0.02);
}

TEST(Instances, BuildProducesNonTrivialGraphs) {
  for (const auto& inst : select_instances(9)) {  // ids 1, 10, 19, 28
    const BipartiteGraph g = inst.build(0.002, 1);
    EXPECT_GE(g.num_rows(), 1024) << inst.name;
    EXPECT_GT(g.num_edges(), 0) << inst.name;
  }
}

TEST(Instances, BuildIsDeterministic) {
  const auto& inst = paper_instances()[0];
  const BipartiteGraph a = inst.build(0.002, 42);
  const BipartiteGraph b = inst.build(0.002, 42);
  EXPECT_EQ(a.row_adj(), b.row_adj());
}

TEST(Instances, BuildRejectsNonPositiveScale) {
  EXPECT_THROW(paper_instances()[0].build(0.0, 1), std::invalid_argument);
}

TEST(Instances, StrideSelection) {
  EXPECT_EQ(select_instances(1).size(), 28u);
  EXPECT_EQ(select_instances(2).size(), 14u);
  EXPECT_EQ(select_instances(28).size(), 1u);
  EXPECT_THROW(select_instances(0), std::invalid_argument);
}

TEST(Instances, ClassNamesResolve) {
  for (const auto& inst : paper_instances())
    EXPECT_STRNE(to_string(inst.cls), "unknown") << inst.name;
}

}  // namespace
}  // namespace bpm::graph
