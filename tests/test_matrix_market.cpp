#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/matrix_market.hpp"

namespace bpm::graph {
namespace {

TEST(MatrixMarket, ReadsPatternGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1\n"
      "2 3\n"
      "3 4\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_rows(), 3);
  EXPECT_EQ(g.num_cols(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(MatrixMarket, ReadsRealValuesIgnoringMagnitudes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 3.5\n"
      "2 1 -0.25e2\n");
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(MatrixMarket, ReadsIntegerAndComplexFields) {
  std::istringstream in_int(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 7\n");
  EXPECT_EQ(read_matrix_market(in_int).num_edges(), 1);

  std::istringstream in_cplx(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 -2.0\n");
  EXPECT_EQ(read_matrix_market(in_cplx).num_edges(), 1);
}

TEST(MatrixMarket, SymmetricMirrorsOffDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const BipartiteGraph g = read_matrix_market(in);
  // (2,1) mirrors to (1,2); (3,3) is diagonal, no mirror.
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 2));
}

TEST(MatrixMarket, RejectsMalformedHeader) {
  std::istringstream in("%%NotMatrixMarket whatever\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsMissingValueInRealFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const std::vector<Edge> edges{{0, 0}, {0, 2}, {1, 1}, {2, 0}};
  const BipartiteGraph g = build_from_edges(3, 3, edges);
  std::stringstream buffer;
  write_matrix_market(buffer, g);
  const BipartiteGraph h = read_matrix_market(buffer);
  EXPECT_EQ(h.num_rows(), g.num_rows());
  EXPECT_EQ(h.num_cols(), g.num_cols());
  EXPECT_EQ(h.row_ptr(), g.row_ptr());
  EXPECT_EQ(h.row_adj(), g.row_adj());
  EXPECT_EQ(h.col_ptr(), g.col_ptr());
  EXPECT_EQ(h.col_adj(), g.col_adj());
}

TEST(MatrixMarket, RejectsTrailingEntriesBeyondDeclaredNnz) {
  // The header declares 2 entries but the file carries 3: silently
  // ignoring the tail would return a graph that is not what the file
  // describes.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 1\n"
      "2 2\n"
      "3 3\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, AllowsTrailingCommentsAndBlankLines) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 1\n"
      "2 2\n"
      "% a trailing comment is fine\n"
      "   \n"
      "\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 2);
}

TEST(MatrixMarket, RejectsPatternSkewSymmetricHeader) {
  // skew-symmetric needs signed values; a pattern field has none — the
  // combination is a contradiction, not a representable matrix.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern skew-symmetric\n"
      "3 3 1\n"
      "2 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RealSkewSymmetricStillReads) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 1\n"
      "2 1 -4.0\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 2);  // mirrored
}

TEST(MatrixMarket, FileNotFoundThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(MatrixMarket, CaseInsensitiveHeader) {
  std::istringstream in(
      "%%MatrixMarket MATRIX Coordinate Pattern General\n"
      "1 1 1\n"
      "1 1\n");
  EXPECT_EQ(read_matrix_market(in).num_edges(), 1);
}

}  // namespace
}  // namespace bpm::graph
