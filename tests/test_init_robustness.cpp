// Initial-matching robustness: every solver must reach the maximum from
// ANY valid starting matching — empty, greedy, Karp–Sipser, adversarially
// partial, or already maximum.  The paper initialises everything with
// cheap matching, but the algorithms' correctness argument is
// init-independent, and downstream users will pass their own warm starts.

#include <gtest/gtest.h>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/seq_pr.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"
#include "util/rng.hpp"

namespace bpm {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

/// An adversarial valid partial matching: greedily matched in a *random*
/// column order, then randomly thinned — produces awkward stranded
/// structures that neither cheap nor Karp–Sipser would create.
matching::Matching scrambled_init(const BipartiteGraph& g,
                                  std::uint64_t seed) {
  Rng rng(seed);
  matching::Matching m(g);
  std::vector<index_t> order(static_cast<std::size_t>(g.num_cols()));
  for (index_t v = 0; v < g.num_cols(); ++v)
    order[static_cast<std::size_t>(v)] = v;
  std::shuffle(order.begin(), order.end(), rng);
  for (index_t v : order) {
    for (index_t u : g.col_neighbors(v)) {
      if (m.row_match[static_cast<std::size_t>(u)] == matching::kUnmatched) {
        m.row_match[static_cast<std::size_t>(u)] = v;
        m.col_match[static_cast<std::size_t>(v)] = u;
        break;
      }
    }
  }
  // Thin ~40% of the pairs back out.
  for (index_t v = 0; v < g.num_cols(); ++v) {
    const index_t u = m.col_match[static_cast<std::size_t>(v)];
    if (u >= 0 && rng.chance(0.4)) {
      m.col_match[static_cast<std::size_t>(v)] = matching::kUnmatched;
      m.row_match[static_cast<std::size_t>(u)] = matching::kUnmatched;
    }
  }
  return m;
}

class InitRobustness : public ::testing::TestWithParam<const char*> {
 protected:
  index_t solve(const BipartiteGraph& g, const matching::Matching& init) {
    const std::string algo = GetParam();
    if (algo == "seq_pr")
      return matching::seq_push_relabel(g, init).cardinality();
    if (algo == "p_dbfs")
      return mc::p_dbfs(g, init, {.num_threads = 4}).matching.cardinality();
    if (algo == "g_hkdw") {
      Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
      return gpu::g_hk(dev, g, init).matching.cardinality();
    }
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 4});
    gpu::GprOptions opt;
    opt.variant = algo == "g_pr_first" ? gpu::GprVariant::kFirst
                                       : gpu::GprVariant::kShrink;
    opt.shrink_threshold = 8;
    return gpu::g_pr(dev, g, init, opt).matching.cardinality();
  }

  void check_all_inits(const BipartiteGraph& g, std::uint64_t seed) {
    const index_t want = matching::reference_maximum_cardinality(g);
    EXPECT_EQ(solve(g, matching::Matching(g)), want) << "empty init";
    EXPECT_EQ(solve(g, matching::cheap_matching(g)), want) << "cheap init";
    EXPECT_EQ(solve(g, matching::karp_sipser(g)), want) << "karp-sipser init";
    EXPECT_EQ(solve(g, scrambled_init(g, seed)), want) << "scrambled init";
    // Warm-starting from an already-maximum matching must be a no-op.
    const matching::Matching maximum =
        matching::hopcroft_karp(g, matching::Matching(g));
    EXPECT_EQ(solve(g, maximum), want) << "maximum init";
  }
};

TEST_P(InitRobustness, RandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    check_all_inits(gen::random_uniform(80, 80, 260, seed), seed);
}

TEST_P(InitRobustness, PowerLaw) {
  check_all_inits(gen::chung_lu(200, 200, 3.0, 2.4, 3), 3);
}

TEST_P(InitRobustness, TraceStrip) {
  check_all_inits(gen::trace_mesh(60, 3, 0.05, 5), 5);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, InitRobustness,
                         ::testing::Values("seq_pr", "p_dbfs", "g_hkdw",
                                           "g_pr_first", "g_pr_shr"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace bpm
