#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/hkdw.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/matching.hpp"
#include "matching/pothen_fan.hpp"
#include "matching/seq_pr.hpp"
#include "matching/verify.hpp"

namespace bpm::matching {
namespace {

using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

// All sequential solvers share a signature for table-driven tests.
using Solver = Matching (*)(const BipartiteGraph&, Matching);

Matching solve_pr(const BipartiteGraph& g, Matching init) {
  return seq_push_relabel(g, std::move(init));
}
Matching solve_pr_nogap(const BipartiteGraph& g, Matching init) {
  return seq_push_relabel(g, std::move(init), {.gap_relabeling = false});
}
Matching solve_pr_coldstart(const BipartiteGraph& g, Matching init) {
  return seq_push_relabel(g, std::move(init),
                          {.initial_global_relabel = false});
}
Matching solve_hk(const BipartiteGraph& g, Matching init) {
  return hopcroft_karp(g, std::move(init));
}
Matching solve_pf(const BipartiteGraph& g, Matching init) {
  return pothen_fan(g, std::move(init));
}
Matching solve_hkdw(const BipartiteGraph& g, Matching init) {
  return hkdw(g, std::move(init));
}

struct NamedSolver {
  const char* name;
  Solver solve;
};

class SeqSolvers : public ::testing::TestWithParam<NamedSolver> {
 protected:
  // Runs the solver from both an empty and a greedy start and checks the
  // result against the independent reference.
  void check(const BipartiteGraph& g) {
    const index_t want = reference_maximum_cardinality(g);
    for (const bool greedy_start : {false, true}) {
      Matching init = greedy_start ? cheap_matching(g) : Matching(g);
      const Matching m = GetParam().solve(g, std::move(init));
      ASSERT_TRUE(m.is_valid(g)) << m.first_violation(g);
      EXPECT_EQ(m.cardinality(), want)
          << GetParam().name << (greedy_start ? " greedy" : " empty");
      EXPECT_TRUE(is_maximum(g, m));
    }
  }
};

TEST_P(SeqSolvers, EmptyGraph) { check(gen::empty_graph(5, 7)); }

TEST_P(SeqSolvers, SingleEdge) {
  check(graph::build_from_edges(1, 1, std::vector<graph::Edge>{{0, 0}}));
}

TEST_P(SeqSolvers, Star) { check(gen::star(8)); }

TEST_P(SeqSolvers, CompleteSquare) { check(gen::complete_bipartite(6, 6)); }

TEST_P(SeqSolvers, CompleteRectangular) {
  check(gen::complete_bipartite(3, 9));
  check(gen::complete_bipartite(9, 3));
}

TEST_P(SeqSolvers, ChainsExerciseLongAugmentingPaths) {
  check(gen::chain(1));
  check(gen::chain(2));
  check(gen::chain(17));
  check(gen::chain(128));
}

TEST_P(SeqSolvers, PlantedPerfectIsFullyMatched) {
  const BipartiteGraph g = gen::planted_perfect(64, 1.0, 5);
  const Matching m = GetParam().solve(g, Matching(g));
  EXPECT_EQ(m.cardinality(), 64);
}

TEST_P(SeqSolvers, RandomSparse) {
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    check(gen::random_uniform(60, 60, 150, seed));
}

TEST_P(SeqSolvers, RandomRectangular) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    check(gen::random_uniform(40, 90, 200, seed));
    check(gen::random_uniform(90, 40, 200, seed));
  }
}

TEST_P(SeqSolvers, PowerLawWithIsolatedVertices) {
  check(gen::chung_lu(300, 300, 3.0, 2.4, 9));
}

TEST_P(SeqSolvers, RoadLattice) { check(gen::road_network(12, 12, 0.85, 2)); }

TEST_P(SeqSolvers, TraceStrip) { check(gen::trace_mesh(64, 3, 0.05, 2)); }

INSTANTIATE_TEST_SUITE_P(
    All, SeqSolvers,
    ::testing::Values(NamedSolver{"seq_pr", solve_pr},
                      NamedSolver{"seq_pr_nogap", solve_pr_nogap},
                      NamedSolver{"seq_pr_coldstart", solve_pr_coldstart},
                      NamedSolver{"hopcroft_karp", solve_hk},
                      NamedSolver{"pothen_fan", solve_pf},
                      NamedSolver{"hkdw", solve_hkdw}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// ------------------------------------------------------ algorithm quirks ----

TEST(SeqPr, StatsAreConsistent) {
  const BipartiteGraph g = gen::random_uniform(100, 100, 400, 3);
  SeqPrStats stats;
  const Matching m = seq_push_relabel(g, Matching(g), {}, &stats);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_GE(stats.global_relabels, 1);  // the initial one
  EXPECT_GE(stats.pushes, m.cardinality());  // each match needed >= 1 push
  EXPECT_GT(stats.scanned_edges, 0);
}

TEST(SeqPr, RejectsInvalidInitialMatching) {
  const BipartiteGraph g = gen::complete_bipartite(2, 2);
  Matching bad(g);
  bad.row_match[0] = 1;  // one-sided
  EXPECT_THROW(seq_push_relabel(g, bad), std::invalid_argument);
}

TEST(SeqPr, GlobalRelabelFrequencySweepAllReachMaximum) {
  const BipartiteGraph g = gen::chung_lu(200, 200, 4.0, 2.5, 4);
  const index_t want = reference_maximum_cardinality(g);
  for (const double k : {0.05, 0.25, 0.5, 1.0, 4.0}) {
    const Matching m =
        seq_push_relabel(g, cheap_matching(g), {.global_relabel_k = k});
    EXPECT_EQ(m.cardinality(), want) << "k=" << k;
  }
}

TEST(SeqPr, GapRelabelingRetiresColumns) {
  // Power-law graphs leave unmatchable columns; the gap heuristic should
  // retire at least some of them before the scan proves it.
  const BipartiteGraph g = gen::chung_lu(400, 400, 2.5, 2.3, 8);
  SeqPrStats with_gap;
  (void)seq_push_relabel(g, cheap_matching(g), {.gap_relabeling = true},
                         &with_gap);
  SeqPrStats no_gap;
  (void)seq_push_relabel(g, cheap_matching(g), {.gap_relabeling = false},
                         &no_gap);
  EXPECT_EQ(no_gap.gap_retired, 0);
  EXPECT_GE(with_gap.gap_retired, 0);  // may be zero on easy instances
}

TEST(HopcroftKarp, PhaseCountIsLogarithmicIsh) {
  // HK guarantees O(sqrt(V)) phases; on a 256-vertex random graph the
  // count must be far below the augmenting-path count.
  const BipartiteGraph g = gen::random_uniform(256, 256, 1500, 5);
  HkStats stats;
  const Matching m = hopcroft_karp(g, Matching(g), &stats);
  EXPECT_GT(stats.augmentations, 0);
  EXPECT_LE(stats.phases, 40);
  EXPECT_EQ(m.cardinality(), reference_maximum_cardinality(g));
}

TEST(Hkdw, ExtraPassShortensPhases) {
  const BipartiteGraph g = gen::chung_lu(500, 500, 5.0, 2.5, 6);
  HkStats hk_stats;
  (void)hopcroft_karp(g, Matching(g), &hk_stats);
  HkdwStats dw_stats;
  (void)hkdw(g, Matching(g), &dw_stats);
  EXPECT_LE(dw_stats.phases, hk_stats.phases);
  EXPECT_GT(dw_stats.dw_augmentations, 0);
}

TEST(PothenFan, LookaheadFindsDirectEndpoints) {
  PfStats stats;
  const Matching m = pothen_fan(gen::complete_bipartite(30, 30), Matching(
      gen::complete_bipartite(30, 30)), &stats);
  EXPECT_EQ(m.cardinality(), 30);
  EXPECT_GE(stats.augmentations, 30);
}

}  // namespace
}  // namespace bpm::matching
