// Race-stress tests: hammer the concurrent kernels with oversubscribed
// worker pools (threads >> cores widens the interleaving space) and many
// seeds on graphs small enough that conflicting pushes are frequent —
// small graphs maximise the probability that two columns target the same
// row in the same kernel, which is exactly the race the paper's
// conflict-detection machinery must absorb.

#include <gtest/gtest.h>

#include "core/g_hk.hpp"
#include "core/g_pr.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "multicore/pdbfs.hpp"

namespace bpm {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

class GprRaceStress : public ::testing::TestWithParam<gpu::GprVariant> {};

TEST_P(GprRaceStress, TinyDenseGraphsManySeeds) {
  // Dense tiny graphs: every kernel has many active columns contending
  // for few rows.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const BipartiteGraph g = gen::random_uniform(12, 12, 70, seed);
    const index_t want = matching::reference_maximum_cardinality(g);
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 13});
    gpu::GprOptions opt;
    opt.variant = GetParam();
    opt.shrink_threshold = 2;
    const gpu::GprResult r = gpu::g_pr(dev, g, matching::Matching(g), opt);
    ASSERT_TRUE(r.matching.is_valid(g))
        << "seed " << seed << ": " << r.matching.first_violation(g);
    ASSERT_EQ(r.matching.cardinality(), want) << "seed " << seed;
  }
}

TEST_P(GprRaceStress, ContendedSingleRowStar) {
  // All columns race for the single row every single kernel.
  for (std::uint64_t run = 0; run < 10; ++run) {
    const BipartiteGraph g = gen::complete_bipartite(1, 16);
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 16});
    gpu::GprOptions opt;
    opt.variant = GetParam();
    const gpu::GprResult r = gpu::g_pr(dev, g, matching::Matching(g), opt);
    ASSERT_EQ(r.matching.cardinality(), 1);
  }
}

TEST_P(GprRaceStress, MediumPowerLawRepeatedRuns) {
  const BipartiteGraph g = gen::chung_lu(400, 400, 3.0, 2.3, 99);
  const index_t want = matching::reference_maximum_cardinality(g);
  for (int run = 0; run < 6; ++run) {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 8});
    gpu::GprOptions opt;
    opt.variant = GetParam();
    opt.shrink_threshold = 16;
    const gpu::GprResult r =
        gpu::g_pr(dev, g, matching::cheap_matching(g), opt);
    ASSERT_EQ(r.matching.cardinality(), want) << "run " << run;
    ASSERT_TRUE(matching::is_maximum(g, r.matching));
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, GprRaceStress,
                         ::testing::Values(gpu::GprVariant::kFirst,
                                           gpu::GprVariant::kNoShrink,
                                           gpu::GprVariant::kShrink),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case gpu::GprVariant::kFirst: return "First";
                             case gpu::GprVariant::kNoShrink: return "NoShr";
                             case gpu::GprVariant::kShrink: return "Shr";
                           }
                           return "?";
                         });

TEST(GhkRaceStress, TinyDenseGraphsManySeeds) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const BipartiteGraph g = gen::random_uniform(14, 14, 80, seed);
    const index_t want = matching::reference_maximum_cardinality(g);
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 12});
    const gpu::GhkResult r = gpu::g_hk(dev, g, matching::Matching(g));
    ASSERT_EQ(r.matching.cardinality(), want) << "seed " << seed;
  }
}

TEST(PdbfsRaceStress, TinyGraphsManySeedsOversubscribed) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const BipartiteGraph g = gen::random_uniform(16, 16, 60, seed);
    const index_t want = matching::reference_maximum_cardinality(g);
    const mc::PdbfsResult r =
        mc::p_dbfs(g, matching::Matching(g), {.num_threads = 12});
    ASSERT_EQ(r.matching.cardinality(), want) << "seed " << seed;
  }
}

TEST(DeterminismOfResult, CardinalityIsStableAcrossRacyRuns) {
  // The matching itself may differ run to run (races pick different
  // winners) but the cardinality is an invariant.
  const BipartiteGraph g = gen::rmat(8, 4.0, 5);
  Device dev0({.mode = ExecMode::kSequential});
  const index_t want =
      gpu::g_pr(dev0, g, matching::Matching(g)).matching.cardinality();
  for (int run = 0; run < 8; ++run) {
    Device dev({.mode = ExecMode::kConcurrent, .num_threads = 7});
    EXPECT_EQ(gpu::g_pr(dev, g, matching::Matching(g)).matching.cardinality(),
              want);
  }
}

}  // namespace
}  // namespace bpm
