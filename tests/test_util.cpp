#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bpm {
namespace {

// ---------------------------------------------------------------- stats ----

TEST(Stats, GeometricMeanOfEqualValuesIsThatValue) {
  const std::vector<double> v{2.0, 2.0, 2.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
}

TEST(Stats, GeometricMeanMatchesHandComputation) {
  const std::vector<double> v{1.0, 8.0};  // sqrt(8) = 2.828…
  EXPECT_NEAR(geometric_mean(v), std::sqrt(8.0), 1e-12);
}

TEST(Stats, GeometricMeanEmptyIsZero) {
  EXPECT_EQ(geometric_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeometricMeanClampsNonPositive) {
  const std::vector<double> v{0.0, 1.0};
  EXPECT_GT(geometric_mean(v, 1e-9), 0.0);
}

TEST(Stats, ArithmeticMean) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(arithmetic_mean(v), 2.0, 1e-12);
}

TEST(Stats, SpeedupProfileCountsAtLeast) {
  // Speedups {1, 2, 4}: P(>=1)=1, P(>=2)=2/3, P(>=3)=1/3, P(>=5)=0.
  const std::vector<double> speedups{1.0, 2.0, 4.0};
  const std::vector<double> xs{1.0, 2.0, 3.0, 5.0};
  const auto profile = speedup_profile(speedups, xs);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_NEAR(profile[0].fraction, 1.0, 1e-12);
  EXPECT_NEAR(profile[1].fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(profile[2].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(profile[3].fraction, 0.0, 1e-12);
}

TEST(Stats, PerformanceProfileBestAlgorithmReachesOneAtXEqualsOne) {
  const std::vector<std::string> names{"fast", "slow"};
  const std::vector<std::vector<double>> times{{1.0, 2.0}, {2.0, 2.0}};
  const std::vector<double> xs{1.0, 2.0};
  const auto profiles = performance_profiles(names, times, xs);
  ASSERT_EQ(profiles.size(), 2u);
  // "fast" is best or tied on both instances.
  EXPECT_NEAR(profiles[0].points[0].fraction, 1.0, 1e-12);
  // "slow" is within 1x of best on instance 2 only.
  EXPECT_NEAR(profiles[1].points[0].fraction, 0.5, 1e-12);
  // Everything is within 2x.
  EXPECT_NEAR(profiles[1].points[1].fraction, 1.0, 1e-12);
}

TEST(Stats, PerformanceProfileRejectsRaggedInput) {
  const std::vector<std::string> names{"a", "b"};
  const std::vector<std::vector<double>> times{{1.0, 2.0}, {2.0}};
  const std::vector<double> xs{1.0};
  EXPECT_THROW(performance_profiles(names, times, xs), std::invalid_argument);
}

// The documented percentile contract (see util/stats.hpp): empty → 0,
// single element → that element, pct clamped, endpoints are min/max,
// interior points interpolate linearly and stay monotone in pct.

TEST(Stats, PercentileEmptyIsZero) {
  const std::vector<double> none;
  EXPECT_EQ(percentile(none, 0), 0.0);
  EXPECT_EQ(percentile(none, 50), 0.0);
  EXPECT_EQ(percentile(none, 100), 0.0);
}

TEST(Stats, PercentileSingleElementIsThatElementForEveryPct) {
  const std::vector<double> one{7.5};
  for (const double pct : {-10.0, 0.0, 1.0, 50.0, 99.0, 100.0, 400.0})
    EXPECT_EQ(percentile(one, pct), 7.5) << "pct=" << pct;
}

TEST(Stats, PercentileClampsOutOfRangePct) {
  const std::vector<double> v{3.0, 1.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(percentile(v, -5), percentile(v, 0));
  EXPECT_EQ(percentile(v, 250), percentile(v, 100));
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 3.0);
}

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_NEAR(percentile(v, 50), 30.0, 1e-12);
  // Rank 25/100 * 4 = 1.0 exactly; 30/100 * 4 = 1.2 → 20 + 0.2*10.
  EXPECT_NEAR(percentile(v, 25), 20.0, 1e-12);
  EXPECT_NEAR(percentile(v, 30), 22.0, 1e-12);
}

TEST(Stats, PercentileMonotoneInPctAndBounded) {
  const std::vector<double> v{5.0, 0.5, 2.0, 9.0, 4.0, 4.0, 7.5};
  double prev = percentile(v, 0);
  for (int pct = 1; pct <= 100; ++pct) {
    const double cur = percentile(v, pct);
    EXPECT_GE(cur, prev) << "pct=" << pct;
    EXPECT_GE(cur, 0.5);
    EXPECT_LE(cur, 9.0);
    prev = cur;
  }
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{4.0, 1.0, 2.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.geomean, std::cbrt(8.0), 1e-12);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  bool all_equal = true;
  Rng c2(43);
  for (int i = 0; i < 16; ++i)
    if (a2() != c2()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto x = rng.range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - kDraws / 50);
    EXPECT_LT(count, kDraws / 10 + kDraws / 50);
  }
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test");
  cli.add_option("scale", "scale", "1.0");
  cli.add_flag("verbose", "verbose");
  const char* argv[] = {"prog", "--scale", "2.5", "--verbose"};
  cli.parse(4, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 2.5);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("prog", "test");
  cli.add_option("k", "k", "0.7");
  cli.add_option("name", "n", "x");
  const char* argv[] = {"prog", "--k=1.5"};
  cli.parse(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("k"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "x");
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("k", "k", "1");
  const char* argv[] = {"prog", "--k"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, NonNumericValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("k", "k", "1");
  const char* argv[] = {"prog", "--k", "abc"};
  cli.parse(3, argv);
  EXPECT_THROW((void)cli.get_int("k"), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("k"), std::invalid_argument);
}

TEST(Cli, PositionalArguments) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "input.mtx", "out.txt"};
  cli.parse(3, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignedPrintContainsHeadersAndValues) {
  Table t({"name", "time"});
  t.add_row({std::string("amazon"), 0.257});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("amazon"), std::string::npos);
  EXPECT_NE(s.find("0.26"), std::string::npos);  // precision 2 rounding
}

TEST(Table, CsvRoundTripBasics) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::string("x,y")});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n1,\"x,y\"\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

// ---------------------------------------------------------------- timer ----

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_LT(t.elapsed_s(), 1.0);
}

}  // namespace
}  // namespace bpm
