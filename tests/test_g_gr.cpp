#include <gtest/gtest.h>

#include "core/g_gr.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/matching.hpp"

namespace bpm::gpu {
namespace {

using device::Device;
using device::ExecMode;
using graph::BipartiteGraph;
using graph::index_t;
namespace gen = graph::gen;

DeviceState make_state(const BipartiteGraph& g, const matching::Matching& m) {
  DeviceState st(g.num_rows(), g.num_cols());
  st.mu_row.assign_from(m.row_match);
  st.mu_col.assign_from(m.col_match);
  return st;
}

/// Host reference: exact alternating-path distances via the sequential BFS
/// of Algorithm 2.
void reference_distances(const BipartiteGraph& g, const matching::Matching& m,
                         std::vector<index_t>& psi_row,
                         std::vector<index_t>& psi_col) {
  const index_t inf = g.psi_infinity();
  psi_row.assign(static_cast<std::size_t>(g.num_rows()), inf);
  psi_col.assign(static_cast<std::size_t>(g.num_cols()), inf);
  std::vector<index_t> queue;
  for (index_t u = 0; u < g.num_rows(); ++u) {
    if (m.row_match[static_cast<std::size_t>(u)] == matching::kUnmatched) {
      psi_row[static_cast<std::size_t>(u)] = 0;
      queue.push_back(u);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t u = queue[head];
    for (index_t v : g.row_neighbors(u)) {
      if (psi_col[static_cast<std::size_t>(v)] != inf) continue;
      psi_col[static_cast<std::size_t>(v)] =
          psi_row[static_cast<std::size_t>(u)] + 1;
      const index_t w = m.col_match[static_cast<std::size_t>(v)];
      if (w >= 0 && psi_row[static_cast<std::size_t>(w)] == inf) {
        psi_row[static_cast<std::size_t>(w)] =
            psi_row[static_cast<std::size_t>(u)] + 2;
        queue.push_back(w);
      }
    }
  }
}

class GGrModes : public ::testing::TestWithParam<ExecMode> {
 protected:
  Device make_device() { return Device({.mode = GetParam(), .num_threads = 4}); }

  void expect_exact_distances(const BipartiteGraph& g,
                              const matching::Matching& m) {
    Device dev = make_device();
    DeviceState st = make_state(g, m);
    const GrResult r = g_gr(dev, g, st);
    std::vector<index_t> want_row, want_col;
    reference_distances(g, m, want_row, want_col);
    EXPECT_EQ(st.psi_row.to_host(), want_row);
    EXPECT_EQ(st.psi_col.to_host(), want_col);
    // maxLevel covers the deepest populated level.
    index_t deepest = 0;
    for (index_t d : want_row)
      if (d < g.psi_infinity()) deepest = std::max(deepest, d);
    EXPECT_GE(r.max_level, deepest);
  }
};

TEST_P(GGrModes, EmptyMatchingChainGivesBfsDistances) {
  const BipartiteGraph g = gen::chain(8);
  expect_exact_distances(g, matching::Matching(g));
}

TEST_P(GGrModes, GreedyMatchingChain) {
  const BipartiteGraph g = gen::chain(8);
  expect_exact_distances(g, matching::cheap_matching(g));
}

TEST_P(GGrModes, RandomGraphsManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const BipartiteGraph g = gen::random_uniform(80, 90, 300, seed);
    expect_exact_distances(g, matching::Matching(g));
    expect_exact_distances(g, matching::cheap_matching(g));
  }
}

TEST_P(GGrModes, PowerLawWithUnreachableVertices) {
  const BipartiteGraph g = gen::chung_lu(200, 200, 3.0, 2.4, 3);
  expect_exact_distances(g, matching::cheap_matching(g));
}

TEST_P(GGrModes, PerfectMatchingLeavesAllUnreachable) {
  // With a perfect matching there is no unmatched row: every vertex must
  // be labeled m+n.
  const BipartiteGraph g = gen::complete_bipartite(5, 5);
  matching::Matching m(g);
  for (index_t i = 0; i < 5; ++i) m.match(i, i);
  Device dev = make_device();
  DeviceState st = make_state(g, m);
  (void)g_gr(dev, g, st);
  for (index_t d : st.psi_row.to_host()) EXPECT_EQ(d, g.psi_infinity());
  for (index_t d : st.psi_col.to_host()) EXPECT_EQ(d, g.psi_infinity());
}

TEST_P(GGrModes, StaleColumnEntriesDoNotPropagate) {
  // The paper's G-GR-KRNL only follows µ(v) when µ(µ(v)) = v.  Plant a
  // stale column entry and check the BFS ignores it.
  const BipartiteGraph g = gen::chain(3);
  matching::Matching m(g);
  m.match(1, 1);
  Device dev = make_device();
  DeviceState st = make_state(g, m);
  st.mu_col.store(2, 1);  // stale: column 2 claims row 1, row 1 disagrees
  const GrResult r = g_gr(dev, g, st);
  (void)r;
  // Column 2's label must come from the BFS (via row 2), not from the
  // stale matched edge.
  std::vector<index_t> want_row, want_col;
  reference_distances(g, m, want_row, want_col);
  EXPECT_EQ(st.psi_row.to_host(), want_row);
  EXPECT_EQ(st.psi_col.to_host(), want_col);
}

TEST_P(GGrModes, LevelKernelCountMatchesDepth) {
  // A chain of k links needs ~k BFS levels — one launch each.
  const BipartiteGraph g = gen::chain(32);
  matching::Matching m(g);
  for (index_t i = 1; i < 32; ++i) m.match(i, i - 1);  // only r0, c31 free
  Device dev = make_device();
  DeviceState st = make_state(g, m);
  const GrResult r = g_gr(dev, g, st);
  EXPECT_GE(r.level_kernels, 30);
  EXPECT_EQ(r.max_level, 2 * r.level_kernels);
}

INSTANTIATE_TEST_SUITE_P(AllModes, GGrModes,
                         ::testing::Values(ExecMode::kSequential,
                                           ExecMode::kConcurrent),
                         [](const auto& param_info) {
                           return param_info.param == ExecMode::kSequential
                                      ? "Sequential"
                                      : "Concurrent";
                         });

}  // namespace
}  // namespace bpm::gpu
