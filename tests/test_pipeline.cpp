// Batched matching pipeline (core/pipeline.hpp): (instance × solver) job
// grids match single-run results, aggregate stats add up, verification
// catches non-maximum results, and the shared init is built exactly once
// per instance — including on a concurrent device.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm {
namespace {

namespace gen = graph::gen;
using graph::BipartiteGraph;
using graph::index_t;

std::vector<std::pair<std::string, BipartiteGraph>> suite() {
  return {{"uniform", gen::random_uniform(400, 420, 2000, 5)},
          {"planted", gen::planted_perfect(300, 2.0, 9)},
          {"power-law", gen::chung_lu(500, 500, 4.0, 2.4, 21)}};
}

const std::vector<std::string> kSolvers = {"g-pr-shr", "hk", "p-dbfs",
                                           "seq-pr"};

TEST(Pipeline, RunsTheFullJobGridWithVerifiedResults) {
  MatchingPipeline pipe({.device_mode = device::ExecMode::kConcurrent,
                         .device_threads = 4,
                         .solver_threads = 4});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  ASSERT_EQ(pipe.instances().size(), 3u);

  const PipelineReport report = pipe.run(kSolvers);
  EXPECT_TRUE(report.all_ok());
  ASSERT_EQ(report.jobs.size(), 12u);  // 3 instances x 4 solvers
  EXPECT_EQ(report.totals.jobs, 12u);
  EXPECT_EQ(report.totals.failed, 0u);

  // Instance-major order, every job maximum for its instance.
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const PipelineJob& job = report.jobs[i];
    EXPECT_EQ(job.instance, i / kSolvers.size());
    EXPECT_EQ(job.solver, kSolvers[i % kSolvers.size()]);
    EXPECT_TRUE(job.ok) << job.solver << ": " << job.error;
    EXPECT_EQ(job.stats.cardinality,
              pipe.instances()[job.instance].maximum_cardinality);
  }
}

TEST(Pipeline, MatchesSingleRunResultsAndSharesTheGreedyInit) {
  MatchingPipeline pipe({.device_threads = 2});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));

  for (const PipelineInstance& inst : pipe.instances()) {
    // The shared init is the paper's cheap greedy matching, built once.
    EXPECT_EQ(inst.initial_cardinality,
              matching::cheap_matching(inst.graph).cardinality());
    EXPECT_EQ(inst.init.cardinality(), inst.initial_cardinality);
    // The reference ground truth agrees with the independent certificate.
    EXPECT_EQ(inst.maximum_cardinality,
              matching::reference_maximum_cardinality(inst.graph));
  }

  const PipelineReport report = pipe.run(kSolvers);
  ASSERT_TRUE(report.all_ok());
  // Each job's cardinality equals a direct single run of the same solver
  // from the same shared init (all solvers are exact here, so equality of
  // cardinality is the right notion of "matches single-run results").
  device::Device dev({.mode = device::ExecMode::kConcurrent, .num_threads = 2});
  const SolveContext ctx{.device = &dev, .threads = 2};
  for (const PipelineJob& job : report.jobs) {
    const PipelineInstance& inst = pipe.instances()[job.instance];
    const SolveResult single = solve(job.solver, ctx, inst.graph, inst.init);
    EXPECT_EQ(job.stats.cardinality, single.stats.cardinality)
        << job.solver << " on " << inst.name;
  }
}

TEST(Pipeline, TotalsAggregateThePerJobStats) {
  MatchingPipeline pipe({.device_threads = 2});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  const PipelineReport report = pipe.run({"g-pr-shr", "g-hkdw", "pf"});

  std::int64_t pairs = 0, launches = 0;
  double wall = 0.0, modeled = 0.0;
  for (const PipelineJob& job : report.jobs) {
    pairs += job.stats.cardinality;
    launches += job.stats.device_launches;
    wall += job.stats.wall_ms;
    modeled += job.stats.modeled_ms;
  }
  EXPECT_EQ(report.totals.matched_pairs, pairs);
  EXPECT_EQ(report.totals.device_launches, launches);
  EXPECT_DOUBLE_EQ(report.totals.wall_ms, wall);
  EXPECT_DOUBLE_EQ(report.totals.modeled_ms, modeled);
  EXPECT_GT(report.totals.device_launches, 0);  // two device solvers ran
  EXPECT_GT(report.totals.modeled_ms, 0.0);
}

TEST(Pipeline, JobsForSelectsOneInstancesJobs) {
  MatchingPipeline pipe;
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  const PipelineReport report = pipe.run({"hk", "pf"});
  const auto jobs = report.jobs_for(1);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0]->solver, "hk");
  EXPECT_EQ(jobs[1]->solver, "pf");
  for (const PipelineJob* job : jobs) EXPECT_EQ(job->instance, 1u);
}

TEST(Pipeline, HeuristicSolversVerifyAsValidNotMaximum) {
  MatchingPipeline pipe;
  // planted_perfect guarantees max = n; greedy from an empty init will not
  // reach it on this graph shape, yet must still verify (valid and <= max).
  pipe.add_instance("planted", gen::planted_perfect(300, 2.0, 9));
  const PipelineReport report = pipe.run({"greedy", "karp-sipser"});
  EXPECT_TRUE(report.all_ok());
  for (const PipelineJob& job : report.jobs)
    EXPECT_LE(job.stats.cardinality,
              pipe.instances().front().maximum_cardinality);
}

TEST(Pipeline, RecordsFailuresInsteadOfAborting) {
  // A deliberately broken solver: claims exactness, returns the init
  // unchanged — verification must flag every job, not throw.
  class NoopSolver final : public Solver {
   public:
    [[nodiscard]] std::string name() const override { return "test-noop"; }
    [[nodiscard]] SolverCaps caps() const override { return {}; }
    [[nodiscard]] SolveResult run(const SolveContext&,
                                  const graph::BipartiteGraph&,
                                  const matching::Matching& init) const override {
      SolveResult out{init, {}};
      out.stats.cardinality = init.cardinality();
      return out;
    }
  };
  static bool registered = [] {
    SolverRegistry::instance().add(
        "test-noop", [] { return std::make_unique<NoopSolver>(); });
    return true;
  }();
  (void)registered;

  MatchingPipeline pipe;
  pipe.add_instance("uniform", gen::random_uniform(400, 420, 2000, 5));
  const PipelineReport report = pipe.run({"test-noop", "hk"});
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.totals.failed, 1u);
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_NE(report.jobs[0].error.find("not maximum"), std::string::npos);
  EXPECT_TRUE(report.jobs[1].ok);
}

TEST(Pipeline, UnknownSolverNameFailsTheWholeBatchUpFront) {
  MatchingPipeline pipe;
  pipe.add_instance("k44", gen::complete_bipartite(4, 4));
  EXPECT_THROW((void)pipe.run({"hk", "no-such-solver"}),
               std::invalid_argument);
}

TEST(Pipeline, InitBuilderAndNoShareInitAreHonoured) {
  PipelineOptions ks;
  ks.init_builder = matching::karp_sipser;
  MatchingPipeline with_ks(ks);
  const BipartiteGraph g = gen::chung_lu(500, 500, 4.0, 2.4, 21);
  with_ks.add_instance("g", g);
  EXPECT_EQ(with_ks.instances().front().initial_cardinality,
            matching::karp_sipser(g).cardinality());

  MatchingPipeline cold({.share_init = false});
  cold.add_instance("g", g);
  EXPECT_EQ(cold.instances().front().initial_cardinality, 0);
  const PipelineReport report = cold.run({"hk"});
  EXPECT_TRUE(report.all_ok());
}

TEST(Pipeline, VerifyOffSkipsGroundTruthAndAcceptsAnything) {
  MatchingPipeline pipe({.verify = false});
  pipe.add_instance("k44", gen::complete_bipartite(4, 4));
  EXPECT_EQ(pipe.instances().front().maximum_cardinality, -1);
  const PipelineReport report = pipe.run({"greedy"});
  EXPECT_TRUE(report.all_ok());
}

// The acceptance scenario: a batch over a concurrent device agrees with a
// sequential-device batch job for job — the paper's central claim (races
// change schedules, never cardinalities) surfaced at the pipeline level.
TEST(Pipeline, ConcurrentAndSequentialDevicesAgreeJobForJob) {
  const std::vector<std::string> solvers = {"g-pr-shr", "g-pr-first",
                                            "g-hkdw"};
  MatchingPipeline concurrent({.device_mode = device::ExecMode::kConcurrent,
                               .device_threads = 8});
  MatchingPipeline sequential({.device_mode = device::ExecMode::kSequential});
  for (auto& [name, g] : suite()) {
    concurrent.add_instance(name, g);
    sequential.add_instance(name, std::move(g));
  }
  const PipelineReport a = concurrent.run(solvers);
  const PipelineReport b = sequential.run(solvers);
  EXPECT_TRUE(a.all_ok());
  EXPECT_TRUE(b.all_ok());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].stats.cardinality, b.jobs[i].stats.cardinality)
        << a.jobs[i].solver;
}

}  // namespace
}  // namespace bpm
