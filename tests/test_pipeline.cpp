// Batched matching pipeline (core/pipeline.hpp): (instance × solver) job
// grids match single-run results, aggregate stats add up, verification
// catches non-maximum results, and the shared init is built exactly once
// per instance — including on a concurrent device.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace bpm {
namespace {

namespace gen = graph::gen;
using graph::BipartiteGraph;
using graph::index_t;

std::vector<std::pair<std::string, BipartiteGraph>> suite() {
  return {{"uniform", gen::random_uniform(400, 420, 2000, 5)},
          {"planted", gen::planted_perfect(300, 2.0, 9)},
          {"power-law", gen::chung_lu(500, 500, 4.0, 2.4, 21)}};
}

const std::vector<std::string> kSolvers = {"g-pr-shr", "hk", "p-dbfs",
                                           "seq-pr"};

TEST(Pipeline, RunsTheFullJobGridWithVerifiedResults) {
  MatchingPipeline pipe({.device_mode = device::ExecMode::kConcurrent,
                         .device_threads = 4,
                         .solver_threads = 4});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  ASSERT_EQ(pipe.instances().size(), 3u);

  const PipelineReport report = pipe.run(kSolvers);
  EXPECT_TRUE(report.all_ok());
  ASSERT_EQ(report.jobs.size(), 12u);  // 3 instances x 4 solvers
  EXPECT_EQ(report.totals.jobs, 12u);
  EXPECT_EQ(report.totals.failed, 0u);

  // Instance-major order, every job maximum for its instance.
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const PipelineJob& job = report.jobs[i];
    EXPECT_EQ(job.instance, i / kSolvers.size());
    EXPECT_EQ(job.solver, kSolvers[i % kSolvers.size()]);
    EXPECT_TRUE(job.ok) << job.solver << ": " << job.error;
    EXPECT_EQ(job.stats.cardinality,
              pipe.instances()[job.instance].maximum_cardinality);
  }
}

TEST(Pipeline, MatchesSingleRunResultsAndSharesTheGreedyInit) {
  MatchingPipeline pipe({.device_threads = 2});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));

  for (const PipelineInstance& inst : pipe.instances()) {
    // The shared init is the paper's cheap greedy matching, built once.
    EXPECT_EQ(inst.initial_cardinality,
              matching::cheap_matching(inst.graph).cardinality());
    EXPECT_EQ(inst.init.cardinality(), inst.initial_cardinality);
    // The reference ground truth agrees with the independent certificate.
    EXPECT_EQ(inst.maximum_cardinality,
              matching::reference_maximum_cardinality(inst.graph));
  }

  const PipelineReport report = pipe.run(kSolvers);
  ASSERT_TRUE(report.all_ok());
  // Each job's cardinality equals a direct single run of the same solver
  // from the same shared init (all solvers are exact here, so equality of
  // cardinality is the right notion of "matches single-run results").
  device::Device dev({.mode = device::ExecMode::kConcurrent, .num_threads = 2});
  const SolveContext ctx{.device = &dev, .threads = 2};
  for (const PipelineJob& job : report.jobs) {
    const PipelineInstance& inst = pipe.instances()[job.instance];
    const SolveResult single = solve(job.solver, ctx, inst.graph, inst.init);
    EXPECT_EQ(job.stats.cardinality, single.stats.cardinality)
        << job.solver << " on " << inst.name;
  }
}

TEST(Pipeline, TotalsAggregateThePerJobStats) {
  // Pinned to sim: the assertions below validate *modeled* totals, which
  // the host backend (measured wall, modeled 0) intentionally leaves empty.
  MatchingPipeline pipe({.device_backend = device::Backend::kSim,
                         .device_threads = 2});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  const PipelineReport report = pipe.run({"g-pr-shr", "g-hkdw", "pf"});

  std::int64_t pairs = 0, launches = 0;
  double wall = 0.0, modeled = 0.0;
  for (const PipelineJob& job : report.jobs) {
    pairs += job.stats.cardinality;
    launches += job.stats.device_launches;
    wall += job.stats.wall_ms;
    modeled += job.stats.modeled_ms;
  }
  EXPECT_EQ(report.totals.matched_pairs, pairs);
  EXPECT_EQ(report.totals.device_launches, launches);
  EXPECT_DOUBLE_EQ(report.totals.wall_ms, wall);
  EXPECT_DOUBLE_EQ(report.totals.modeled_ms, modeled);
  EXPECT_GT(report.totals.device_launches, 0);  // two device solvers ran
  EXPECT_GT(report.totals.modeled_ms, 0.0);
  // wall_ms is summed solver cost; batch_wall_ms is the caller's wait.
  // They are distinct measurements: the batch wall includes scheduling
  // and, under concurrency, overlapped jobs make it smaller than the sum.
  EXPECT_GT(report.totals.batch_wall_ms, 0.0);
}

TEST(Pipeline, JobsForSelectsOneInstancesJobs) {
  MatchingPipeline pipe;
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  const PipelineReport report = pipe.run({"hk", "pf"});
  const auto jobs = report.jobs_for(1);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0]->solver, "hk");
  EXPECT_EQ(jobs[1]->solver, "pf");
  for (const PipelineJob* job : jobs) EXPECT_EQ(job->instance, 1u);
}

TEST(Pipeline, HeuristicSolversVerifyAsValidNotMaximum) {
  MatchingPipeline pipe;
  // planted_perfect guarantees max = n; greedy from an empty init will not
  // reach it on this graph shape, yet must still verify (valid and <= max).
  pipe.add_instance("planted", gen::planted_perfect(300, 2.0, 9));
  const PipelineReport report = pipe.run({"greedy", "karp-sipser"});
  EXPECT_TRUE(report.all_ok());
  for (const PipelineJob& job : report.jobs)
    EXPECT_LE(job.stats.cardinality,
              pipe.instances().front().maximum_cardinality);
}

TEST(Pipeline, RecordsFailuresInsteadOfAborting) {
  // A deliberately broken solver: claims exactness, returns the init
  // unchanged — verification must flag every job, not throw.
  class NoopSolver final : public Solver {
   public:
    [[nodiscard]] std::string name() const override { return "test-noop"; }
    [[nodiscard]] SolverCaps caps() const override { return {}; }
    [[nodiscard]] SolveResult run(const SolveContext&,
                                  const graph::BipartiteGraph&,
                                  const matching::Matching& init) const override {
      SolveResult out{init, {}};
      out.stats.cardinality = init.cardinality();
      return out;
    }
  };
  static bool registered = [] {
    SolverRegistry::instance().add(
        "test-noop", [] { return std::make_unique<NoopSolver>(); });
    return true;
  }();
  (void)registered;

  MatchingPipeline pipe;
  pipe.add_instance("uniform", gen::random_uniform(400, 420, 2000, 5));
  const PipelineReport report = pipe.run({"test-noop", "hk"});
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.totals.failed, 1u);
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_NE(report.jobs[0].error.find("not maximum"), std::string::npos);
  EXPECT_TRUE(report.jobs[1].ok);
}

TEST(Pipeline, UnknownSolverNameFailsTheWholeBatchUpFront) {
  MatchingPipeline pipe;
  pipe.add_instance("k44", gen::complete_bipartite(4, 4));
  EXPECT_THROW((void)pipe.run({"hk", "no-such-solver"}),
               std::invalid_argument);
}

TEST(Pipeline, InitBuilderAndNoShareInitAreHonoured) {
  PipelineOptions ks;
  ks.init_builder = matching::karp_sipser;
  MatchingPipeline with_ks(ks);
  const BipartiteGraph g = gen::chung_lu(500, 500, 4.0, 2.4, 21);
  with_ks.add_instance("g", g);
  EXPECT_EQ(with_ks.instances().front().initial_cardinality,
            matching::karp_sipser(g).cardinality());

  MatchingPipeline cold({.share_init = false});
  cold.add_instance("g", g);
  EXPECT_EQ(cold.instances().front().initial_cardinality, 0);
  const PipelineReport report = cold.run({"hk"});
  EXPECT_TRUE(report.all_ok());
}

TEST(Pipeline, VerifyOffSkipsGroundTruthAndAcceptsAnything) {
  MatchingPipeline pipe({.verify = false});
  pipe.add_instance("k44", gen::complete_bipartite(4, 4));
  EXPECT_EQ(pipe.instances().front().maximum_cardinality, -1);
  const PipelineReport report = pipe.run({"greedy"});
  EXPECT_TRUE(report.all_ok());
}

// ---- concurrent scheduler --------------------------------------------------

// The report signature that must be schedule-invariant: which job, on
// which instance, with which result.  (Timings legitimately vary.)
std::string report_signature(const PipelineReport& report) {
  std::string out;
  for (const PipelineJob& job : report.jobs)
    out += std::to_string(job.instance) + ":" + job.solver + ":" +
           std::to_string(job.stats.cardinality) + ":" +
           (job.ok ? "ok" : "FAIL") + ":" + (job.cached ? "hit" : "miss") +
           ";";
  return out;
}

// Stress the work-stealing scheduler: 8 instances x 3 solvers, at several
// max_concurrent_jobs levels.  Every job must verify and the report must
// be identical to the sequential schedule regardless of interleaving.
TEST(Pipeline, ConcurrentSchedulerMatchesTheSequentialReportUnderStress) {
  const std::vector<std::string> solvers = {"g-pr-shr", "hk", "p-dbfs"};
  MatchingPipeline pipe({.device_threads = 4,
                         .solver_threads = 2,
                         .max_concurrent_jobs = 1});
  for (int i = 0; i < 8; ++i) {
    const auto seed = static_cast<std::uint64_t>(11 * i + 3);
    pipe.add_instance(
        "g" + std::to_string(i),
        i % 2 == 0 ? gen::random_uniform(300 + 20 * i, 310, 1500, seed)
                   : gen::chung_lu(250 + 10 * i, 260, 4.0, 2.4, seed));
  }
  ASSERT_EQ(pipe.instances().size(), 8u);

  const PipelineReport sequential = pipe.run(solvers);
  ASSERT_TRUE(sequential.all_ok());
  ASSERT_EQ(sequential.jobs.size(), 24u);
  const std::string want = report_signature(sequential);

  for (const unsigned concurrency : {2u, 4u, 8u, 13u}) {
    pipe.set_max_concurrent_jobs(concurrency);
    const PipelineReport report = pipe.run(solvers);
    EXPECT_TRUE(report.all_ok()) << "concurrency " << concurrency;
    EXPECT_EQ(report_signature(report), want)
        << "concurrent schedule changed the report at concurrency "
        << concurrency;
    EXPECT_GT(report.totals.batch_wall_ms, 0.0);
  }
}

// Concurrent jobs run on per-stream devices: the batch's launch totals
// must equal the sequential schedule's (same kernels, different streams),
// proving streams do not corrupt each other's counters.
TEST(Pipeline, StreamsKeepLaunchAccountingExactUnderConcurrency) {
  // Sequential kernel mode: per-job launch counts are deterministic, so
  // any cross-stream corruption shows up as a count mismatch.  Jobs still
  // run concurrently (each scheduler thread drives its own stream).
  MatchingPipeline pipe({.device_mode = device::ExecMode::kSequential,
                         .max_concurrent_jobs = 1});
  for (auto& [name, g] : suite()) pipe.add_instance(name, std::move(g));
  const PipelineReport sequential = pipe.run({"g-hkdw"});
  ASSERT_TRUE(sequential.all_ok());

  pipe.set_max_concurrent_jobs(4);
  const PipelineReport concurrent = pipe.run({"g-hkdw"});
  ASSERT_TRUE(concurrent.all_ok());
  // G-HK's phase structure is deterministic given the init, so per-job
  // launch counts are comparable job for job.
  ASSERT_EQ(concurrent.jobs.size(), sequential.jobs.size());
  for (std::size_t i = 0; i < concurrent.jobs.size(); ++i)
    EXPECT_EQ(concurrent.jobs[i].stats.device_launches,
              sequential.jobs[i].stats.device_launches)
        << sequential.jobs[i].solver << " on instance "
        << sequential.jobs[i].instance;
}

// ---- result cache ----------------------------------------------------------

TEST(Pipeline, ResultCacheServesRepeatedInstancesWithoutResolving) {
  MatchingPipeline pipe({.device_threads = 2});
  const BipartiteGraph g = gen::random_uniform(400, 420, 2000, 5);
  pipe.add_instance("original", g);
  pipe.add_instance("repeat", g);
  pipe.add_instance("other", gen::planted_perfect(300, 2.0, 9));
  EXPECT_EQ(pipe.instances()[0].fingerprint, pipe.instances()[1].fingerprint);
  EXPECT_NE(pipe.instances()[0].fingerprint, pipe.instances()[2].fingerprint);

  const PipelineReport report = pipe.run({"hk", "pf"});
  ASSERT_TRUE(report.all_ok());
  ASSERT_EQ(report.jobs.size(), 6u);
  EXPECT_EQ(report.totals.cache_hits, 2u);
  // The duplicate instance's jobs are the hits, in deterministic order.
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const PipelineJob& job = report.jobs[i];
    EXPECT_EQ(job.cached, job.instance == 1) << "job " << i;
    if (job.cached) {
      // Same result as the source job, no re-charged cost.
      EXPECT_EQ(job.stats.cardinality, report.jobs[i - 2].stats.cardinality);
      EXPECT_EQ(job.stats.wall_ms, 0.0);
      EXPECT_EQ(job.stats.device_launches, 0);
    }
  }
}

TEST(Pipeline, CacheDistinguishesSolverSpecsAndDedupesEqualOnes) {
  MatchingPipeline pipe;
  const BipartiteGraph g = gen::chung_lu(300, 300, 4.0, 2.4, 7);
  pipe.add_instance("a", g);
  pipe.add_instance("b", g);

  // Different tunings of one solver never share cache entries...
  const PipelineReport tuned = pipe.run({"seq-pr:k=2", "seq-pr:k=4"});
  ASSERT_TRUE(tuned.all_ok());
  EXPECT_EQ(tuned.totals.cache_hits, 2u);  // only across the duplicate graph
  EXPECT_FALSE(tuned.jobs[0].cached);
  EXPECT_FALSE(tuned.jobs[1].cached);

  // ...while two spellings of the same tuning do, even within an instance.
  const PipelineReport same =
      pipe.run({"seq-pr:k=2,gap=1", "seq-pr:gap=1,k=2"});
  ASSERT_TRUE(same.all_ok());
  EXPECT_EQ(same.totals.cache_hits, 3u);  // 4 jobs, 1 solve
  EXPECT_FALSE(same.jobs[0].cached);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_TRUE(same.jobs[i].cached);
}

TEST(Pipeline, CacheCanBeDisabled) {
  MatchingPipeline pipe({.cache_results = false});
  const BipartiteGraph g = gen::random_uniform(200, 210, 900, 3);
  pipe.add_instance("a", g);
  pipe.add_instance("b", g);
  const PipelineReport report = pipe.run({"hk"});
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.totals.cache_hits, 0u);
  for (const PipelineJob& job : report.jobs) EXPECT_FALSE(job.cached);
}

TEST(Pipeline, RunWithCachesPerSolverObjectNotPerName) {
  // Two registry-default "hk" objects passed to run_with may have been
  // tuned apart by the caller, so they must not share cache entries.
  MatchingPipeline pipe;
  pipe.add_instance("g", gen::random_uniform(200, 210, 900, 3));
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.push_back(SolverRegistry::instance().create("hk"));
  solvers.push_back(SolverRegistry::instance().create("hk"));
  const PipelineReport report = pipe.run_with(solvers);
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.totals.cache_hits, 0u);
}

TEST(Pipeline, SpecStringsRunEndToEnd) {
  MatchingPipeline pipe({.device_threads = 2});
  pipe.add_instance("g", gen::random_uniform(300, 310, 1500, 11));
  const PipelineReport report = pipe.run({"g-pr-shr:k=1.5", "hk"});
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.jobs[0].stats.cardinality,
            report.jobs[1].stats.cardinality);
  EXPECT_THROW((void)pipe.run({"g-pr-shr:k="}), std::invalid_argument);
  EXPECT_THROW((void)pipe.run({"hk:no-such-option=1"}),
               std::invalid_argument);
}

// The acceptance scenario: a batch over a concurrent device agrees with a
// sequential-device batch job for job — the paper's central claim (races
// change schedules, never cardinalities) surfaced at the pipeline level.
TEST(Pipeline, ConcurrentAndSequentialDevicesAgreeJobForJob) {
  const std::vector<std::string> solvers = {"g-pr-shr", "g-pr-first",
                                            "g-hkdw"};
  MatchingPipeline concurrent({.device_mode = device::ExecMode::kConcurrent,
                               .device_threads = 8});
  MatchingPipeline sequential({.device_mode = device::ExecMode::kSequential});
  for (auto& [name, g] : suite()) {
    concurrent.add_instance(name, g);
    sequential.add_instance(name, std::move(g));
  }
  const PipelineReport a = concurrent.run(solvers);
  const PipelineReport b = sequential.run(solvers);
  EXPECT_TRUE(a.all_ok());
  EXPECT_TRUE(b.all_ok());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].stats.cardinality, b.jobs[i].stats.cardinality)
        << a.jobs[i].solver;
}

}  // namespace
}  // namespace bpm
