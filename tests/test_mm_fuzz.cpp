// Failure-injection tests for the Matrix Market parser: deterministic
// pseudo-random corruptions of valid files.  The contract under attack is
// narrow — for ANY input the parser either returns a structurally valid
// graph or throws std::runtime_error; it must never crash, hang, or hand
// back a graph that fails validate().

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/matrix_market.hpp"
#include "util/rng.hpp"

namespace bpm::graph {
namespace {

std::string valid_file() {
  return
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment line\n"
      "6 7 9\n"
      "1 1\n"
      "2 3\n"
      "3 4\n"
      "4 2\n"
      "5 5\n"
      "6 6\n"
      "1 7\n"
      "2 6\n"
      "3 1\n";
}

/// Parse attempt that asserts the never-crash contract.
void expect_parse_or_throw(const std::string& content) {
  std::istringstream in(content);
  try {
    const BipartiteGraph g = read_matrix_market(in);
    g.validate();  // throws std::logic_error on internal inconsistency
  } catch (const std::runtime_error&) {
    // Rejection is fine; std::logic_error from validate() would mean the
    // parser built a broken graph and is NOT caught here on purpose.
  }
}

TEST(MmFuzz, ByteMutations) {
  const std::string base = valid_file();
  Rng rng(2013);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
      const char replacement =
          static_cast<char>(' ' + static_cast<char>(rng.below(95)));
      mutated[pos] = replacement;
    }
    expect_parse_or_throw(mutated);
  }
}

TEST(MmFuzz, TruncationsAtEveryLength) {
  const std::string base = valid_file();
  for (std::size_t len = 0; len <= base.size(); ++len)
    expect_parse_or_throw(base.substr(0, len));
}

TEST(MmFuzz, LineDeletionsAndDuplications) {
  const std::string base = valid_file();
  std::vector<std::string> lines;
  std::istringstream in(base);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  for (std::size_t drop = 0; drop < lines.size(); ++drop) {
    std::string content;
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (i != drop) content += lines[i] + "\n";
    expect_parse_or_throw(content);
  }
  for (std::size_t dup = 0; dup < lines.size(); ++dup) {
    std::string content;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      content += lines[i] + "\n";
      if (i == dup) content += lines[i] + "\n";
    }
    expect_parse_or_throw(content);
  }
}

TEST(MmFuzz, HostileSizeLines) {
  for (const char* size_line : {
           "0 0 0", "1 1 999999999", "-1 5 2", "5 -1 2", "5 5 -2",
           "99999999999999999999 5 1", "5 99999999999999999999 1",
           "1e9 5 1", "5 5", "5", "", "a b c", "5 5 1 extra",
       }) {
    std::string content =
        "%%MatrixMarket matrix coordinate pattern general\n";
    content += size_line;
    content += "\n1 1\n";
    expect_parse_or_throw(content);
  }
}

TEST(MmFuzz, HostileEntryLines) {
  for (const char* entry : {
           "0 1", "1 0", "7 1", "1 8", "-1 -1", "1.5 2", "1 2.5",
           "99999999999999999999 1", "nan 1", "1 inf", "x y",
       }) {
    std::string content =
        "%%MatrixMarket matrix coordinate pattern general\n6 7 1\n";
    content += entry;
    content += "\n";
    expect_parse_or_throw(content);
  }
}

TEST(MmFuzz, GarbageStreams) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const auto len = rng.below(400);
    for (std::uint64_t i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.below(256));
    expect_parse_or_throw(garbage);
  }
}

TEST(MmFuzz, ValidBaseStillParses) {
  std::istringstream in(valid_file());
  const BipartiteGraph g = read_matrix_market(in);
  EXPECT_EQ(g.num_rows(), 6);
  EXPECT_EQ(g.num_cols(), 7);
  EXPECT_EQ(g.num_edges(), 9);
}

}  // namespace
}  // namespace bpm::graph
