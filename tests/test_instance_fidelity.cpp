// Fidelity tests for the synthetic Table I analogues: the structural
// variables that drive the paper's performance story must be in the right
// regime.  These are the checks that catch a generator regression like
// "lattice ordering makes greedy init near-perfect" (a bug fixed during
// development — natural-order meshes gave IM/MM ≈ 0.999 where the paper's
// randomly-ordered matrices sit at 0.86–0.95).

#include <gtest/gtest.h>

#include "core/g_gr.hpp"
#include "graph/instances.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"

namespace bpm::graph {
namespace {

constexpr double kScale = 0.004;
constexpr std::uint64_t kSeed = 11;

struct Built {
  BipartiteGraph g;
  index_t im = 0;
  index_t mm = 0;
};

Built build(const Instance& inst) {
  Built b{inst.build(kScale, kSeed), 0, 0};
  const matching::Matching greedy = matching::cheap_matching(b.g);
  b.im = greedy.cardinality();
  b.mm = matching::hopcroft_karp(b.g, greedy).cardinality();
  return b;
}

class InstanceFidelity : public ::testing::TestWithParam<Instance> {};

TEST_P(InstanceFidelity, GreedyCoverageTracksPaper) {
  const Instance& inst = GetParam();
  const Built b = build(inst);
  ASSERT_GT(b.mm, 0) << inst.name;

  const double ours =
      static_cast<double>(b.im) / static_cast<double>(b.mm);
  const double paper =
      static_cast<double>(inst.paper.initial_matching) /
      static_cast<double>(inst.paper.maximum_matching);
  // Greedy coverage (IM/MM) controls the deficiency every algorithm
  // starts from.  Asymmetric band: synthetic analogues at reduced scale
  // may leave greedy somewhat *more* deficient than the original
  // (−0.2 slack), but markedly *less* deficient means the instance lost
  // its difficulty — that is exactly the lattice-ordering regression
  // (+0.1 cap; road class: paper 0.87, natural-order bug gave 0.99).
  EXPECT_GT(ours, paper - 0.2) << inst.name << ": IM/MM " << ours
                               << " vs paper " << paper;
  EXPECT_LT(ours, paper + 0.1)
      << inst.name << ": IM/MM " << ours << " vs paper " << paper;
}

TEST_P(InstanceFidelity, MatchableFractionTracksPaper) {
  const Instance& inst = GetParam();
  const Built b = build(inst);
  const double ours = static_cast<double>(b.mm) /
                      static_cast<double>(std::min(b.g.num_rows(), b.g.num_cols()));
  const double paper =
      static_cast<double>(inst.paper.maximum_matching) /
      static_cast<double>(std::min(inst.paper.rows, inst.paper.cols));
  // MM/n separates the perfectly-matchable classes (trace, delaunay,
  // circuit: ≈ 1.0) from the power-law ones with many unmatchable
  // columns (kron ≈ 0.49, flickr ≈ 0.45).
  EXPECT_NEAR(ours, paper, 0.2) << inst.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, InstanceFidelity,
    // One representative per structural class keeps runtime modest:
    // amazon0505 (social), coPapersDBLP (copaper), eu-2005 (web),
    // delaunay_n20, kron_logn20, roadNet-PA, Hamrle3 (circuit),
    // GL7d19 (combinat), hugetrace-00000 (trace), italy_osm (osm).
    ::testing::Values(paper_instances()[0], paper_instances()[1],
                      paper_instances()[4], paper_instances()[5],
                      paper_instances()[6], paper_instances()[7],
                      paper_instances()[10], paper_instances()[12],
                      paper_instances()[19], paper_instances()[22]),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(InstanceFidelity, TraceMeshesAreTheDeepBfsClass) {
  // The class-defining property behind Figure 4's losing instances: one
  // global relabel on a trace analogue needs far more BFS levels than on
  // a kron analogue of comparable size.
  const Built trace = build(paper_instances()[19]);   // hugetrace-00000
  const Built kron = build(paper_instances()[6]);     // kron_g500-logn20

  auto gr_depth = [](const Built& b) {
    device::Device dev({.mode = device::ExecMode::kSequential});
    gpu::DeviceState st(b.g.num_rows(), b.g.num_cols());
    const matching::Matching greedy = matching::cheap_matching(b.g);
    st.mu_row.assign_from(greedy.row_match);
    st.mu_col.assign_from(greedy.col_match);
    return gpu::g_gr(dev, b.g, st).max_level;
  };
  const index_t trace_depth = gr_depth(trace);
  const index_t kron_depth = gr_depth(kron);
  EXPECT_GT(trace_depth, 8 * kron_depth)
      << "trace " << trace_depth << " vs kron " << kron_depth;
}

}  // namespace
}  // namespace bpm::graph
